//! The `hrms` command-line tool: schedule loops, convert loop formats and
//! inspect machine descriptions. See `docs/CLI.md` or `hrms help`.

use std::io::{Read, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // `serve` is a long-running stream, not a read-everything-then-answer
    // command: it owns stdin/stdout (or a socket) directly so responses
    // are flushed as each request completes.
    if args.first().map(String::as_str) == Some("serve") {
        if let Err(e) = hrms_repro::cli::serve_streaming(&args[1..]) {
            eprintln!("hrms: {e}");
            std::process::exit(e.code);
        }
        return;
    }

    // Only pay for reading stdin when some input source asks for it.
    let mut stdin = String::new();
    if args.iter().any(|a| a == "-") {
        if let Err(e) = std::io::stdin().read_to_string(&mut stdin) {
            eprintln!("hrms: cannot read stdin: {e}");
            std::process::exit(1);
        }
    }

    match hrms_repro::cli::run(&args, &stdin) {
        Ok(output) => {
            // Write without final-newline fixups: `run` produces exact text,
            // and golden tests diff it byte-for-byte.
            let mut out = std::io::stdout().lock();
            if out.write_all(output.as_bytes()).is_err() {
                // Broken pipe (e.g. `hrms ... | head`) is not an error.
                std::process::exit(0);
            }
        }
        Err(e) => {
            // Pre-rendered multi-line reports (lint/certify diagnostics)
            // end with a newline and are printed verbatim; single-line
            // errors get the usual `hrms:` prefix.
            if e.message.ends_with('\n') {
                eprint!("{}", e.message);
            } else {
                eprintln!("hrms: {e}");
            }
            std::process::exit(e.code);
        }
    }
}
