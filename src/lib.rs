//! # hrms-repro — Hypernode Reduction Modulo Scheduling
//!
//! A reproduction of *"Hypernode Reduction Modulo Scheduling"* (J. Llosa,
//! M. Valero, E. Ayguadé, A. González, MICRO-28, 1995): a register-pressure-
//! aware software-pipelining scheduler, the baselines it was evaluated
//! against, the workloads, and the harness that regenerates every table and
//! figure of the paper's evaluation.
//!
//! This crate is a thin facade re-exporting the workspace members:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`ddg`] | dependence graphs, recurrence circuits, path search, topological orders |
//! | [`machine`] | machine descriptions (functional units, latencies) and the paper's configurations |
//! | [`modsched`] | MII, modulo reservation tables, schedules, kernels, lifetimes, metrics |
//! | [`hrms`] | the paper's algorithm: hypernode-reduction pre-ordering + bidirectional scheduling |
//! | [`baselines`] | Top-Down, Bottom-Up, Slack, FRLC-style, iterative, and branch-and-bound schedulers |
//! | [`regalloc`] | register pressure, spill insertion, modulo variable expansion, rotating register allocation |
//! | [`workloads`] | the paper's worked examples, a 24-loop reference suite, a synthetic Perfect-Club-like suite |
//! | [`engine`] | parallel batch scheduling across a scoped worker pool with deterministic output order |
//! | [`verify`] | diagnostics engine, DDG/machine lint pass, independent schedule certifier |
//! | [`serve`] | batch scheduling service: JSON-lines protocol over pipes or a Unix socket, content-addressed result cache |
//!
//! # Quick start
//!
//! ```
//! use hrms_repro::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Describe a loop body: y[i] = a*x[i] + y[i]
//! let mut b = DdgBuilder::new("daxpy");
//! let x = b.node("load_x", OpKind::Load, 2);
//! let y = b.node("load_y", OpKind::Load, 2);
//! let ax = b.node("a_times_x", OpKind::FpMul, 2);
//! let sum = b.node("sum", OpKind::FpAdd, 1);
//! let st = b.node("store_y", OpKind::Store, 1);
//! b.edge(x, ax, DepKind::RegFlow, 0)?;
//! b.edge(ax, sum, DepKind::RegFlow, 0)?;
//! b.edge(y, sum, DepKind::RegFlow, 0)?;
//! b.edge(sum, st, DepKind::RegFlow, 0)?;
//! let ddg = b.build()?;
//!
//! // Software-pipeline it with HRMS for the paper's Table-1 machine.
//! let machine = presets::govindarajan();
//! let outcome = HrmsScheduler::new().schedule_loop(&ddg, &machine)?;
//! assert_eq!(outcome.metrics.ii, 3); // three memory ops share one unit
//! assert!(outcome.metrics.ii_is_optimal());
//!
//! // The schedule is valid and its register pressure is measured.
//! validate_schedule(&ddg, &machine, &outcome.schedule)?;
//! println!("registers needed: {}", outcome.metrics.max_live);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hrms_baselines as baselines;
pub use hrms_core as hrms;
pub use hrms_ddg as ddg;
pub use hrms_engine as engine;
pub use hrms_machine as machine;
pub use hrms_modsched as modsched;
pub use hrms_regalloc as regalloc;
pub use hrms_serve as serve;
pub use hrms_verify as verify;
pub use hrms_workloads as workloads;

pub mod cli;
pub mod registry;

/// The most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use hrms_baselines::{
        BottomUpScheduler, BranchAndBoundScheduler, FrlcScheduler, IterativeScheduler,
        SlackScheduler, TopDownScheduler,
    };
    pub use hrms_core::{
        HrmsOptions, HrmsScheduler, OrderingMode, PreOrderOptions, StartNodePolicy,
    };
    pub use hrms_ddg::{Ddg, DdgBuilder, DepKind, NodeId, OpKind};
    pub use hrms_engine::BatchEngine;
    pub use hrms_machine::{presets, Machine, MachineBuilder, ResourceClass};
    pub use hrms_modsched::{
        validate_schedule, Kernel, LifetimeAnalysis, MiiInfo, ModuloScheduler, Schedule,
        ScheduleMetrics, ScheduleOutcome, SchedulerConfig,
    };
    pub use hrms_regalloc::{
        allocate_rotating, schedule_with_register_budget, CumulativeDistribution, PressureKind,
        RegisterPressure, SpillConfig,
    };
    pub use hrms_verify::{
        certify, lint_loop_source, lint_machine_source, Certificate, Diagnostic, Severity,
    };
    pub use hrms_workloads::{motivating, reference24, synthetic, LoopGenerator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let ddg = motivating::figure1();
        let machine = presets::general_purpose();
        let outcome = HrmsScheduler::new().schedule_loop(&ddg, &machine).unwrap();
        validate_schedule(&ddg, &machine, &outcome.schedule).unwrap();
        assert_eq!(outcome.metrics.max_live, 6);
    }
}
