//! Name-based registries for the CLI: scheduler slugs and machine
//! references.
//!
//! The registry implementation lives in [`hrms_serve::registry`] so the
//! batch service can resolve schedulers without depending on this facade;
//! it is re-exported here unchanged to keep `hrms_repro::registry` the
//! stable path the CLI and its tests use.

pub use hrms_serve::registry::{
    all_schedulers, feedback_scheduler, resolve_machine, scheduler_by_slug, wrap_feedback,
    BoxedScheduler, MachineError, MachineFiles, SCHEDULER_SLUGS,
};
