//! The implementation of the `hrms` command-line tool.
//!
//! Everything except process concerns (argv, stdin, exit) lives here so the
//! integration tests can drive the CLI in-process: [`run`] takes the
//! argument list and the stdin contents and returns the full stdout text.
//! `src/bin/hrms.rs` is a thin wrapper around it. The user-facing
//! documentation is `docs/CLI.md`.

use std::fmt::Write as _;

use hrms_ddg::{dot, parse_loops, textfmt, Ddg};
use hrms_engine::BatchEngine;
use hrms_machine::{presets, write_machine, Machine};
use hrms_modsched::{report_line, FeedbackConfig, ModuloScheduler, ReportOptions, ScheduleOutcome};
use hrms_serve::{looks_like_dot, looks_like_machine, ServeConfig, Service};
use hrms_verify::{certify, lint_dot_source, lint_loop_source, lint_machine_source, Diagnostic};

use crate::registry::{
    all_schedulers, resolve_machine, scheduler_by_slug, wrap_feedback, BoxedScheduler,
    MachineFiles, SCHEDULER_SLUGS,
};

/// A CLI failure: a message for stderr and the process exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable description, printed to stderr by the binary.
    pub message: String,
    /// Process exit code: 2 for usage errors, 1 for data errors.
    pub code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 2,
        }
    }

    fn data(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// The `--emit` mode of `hrms schedule`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Emit {
    Kernel,
    Json,
    Dot,
}

const USAGE: &str = "\
hrms — software pipelining with Hypernode Reduction Modulo Scheduling

USAGE:
    hrms schedule <FILE|->...  [--scheduler <slugs>|all] [--machine <presets|files>]
                               [--emit kernel|json|dot] [--timing] [--workers N]
                               [--certify] [--feedback]
    hrms lint     <FILE|->...  [--machine <preset|file>] [--format text|json]
    hrms convert  <FILE|->...  --to loop|dot
    hrms machine  <preset|file>
    hrms serve    [--socket PATH] [--workers N] [--cache-capacity N] [--no-cache]
    hrms list
    hrms help

Loop inputs are `.loop` files (docs/FORMATS.md) or Graphviz DOT files
(auto-detected); `-` reads from stdin. `--scheduler` takes a
comma-separated list of slugs (default: hrms); `--machine` a
comma-separated list of presets or `.machine` files (default:
govindarajan) — each loop is analysed once and scheduled on every
machine. `lint` also accepts
`.machine` inputs (auto-detected) and exits 1 when it finds anything
(docs/DIAGNOSTICS.md); `--certify` re-checks every produced schedule with
the independent certifier from hrms-verify; `--feedback` wraps every
selected scheduler in the feedback-guided iterative rescheduler (the
`feedback:<slug>` scheduler prefix does the same for one slug). `serve` runs the batch
scheduling service: JSON-lines requests on stdin (or a Unix socket),
results streamed back in input order with a content-addressed cache
(docs/SERVICE.md).
";

/// Runs the CLI with the given arguments (excluding the program name) and
/// stdin contents, returning the stdout text.
///
/// # Errors
///
/// Returns a [`CliError`] carrying the message and exit code on any usage
/// or data error.
pub fn run(args: &[String], stdin: &str) -> Result<String, CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("schedule") => cmd_schedule(&args[1..], stdin),
        Some("lint") => cmd_lint(&args[1..], stdin),
        Some("convert") => cmd_convert(&args[1..], stdin),
        Some("machine") => cmd_machine(&args[1..]),
        Some("serve") => cmd_serve(&args[1..], stdin),
        Some("list") => Ok(cmd_list()),
        Some("help") | Some("--help") | Some("-h") | None => Ok(USAGE.to_string()),
        Some(other) => Err(CliError::usage(format!(
            "unknown subcommand `{other}`\n\n{USAGE}"
        ))),
    }
}

/// Reads one input source: a path or `-` for stdin.
fn read_source(source: &str, stdin: &str) -> Result<String, CliError> {
    if source == "-" {
        return Ok(stdin.to_string());
    }
    std::fs::read_to_string(source)
        .map_err(|e| CliError::data(format!("cannot read `{source}`: {e}")))
}

/// Parses one input source into its loops (a `.loop` file may hold several;
/// a DOT file holds exactly one graph).
fn parse_source(source: &str, text: &str) -> Result<Vec<Ddg>, CliError> {
    if looks_like_dot(text) {
        dot::from_dot(text)
            .map(|g| vec![g])
            .map_err(|e| CliError::data(format!("{source}: {e}")))
    } else {
        parse_loops(text).map_err(|e| CliError::data(format!("{source}: {e}")))
    }
}

/// Loads every loop from the listed sources, in argument order.
fn load_loops(sources: &[&str], stdin: &str) -> Result<Vec<Ddg>, CliError> {
    if sources.is_empty() {
        return Err(CliError::usage(
            "no input files given (use `-` to read stdin)",
        ));
    }
    let mut loops = Vec::new();
    for source in sources {
        let text = read_source(source, stdin)?;
        loops.extend(parse_source(source, &text)?);
    }
    if loops.is_empty() {
        return Err(CliError::data("the inputs contain no loops"));
    }
    Ok(loops)
}

fn flag_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a str, CliError> {
    it.next()
        .map(String::as_str)
        .ok_or_else(|| CliError::usage(format!("`{flag}` needs a value")))
}

fn cmd_schedule(args: &[String], stdin: &str) -> Result<String, CliError> {
    let mut sources: Vec<&str> = Vec::new();
    let mut scheduler_arg = "hrms".to_string();
    let mut machine_arg = "govindarajan".to_string();
    let mut emit = Emit::Kernel;
    let mut timing = false;
    let mut workers: Option<usize> = None;
    let mut do_certify = false;
    let mut feedback = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scheduler" => scheduler_arg = flag_value(&mut it, "--scheduler")?.to_string(),
            "--machine" => machine_arg = flag_value(&mut it, "--machine")?.to_string(),
            "--certify" => do_certify = true,
            "--feedback" => feedback = true,
            "--emit" => {
                emit = match flag_value(&mut it, "--emit")? {
                    "kernel" => Emit::Kernel,
                    "json" => Emit::Json,
                    "dot" => Emit::Dot,
                    other => {
                        return Err(CliError::usage(format!(
                            "unknown emit mode `{other}` (kernel, json or dot)"
                        )))
                    }
                }
            }
            "--timing" => timing = true,
            "--workers" => {
                let v = flag_value(&mut it, "--workers")?;
                workers = Some(v.parse().map_err(|_| {
                    CliError::usage(format!("`--workers` needs a number, got `{v}`"))
                })?);
            }
            flag if flag.starts_with('-') && flag != "-" => {
                return Err(CliError::usage(format!("unknown flag `{flag}`")));
            }
            file => sources.push(file),
        }
    }

    let loops = load_loops(&sources, stdin)?;
    let machines = machine_arg
        .split(',')
        .map(|name| {
            resolve_machine(name.trim(), MachineFiles::Allow)
                .map_err(|e| CliError::data(e.to_string()))
        })
        .collect::<Result<Vec<Machine>, CliError>>()?;

    if emit == Emit::Dot {
        // DOT output is a property of the loops alone; no scheduling runs.
        let rendered: Vec<String> = loops.iter().map(dot::to_dot_default).collect();
        return Ok(rendered.join("\n"));
    }

    let schedulers: Vec<BoxedScheduler> = if scheduler_arg == "all" {
        all_schedulers()
    } else {
        scheduler_arg
            .split(',')
            .map(|slug| {
                scheduler_by_slug(slug.trim()).ok_or_else(|| {
                    CliError::usage(format!(
                        "unknown scheduler `{}` (known: {}, or `all`)",
                        slug.trim(),
                        SCHEDULER_SLUGS.join(", ")
                    ))
                })
            })
            .collect::<Result<_, _>>()?
    };
    let schedulers: Vec<BoxedScheduler> = if feedback {
        schedulers
            .into_iter()
            .map(|s| wrap_feedback(s, FeedbackConfig::default()))
            .collect()
    } else {
        schedulers
    };
    let scheduler_refs: Vec<&(dyn ModuloScheduler + Sync)> = schedulers
        .iter()
        .map(|b| &**b as &(dyn ModuloScheduler + Sync))
        .collect();

    let engine = match workers {
        Some(n) => BatchEngine::with_workers(n),
        None => BatchEngine::new(),
    };
    let matrix = engine.schedule_matrix(&scheduler_refs, &loops, &machines);

    // Loop-major output: all schedulers for loop 0 (each on every machine,
    // in `--machine` order), then loop 1, ... The engine's matrix is
    // deterministic, so this stream is byte-stable — and with a single
    // machine it is byte-identical to the historical grid output.
    let mut out = String::new();
    let mut failures = 0usize;
    for (l, ddg) in loops.iter().enumerate() {
        for (s, scheduler) in scheduler_refs.iter().enumerate() {
            for (m, machine) in machines.iter().enumerate() {
                match &matrix[s][l][m] {
                    Ok(outcome) => {
                        match emit {
                            Emit::Kernel => render_kernel(
                                &mut out,
                                ddg,
                                machine,
                                scheduler.name(),
                                outcome,
                                timing,
                            ),
                            Emit::Json => {
                                out.push_str(&report_line(
                                    ddg,
                                    machine,
                                    scheduler.name(),
                                    outcome,
                                    ReportOptions { timing },
                                ));
                                out.push('\n');
                            }
                            Emit::Dot => unreachable!("handled above"),
                        }
                        if do_certify {
                            let cert = certify(ddg, machine, &outcome.schedule);
                            match emit {
                                Emit::Json => {
                                    out.push_str(&cert.to_json());
                                    out.push('\n');
                                }
                                _ => {
                                    if cert.passed() {
                                        let _ = writeln!(
                                            out,
                                            "certified: loop `{}` x {} (II={}, {} checks)",
                                            ddg.name(),
                                            scheduler.name(),
                                            cert.ii,
                                            cert.checks.len()
                                        );
                                    } else {
                                        for d in &cert.diagnostics {
                                            let _ =
                                                writeln!(out, "error[{}]: {}", d.code, d.message);
                                        }
                                    }
                                }
                            }
                            if !cert.passed() {
                                failures += 1;
                            }
                        }
                    }
                    Err(e) => {
                        failures += 1;
                        let _ = writeln!(
                            out,
                            "error: scheduler `{}` failed on loop `{}`: {e}",
                            scheduler.name(),
                            ddg.name()
                        );
                    }
                }
            }
        }
    }
    if failures > 0 {
        return Err(CliError::data(format!(
            "{failures} of {} schedule(s) failed:\n{out}",
            loops.len() * scheduler_refs.len() * machines.len()
        )));
    }
    Ok(out)
}

/// The `--format` mode of `hrms lint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LintFormat {
    Text,
    Json,
}

fn cmd_lint(args: &[String], stdin: &str) -> Result<String, CliError> {
    let mut sources: Vec<&str> = Vec::new();
    let mut machine_arg: Option<String> = None;
    let mut format = LintFormat::Text;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--machine" => machine_arg = Some(flag_value(&mut it, "--machine")?.to_string()),
            "--format" => {
                format = match flag_value(&mut it, "--format")? {
                    "text" => LintFormat::Text,
                    "json" => LintFormat::Json,
                    other => {
                        return Err(CliError::usage(format!(
                            "unknown lint format `{other}` (text or json)"
                        )))
                    }
                }
            }
            flag if flag.starts_with('-') && flag != "-" => {
                return Err(CliError::usage(format!("unknown flag `{flag}`")));
            }
            file => sources.push(file),
        }
    }
    if sources.is_empty() {
        return Err(CliError::usage(
            "no input files given (use `-` to read stdin)",
        ));
    }
    let machine = match &machine_arg {
        Some(name) => Some(
            resolve_machine(name, MachineFiles::Allow)
                .map_err(|e| CliError::data(e.to_string()))?,
        ),
        None => None,
    };

    let mut rendered = String::new();
    let mut total = 0usize;
    let mut inputs = 0usize;
    for source in &sources {
        let text = read_source(source, stdin)?;
        let path = if *source == "-" { "<stdin>" } else { source };
        let diags: Vec<Diagnostic> = if looks_like_machine(&text) {
            lint_machine_source(&text)
        } else if looks_like_dot(&text) {
            lint_dot_source(&text, machine.as_ref())
        } else {
            lint_loop_source(&text, machine.as_ref())
        };
        inputs += 1;
        total += diags.len();
        for d in &diags {
            match format {
                LintFormat::Text => {
                    rendered.push_str(&d.render_text(path, &text));
                    rendered.push('\n');
                }
                LintFormat::Json => {
                    rendered.push_str(&d.render_json(path));
                    rendered.push('\n');
                }
            }
        }
    }

    if total > 0 {
        if format == LintFormat::Text {
            let _ = writeln!(rendered, "{total} problem(s) in {inputs} input(s)");
        }
        // A multi-line message ending in a newline is printed verbatim by
        // the binary (no `hrms:` prefix), keeping diagnostics clean.
        return Err(CliError::data(rendered));
    }
    Ok(match format {
        LintFormat::Text => format!("{inputs} input(s): no problems found\n"),
        LintFormat::Json => String::new(),
    })
}

/// Appends the human-readable kernel block for one (loop, scheduler) cell.
fn render_kernel(
    out: &mut String,
    ddg: &Ddg,
    machine: &Machine,
    scheduler: &str,
    outcome: &ScheduleOutcome,
    timing: bool,
) {
    let m = &outcome.metrics;
    let _ = writeln!(
        out,
        "== loop `{}` | scheduler {} | machine {}",
        ddg.name(),
        scheduler,
        machine.name()
    );
    let _ = writeln!(
        out,
        "II={} MII={} (res={}, rec={}) stages={} span={} max_live={} buffers={}",
        m.ii, m.mii, m.res_mii, m.rec_mii, m.stage_count, m.span, m.max_live, m.buffers
    );
    if timing {
        let _ = writeln!(
            out,
            "time={}us (ordering {}us, {} II attempt(s))",
            outcome.elapsed.as_micros(),
            outcome.ordering_time.as_micros(),
            outcome.attempts
        );
    }
    out.push_str(&outcome.schedule.kernel().render(ddg));
    out.push('\n');
}

fn cmd_convert(args: &[String], stdin: &str) -> Result<String, CliError> {
    let mut sources: Vec<&str> = Vec::new();
    let mut to: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--to" => to = Some(flag_value(&mut it, "--to")?),
            flag if flag.starts_with('-') && flag != "-" => {
                return Err(CliError::usage(format!("unknown flag `{flag}`")));
            }
            file => sources.push(file),
        }
    }
    let loops = load_loops(&sources, stdin)?;
    match to {
        Some("loop") => Ok(textfmt::write_loops(&loops)),
        Some("dot") => {
            let rendered: Vec<String> = loops.iter().map(dot::to_dot_default).collect();
            Ok(rendered.join("\n"))
        }
        Some(other) => Err(CliError::usage(format!(
            "unknown target format `{other}` (loop or dot)"
        ))),
        None => Err(CliError::usage("`convert` needs `--to loop|dot`")),
    }
}

/// The parsed options of `hrms serve`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// Pool size and cache settings for the [`Service`].
    pub config: ServeConfig,
    /// `--socket PATH`: serve a Unix socket instead of stdin/stdout.
    pub socket: Option<std::path::PathBuf>,
}

fn parse_serve_args(args: &[String]) -> Result<ServeArgs, CliError> {
    let mut config = ServeConfig::default();
    let mut socket = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                let v = flag_value(&mut it, "--workers")?;
                config.workers = Some(v.parse().map_err(|_| {
                    CliError::usage(format!("`--workers` needs a number, got `{v}`"))
                })?);
            }
            "--cache-capacity" => {
                let v = flag_value(&mut it, "--cache-capacity")?;
                config.cache_capacity = v.parse().map_err(|_| {
                    CliError::usage(format!("`--cache-capacity` needs a number, got `{v}`"))
                })?;
            }
            "--no-cache" => config.cache = false,
            "--socket" => socket = Some(flag_value(&mut it, "--socket")?.into()),
            other => {
                return Err(CliError::usage(format!(
                    "`serve` does not take `{other}` (flags: --socket, --workers, \
                     --cache-capacity, --no-cache)"
                )));
            }
        }
    }
    Ok(ServeArgs { config, socket })
}

/// `hrms serve` driven entirely in-process: every request line of `stdin`
/// is handled (drain semantics — a `shutdown` mid-stream stops there) and
/// the full response stream is returned. The binary uses
/// [`serve_streaming`] instead so responses are flushed per request; the
/// bytes are identical.
fn cmd_serve(args: &[String], stdin: &str) -> Result<String, CliError> {
    let parsed = parse_serve_args(args)?;
    if parsed.socket.is_some() {
        return Err(CliError::usage(
            "`--socket` mode must be run by the hrms binary, not in-process",
        ));
    }
    Ok(Service::new(&parsed.config).process(stdin).0)
}

/// `hrms serve` as the binary runs it: streams stdin→stdout (flushing after
/// every request) or serves `--socket PATH`, blocking until EOF or a
/// `shutdown` request.
///
/// This is the one subcommand that owns its own I/O instead of going
/// through [`run`]: a service must answer requests as they arrive, not
/// after stdin closes.
///
/// # Errors
///
/// Returns a [`CliError`] for bad flags (exit 2) or transport I/O failures
/// (exit 1); protocol-level problems are answered on the stream instead.
pub fn serve_streaming(args: &[String]) -> Result<(), CliError> {
    let parsed = parse_serve_args(args)?;
    let mut service = Service::new(&parsed.config);
    match parsed.socket {
        Some(path) => service
            .serve_unix(&path)
            .map_err(|e| CliError::data(format!("serve: {}: {e}", path.display())))?,
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            service
                .run(stdin.lock(), stdout.lock())
                .map_err(|e| CliError::data(format!("serve: {e}")))?;
        }
    }
    Ok(())
}

fn cmd_machine(args: &[String]) -> Result<String, CliError> {
    match args {
        [name] => {
            let machine = resolve_machine(name, MachineFiles::Allow)
                .map_err(|e| CliError::data(e.to_string()))?;
            Ok(write_machine(&machine))
        }
        _ => Err(CliError::usage(
            "`machine` takes exactly one preset or file",
        )),
    }
}

fn cmd_list() -> String {
    let mut out = String::from("schedulers (--scheduler):\n");
    for slug in SCHEDULER_SLUGS {
        let scheduler = scheduler_by_slug(slug).expect("listed slug resolves");
        let _ = writeln!(out, "  {slug:<10} {}", scheduler.name());
    }
    out.push_str("machine presets (--machine):\n");
    for machine in presets::all() {
        let _ = writeln!(
            out,
            "  {:<18} {} units, {} classes",
            machine.name(),
            machine.total_units(),
            machine.num_classes()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_unknown_subcommands() {
        assert!(run(&[], "").unwrap().contains("USAGE"));
        assert!(run(&args(&["help"]), "").unwrap().contains("schedule"));
        let err = run(&args(&["frobnicate"]), "").unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn list_names_every_scheduler_and_preset() {
        let out = cmd_list();
        for slug in SCHEDULER_SLUGS {
            assert!(out.contains(slug), "{slug} missing from:\n{out}");
        }
        for name in presets::PRESET_NAMES {
            let machine = presets::by_name(name).unwrap();
            assert!(out.contains(machine.name()));
        }
    }

    #[test]
    fn schedule_from_stdin_produces_a_kernel() {
        let input = "loop l\nnode a load latency=1\nnode b fadd latency=1\nedge a -> b flow\nend\n";
        let out = run(
            &args(&["schedule", "-", "--machine", "general-purpose"]),
            input,
        )
        .unwrap();
        assert!(out.contains("== loop `l` | scheduler HRMS | machine general-4xL2"));
        assert!(out.contains("II=1 MII=1"));
    }

    #[test]
    fn schedule_json_is_one_line_per_result() {
        let input = "loop l\nnode a load latency=1\nend\n";
        let out = run(
            &args(&[
                "schedule",
                "-",
                "--scheduler",
                "hrms,slack",
                "--emit",
                "json",
            ]),
            input,
        )
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"scheduler\":\"HRMS\""));
        assert!(lines[1].contains("\"scheduler\":\"Slack\""));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn schedule_machine_list_emits_one_result_per_machine() {
        let input = "loop l\nnode a load latency=1\nend\n";
        let out = run(
            &args(&[
                "schedule",
                "-",
                "--machine",
                "govindarajan, perfect-club",
                "--emit",
                "json",
            ]),
            input,
        )
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(lines[0].contains("\"machine\":\"govindarajan-4fu\""));
        assert!(lines[1].contains("\"machine\":\"perfect-club-8fu\""));
        let err = run(
            &args(&["schedule", "-", "--machine", "govindarajan,nope"]),
            input,
        )
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(
            err.message.contains("`nope` is not a machine preset"),
            "{err}"
        );
    }

    #[test]
    fn dot_input_is_autodetected() {
        let input = "digraph g { a -> b; }\n";
        let out = run(&args(&["schedule", "-", "--emit", "json"]), input).unwrap();
        assert!(out.contains("\"loop\":\"g\""), "got: {out}");
    }

    #[test]
    fn convert_round_trips_between_formats() {
        let input = "loop l\nnode a load latency=2\nnode b fadd latency=1\nedge a -> b flow\nend\n";
        let as_dot = run(&args(&["convert", "-", "--to", "dot"]), input).unwrap();
        assert!(as_dot.contains("digraph"));
        let back = run(&args(&["convert", "-", "--to", "loop"]), &as_dot).unwrap();
        let original = parse_loops(input).unwrap();
        let reparsed = parse_loops(&back).unwrap();
        assert_eq!(
            hrms_ddg::ddg_fingerprint(&original[0]),
            hrms_ddg::ddg_fingerprint(&reparsed[0])
        );
    }

    #[test]
    fn machine_subcommand_prints_the_codec_form() {
        let out = run(&args(&["machine", "perfect-club"]), "").unwrap();
        assert!(out.starts_with("machine perfect-club-8fu"));
        assert!(hrms_machine::parse_machine(&out).is_ok());
    }

    #[test]
    fn lint_clean_input_reports_no_problems() {
        let input = "loop l\nnode a load latency=2\nnode b fadd latency=1\nedge a -> b flow\nend\n";
        let out = run(&args(&["lint", "-"]), input).unwrap();
        assert!(out.contains("no problems found"));
    }

    #[test]
    fn lint_bad_input_exits_one_with_code_and_span() {
        let input = "loop l\n  node a fadd latency=1\n  edge a -> a flow\nend\n";
        let err = run(&args(&["lint", "-"]), input).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("error[L003]"), "{}", err.message);
        assert!(err.message.contains("--> <stdin>:3:3"), "{}", err.message);
        assert!(err.message.ends_with('\n'));
    }

    #[test]
    fn lint_json_format_emits_one_object_per_finding() {
        let input = "loop l\n  node a fadd latency=1\n  edge a -> a flow\nend\n";
        let err = run(&args(&["lint", "-", "--format", "json"]), input).unwrap_err();
        assert_eq!(err.code, 1);
        let lines: Vec<&str> = err.message.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("{\"file\":\"<stdin>\",\"code\":\"L003\""));
    }

    #[test]
    fn lint_autodetects_machine_inputs() {
        let machine = run(&args(&["machine", "govindarajan"]), "").unwrap();
        let out = run(&args(&["lint", "-"]), &machine).unwrap();
        assert!(out.contains("no problems found"));
        let err = run(&args(&["lint", "-"]), "machine m\n  zzz\nend\n").unwrap_err();
        assert!(err.message.contains("error[M001]"), "{}", err.message);
    }

    #[test]
    fn lint_machine_flag_enables_latency_checks() {
        let input = "loop l\nnode a fdiv latency=3\nedge a -> a flow dist=1\nend\n";
        assert!(run(&args(&["lint", "-"]), input).is_ok());
        let err = run(&args(&["lint", "-", "--machine", "govindarajan"]), input).unwrap_err();
        assert!(err.message.contains("warning[L007]"), "{}", err.message);
    }

    #[test]
    fn schedule_certify_passes_and_emits_certificates() {
        let input = "loop l\nnode a load latency=1\nnode b fadd latency=1\nedge a -> b flow\nend\n";
        let out = run(
            &args(&["schedule", "-", "--machine", "general-purpose", "--certify"]),
            input,
        )
        .unwrap();
        assert!(out.contains("certified: loop `l` x HRMS"), "{out}");
        let out = run(
            &args(&[
                "schedule",
                "-",
                "--machine",
                "general-purpose",
                "--emit",
                "json",
                "--certify",
            ]),
            input,
        )
        .unwrap();
        let cert_line = out
            .lines()
            .find(|l| l.contains("\"checks\":"))
            .expect("certificate line");
        assert!(cert_line.contains("\"passed\":true"));
    }

    #[test]
    fn schedule_feedback_flag_wraps_every_scheduler() {
        let input = "loop l\nnode a load latency=1\nnode b fadd latency=1\nedge a -> b flow\nend\n";
        let out = run(
            &args(&["schedule", "-", "--feedback", "--emit", "json"]),
            input,
        )
        .unwrap();
        assert!(
            out.contains("\"scheduler\":\"HRMS+feedback[r32,i6,s16]\""),
            "{out}"
        );
        assert!(out.contains("\"feedback\":{"), "{out}");
        assert!(out.contains("\"converged\":true"), "{out}");
    }

    #[test]
    fn schedule_accepts_the_feedback_slug_prefix() {
        let input = "loop l\nnode a load latency=1\nend\n";
        let out = run(
            &args(&[
                "schedule",
                "-",
                "--scheduler",
                "feedback:top-down",
                "--emit",
                "json",
            ]),
            input,
        )
        .unwrap();
        assert!(
            out.contains("\"scheduler\":\"Top-Down+feedback[r32,i6,s16]\""),
            "{out}"
        );
    }

    #[test]
    fn usage_errors_have_exit_code_two() {
        for case in [
            vec!["schedule"],
            vec!["schedule", "-", "--scheduler", "nope"],
            vec!["schedule", "-", "--emit", "nope"],
            vec!["schedule", "-", "--bogus"],
            vec!["convert", "-"],
            vec!["machine"],
        ] {
            let err = run(&args(&case), "loop l\nnode a op latency=1\nend\n").unwrap_err();
            assert_eq!(err.code, 2, "case {case:?}: {err}");
        }
    }

    #[test]
    fn data_errors_have_exit_code_one() {
        let err = run(&args(&["schedule", "/no/such/file.loop"]), "").unwrap_err();
        assert_eq!(err.code, 1);
        let err = run(&args(&["schedule", "-"]), "loop broken\n").unwrap_err();
        assert_eq!(err.code, 1);
        let err = run(&args(&["machine", "no-such-preset"]), "").unwrap_err();
        assert_eq!(err.code, 1);
    }
}
