//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace's property tests use: the [`proptest!`] macro with an inner
//! `#![proptest_config(...)]` attribute and `arg in strategy` parameter
//! lists, [`ProptestConfig::with_cases`], range and [`any`] strategies,
//! and the [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal runner. Each test body executes for a
//! deterministic sequence of sampled inputs (no shrinking); on failure
//! the panic message reports the sampled arguments so a failing case can
//! be replayed as a plain unit test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated input tuples per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property, mirroring `proptest::test_runner::TestCaseError`.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    /// Human-readable description of the failed assertion.
    pub message: String,
}

impl TestCaseError {
    /// Wraps an assertion-failure message.
    pub fn fail<M: Into<String>>(message: M) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of generated values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..<$t>::MAX)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical whole-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Samples one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u32>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f64>()
    }
}

/// The whole-domain strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Deterministic per-test RNG: the stream depends only on the test name,
/// so failures reproduce across runs and machines.
pub fn rng_for_test(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Everything the tests import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a property, returning a [`TestCaseError`]
/// (rather than panicking) so the runner can report the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts inequality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Supports the form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///
///     #[test]
///     fn my_property(x in 0u64..100, flag in any::<bool>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::rng_for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                    let result: $crate::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = result {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e.message,
                            [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),*].join(", "),
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1usize..4, flag in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..4).contains(&y));
            prop_assert!(usize::from(flag) <= 1);
            prop_assert_eq!(x, x);
            prop_assert_ne!(y, y + 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn always_fails(x in 0u64..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let result = std::panic::catch_unwind(always_fails);
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("always_fails"), "got: {message}");
        assert!(message.contains("inputs: x ="), "got: {message}");
    }
}
