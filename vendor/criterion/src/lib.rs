//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace's benches use: [`Criterion`], [`BenchmarkId`], benchmark
//! groups with `bench_function` / `bench_with_input` / `sample_size` /
//! `finish`, a [`Bencher`] with `iter`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal harness. It runs each benchmark closure for a
//! fixed warm-up and a fixed number of timed samples and prints the
//! median wall-clock time per iteration — enough to compare schedulers
//! locally and to keep `cargo bench --no-run` honest in CI, without the
//! real crate's statistics, plotting or HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark id made of a function name and a parameter value.
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// A benchmark id that is just a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Times one benchmark closure, mirroring `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly, timing each sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up pass.
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// A named collection of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    test_mode: bool,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark takes (ignored in `--test`
    /// mode, which always runs a single sample).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.test_mode {
            self.sample_size = n.max(1);
        }
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut routine: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        let median = bencher.median();
        println!(
            "{}/{id}: median {median:?} over {} samples",
            self.name, self.sample_size
        );
    }

    /// Benchmarks one closure under `id`.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(&mut self, id: I, mut routine: F) {
        self.run(&id.to_string(), |b| routine(b));
    }

    /// Benchmarks one closure with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F)
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| routine(b, input));
    }

    /// Ends the group (a no-op here; the real crate prints summaries).
    pub fn finish(self) {}
}

/// Entry point handed to every benchmark function, mirroring
/// `criterion::Criterion`.
///
/// Like the real crate, `--test` on the bench binary's command line (i.e.
/// `cargo bench -- --test`) switches every benchmark to a single-sample
/// smoke run: each closure executes once so CI can verify the benches work
/// without paying for full measurement.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Display>(&mut self, name: N) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: if self.test_mode { 1 } else { 20 },
            test_mode: self.test_mode,
        }
    }
}

/// Bundles benchmark functions into one group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a benchmark executable, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("hrms", 24).to_string(), "hrms/24");
        assert_eq!(BenchmarkId::from_parameter("fig1").to_string(), "fig1");
    }

    #[test]
    fn groups_run_their_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("counts", |b| b.iter(|| runs += 1));
        group.finish();
        // 1 warm-up + 3 timed samples.
        assert_eq!(runs, 4);
    }
}
