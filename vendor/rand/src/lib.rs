//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::StdRng`], [`Rng`] (`gen`, `gen_bool`, `gen_range`) and
//! [`SeedableRng::seed_from_u64`].
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this deterministic implementation instead. The generator is
//! xoshiro256++ seeded through SplitMix64 — high-quality, fast, and fully
//! reproducible from a `u64` seed, which is all the workload generator
//! (`hrms-workloads`) asks of it. It is **not** cryptographically secure
//! and makes no attempt to produce the same streams as the real `StdRng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Concrete random-number generators.
pub mod rngs {
    /// A deterministic pseudo-random generator (xoshiro256++).
    ///
    /// API-compatible with `rand::rngs::StdRng` for the operations used in
    /// this workspace; the generated stream differs from the real crate.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

impl StdRng {
    fn next_u64_impl(&mut self) -> u64 {
        // xoshiro256++ by Blackman & Vigna (public domain reference code).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Seeding support for deterministic generators.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
        // as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Types that can be sampled uniformly from a half-open range by
/// [`Rng::gen_range`].
pub trait SampleRangeTarget: Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_range(rng: &mut StdRng, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRangeTarget for $t {
            fn sample_range(rng: &mut StdRng, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high - low) as u64;
                // Multiply-shift range reduction (Lemire); the slight bias is
                // irrelevant for workload generation.
                let r = ((u128::from(rng.next_u64_impl()) * u128::from(span)) >> 64) as u64;
                low + r as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRangeTarget for $t {
            fn sample_range(rng: &mut StdRng, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = high.abs_diff(low) as u64;
                let r = ((u128::from(rng.next_u64_impl()) * u128::from(span)) >> 64) as u64;
                low.wrapping_add(r as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// Types producible by [`Rng::gen`] under the standard distribution.
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    fn sample_standard(rng: &mut StdRng) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64_impl() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard(rng: &mut StdRng) -> Self {
        (rng.next_u64_impl() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut StdRng) -> Self {
        rng.next_u64_impl() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard(rng: &mut StdRng) -> Self {
        rng.next_u64_impl()
    }
}

impl Standard for u32 {
    fn sample_standard(rng: &mut StdRng) -> Self {
        (rng.next_u64_impl() >> 32) as u32
    }
}

/// Range shapes accepted by [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

impl<T: SampleRangeTarget> SampleRange<T> for std::ops::Range<T> {
    fn sample_from(self, rng: &mut StdRng) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleRangeTarget + InclusiveEnd> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut StdRng) -> T {
        let (low, high) = self.into_inner();
        T::sample_range(rng, low, high.next_up())
    }
}

/// Helper for sampling inclusive ranges: the successor of a value.
pub trait InclusiveEnd: Copy {
    /// `self + 1`, panicking on overflow (an inclusive range ending at the
    /// type's maximum is not supported by this stub).
    fn next_up(self) -> Self;
}

macro_rules! impl_inclusive_end {
    ($($t:ty),*) => {$(
        impl InclusiveEnd for $t {
            fn next_up(self) -> Self {
                self.checked_add(1)
                    .expect("inclusive range ending at the type maximum is unsupported")
            }
        }
    )*};
}

impl_inclusive_end!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng {
    /// Samples a value of type `T` from the standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T;

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;

    /// Samples uniformly from a half-open (`low..high`) or inclusive
    /// (`low..=high`) range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool called with p = {p}");
        self.gen::<f64>() < p
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.gen_range(3usize..13);
            assert!((3..13).contains(&x));
            seen[x - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values should be reachable");
        for _ in 0..1_000 {
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits} hits");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
