//! The worked examples of the paper.

use hrms_ddg::{Ddg, DdgBuilder, DepKind, NodeId, OpKind};

/// The dependence graph of Figure 1 (the motivating example of Section 2).
///
/// Seven operations `A..G`; reconstructed from the scheduling walk-through
/// of Section 2.1: `A→B`, `B→C`, `B→D`, `D→F`, `E→F`, `F→G`. On the
/// 4-unit general-purpose machine with latency 2 (see
/// `hrms_machine::presets::general_purpose`) its MII is 2, HRMS schedules
/// it with 6 registers, Bottom-Up with 7 and Top-Down with 8.
pub fn figure1() -> Ddg {
    let mut b = DdgBuilder::new("paper_fig1");
    let ids: Vec<NodeId> = ["A", "B", "C", "D", "E", "F", "G"]
        .iter()
        .map(|n| b.node(*n, OpKind::Other, 2))
        .collect();
    for (s, t) in [(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)] {
        b.edge(ids[s], ids[t], DepKind::RegFlow, 0)
            .expect("figure 1 edges are valid");
    }
    b.iteration_count(100);
    b.build().expect("figure 1 is a valid graph")
}

/// The dependence graph of Figure 7a (the recurrence-free pre-ordering
/// example of Section 3.1).
///
/// Ten operations `A..J`; reconstructed from the step-by-step walk-through:
/// the pre-ordering starting at `A` must produce
/// `{A, C, G, H, D, J, I, E, B, F}`.
pub fn figure7() -> Ddg {
    let mut b = DdgBuilder::new("paper_fig7");
    let ids: Vec<NodeId> = ["A", "B", "C", "D", "E", "F", "G", "H", "I", "J"]
        .iter()
        .map(|n| b.node(*n, OpKind::Other, 1))
        .collect();
    let idx = |c: char| (c as u8 - b'A') as usize;
    for (s, t) in [
        ('A', 'C'),
        ('C', 'G'),
        ('C', 'H'),
        ('D', 'H'),
        ('H', 'J'),
        ('B', 'J'),
        ('I', 'J'),
        ('B', 'E'),
        ('E', 'I'),
        ('F', 'I'),
    ] {
        b.edge(ids[idx(s)], ids[idx(t)], DepKind::RegFlow, 0)
            .expect("figure 7 edges are valid");
    }
    b.build().expect("figure 7 is a valid graph")
}

/// Figure 8b: two recurrence circuits (`A,D,E` and `A,B,C,E`) sharing one
/// backward edge, i.e. a single recurrence subgraph.
pub fn figure8b() -> Ddg {
    let mut b = DdgBuilder::new("paper_fig8b");
    let ids: Vec<NodeId> = ["A", "B", "C", "D", "E"]
        .iter()
        .map(|n| b.node(*n, OpKind::FpAdd, 1))
        .collect();
    for (s, t, d) in [
        (0, 1, 0),
        (1, 2, 0),
        (2, 4, 0),
        (0, 3, 0),
        (3, 4, 0),
        (4, 0, 1),
    ] {
        b.edge(ids[s], ids[t], DepKind::RegFlow, d)
            .expect("figure 8b edges are valid");
    }
    b.build().expect("figure 8b is a valid graph")
}

/// Figure 8c: two recurrence circuits sharing a node but with distinct
/// backward edges, i.e. two different recurrence subgraphs.
pub fn figure8c() -> Ddg {
    let mut b = DdgBuilder::new("paper_fig8c");
    let ids: Vec<NodeId> = ["A", "B", "C"]
        .iter()
        .map(|n| b.node(*n, OpKind::FpAdd, 2))
        .collect();
    for (s, t, d) in [(0, 1, 0), (1, 0, 1), (1, 2, 0), (2, 1, 1)] {
        b.edge(ids[s], ids[t], DepKind::RegFlow, d)
            .expect("figure 8c edges are valid");
    }
    b.build().expect("figure 8c is a valid graph")
}

/// A Figure-10-style graph: two recurrence subgraphs of different
/// criticality connected through an acyclic path, plus acyclic head and tail
/// operations, exercising the full `Ordering_Recurrences` procedure.
pub fn figure10_style() -> Ddg {
    let mut b = DdgBuilder::new("paper_fig10_style");
    // Critical recurrence {A, C, D, F} (RecMII 8).
    let a = b.node("A", OpKind::FpAdd, 2);
    let c = b.node("C", OpKind::FpMul, 2);
    let d = b.node("D", OpKind::FpAdd, 2);
    let f = b.node("F", OpKind::FpMul, 2);
    // Secondary recurrence {G, J, M} (RecMII 4).
    let g = b.node("G", OpKind::FpAdd, 1);
    let j = b.node("J", OpKind::FpAdd, 2);
    let m = b.node("M", OpKind::FpAdd, 1);
    // Connecting node and acyclic periphery.
    let i = b.node("I", OpKind::FpMul, 2);
    let h = b.node("H", OpKind::Load, 2);
    let e = b.node("E", OpKind::Load, 2);
    let bb = b.node("B", OpKind::Load, 2);
    let l = b.node("L", OpKind::FpAdd, 1);
    let k = b.node("K", OpKind::Store, 1);

    for (s, t, dist) in [
        (a, c, 0),
        (c, d, 0),
        (d, f, 0),
        (f, a, 1), // backward edge of the critical recurrence
        (g, j, 0),
        (j, m, 0),
        (m, g, 1), // backward edge of the secondary recurrence
        (f, i, 0),
        (i, g, 0), // path connecting the two recurrences
        (h, d, 0),
        (e, c, 0),
        (bb, a, 0),
        (j, l, 0),
        (l, k, 0),
    ] {
        b.edge(s, t, DepKind::RegFlow, dist)
            .expect("figure 10 edges are valid");
    }
    b.build().expect("figure 10 style graph is valid")
}

/// Every motivating-example graph with its name, for harnesses that iterate.
pub fn all() -> Vec<Ddg> {
    vec![
        figure1(),
        figure7(),
        figure8b(),
        figure8c(),
        figure10_style(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_core::pre_order;
    use hrms_ddg::LoopAnalysis;
    use hrms_ddg::RecurrenceInfo;

    #[test]
    fn figure1_has_seven_nodes_and_no_recurrence() {
        let g = figure1();
        assert_eq!(g.num_nodes(), 7);
        assert!(!g.has_recurrence());
    }

    #[test]
    fn figure7_preorders_as_in_the_paper() {
        let g = figure7();
        let order = pre_order(&LoopAnalysis::analyze(&g)).order;
        let names: Vec<&str> = order.iter().map(|&n| g.node(n).name()).collect();
        assert_eq!(
            names,
            vec!["A", "C", "G", "H", "D", "J", "I", "E", "B", "F"]
        );
    }

    #[test]
    fn figure8b_is_one_recurrence_subgraph() {
        let info = RecurrenceInfo::analyze(&figure8b());
        assert_eq!(info.circuits.len(), 2);
        assert_eq!(info.subgraphs.len(), 1);
    }

    #[test]
    fn figure8c_is_two_recurrence_subgraphs() {
        let info = RecurrenceInfo::analyze(&figure8c());
        assert_eq!(info.subgraphs.len(), 2);
    }

    #[test]
    fn figure10_style_orders_critical_recurrence_first() {
        let g = figure10_style();
        let info = RecurrenceInfo::analyze(&g);
        assert_eq!(info.subgraphs.len(), 2);
        let order = pre_order(&LoopAnalysis::analyze(&g)).order;
        let pos = |name: &str| {
            order
                .iter()
                .position(|&n| g.node(n).name() == name)
                .unwrap()
        };
        // The {A,C,D,F} recurrence (RecMII 8) precedes the {G,J,M} one
        // (RecMII 4), which precedes the acyclic periphery.
        assert!(pos("A") < pos("G"));
        assert!(pos("F") < pos("M"));
        assert!(pos("M") < pos("K"));
        assert_eq!(order.len(), g.num_nodes());
    }

    #[test]
    fn all_examples_are_valid_and_named_uniquely() {
        let graphs = all();
        assert_eq!(graphs.len(), 5);
        let mut names: Vec<&str> = graphs.iter().map(|g| g.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
