//! Seeded random loop-body generator.
//!
//! The generator produces structurally realistic innermost-loop dependence
//! graphs: a mostly-connected DAG of arithmetic and memory operations, with
//! optional loop-carried recurrences, loop invariants and a profiled
//! iteration count. All randomness flows from a caller-supplied seed, so the
//! synthetic suites used by the evaluation harness are fully reproducible.

use hrms_ddg::{Ddg, DdgBuilder, DepKind, NodeId, OpKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Operation-mix weights (they need not sum to 1; they are normalised).
#[derive(Debug, Clone, PartialEq)]
pub struct OpMix {
    /// Weight of loads.
    pub load: f64,
    /// Weight of stores.
    pub store: f64,
    /// Weight of FP additions/subtractions.
    pub add: f64,
    /// Weight of FP multiplications.
    pub mul: f64,
    /// Weight of FP divisions.
    pub div: f64,
    /// Weight of square roots.
    pub sqrt: f64,
    /// Weight of integer/address operations.
    pub int_alu: f64,
}

impl Default for OpMix {
    fn default() -> Self {
        // Roughly the mix of FP-heavy scientific inner loops.
        OpMix {
            load: 0.30,
            store: 0.10,
            add: 0.27,
            mul: 0.22,
            div: 0.03,
            sqrt: 0.01,
            int_alu: 0.07,
        }
    }
}

impl OpMix {
    fn sample(&self, rng: &mut StdRng) -> OpKind {
        let total =
            self.load + self.store + self.add + self.mul + self.div + self.sqrt + self.int_alu;
        let mut x: f64 = rng.gen::<f64>() * total;
        for (w, kind) in [
            (self.load, OpKind::Load),
            (self.store, OpKind::Store),
            (self.add, OpKind::FpAdd),
            (self.mul, OpKind::FpMul),
            (self.div, OpKind::FpDiv),
            (self.sqrt, OpKind::FpSqrt),
            (self.int_alu, OpKind::IntAlu),
        ] {
            if x < w {
                return kind;
            }
            x -= w;
        }
        OpKind::FpAdd
    }
}

/// Configuration of the loop generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Minimum number of operations per loop.
    pub min_ops: usize,
    /// Mean number of operations (an exponential tail above the minimum).
    pub mean_ops: f64,
    /// Hard cap on the number of operations.
    pub max_ops: usize,
    /// Operation mix.
    pub mix: OpMix,
    /// Probability that a loop contains at least one recurrence circuit.
    pub recurrence_probability: f64,
    /// Additional loop-carried back edges wired from value-producing nodes
    /// to their own ancestors, on top of the probabilistic recurrences.
    /// Zero (the default) leaves the classic generator behaviour — and its
    /// random stream — untouched; large values produce the dense,
    /// interleaved SCCs of the recurrence-heavy stress preset, the regime
    /// where circuit enumeration explodes.
    pub extra_backward_edges: usize,
    /// Pairs of loop-carried edges wired so that they close a recurrence
    /// circuit only **together**: inside a dedicated program-order window,
    /// a < m < b < n are scaffolded with forward edges a → m and b → n and
    /// closed with the loop-carried pair m ⇢ b and n ⇢ a. Every forward
    /// dependence increases the program-order index, so m ⇢ b can never
    /// close through the acyclic remainder alone — the circuit a ⇝ m ⇢ b
    /// ⇝ n ⇢ a provably threads *both* edges, the interleaved
    /// multi-backward-edge regime that single-edge recurrence analyses
    /// cannot rank. Each pair lives in its own window, so circuits cannot
    /// chain across pairs either. Zero (the default) adds no random
    /// draws, preserving the classic random stream.
    pub interleaved_recurrences: usize,
    /// Long-lifetime flow edges wired from *distinct* values defined in the
    /// first two thirds of the body to consumers in the last third, so each
    /// value stays live across most of the loop and the pressures add up:
    /// a fanout of `k` forces roughly `min(k, early producers)` concurrent
    /// lifetimes through the late region, independent of how cleverly the
    /// scheduler places the producers. This is the regime where a schedule
    /// can exceed a machine's register file outright and spilling (or
    /// feedback-guided rescheduling) becomes mandatory. Zero (the default)
    /// adds no random draws, preserving the classic random stream.
    pub long_lifetime_fanout: usize,
    /// Maximum dependence distance of loop-carried edges.
    pub max_distance: u32,
    /// Maximum number of loop-invariant values.
    pub max_invariants: u32,
    /// Iteration counts are drawn log-uniformly from this range.
    pub iteration_range: (u64, u64),
    /// Latency of each kind (defaults follow the Perfect-Club machine of
    /// Section 4.2).
    pub latencies: fn(OpKind) -> u32,
}

/// The Section 4.2 latency model.
pub fn perfect_club_latency(kind: OpKind) -> u32 {
    match kind {
        OpKind::Store => 1,
        OpKind::Load => 2,
        OpKind::FpAdd | OpKind::FpMul => 4,
        OpKind::FpDiv => 17,
        OpKind::FpSqrt => 30,
        _ => 1,
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            min_ops: 4,
            mean_ops: 14.0,
            max_ops: 80,
            mix: OpMix::default(),
            recurrence_probability: 0.45,
            extra_backward_edges: 0,
            interleaved_recurrences: 0,
            long_lifetime_fanout: 0,
            max_distance: 3,
            max_invariants: 6,
            iteration_range: (10, 20_000),
            latencies: perfect_club_latency,
        }
    }
}

/// A seeded loop generator.
#[derive(Debug, Clone)]
pub struct LoopGenerator {
    config: GeneratorConfig,
    rng: StdRng,
    produced: usize,
}

impl LoopGenerator {
    /// Creates a generator with the given seed and configuration.
    pub fn new(seed: u64, config: GeneratorConfig) -> Self {
        LoopGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
            produced: 0,
        }
    }

    /// Creates a generator with the default configuration.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(seed, GeneratorConfig::default())
    }

    /// Generates the next loop body.
    pub fn next_loop(&mut self) -> Ddg {
        self.produced += 1;
        let cfg = self.config.clone();
        let rng = &mut self.rng;

        // Exponential-tailed size.
        let extra = (-(1.0 - rng.gen::<f64>()).ln() * (cfg.mean_ops - cfg.min_ops as f64))
            .max(0.0)
            .round() as usize;
        let size = (cfg.min_ops + extra).min(cfg.max_ops);

        // A repeated draw of the same producer (or a dead-value sweep that
        // lands on an existing consumer) must not emit the same dependence
        // twice: a duplicate adds no constraint, and the lint pass flags it
        // (L002). The guard skips the insertion without consuming any random
        // draws, so seeded suites keep their draw sequence.
        let mut seen_edges: std::collections::HashSet<(NodeId, NodeId, DepKind, u32)> =
            std::collections::HashSet::new();
        fn wire(
            b: &mut DdgBuilder,
            seen: &mut std::collections::HashSet<(NodeId, NodeId, DepKind, u32)>,
            from: NodeId,
            to: NodeId,
            kind: DepKind,
            distance: u32,
        ) {
            if seen.insert((from, to, kind, distance)) {
                b.edge(from, to, kind, distance)
                    .expect("indices are in range");
            }
        }

        let mut b = DdgBuilder::new(format!("synthetic_{:05}", self.produced));
        let mut ids: Vec<NodeId> = Vec::with_capacity(size);
        let mut kinds: Vec<OpKind> = Vec::with_capacity(size);
        for i in 0..size {
            let mut kind = cfg.mix.sample(rng);
            // The first couple of operations are loads so the body has
            // somewhere to start from; stores only make sense once a value
            // exists.
            if i < 2 && kind == OpKind::Store {
                kind = OpKind::Load;
            }
            let id = b.node(format!("op{i}"), kind, (cfg.latencies)(kind));
            ids.push(id);
            kinds.push(kind);
        }

        // Wire the body like a real inner loop: loads are leaves (optionally
        // fed by an address computation), arithmetic consumes previously
        // produced values — usually recent ones but sometimes values defined
        // much earlier, which is what stretches lifetimes under naive
        // schedulers — and stores sink the results.
        let mut producers: Vec<usize> = Vec::new();
        let mut consumed = vec![false; size];
        let mut parents: Vec<Vec<usize>> = vec![Vec::new(); size];
        let pick_producer = |producers: &[usize], rng: &mut StdRng| -> usize {
            if rng.gen_bool(0.6) {
                let recent = producers.len().min(5);
                producers[producers.len() - 1 - rng.gen_range(0..recent)]
            } else {
                producers[rng.gen_range(0..producers.len())]
            }
        };
        for i in 0..size {
            match kinds[i] {
                OpKind::Load => {
                    // Most loads are pure sources; some depend on an address
                    // computed by an earlier integer operation.
                    if rng.gen_bool(0.25) {
                        if let Some(&addr) =
                            producers.iter().rfind(|&&j| kinds[j] == OpKind::IntAlu)
                        {
                            wire(
                                &mut b,
                                &mut seen_edges,
                                ids[addr],
                                ids[i],
                                DepKind::RegFlow,
                                0,
                            );
                            consumed[addr] = true;
                            parents[i].push(addr);
                        }
                    }
                }
                OpKind::Store => {
                    if !producers.is_empty() {
                        let j = pick_producer(&producers, rng);
                        wire(&mut b, &mut seen_edges, ids[j], ids[i], DepKind::RegFlow, 0);
                        consumed[j] = true;
                        parents[i].push(j);
                    }
                }
                _ => {
                    let inputs = 1 + usize::from(rng.gen_bool(0.6));
                    for _ in 0..inputs {
                        if producers.is_empty() {
                            break;
                        }
                        let j = pick_producer(&producers, rng);
                        wire(&mut b, &mut seen_edges, ids[j], ids[i], DepKind::RegFlow, 0);
                        consumed[j] = true;
                        parents[i].push(j);
                    }
                }
            }
            if kinds[i].defines_value() {
                producers.push(i);
            }
        }

        // Make sure every produced value is eventually consumed (dead values
        // would just deflate the register-pressure comparison): attach any
        // unconsumed value to a later non-load consumer when one exists.
        for p in 0..size {
            if !kinds[p].defines_value() || consumed[p] {
                continue;
            }
            let candidates: Vec<usize> = (p + 1..size)
                .filter(|&j| kinds[j] != OpKind::Load)
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let j = candidates[rng.gen_range(0..candidates.len())];
            wire(&mut b, &mut seen_edges, ids[p], ids[j], DepKind::RegFlow, 0);
        }

        // Register-pressure extension (see the config field docs): wire up
        // to `long_lifetime_fanout` *distinct* early-defined values into
        // consumers in the last third of the body. Distinctness is what
        // makes the pressure additive — the same value feeding ten late
        // consumers is still one lifetime, but ten early values each feeding
        // one late consumer are ten lifetimes that all overlap just before
        // their consumers issue. Guarded so the zero default adds no random
        // draws and the classic suites stay byte-identical.
        if cfg.long_lifetime_fanout > 0 {
            let late_start = size - size / 3;
            let late: Vec<usize> = (late_start..size)
                .filter(|&j| kinds[j] != OpKind::Load)
                .collect();
            if !late.is_empty() {
                let early = (0..late_start).filter(|&i| kinds[i].defines_value());
                for p in early.take(cfg.long_lifetime_fanout) {
                    let j = late[rng.gen_range(0..late.len())];
                    wire(&mut b, &mut seen_edges, ids[p], ids[j], DepKind::RegFlow, 0);
                }
            }
        }

        // Optionally add loop-carried recurrences: a backward flow edge from
        // a value-producing node to one of its own ancestors, which closes a
        // genuine recurrence circuit (ancestor ⇝ node → ancestor).
        if rng.gen_bool(cfg.recurrence_probability) {
            let recurrences = 1 + usize::from(rng.gen_bool(0.3));
            for _ in 0..recurrences {
                let candidates: Vec<usize> = (0..size)
                    .filter(|&i| kinds[i].defines_value() && !parents[i].is_empty())
                    .collect();
                let from = if candidates.is_empty() {
                    // No node has ancestors (degenerate tiny body): fall back
                    // to an accumulator-style self-recurrence.
                    *producers.first().unwrap_or(&0)
                } else {
                    candidates[rng.gen_range(0..candidates.len())]
                };
                let mut to = from;
                if !parents[from].is_empty() {
                    let steps = 1 + rng.gen_range(0..3);
                    for _ in 0..steps {
                        if parents[to].is_empty() {
                            break;
                        }
                        to = parents[to][rng.gen_range(0..parents[to].len())];
                    }
                }
                if !kinds[from].defines_value() {
                    continue;
                }
                let distance = rng.gen_range(1..=cfg.max_distance);
                wire(
                    &mut b,
                    &mut seen_edges,
                    ids[from],
                    ids[to],
                    DepKind::RegFlow,
                    distance,
                );
            }
        }

        // Dense-recurrence extension: wire the requested number of extra
        // loop-carried edges, each from a value-producing node back to one
        // of its own ancestors so it closes a genuine circuit. Overlapping
        // ancestor spans interleave into large strongly connected
        // components — the shape that used to blow the circuit-enumeration
        // budget. Guarded so the zero default adds no random draws and the
        // classic suites stay byte-identical.
        if cfg.extra_backward_edges > 0 {
            let candidates: Vec<usize> = (0..size)
                .filter(|&i| kinds[i].defines_value() && !parents[i].is_empty())
                .collect();
            if !candidates.is_empty() {
                for _ in 0..cfg.extra_backward_edges {
                    let from = candidates[rng.gen_range(0..candidates.len())];
                    let mut to = from;
                    let steps = 1 + rng.gen_range(0..4);
                    for _ in 0..steps {
                        if parents[to].is_empty() {
                            break;
                        }
                        to = parents[to][rng.gen_range(0..parents[to].len())];
                    }
                    let distance = rng.gen_range(1..=cfg.max_distance.max(1));
                    wire(
                        &mut b,
                        &mut seen_edges,
                        ids[from],
                        ids[to],
                        DepKind::RegFlow,
                        distance,
                    );
                }
            }
        }

        // Interleaved-recurrence extension (see the config field docs):
        // one a < m < b < n gadget per disjoint program-order window, each
        // scaffolded with forward edges a → m and b → n and closed with
        // the loop-carried pair m ⇢ b and n ⇢ a, so the circuit
        // a ⇝ m ⇢ b ⇝ n ⇢ a provably threads both backward edges and no
        // circuit can chain across windows. Guarded so the zero default
        // adds no random draws and the classic suites stay byte-identical.
        if let Some(window) = size.checked_div(cfg.interleaved_recurrences) {
            for w in 0..cfg.interleaved_recurrences {
                let (lo, hi) = (w * window, (w + 1) * window);
                if hi - lo < 4 {
                    break;
                }
                let a = lo + rng.gen_range(0..hi - lo - 3);
                let m = a + 1 + rng.gen_range(0..hi - a - 3);
                let mid = m + 1 + rng.gen_range(0..hi - m - 2);
                let n = mid + 1 + rng.gen_range(0..hi - mid - 1);
                let d1 = rng.gen_range(1..=cfg.max_distance.max(1));
                let d2 = rng.gen_range(1..=cfg.max_distance.max(1));
                // Register flow where the source produces a value, memory
                // ordering otherwise (stores) — identical latency
                // semantics, and both legal on any operation kind.
                let kind_for = |i: usize| {
                    if kinds[i].defines_value() {
                        DepKind::RegFlow
                    } else {
                        DepKind::Memory
                    }
                };
                wire(&mut b, &mut seen_edges, ids[a], ids[m], kind_for(a), 0);
                wire(&mut b, &mut seen_edges, ids[mid], ids[n], kind_for(mid), 0);
                wire(&mut b, &mut seen_edges, ids[m], ids[mid], kind_for(m), d1);
                wire(&mut b, &mut seen_edges, ids[n], ids[a], kind_for(n), d2);
            }
        }

        // Stitch any disconnected components together. A store that found no
        // producer (or a value chain the consumer sweep never reached) would
        // otherwise float free of the loop body, which the lint pass flags as
        // a likely authoring mistake (L005). Memory-ordering edges are legal
        // on every operation kind, and union-find over the edges already
        // placed consumes no random draws, so seeded suites keep their draw
        // sequence.
        {
            let mut root: Vec<usize> = (0..size).collect();
            fn find(root: &mut [usize], mut x: usize) -> usize {
                while root[x] != x {
                    root[x] = root[root[x]];
                    x = root[x];
                }
                x
            }
            for &(from, to, _, _) in &seen_edges {
                let (ra, rb) = (find(&mut root, from.index()), find(&mut root, to.index()));
                root[ra] = rb;
            }
            let main = find(&mut root, 0);
            for i in 1..size {
                let r = find(&mut root, i);
                if r != main {
                    root[r] = main;
                    wire(
                        &mut b,
                        &mut seen_edges,
                        ids[i - 1],
                        ids[i],
                        DepKind::Memory,
                        0,
                    );
                }
            }
        }

        b.invariants(rng.gen_range(0..=cfg.max_invariants));
        // Log-uniform iteration count: uniform in ln-space between the range
        // endpoints, i.e. every decade of the range is equally likely (the
        // seeded distribution test below checks this). A zero lower bound is
        // clamped to 1 — `ln(0)` would poison the interpolation with NaN.
        let (lo, hi) = cfg.iteration_range;
        let log_lo = (lo.max(1) as f64).ln();
        let log_hi = (hi.max(1) as f64).ln();
        let iters = (log_lo + rng.gen::<f64>() * (log_hi - log_lo)).exp() as u64;
        b.iteration_count(iters.max(1));

        b.build()
            .expect("generated loops are always structurally valid")
    }

    /// Generates `count` loop bodies.
    pub fn generate(&mut self, count: usize) -> Vec<Ddg> {
        (0..count).map(|_| self.next_loop()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_machine::presets;
    use hrms_modsched::MiiInfo;

    #[test]
    fn generation_is_deterministic_for_a_given_seed() {
        let a = LoopGenerator::with_seed(7).generate(10);
        let b = LoopGenerator::with_seed(7).generate(10);
        assert_eq!(a.len(), b.len());
        for (ga, gb) in a.iter().zip(&b) {
            assert_eq!(ga, gb);
        }
        let c = LoopGenerator::with_seed(8).generate(10);
        assert!(a.iter().zip(&c).any(|(x, y)| x != y));
    }

    #[test]
    fn generated_loops_are_schedulable() {
        let m = presets::perfect_club();
        let loops = LoopGenerator::with_seed(42).generate(50);
        for g in &loops {
            let info = MiiInfo::compute(&m, &hrms_ddg::LoopAnalysis::analyze(g))
                .unwrap_or_else(|e| panic!("generated loop `{}` invalid: {e}", g.name()));
            assert!(info.mii() >= 1);
        }
    }

    #[test]
    fn sizes_respect_the_configured_bounds() {
        let cfg = GeneratorConfig {
            min_ops: 5,
            mean_ops: 9.0,
            max_ops: 20,
            ..GeneratorConfig::default()
        };
        let loops = LoopGenerator::new(3, cfg).generate(100);
        assert!(loops
            .iter()
            .all(|g| g.num_nodes() >= 5 && g.num_nodes() <= 20));
        let mean: f64 =
            loops.iter().map(|g| g.num_nodes() as f64).sum::<f64>() / loops.len() as f64;
        assert!(mean > 6.0 && mean < 14.0, "mean size {mean} is off");
    }

    #[test]
    fn recurrence_probability_is_roughly_honoured() {
        let cfg = GeneratorConfig {
            recurrence_probability: 0.5,
            ..GeneratorConfig::default()
        };
        let loops = LoopGenerator::new(11, cfg).generate(200);
        let with_rec = loops.iter().filter(|g| g.has_recurrence()).count();
        assert!(
            (60..=140).contains(&with_rec),
            "expected roughly half the loops to have recurrences, got {with_rec}/200"
        );

        let none = GeneratorConfig {
            recurrence_probability: 0.0,
            ..GeneratorConfig::default()
        };
        assert!(LoopGenerator::new(5, none)
            .generate(50)
            .iter()
            .all(|g| !g.has_recurrence()));
    }

    #[test]
    fn iteration_counts_are_log_uniform_not_uniform() {
        // The config documents iteration counts as "drawn log-uniformly from
        // `iteration_range`". Verify the distribution really is log-uniform:
        // with range (10, 20_000), each quarter of the ln-range must hold
        // roughly a quarter of the samples, and about half the samples must
        // fall below the geometric mean sqrt(10 * 20_000) ≈ 447. A *uniform*
        // sampler would put ≈97.8% of draws in the top ln-quartile and only
        // ≈2.2% below the geometric mean, so the assertions separate the two
        // distributions decisively.
        let loops = LoopGenerator::with_seed(1234).generate(2000);
        let (lo, hi) = (10f64, 20_000f64);
        let (log_lo, log_hi) = (lo.ln(), hi.ln());
        let mut buckets = [0usize; 4];
        for g in &loops {
            let x = (g.iteration_count() as f64).ln();
            let t = ((x - log_lo) / (log_hi - log_lo)).clamp(0.0, 0.999_999);
            buckets[(t * 4.0) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            let frac = b as f64 / loops.len() as f64;
            assert!(
                (0.18..=0.32).contains(&frac),
                "ln-quartile {i} holds {frac:.3} of the samples, expected ≈0.25"
            );
        }
        let geo_mean = (lo * hi).sqrt();
        let below = loops
            .iter()
            .filter(|g| (g.iteration_count() as f64) < geo_mean)
            .count() as f64
            / loops.len() as f64;
        assert!(
            (0.45..=0.55).contains(&below),
            "{below:.3} of samples below the geometric mean, expected ≈0.5"
        );
    }

    #[test]
    fn zero_iteration_lower_bound_is_clamped() {
        let cfg = GeneratorConfig {
            iteration_range: (0, 8),
            ..GeneratorConfig::default()
        };
        let loops = LoopGenerator::new(9, cfg).generate(50);
        assert!(loops.iter().all(|g| (1..=8).contains(&g.iteration_count())));
    }

    #[test]
    fn iteration_counts_fall_in_the_configured_range() {
        let loops = LoopGenerator::with_seed(1).generate(100);
        assert!(loops
            .iter()
            .all(|g| (1..=20_000).contains(&g.iteration_count())));
        // And they are not all equal (log-uniform spread).
        let distinct: std::collections::HashSet<u64> =
            loops.iter().map(|g| g.iteration_count()).collect();
        assert!(distinct.len() > 20);
    }

    #[test]
    fn the_op_mix_is_represented() {
        let loops = LoopGenerator::with_seed(99).generate(100);
        let mut kinds = std::collections::HashSet::new();
        for g in &loops {
            for (_, n) in g.nodes() {
                kinds.insert(n.kind());
            }
        }
        for expected in [
            OpKind::Load,
            OpKind::Store,
            OpKind::FpAdd,
            OpKind::FpMul,
            OpKind::FpDiv,
        ] {
            assert!(kinds.contains(&expected), "{expected:?} never generated");
        }
    }
}
