//! A 24-loop reference suite modelled on the kernels used by Govindarajan,
//! Altman and Gao (the source of the paper's Table 1).
//!
//! The original 24 dependence graphs (Livermore loops, linear-algebra and
//! Whetstone-style kernels) were exchanged privately between the authors and
//! never published in machine-readable form, so this module reconstructs a
//! suite with the same structural variety: accumulator recurrences,
//! first-order linear recurrences, long division chains, wide independent
//! expression trees, stencils, and mixtures thereof, sized between 4 and 26
//! operations. Latencies follow the Table-1 machine model (add/sub/store 1,
//! multiply/load 2, divide 17); see DESIGN.md's substitutions table for the
//! rationale.

use hrms_ddg::{Ddg, DdgBuilder, DepKind, NodeId, OpKind};

/// Latency of each operation kind on the Table-1 machine.
fn lat(kind: OpKind) -> u32 {
    match kind {
        OpKind::FpMul | OpKind::Load => 2,
        OpKind::FpDiv | OpKind::FpSqrt => 17,
        _ => 1,
    }
}

/// Small helper carrying the builder plus naming counter.
struct K {
    b: DdgBuilder,
    counter: usize,
}

impl K {
    fn new(name: &str) -> Self {
        K {
            b: DdgBuilder::new(name),
            counter: 0,
        }
    }

    fn op(&mut self, kind: OpKind) -> NodeId {
        self.counter += 1;
        self.b.node(
            format!("{}{}", kind.mnemonic(), self.counter),
            kind,
            lat(kind),
        )
    }

    fn load(&mut self) -> NodeId {
        self.op(OpKind::Load)
    }

    fn store(&mut self, value: NodeId) -> NodeId {
        let s = self.op(OpKind::Store);
        self.flow(value, s);
        s
    }

    fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let n = self.op(OpKind::FpAdd);
        self.flow(a, n);
        self.flow(b, n);
        n
    }

    fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let n = self.op(OpKind::FpMul);
        self.flow(a, n);
        self.flow(b, n);
        n
    }

    fn div(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let n = self.op(OpKind::FpDiv);
        self.flow(a, n);
        self.flow(b, n);
        n
    }

    /// Unary operation consuming one prior value.
    fn add1(&mut self, a: NodeId) -> NodeId {
        let n = self.op(OpKind::FpAdd);
        self.flow(a, n);
        n
    }

    fn mul1(&mut self, a: NodeId) -> NodeId {
        let n = self.op(OpKind::FpMul);
        self.flow(a, n);
        n
    }

    fn div1(&mut self, a: NodeId) -> NodeId {
        let n = self.op(OpKind::FpDiv);
        self.flow(a, n);
        n
    }

    fn flow(&mut self, from: NodeId, to: NodeId) {
        self.b
            .edge(from, to, DepKind::RegFlow, 0)
            .expect("reference kernels are valid");
    }

    fn carried(&mut self, from: NodeId, to: NodeId, distance: u32) {
        self.b
            .edge(from, to, DepKind::RegFlow, distance)
            .expect("reference kernels are valid");
    }

    fn invariants(&mut self, n: u32) {
        self.b.invariants(n);
    }

    fn finish(mut self, iterations: u64) -> Ddg {
        self.b.iteration_count(iterations);
        self.b.build().expect("reference kernels are valid")
    }
}

/// Livermore loop 1 style (hydro fragment):
/// `x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])`.
pub fn hydro_fragment() -> Ddg {
    let mut k = K::new("ref01_hydro_fragment");
    let z10 = k.load();
    let z11 = k.load();
    let y = k.load();
    let rz = k.mul1(z10);
    let tz = k.mul1(z11);
    let sum = k.add(rz, tz);
    let prod = k.mul(y, sum);
    let q = k.add1(prod);
    k.store(q);
    k.invariants(3); // q, r, t
    k.finish(400)
}

/// Inner product with an accumulator recurrence: `q += z[k]*x[k]`.
pub fn inner_product() -> Ddg {
    let mut k = K::new("ref02_inner_product");
    let z = k.load();
    let x = k.load();
    let prod = k.mul(z, x);
    let acc = k.add1(prod);
    k.carried(acc, acc, 1);
    k.finish(1000)
}

/// Livermore loop 5 style (tri-diagonal elimination, first-order linear
/// recurrence): `x[i] = z[i]*(y[i] - x[i-1])`.
pub fn tridiagonal() -> Ddg {
    let mut k = K::new("ref03_tridiagonal");
    let y = k.load();
    let z = k.load();
    let sub = k.add1(y); // y[i] - x[i-1]
    let x = k.mul(z, sub);
    k.store(x);
    k.carried(x, sub, 1);
    k.finish(500)
}

/// DAXPY: `y[i] = a*x[i] + y[i]`.
pub fn daxpy() -> Ddg {
    let mut k = K::new("ref04_daxpy");
    let x = k.load();
    let y = k.load();
    let ax = k.mul1(x);
    let sum = k.add(ax, y);
    k.store(sum);
    k.invariants(1);
    k.finish(1000)
}

/// Livermore loop 11 style (first partial sum): `x[k] = x[k-1] + y[k]`.
pub fn partial_sums() -> Ddg {
    let mut k = K::new("ref05_partial_sums");
    let y = k.load();
    let x = k.add1(y);
    k.store(x);
    k.carried(x, x, 1);
    k.finish(800)
}

/// Livermore loop 12 style (first difference): `x[k] = y[k+1] - y[k]`.
pub fn first_difference() -> Ddg {
    let mut k = K::new("ref06_first_difference");
    let y1 = k.load();
    let y0 = k.load();
    let d = k.add(y1, y0);
    k.store(d);
    k.finish(800)
}

/// Livermore loop 7 style (equation of state, a wide expression tree).
pub fn equation_of_state() -> Ddg {
    let mut k = K::new("ref07_equation_of_state");
    let u0 = k.load();
    let u1 = k.load();
    let u2 = k.load();
    let z = k.load();
    let y = k.load();
    let m1 = k.mul1(u1);
    let m2 = k.mul1(u2);
    let s1 = k.add(m1, m2);
    let m3 = k.mul(z, s1);
    let s2 = k.add(u0, m3);
    let m4 = k.mul(y, s2);
    let m5 = k.mul1(s2);
    let s3 = k.add(m4, m5);
    let s4 = k.add1(s3);
    k.store(s4);
    k.invariants(4);
    k.finish(300)
}

/// 5-point stencil: `b[i] = c*(a[i-2]+a[i-1]+a[i]+a[i+1]+a[i+2])`.
pub fn stencil5() -> Ddg {
    let mut k = K::new("ref08_stencil5");
    let a0 = k.load();
    let a1 = k.load();
    let a2 = k.load();
    let a3 = k.load();
    let a4 = k.load();
    let s1 = k.add(a0, a1);
    let s2 = k.add(s1, a2);
    let s3 = k.add(s2, a3);
    let s4 = k.add(s3, a4);
    let m = k.mul1(s4);
    k.store(m);
    k.invariants(1);
    k.finish(600)
}

/// Complex multiply: `(cr, ci) = (ar*br - ai*bi, ar*bi + ai*br)`.
pub fn complex_multiply() -> Ddg {
    let mut k = K::new("ref09_complex_multiply");
    let ar = k.load();
    let ai = k.load();
    let br = k.load();
    let bi = k.load();
    let rr = k.mul(ar, br);
    let ii = k.mul(ai, bi);
    let ri = k.mul(ar, bi);
    let ir = k.mul(ai, br);
    let cr = k.add(rr, ii);
    let ci = k.add(ri, ir);
    k.store(cr);
    k.store(ci);
    k.finish(400)
}

/// FIR filter with 4 taps and an accumulator recurrence.
pub fn fir_filter() -> Ddg {
    let mut k = K::new("ref10_fir_filter");
    let mut acc: Option<NodeId> = None;
    for _ in 0..4 {
        let x = k.load();
        let m = k.mul1(x);
        acc = Some(match acc {
            None => k.add1(m),
            Some(a) => k.add(a, m),
        });
    }
    let out = acc.expect("four taps were added");
    k.store(out);
    k.carried(out, out, 1);
    k.invariants(4);
    k.finish(700)
}

/// Horner polynomial evaluation: `p = p*x + c[i]` (multiply-accumulate
/// recurrence).
pub fn horner() -> Ddg {
    let mut k = K::new("ref11_horner");
    let c = k.load();
    let px = k.op(OpKind::FpMul);
    let p = k.add(px, c);
    k.carried(p, px, 1);
    k.invariants(1);
    k.finish(64)
}

/// Newton–Raphson style iteration with a division on the recurrence.
pub fn newton_division() -> Ddg {
    let mut k = K::new("ref12_newton_division");
    let f = k.load();
    let d = k.div1(f);
    let upd = k.add1(d);
    k.store(upd);
    k.carried(upd, d, 1);
    k.finish(50)
}

/// A division-rich body without recurrences (Whetstone-style).
pub fn division_chain() -> Ddg {
    let mut k = K::new("ref13_division_chain");
    let a = k.load();
    let b = k.load();
    let d1 = k.div(a, b);
    let d2 = k.div1(d1);
    let s = k.add(d1, d2);
    k.store(s);
    k.finish(120)
}

/// Livermore loop 23 style (2-D implicit hydrodynamics): a large body with a
/// first-order recurrence — the loop that dominates SPILP's solve time in
/// the paper.
pub fn implicit_hydro() -> Ddg {
    let mut k = K::new("ref14_implicit_hydro");
    let za = k.load();
    let zb = k.load();
    let zu = k.load();
    let zv = k.load();
    let zr = k.load();
    let zz = k.load();
    let m1 = k.mul(za, zb);
    let m2 = k.mul(zu, zv);
    let s1 = k.add(m1, m2);
    let m3 = k.mul(zr, s1);
    let s2 = k.add(zz, m3);
    let m4 = k.mul1(s2);
    let s3 = k.add(m4, s1);
    let m5 = k.mul1(s3);
    let s4 = k.add1(m5);
    let qa = k.add(s4, s2);
    k.store(qa);
    // first-order recurrence: this iteration uses the previous qa
    k.carried(qa, m3, 1);
    k.invariants(2);
    k.finish(250)
}

/// Banded linear equations (Livermore loop 4 style).
pub fn banded_linear() -> Ddg {
    let mut k = K::new("ref15_banded_linear");
    let x0 = k.load();
    let y0 = k.load();
    let x1 = k.load();
    let y1 = k.load();
    let m1 = k.mul(x0, y0);
    let m2 = k.mul(x1, y1);
    let s = k.add(m1, m2);
    let acc = k.add1(s);
    k.carried(acc, acc, 1);
    let fin = k.mul1(acc);
    k.store(fin);
    k.finish(300)
}

/// General linear recurrence of order 2 (Livermore loop 6 style).
pub fn linear_recurrence2() -> Ddg {
    let mut k = K::new("ref16_linear_recurrence2");
    let b = k.load();
    let m1 = k.op(OpKind::FpMul);
    let m2 = k.op(OpKind::FpMul);
    let s1 = k.add(m1, m2);
    let w = k.add(b, s1);
    k.store(w);
    k.carried(w, m1, 1);
    k.carried(w, m2, 2);
    k.invariants(2);
    k.finish(200)
}

/// Matrix–vector product inner loop (dot-product with address arithmetic).
pub fn matvec_inner() -> Ddg {
    let mut k = K::new("ref17_matvec_inner");
    let addr = k.op(OpKind::IntAlu);
    let a = k.load();
    k.flow(addr, a);
    let x = k.load();
    let m = k.mul(a, x);
    let acc = k.add1(m);
    k.carried(acc, acc, 1);
    k.carried(addr, addr, 1);
    k.finish(900)
}

/// Array scaling with strided stores: `a[i] = a[i] / s; b[i] = a[i] * t`.
pub fn scale_and_copy() -> Ddg {
    let mut k = K::new("ref18_scale_and_copy");
    let a = k.load();
    let d = k.div1(a);
    k.store(d);
    let m = k.mul1(d);
    k.store(m);
    k.invariants(2);
    k.finish(350)
}

/// 3-point smoothing stencil with loop-carried reuse of a loaded value.
pub fn smoothing() -> Ddg {
    let mut k = K::new("ref19_smoothing");
    let centre = k.load();
    let right = k.load();
    let s1 = k.add(centre, right);
    let s2 = k.add1(s1);
    let m = k.mul1(s2);
    k.store(m);
    // the left neighbour is the centre of the previous iteration
    k.carried(centre, s2, 1);
    k.invariants(1);
    k.finish(650)
}

/// Reduction with comparison logic (max reduction; compares map onto the
/// adder).
pub fn max_reduction() -> Ddg {
    let mut k = K::new("ref20_max_reduction");
    let x = k.load();
    let cmp = k.op(OpKind::IntAlu);
    k.flow(x, cmp);
    let sel = k.add1(cmp);
    k.carried(sel, cmp, 1);
    k.finish(1000)
}

/// Prefix product recurrence: `p[i] = p[i-1] * x[i]`.
pub fn prefix_product() -> Ddg {
    let mut k = K::new("ref21_prefix_product");
    let x = k.load();
    let p = k.mul1(x);
    k.store(p);
    k.carried(p, p, 1);
    k.finish(500)
}

/// Normalisation loop with a square-root-free division pair.
pub fn normalisation() -> Ddg {
    let mut k = K::new("ref22_normalisation");
    let v0 = k.load();
    let v1 = k.load();
    let m0 = k.mul(v0, v0);
    let m1 = k.mul(v1, v1);
    let s = k.add(m0, m1);
    let d0 = k.div(v0, s);
    let d1 = k.div(v1, s);
    k.store(d0);
    k.store(d1);
    k.finish(150)
}

/// A long independent expression tree with no recurrence (tests pure
/// resource-bound scheduling and lifetime spread).
pub fn wide_tree() -> Ddg {
    let mut k = K::new("ref23_wide_tree");
    let mut level: Vec<NodeId> = (0..8).map(|_| k.load()).collect();
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(k.add(pair[0], pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    let root = k.mul1(level[0]);
    k.store(root);
    k.finish(450)
}

/// A mixed body combining two recurrences of different speeds with a
/// division and several memory operations.
pub fn mixed_recurrences() -> Ddg {
    let mut k = K::new("ref24_mixed_recurrences");
    let a = k.load();
    let acc = k.add1(a);
    k.carried(acc, acc, 1);
    let b = k.load();
    let d = k.div(b, acc);
    let slow = k.mul1(d);
    k.carried(slow, d, 2);
    let out = k.add(slow, acc);
    k.store(out);
    k.invariants(1);
    k.finish(180)
}

/// The whole 24-loop suite, in a fixed order.
pub fn all() -> Vec<Ddg> {
    vec![
        hydro_fragment(),
        inner_product(),
        tridiagonal(),
        daxpy(),
        partial_sums(),
        first_difference(),
        equation_of_state(),
        stencil5(),
        complex_multiply(),
        fir_filter(),
        horner(),
        newton_division(),
        division_chain(),
        implicit_hydro(),
        banded_linear(),
        linear_recurrence2(),
        matvec_inner(),
        scale_and_copy(),
        smoothing(),
        max_reduction(),
        prefix_product(),
        normalisation(),
        wide_tree(),
        mixed_recurrences(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_machine::presets;
    use hrms_modsched::MiiInfo;

    #[test]
    fn there_are_exactly_24_loops_with_unique_names() {
        let suite = all();
        assert_eq!(suite.len(), 24);
        let mut names: Vec<&str> = suite.iter().map(|g| g.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 24);
    }

    #[test]
    fn every_loop_is_well_formed_for_the_table1_machine() {
        let m = presets::govindarajan();
        for g in all() {
            let info = MiiInfo::compute(&m, &hrms_ddg::LoopAnalysis::analyze(&g))
                .unwrap_or_else(|e| panic!("loop `{}` is invalid: {e}", g.name()));
            assert!(info.mii() >= 1);
            assert!(g.num_nodes() >= 3, "loop `{}` is too small", g.name());
            assert!(g.num_nodes() <= 30, "loop `{}` is too large", g.name());
        }
    }

    #[test]
    fn the_suite_mixes_recurrent_and_acyclic_loops() {
        let suite = all();
        let with_rec = suite.iter().filter(|g| g.has_recurrence()).count();
        let without = suite.len() - with_rec;
        assert!(with_rec >= 10, "need plenty of recurrences, got {with_rec}");
        assert!(without >= 6, "need acyclic loops too, got {without}");
    }

    #[test]
    fn latencies_follow_the_table1_model() {
        for g in all() {
            for (_, n) in g.nodes() {
                assert_eq!(n.latency(), lat(n.kind()), "{} in {}", n.name(), g.name());
            }
        }
    }

    #[test]
    fn some_loops_are_recurrence_bound_and_some_resource_bound() {
        let m = presets::govindarajan();
        let mut rec_bound = 0;
        let mut res_bound = 0;
        for g in all() {
            let info = MiiInfo::compute(&m, &hrms_ddg::LoopAnalysis::analyze(&g)).unwrap();
            if info.recurrence_bound() {
                rec_bound += 1;
            } else {
                res_bound += 1;
            }
        }
        assert!(rec_bound >= 4);
        assert!(res_bound >= 10);
    }

    #[test]
    fn iteration_counts_are_positive() {
        for g in all() {
            assert!(g.iteration_count() > 0);
        }
    }
}
