//! Workloads for the HRMS reproduction.
//!
//! Three families of loop bodies drive the evaluation harness:
//!
//! * [`motivating`] — the worked examples of the paper (Figures 1, 7, 8
//!   and a Figure-10-style two-recurrence graph), used by the examples and
//!   by the tests that check HRMS reproduces the paper's walk-throughs
//!   exactly;
//! * [`reference24`] — a 24-loop suite modelled on the Livermore /
//!   linear-algebra kernels used by Govindarajan et al. (the source of the
//!   paper's Table 1); the original dependence graphs were never published
//!   machine-readably, so these are reconstructions with the same structural
//!   variety (see DESIGN.md, substitutions table);
//! * [`synthetic`] — a deterministic generator of Perfect-Club-like loop
//!   suites (1258 loops by default) with realistic size, operation-mix,
//!   recurrence and iteration-count distributions, used for the Section 4.2
//!   statistics and Figures 11–14.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod motivating;
pub mod reference24;
pub mod synthetic;

pub use generator::{GeneratorConfig, LoopGenerator};
pub use synthetic::{perfect_club_like, perfect_club_like_sized};
