//! The synthetic Perfect-Club-like loop suite.
//!
//! Section 4.2 of the paper evaluates HRMS on 1258 innermost DO loops
//! extracted from the Perfect Club benchmarks with the ICTINEO compiler,
//! weighted by profiled iteration counts. Neither the benchmark suite nor
//! the compiler is available, so the reproduction uses a deterministic
//! synthetic suite whose size, operation-mix, recurrence and iteration-count
//! distributions follow the characteristics reported in the paper and its
//! companion technical reports (see DESIGN.md, substitutions table). The
//! suite is a pure function of a fixed seed, so every run of the harness
//! sees exactly the same 1258 loops.

use hrms_ddg::Ddg;

use crate::generator::{GeneratorConfig, LoopGenerator};

/// Number of loops in the paper's Perfect-Club evaluation.
pub const PERFECT_CLUB_LOOP_COUNT: usize = 1258;

/// The fixed seed of the default suite (1995 / MICRO-28).
pub const DEFAULT_SEED: u64 = 0x1995_0028;

/// The default synthetic suite: 1258 loops.
pub fn perfect_club_like() -> Vec<Ddg> {
    perfect_club_like_sized(PERFECT_CLUB_LOOP_COUNT)
}

/// A smaller (or larger) suite with the same distributional parameters —
/// the benchmark harness uses reduced sizes for quick runs.
pub fn perfect_club_like_sized(count: usize) -> Vec<Ddg> {
    LoopGenerator::new(DEFAULT_SEED, suite_config()).generate(count)
}

/// The generator configuration of the synthetic suite.
pub fn suite_config() -> GeneratorConfig {
    GeneratorConfig {
        min_ops: 4,
        mean_ops: 15.0,
        max_ops: 72,
        recurrence_probability: 0.45,
        max_distance: 2,
        max_invariants: 6,
        iteration_range: (10, 50_000),
        ..GeneratorConfig::default()
    }
}

/// Loop sizes of the large-loop stress suite (operations per loop body).
///
/// The paper's loops top out at ~100 operations; unrolled media/HLS-style
/// kernels easily reach thousands, which is where the hash-based
/// pre-ordering representation used to fall over. The stress suite covers
/// that range.
pub const STRESS_SIZES: [usize; 6] = [200, 350, 500, 750, 1000, 2000];

/// Generator preset for one stress loop of exactly `size` operations.
///
/// Compared to [`suite_config`] the recurrence probability is kept moderate
/// and the dependence distance small — this preset measures the
/// pre-ordering and placement machinery, not the recurrence analysis. The
/// regime where recurrences dominate lives in [`recurrence_heavy_config`].
pub fn stress_config(size: usize) -> GeneratorConfig {
    GeneratorConfig {
        min_ops: size,
        mean_ops: size as f64,
        max_ops: size,
        recurrence_probability: 0.3,
        max_distance: 2,
        max_invariants: 8,
        iteration_range: (100, 1_000_000),
        ..GeneratorConfig::default()
    }
}

/// The deterministic large-loop stress suite: one loop per entry of
/// [`STRESS_SIZES`], each a pure function of the fixed seed.
pub fn stress_suite() -> Vec<Ddg> {
    STRESS_SIZES
        .iter()
        .map(|&size| {
            LoopGenerator::new(DEFAULT_SEED ^ size as u64, stress_config(size)).next_loop()
        })
        .collect()
}

/// Loop sizes of the recurrence-heavy stress suite (operations per loop).
pub const RECURRENCE_HEAVY_SIZES: [usize; 4] = [500, 750, 1000, 2000];

/// Generator preset for one *recurrence-heavy* stress loop of exactly
/// `size` operations: guaranteed recurrences plus one extra ancestor back
/// edge per eight operations, whose overlapping spans interleave into
/// large, dense strongly connected components with dozens-to-hundreds of
/// backward edges.
///
/// This is the regime the ROADMAP kept out of the classic stress preset
/// because Johnson's elementary-circuit enumeration explodes on it; the
/// SCC-derived recurrence analysis handles it in polynomial time, which is
/// exactly what the recurrence stress benchmark measures.
pub fn recurrence_heavy_config(size: usize) -> GeneratorConfig {
    GeneratorConfig {
        min_ops: size,
        mean_ops: size as f64,
        max_ops: size,
        recurrence_probability: 1.0,
        extra_backward_edges: size / 8,
        max_distance: 3,
        max_invariants: 8,
        iteration_range: (100, 1_000_000),
        ..GeneratorConfig::default()
    }
}

/// The deterministic recurrence-heavy stress suite: one loop per entry of
/// [`RECURRENCE_HEAVY_SIZES`], each a pure function of the fixed seed.
pub fn recurrence_heavy_suite() -> Vec<Ddg> {
    RECURRENCE_HEAVY_SIZES
        .iter()
        .map(|&size| {
            LoopGenerator::new(
                DEFAULT_SEED ^ 0x5EC0_0000 ^ size as u64,
                recurrence_heavy_config(size),
            )
            .next_loop()
        })
        .collect()
}

/// Loop sizes of the interleaved-recurrence suite (operations per loop).
///
/// Sized so Johnson's enumeration still completes on every loop: the suite
/// is the differential corpus pinning the cycle-ratio ranking of
/// multi-backward-edge recurrences against the enumeration oracle, so the
/// oracle must be computable.
pub const INTERLEAVED_SIZES: [usize; 6] = [12, 18, 24, 30, 40, 48];

/// Generator preset for one *interleaved-recurrence* loop of exactly
/// `size` operations: wires loop-carried edge pairs that close circuits
/// only **together** ([`GeneratorConfig::interleaved_recurrences`]) — the
/// multi-backward-edge regime where a single-edge recurrence analysis
/// must fall back to coarse per-SCC ranking and the per-node cycle-ratio
/// analysis (`hrms_ddg::cycle_ratio`) ranks exactly.
///
/// Ordinary probabilistic recurrences are disabled: an organic backward
/// edge could chain gadget windows into circuits threading three or more
/// backward edges, and this preset is the differential corpus whose
/// multi-edge subgraphs must stay in the provably-exact two-edge regime
/// (deeper interleavings are exercised — and counted — by the unit suites
/// and the moderately dense shapes instead).
pub fn interleaved_recurrence_config(size: usize) -> GeneratorConfig {
    GeneratorConfig {
        min_ops: size,
        mean_ops: size as f64,
        max_ops: size,
        recurrence_probability: 0.0,
        interleaved_recurrences: 1 + size / 16,
        max_distance: 2,
        max_invariants: 6,
        iteration_range: (10, 50_000),
        ..GeneratorConfig::default()
    }
}

/// The deterministic interleaved-recurrence suite: one loop per entry of
/// [`INTERLEAVED_SIZES`], each a pure function of the fixed seed and
/// **guaranteed** to contain a recurrence circuit threading several
/// backward edges (the generator wires the pairs structurally; the first
/// generated loop of each size that realises one is taken, so the suite
/// never silently degenerates to single-edge shapes).
pub fn interleaved_recurrence_suite() -> Vec<Ddg> {
    INTERLEAVED_SIZES
        .iter()
        .map(|&size| {
            let mut generator = LoopGenerator::new(
                DEFAULT_SEED ^ 0x17_EA0000 ^ size as u64,
                interleaved_recurrence_config(size),
            );
            for _ in 0..64 {
                let g = generator.next_loop();
                let interleaved = hrms_ddg::RecurrenceGroups::analyze(&g)
                    .groups
                    .iter()
                    .any(|gr| {
                        matches!(
                            gr.kind,
                            hrms_ddg::RecurrenceGroupKind::Interleaved
                                | hrms_ddg::RecurrenceGroupKind::Residual
                        )
                    });
                if interleaved {
                    return g;
                }
            }
            unreachable!("the interleaved gadget closes a pair circuit within 64 loops")
        })
        .collect()
}

/// Loop sizes of the register-pressure suite (operations per loop).
pub const REGISTER_PRESSURE_SIZES: [usize; 4] = [48, 64, 80, 96];

/// Loops generated per entry of [`REGISTER_PRESSURE_SIZES`].
pub const REGISTER_PRESSURE_LOOPS_PER_SIZE: usize = 3;

/// Generator preset for *register-pressure* loops of exactly `size`
/// operations: every value defined in the first two thirds of the body is
/// also consumed in the last third
/// ([`GeneratorConfig::long_lifetime_fanout`]), so dozens of lifetimes
/// overlap late in the loop no matter how the producers are placed. The
/// resulting schedules exceed the 32-register files of the paper's
/// machines outright — the regime where spilling (or feedback-guided
/// iterative rescheduling) is mandatory, which is exactly what the
/// feedback property tier and benchmark measure.
///
/// The recurrence probability is kept low so the pre-ordering is free to
/// react to start-node hints — on recurrence-dominated bodies the ordering
/// is pinned by the circuits and perturbation has nothing to move.
pub fn register_pressure_config(size: usize) -> GeneratorConfig {
    GeneratorConfig {
        min_ops: size,
        mean_ops: size as f64,
        max_ops: size,
        recurrence_probability: 0.15,
        long_lifetime_fanout: size,
        max_distance: 2,
        max_invariants: 4,
        iteration_range: (100, 100_000),
        ..GeneratorConfig::default()
    }
}

/// The deterministic register-pressure suite:
/// [`REGISTER_PRESSURE_LOOPS_PER_SIZE`] loops per entry of
/// [`REGISTER_PRESSURE_SIZES`], each a pure function of the fixed seed.
pub fn register_pressure_suite() -> Vec<Ddg> {
    REGISTER_PRESSURE_SIZES
        .iter()
        .flat_map(|&size| {
            LoopGenerator::new(
                DEFAULT_SEED ^ 0x9E55_0000 ^ size as u64,
                register_pressure_config(size),
            )
            .generate(REGISTER_PRESSURE_LOOPS_PER_SIZE)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_machine::presets;
    use hrms_modsched::MiiInfo;

    #[test]
    fn sized_suite_has_the_requested_length_and_is_deterministic() {
        let a = perfect_club_like_sized(40);
        let b = perfect_club_like_sized(40);
        assert_eq!(a.len(), 40);
        assert_eq!(a, b);
    }

    #[test]
    fn default_suite_constant_matches_the_paper() {
        assert_eq!(PERFECT_CLUB_LOOP_COUNT, 1258);
    }

    #[test]
    fn a_sample_of_the_suite_is_schedulable_on_the_section42_machine() {
        let m = presets::perfect_club();
        for g in perfect_club_like_sized(60) {
            MiiInfo::compute(&m, &hrms_ddg::LoopAnalysis::analyze(&g))
                .unwrap_or_else(|e| panic!("loop `{}` invalid: {e}", g.name()));
        }
    }

    #[test]
    fn stress_suite_is_deterministic_and_sized_as_configured() {
        let a = stress_suite();
        let b = stress_suite();
        assert_eq!(a, b);
        assert_eq!(a.len(), STRESS_SIZES.len());
        for (g, &size) in a.iter().zip(STRESS_SIZES.iter()) {
            assert_eq!(g.num_nodes(), size);
        }
    }

    #[test]
    fn recurrence_heavy_suite_is_deterministic_and_dense() {
        let suite = recurrence_heavy_suite();
        assert_eq!(suite, recurrence_heavy_suite());
        assert_eq!(suite.len(), RECURRENCE_HEAVY_SIZES.len());
        for (g, &size) in suite.iter().zip(RECURRENCE_HEAVY_SIZES.iter()) {
            assert_eq!(g.num_nodes(), size);
            // The defining property of the preset: lots of loop-carried
            // edges interleaved into large SCCs (measured: the largest SCC
            // spans 235-917 nodes across the suite).
            let carried = g
                .edges()
                .filter(|(_, e)| e.distance() > 0 && !e.is_self_loop())
                .count();
            assert!(
                carried >= size / 10,
                "`{}`: only {carried} loop-carried edges",
                g.name()
            );
            let largest = hrms_ddg::scc::strongly_connected_components(g)
                .iter()
                .map(Vec::len)
                .max()
                .unwrap();
            assert!(
                largest >= size / 4,
                "`{}`: largest SCC has only {largest} of {size} nodes",
                g.name()
            );
            // Valid loop bodies: a finite recurrence-constrained MII exists.
            assert!(hrms_ddg::LoopAnalysis::analyze(g).rec_mii().is_some());
        }
    }

    #[test]
    fn interleaved_suite_is_deterministic_and_forces_multi_edge_circuits() {
        let suite = interleaved_recurrence_suite();
        assert_eq!(suite, interleaved_recurrence_suite());
        assert_eq!(suite.len(), INTERLEAVED_SIZES.len());
        for (g, &size) in suite.iter().zip(INTERLEAVED_SIZES.iter()) {
            assert_eq!(g.num_nodes(), size);
            // The defining property: at least one recurrence circuit
            // threads several backward edges, i.e. the recurrence analysis
            // needs more than single-edge subgraphs to cover the loop.
            let groups = hrms_ddg::RecurrenceGroups::analyze(g);
            assert!(
                groups.groups.iter().any(|gr| matches!(
                    gr.kind,
                    hrms_ddg::RecurrenceGroupKind::Interleaved
                        | hrms_ddg::RecurrenceGroupKind::Residual
                )),
                "`{}` has no interleaved recurrence",
                g.name()
            );
            // Valid loop bodies: a finite recurrence-constrained MII exists.
            assert!(hrms_ddg::LoopAnalysis::analyze(g).rec_mii().is_some());
        }
    }

    #[test]
    fn interleaved_knob_zero_preserves_the_classic_random_stream() {
        let classic = LoopGenerator::new(77, GeneratorConfig::default()).generate(10);
        let zeroed = LoopGenerator::new(
            77,
            GeneratorConfig {
                interleaved_recurrences: 0,
                ..GeneratorConfig::default()
            },
        )
        .generate(10);
        assert_eq!(classic, zeroed);
    }

    #[test]
    fn long_lifetime_knob_zero_preserves_the_classic_random_stream() {
        let classic = LoopGenerator::new(77, GeneratorConfig::default()).generate(10);
        let zeroed = LoopGenerator::new(
            77,
            GeneratorConfig {
                long_lifetime_fanout: 0,
                ..GeneratorConfig::default()
            },
        )
        .generate(10);
        assert_eq!(classic, zeroed);
    }

    #[test]
    fn register_pressure_suite_is_deterministic_and_exceeds_the_paper_register_file() {
        use hrms_modsched::LifetimeAnalysis;

        let suite = register_pressure_suite();
        assert_eq!(suite, register_pressure_suite());
        assert_eq!(
            suite.len(),
            REGISTER_PRESSURE_SIZES.len() * REGISTER_PRESSURE_LOOPS_PER_SIZE
        );
        // The defining property of the preset: one-shot HRMS schedules need
        // more registers than the 32-entry files of the paper's machines on
        // most of the suite (every loop of the two larger sizes), so a
        // register budget of 32 genuinely forces spilling or rescheduling.
        let machine = presets::perfect_club();
        let scheduler = hrms_core::HrmsScheduler::new();
        let mut over_budget = 0usize;
        for g in &suite {
            let outcome = hrms_modsched::ModuloScheduler::schedule_loop(&scheduler, g, &machine)
                .unwrap_or_else(|e| panic!("`{}` failed: {e}", g.name()));
            let pressure = LifetimeAnalysis::analyze(g, &outcome.schedule).max_live();
            if pressure > 32 {
                over_budget += 1;
            }
        }
        assert!(
            over_budget * 2 >= suite.len(),
            "only {over_budget}/{} loops exceed 32 registers under one-shot HRMS",
            suite.len()
        );
    }

    #[test]
    fn suite_statistics_are_plausible() {
        let loops = perfect_club_like_sized(300);
        let mean_size: f64 =
            loops.iter().map(|g| g.num_nodes() as f64).sum::<f64>() / loops.len() as f64;
        assert!(mean_size > 8.0 && mean_size < 25.0, "mean size {mean_size}");
        let with_rec = loops.iter().filter(|g| g.has_recurrence()).count();
        assert!(
            with_rec > 60 && with_rec < 240,
            "recurrent loops {with_rec}"
        );
        let max_iter = loops.iter().map(|g| g.iteration_count()).max().unwrap();
        assert!(
            max_iter > 1_000,
            "iteration counts should have a heavy tail"
        );
    }
}
