//! The `.machine` text format: a hand-written, dependency-free codec for
//! machine descriptions.
//!
//! Covers everything a [`Machine`] holds — resource classes (name, unit
//! count, pipelining) and the per-operation-kind class mapping and latency —
//! so every preset in [`crate::presets`] round-trips exactly. The format is
//! line-oriented; the specification with a worked example lives in
//! `docs/FORMATS.md`:
//!
//! ```text
//! machine "govindarajan-4fu"
//!   class fp-add count=1 pipelined
//!   class fp-mul count=1 pipelined
//!   class fp-div count=1 pipelined
//!   class load-store count=1 pipelined
//!   op fadd class=0 latency=1
//!   op fmul class=1 latency=2
//!   # ... one `op` line per operation kind ...
//! end
//! ```

use std::fmt::Write as _;

use hrms_ddg::textfmt::{line_span, tokenize_line, ParseError, Span};
use hrms_ddg::OpKind;

use crate::machine::{Machine, MachineBuilder, ResourceClass};

/// Whether a class or machine name can be written without quotes.
fn is_bare(name: &str) -> bool {
    let mut chars = name.chars();
    let first_ok = matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_');
    first_ok
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-' | '$'))
        && !matches!(name, "machine" | "class" | "op" | "end")
}

/// Appends `name`, bare when safe, quoted (with escapes) otherwise.
fn write_name(out: &mut String, name: &str) {
    if is_bare(name) {
        out.push_str(name);
        return;
    }
    out.push('"');
    for c in name.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialises a machine description as a `machine ... end` block.
pub fn write_machine(machine: &Machine) -> String {
    let mut out = String::new();
    out.push_str("machine ");
    write_name(&mut out, machine.name());
    out.push('\n');
    for class in machine.classes() {
        out.push_str("  class ");
        write_name(&mut out, &class.name);
        let _ = write!(out, " count={}", class.count);
        out.push_str(if class.pipelined {
            " pipelined\n"
        } else {
            " unpipelined\n"
        });
    }
    for kind in OpKind::ALL {
        let _ = writeln!(
            out,
            "  op {} class={} latency={}",
            kind.mnemonic(),
            machine.class_of(kind).index(),
            machine.latency_of(kind)
        );
    }
    out.push_str("end\n");
    out
}

/// Source spans of a parsed `machine ... end` block, indexed like the
/// machine itself: `classes[i]` is the span of the line declaring class
/// `i` (declaration order equals [`crate::ClassId`] order), `ops[k]` the
/// span of the `op` line for `OpKind::ALL[k]` (when one was present).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSpans {
    /// The `machine` header line.
    pub header: Span,
    /// One span per resource class, in [`crate::ClassId`] order.
    pub classes: Vec<Span>,
    /// For each kind in [`OpKind::ALL`] order, the span of its `op` line
    /// (None when the kind was never mapped — `build` rejects that, so the
    /// slot is only `None` transiently).
    pub ops: Vec<Option<Span>>,
}

fn kind_slot(kind: OpKind) -> usize {
    OpKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("ALL lists every kind")
}

fn parse_num<T: std::str::FromStr>(
    line: &str,
    v: &str,
    span: Span,
    what: &str,
) -> Result<T, ParseError> {
    v.parse()
        .map_err(|_| ParseError::at(span, line, format!("invalid {what} `{v}`")))
}

/// Parses a machine description, returning the source spans of the header
/// and of every `class`/`op` line alongside the machine.
///
/// # Errors
///
/// Same as [`parse_machine`].
pub fn parse_machine_with_spans(input: &str) -> Result<(Machine, MachineSpans), ParseError> {
    let mut builder: Option<MachineBuilder> = None;
    let mut class_names: Vec<String> = Vec::new();
    let mut spans: Option<MachineSpans> = None;
    let mut finished: Option<(Machine, MachineSpans)> = None;

    let mut base = 0usize;
    for (i, raw) in input.split_inclusive('\n').enumerate() {
        let lineno = i + 1;
        let line = raw
            .strip_suffix('\n')
            .map(|l| l.strip_suffix('\r').unwrap_or(l))
            .unwrap_or(raw);
        let line_base = base;
        base += raw.len();
        let tokens = tokenize_line(line, lineno, line_base)?;
        let Some(first) = tokens.first() else {
            continue;
        };
        if finished.is_some() {
            return Err(ParseError::at(
                first.span,
                line,
                "trailing content after `end`; a machine file holds one description",
            ));
        }
        match (first.text.as_str(), &mut builder) {
            ("machine", Some(_)) => {
                return Err(ParseError::at(first.span, line, "nested `machine` block"));
            }
            ("machine", slot @ None) => {
                let name = tokens.get(1).ok_or_else(|| {
                    ParseError::at(
                        line_span(line, lineno, line_base),
                        line,
                        "expected a machine name",
                    )
                })?;
                *slot = Some(MachineBuilder::new(name.text.clone()));
                spans = Some(MachineSpans {
                    header: line_span(line, lineno, line_base),
                    classes: Vec::new(),
                    ops: vec![None; OpKind::ALL.len()],
                });
            }
            ("class", Some(_)) => {
                let name = tokens
                    .get(1)
                    .ok_or_else(|| {
                        ParseError::at(
                            line_span(line, lineno, line_base),
                            line,
                            "expected a class name",
                        )
                    })?
                    .text
                    .clone();
                let mut count: Option<u32> = None;
                let mut pipelined: Option<bool> = None;
                for t in &tokens[2..] {
                    match (t.text.split_once('='), t.text.as_str()) {
                        (Some(("count", v)), _) => {
                            count = Some(parse_num(line, v, t.span, "count")?)
                        }
                        (None, "pipelined") => pipelined = Some(true),
                        (None, "unpipelined") => pipelined = Some(false),
                        _ => {
                            return Err(ParseError::at(
                                t.span,
                                line,
                                format!("unknown class attribute `{}`", t.text),
                            ))
                        }
                    }
                }
                let count = count.ok_or_else(|| {
                    ParseError::at(
                        line_span(line, lineno, line_base),
                        line,
                        "class is missing count=N",
                    )
                })?;
                let pipelined = pipelined.ok_or_else(|| {
                    ParseError::at(
                        line_span(line, lineno, line_base),
                        line,
                        "class is missing pipelined|unpipelined",
                    )
                })?;
                let class = if pipelined {
                    ResourceClass::pipelined(name.clone(), count)
                } else {
                    ResourceClass::unpipelined(name.clone(), count)
                };
                builder = Some(builder.take().expect("matched Some").class(class));
                class_names.push(name);
                if let Some(s) = &mut spans {
                    s.classes.push(line_span(line, lineno, line_base));
                }
            }
            ("op", Some(_)) => {
                let kind_tok = tokens.get(1).ok_or_else(|| {
                    ParseError::at(
                        line_span(line, lineno, line_base),
                        line,
                        "expected an operation kind",
                    )
                })?;
                let kind = OpKind::from_mnemonic(&kind_tok.text).ok_or_else(|| {
                    ParseError::at(
                        kind_tok.span,
                        line,
                        format!("unknown operation kind `{}`", kind_tok.text),
                    )
                })?;
                let mut class: Option<u32> = None;
                let mut latency: Option<u32> = None;
                for t in &tokens[2..] {
                    match t.text.split_once('=') {
                        Some(("class", v)) => {
                            class = Some(match v.parse() {
                                Ok(idx) => idx,
                                Err(_) => class_names
                                    .iter()
                                    .position(|n| n == v)
                                    .map(|i| i as u32)
                                    .ok_or_else(|| {
                                        ParseError::at(
                                            t.span,
                                            line,
                                            format!("unknown resource class `{v}`"),
                                        )
                                    })?,
                            });
                        }
                        Some(("latency", v)) => {
                            latency = Some(parse_num(line, v, t.span, "latency")?)
                        }
                        _ => {
                            return Err(ParseError::at(
                                t.span,
                                line,
                                format!("unknown op attribute `{}`", t.text),
                            ))
                        }
                    }
                }
                let class = class.ok_or_else(|| {
                    ParseError::at(
                        line_span(line, lineno, line_base),
                        line,
                        "op is missing class=N",
                    )
                })?;
                let latency = latency.ok_or_else(|| {
                    ParseError::at(
                        line_span(line, lineno, line_base),
                        line,
                        "op is missing latency=N",
                    )
                })?;
                builder = Some(
                    builder
                        .take()
                        .expect("matched Some")
                        .map(kind, class, latency),
                );
                if let Some(s) = &mut spans {
                    s.ops[kind_slot(kind)] = Some(line_span(line, lineno, line_base));
                }
            }
            ("end", Some(_)) => {
                let b = builder.take().expect("matched Some");
                let machine = b.build().map_err(|e| {
                    ParseError::at(
                        line_span(line, lineno, line_base),
                        line,
                        format!("invalid machine: {e}"),
                    )
                })?;
                finished = Some((machine, spans.take().expect("spans set with builder")));
            }
            (kw, Some(_)) => {
                return Err(ParseError::at(
                    first.span,
                    line,
                    format!("unknown keyword `{kw}`"),
                ));
            }
            (kw, None) => {
                return Err(ParseError::at(
                    first.span,
                    line,
                    format!("`{kw}` outside a `machine ... end` block"),
                ));
            }
        }
    }
    if builder.is_some() {
        return Err(ParseError::new(
            0,
            "machine block is never closed with `end`",
        ));
    }
    finished.ok_or_else(|| ParseError::new(0, "input contains no `machine` block"))
}

/// Parses a machine description.
///
/// The input must contain exactly one `machine ... end` block; every
/// operation kind must be mapped by an `op` line (the same validation as
/// [`MachineBuilder::build`], surfaced with line information where
/// possible). Class references in `op` lines accept either the dense class
/// index (`class=0`) or the class name (`class=fp-add`).
///
/// # Errors
///
/// Returns a [`ParseError`] — carrying the 1-based line, column and a
/// source excerpt where possible — on malformed syntax, unknown kinds or
/// class references, duplicate blocks, or failed machine validation.
pub fn parse_machine(input: &str) -> Result<Machine, ParseError> {
    parse_machine_with_spans(input).map(|(m, _)| m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn every_preset_round_trips_exactly() {
        for machine in presets::all() {
            let text = write_machine(&machine);
            let back = parse_machine(&text).unwrap();
            assert_eq!(back, machine, "preset `{}`", machine.name());
        }
    }

    #[test]
    fn class_references_by_name_are_resolved() {
        let text = "machine m\nclass alu count=2 pipelined\nclass div count=1 unpipelined\nop fdiv class=div latency=10\nop fadd class=alu latency=1\nop fmul class=alu latency=2\nop fsqrt class=div latency=20\nop load class=alu latency=2\nop store class=alu latency=1\nop ialu class=alu latency=1\nop copy class=alu latency=1\nop op class=alu latency=1\nend\n";
        let m = parse_machine(text).unwrap();
        assert_eq!(m.num_classes(), 2);
        assert_eq!(m.class_of(OpKind::FpDiv).index(), 1);
        assert!(!m.class(m.class_of(OpKind::FpDiv)).pipelined);
        assert_eq!(m.latency_of(OpKind::FpDiv), 10);
    }

    #[test]
    fn quoted_names_survive() {
        let mut m = write_machine(&presets::govindarajan());
        m = m.replace("machine govindarajan-4fu", "machine \"weird \\\"name\\\"\"");
        let back = parse_machine(&m).unwrap();
        assert_eq!(back.name(), "weird \"name\"");
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (text, line, needle) in [
            ("class alu count=1 pipelined\n", 1, "outside"),
            ("machine m\nclass alu pipelined\nend\n", 2, "count"),
            ("machine m\nclass alu count=1\nend\n", 2, "pipelined"),
            (
                "machine m\nop zzz class=0 latency=1\nend\n",
                2,
                "operation kind",
            ),
            (
                "machine m\nop fadd class=bogus latency=1\nend\n",
                2,
                "resource class",
            ),
            (
                "machine m\nclass alu count=1 pipelined\nop fadd class=0 latency=1\nend\n",
                4,
                "invalid machine",
            ),
            ("machine m\nmachine n\n", 2, "nested"),
            ("machine m\n", 0, "never closed"),
            ("", 0, "no `machine` block"),
            (
                "machine m\nclass alu count=1 pipelined\nwibble\n",
                3,
                "unknown keyword",
            ),
        ] {
            let err = parse_machine(text).unwrap_err();
            assert_eq!(err.line, line, "case {text:?}: {err}");
            assert!(
                err.to_string().contains(needle),
                "case {text:?}: `{err}` should mention {needle:?}"
            );
        }
    }

    #[test]
    fn errors_carry_columns_and_excerpts() {
        let text = "machine m\nop zzz class=0 latency=1\nend\n";
        let err = parse_machine(text).unwrap_err();
        let span = err.span.expect("token errors carry spans");
        assert_eq!((span.line, span.col), (2, 4));
        assert_eq!(&text[span.offset..span.offset + span.len], "zzz");
        assert!(err.to_string().contains("|  op zzz class=0 latency=1"));
    }

    #[test]
    fn with_spans_records_header_class_and_op_lines() {
        let text = write_machine(&presets::govindarajan());
        let (m, spans) = parse_machine_with_spans(&text).unwrap();
        assert_eq!(spans.header.line, 1);
        assert_eq!(spans.classes.len(), m.num_classes());
        for (i, s) in spans.classes.iter().enumerate() {
            assert_eq!(s.line, i + 2, "class lines follow the header in order");
            assert!(text[s.offset..s.offset + s.len].starts_with("class "));
        }
        for (k, s) in OpKind::ALL.iter().zip(&spans.ops) {
            let s = s.unwrap_or_else(|| panic!("{k:?} has an op line"));
            assert!(text[s.offset..].starts_with(&format!("op {}", k.mnemonic())));
        }
    }

    #[test]
    fn trailing_content_after_end_is_rejected() {
        let text = format!(
            "{}machine again\nend\n",
            write_machine(&presets::general_purpose())
        );
        let err = parse_machine(&text).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }
}
