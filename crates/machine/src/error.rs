//! Error type for machine-description construction.

use std::error::Error;
use std::fmt;

use hrms_ddg::OpKind;

/// Errors produced while building a [`crate::Machine`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MachineError {
    /// The machine has no functional-unit class at all.
    NoResources,
    /// A resource class was declared with a replication count of zero.
    EmptyClass {
        /// Name of the class.
        name: String,
    },
    /// An operation kind is not mapped to any resource class.
    UnmappedOp {
        /// The unmapped kind.
        kind: OpKind,
    },
    /// An operation kind was assigned latency zero.
    ZeroLatency {
        /// The offending kind.
        kind: OpKind,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::NoResources => write!(f, "machine has no functional units"),
            MachineError::EmptyClass { name } => {
                write!(f, "functional-unit class `{name}` has zero units")
            }
            MachineError::UnmappedOp { kind } => {
                write!(
                    f,
                    "operation kind `{kind}` is not mapped to any functional unit"
                )
            }
            MachineError::ZeroLatency { kind } => {
                write!(f, "operation kind `{kind}` was assigned latency zero")
            }
        }
    }
}

impl Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_subject() {
        assert!(MachineError::UnmappedOp {
            kind: OpKind::FpDiv
        }
        .to_string()
        .contains("fdiv"));
        assert!(MachineError::EmptyClass {
            name: "adders".into()
        }
        .to_string()
        .contains("adders"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: Error + Send + Sync>() {}
        takes_err::<MachineError>();
    }
}
