//! The machine model: resource classes, operation mapping and latencies.

use std::collections::HashMap;
use std::fmt;

use hrms_ddg::OpKind;

use crate::error::MachineError;

/// Identifier of a functional-unit class within one [`Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClassId(pub u32);

impl ClassId {
    /// Returns the id as a dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fu{}", self.0)
    }
}

/// A group of identical functional units.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ResourceClass {
    /// Human-readable name ("FP adder", "Load/Store", ...).
    pub name: String,
    /// Number of identical units of this class.
    pub count: u32,
    /// Whether the units are fully pipelined (a new operation can start
    /// every cycle) or busy for the whole latency of each operation.
    pub pipelined: bool,
}

impl ResourceClass {
    /// Creates a fully-pipelined resource class.
    pub fn pipelined(name: impl Into<String>, count: u32) -> Self {
        ResourceClass {
            name: name.into(),
            count,
            pipelined: true,
        }
    }

    /// Creates a non-pipelined resource class (each operation occupies a
    /// unit for its whole latency).
    pub fn unpipelined(name: impl Into<String>, count: u32) -> Self {
        ResourceClass {
            name: name.into(),
            count,
            pipelined: false,
        }
    }
}

/// A complete machine description.
///
/// Built with [`MachineBuilder`]; immutable afterwards.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Machine {
    name: String,
    classes: Vec<ResourceClass>,
    /// op kind -> class index
    op_class: HashMap<OpKind, u32>,
    /// op kind -> latency in cycles
    op_latency: HashMap<OpKind, u32>,
}

impl Machine {
    /// The machine's name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of functional-unit classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// All resource classes, indexed by [`ClassId`].
    #[inline]
    pub fn classes(&self) -> &[ResourceClass] {
        &self.classes
    }

    /// The resource class with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn class(&self, id: ClassId) -> &ResourceClass {
        &self.classes[id.index()]
    }

    /// The class that executes operations of kind `kind`.
    #[inline]
    pub fn class_of(&self, kind: OpKind) -> ClassId {
        ClassId(self.op_class[&kind])
    }

    /// The latency of operations of kind `kind` on this machine.
    #[inline]
    pub fn latency_of(&self, kind: OpKind) -> u32 {
        self.op_latency[&kind]
    }

    /// The number of cycles an operation of kind `kind` keeps one unit of
    /// its class busy: 1 for pipelined classes, the full latency for
    /// non-pipelined classes.
    pub fn occupancy_of(&self, kind: OpKind) -> u32 {
        let class = self.class(self.class_of(kind));
        if class.pipelined {
            1
        } else {
            self.latency_of(kind)
        }
    }

    /// Total number of functional units (all classes).
    pub fn total_units(&self) -> u32 {
        self.classes.iter().map(|c| c.count).sum()
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "machine `{}`:", self.name)?;
        for (i, c) in self.classes.iter().enumerate() {
            writeln!(
                f,
                "  fu{}: {} x{} ({})",
                i,
                c.name,
                c.count,
                if c.pipelined {
                    "pipelined"
                } else {
                    "not pipelined"
                }
            )?;
        }
        Ok(())
    }
}

/// Builder for [`Machine`] values.
///
/// # Example
///
/// ```
/// use hrms_machine::{MachineBuilder, ResourceClass};
/// use hrms_ddg::OpKind;
///
/// # fn main() -> Result<(), hrms_machine::MachineError> {
/// let m = MachineBuilder::new("toy")
///     .class(ResourceClass::pipelined("alu", 2))
///     .map_all_remaining_to(0, 1)
///     .latency(OpKind::Load, 3)
///     .build()?;
/// assert_eq!(m.latency_of(OpKind::Load), 3);
/// assert_eq!(m.latency_of(OpKind::FpAdd), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    name: String,
    classes: Vec<ResourceClass>,
    op_class: HashMap<OpKind, u32>,
    op_latency: HashMap<OpKind, u32>,
}

impl MachineBuilder {
    /// Starts a new machine description.
    pub fn new(name: impl Into<String>) -> Self {
        MachineBuilder {
            name: name.into(),
            classes: Vec::new(),
            op_class: HashMap::new(),
            op_latency: HashMap::new(),
        }
    }

    /// Adds a resource class and returns the builder. The class gets the
    /// next dense [`ClassId`] (0, 1, 2, ...).
    pub fn class(mut self, class: ResourceClass) -> Self {
        self.classes.push(class);
        self
    }

    /// Maps an operation kind to the class with index `class_index` and sets
    /// its latency.
    pub fn map(mut self, kind: OpKind, class_index: u32, latency: u32) -> Self {
        self.op_class.insert(kind, class_index);
        self.op_latency.insert(kind, latency);
        self
    }

    /// Overrides the latency of an already-mapped kind (or pre-sets it for a
    /// kind that will be mapped by [`MachineBuilder::map_all_remaining_to`]).
    pub fn latency(mut self, kind: OpKind, latency: u32) -> Self {
        self.op_latency.insert(kind, latency);
        self
    }

    /// Maps every not-yet-mapped operation kind to `class_index` with
    /// `default_latency` (unless a latency was already set with
    /// [`MachineBuilder::latency`]).
    pub fn map_all_remaining_to(mut self, class_index: u32, default_latency: u32) -> Self {
        for kind in OpKind::ALL {
            self.op_class.entry(kind).or_insert(class_index);
            self.op_latency.entry(kind).or_insert(default_latency);
        }
        self
    }

    /// Validates and produces the [`Machine`].
    ///
    /// # Errors
    ///
    /// * [`MachineError::NoResources`] if no class was added.
    /// * [`MachineError::EmptyClass`] if a class has zero units.
    /// * [`MachineError::UnmappedOp`] if some [`OpKind`] has no class.
    /// * [`MachineError::ZeroLatency`] if some [`OpKind`] has latency 0.
    pub fn build(self) -> Result<Machine, MachineError> {
        if self.classes.is_empty() {
            return Err(MachineError::NoResources);
        }
        for c in &self.classes {
            if c.count == 0 {
                return Err(MachineError::EmptyClass {
                    name: c.name.clone(),
                });
            }
        }
        for kind in OpKind::ALL {
            let class = self
                .op_class
                .get(&kind)
                .copied()
                .ok_or(MachineError::UnmappedOp { kind })?;
            if class as usize >= self.classes.len() {
                return Err(MachineError::UnmappedOp { kind });
            }
            let lat = self
                .op_latency
                .get(&kind)
                .copied()
                .ok_or(MachineError::UnmappedOp { kind })?;
            if lat == 0 {
                return Err(MachineError::ZeroLatency { kind });
            }
        }
        Ok(Machine {
            name: self.name,
            classes: self.classes,
            op_class: self.op_class,
            op_latency: self.op_latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_working_machine() {
        let m = MachineBuilder::new("toy")
            .class(ResourceClass::pipelined("alu", 2))
            .class(ResourceClass::unpipelined("div", 1))
            .map(OpKind::FpDiv, 1, 10)
            .map_all_remaining_to(0, 2)
            .build()
            .unwrap();
        assert_eq!(m.num_classes(), 2);
        assert_eq!(m.class_of(OpKind::FpDiv), ClassId(1));
        assert_eq!(m.class_of(OpKind::FpAdd), ClassId(0));
        assert_eq!(m.latency_of(OpKind::FpDiv), 10);
        assert_eq!(m.occupancy_of(OpKind::FpDiv), 10, "non-pipelined");
        assert_eq!(m.occupancy_of(OpKind::FpAdd), 1, "pipelined");
        assert_eq!(m.total_units(), 3);
        assert_eq!(m.name(), "toy");
    }

    #[test]
    fn missing_class_is_an_error() {
        let err = MachineBuilder::new("none").build().unwrap_err();
        assert_eq!(err, MachineError::NoResources);
    }

    #[test]
    fn zero_count_class_is_an_error() {
        let err = MachineBuilder::new("zero")
            .class(ResourceClass::pipelined("alu", 0))
            .map_all_remaining_to(0, 1)
            .build()
            .unwrap_err();
        assert!(matches!(err, MachineError::EmptyClass { .. }));
    }

    #[test]
    fn unmapped_op_is_an_error() {
        let err = MachineBuilder::new("partial")
            .class(ResourceClass::pipelined("alu", 1))
            .map(OpKind::FpAdd, 0, 1)
            .build()
            .unwrap_err();
        assert!(matches!(err, MachineError::UnmappedOp { .. }));
    }

    #[test]
    fn out_of_range_class_is_an_error() {
        let err = MachineBuilder::new("oob")
            .class(ResourceClass::pipelined("alu", 1))
            .map(OpKind::FpAdd, 7, 1)
            .map_all_remaining_to(0, 1)
            .build()
            .unwrap_err();
        assert!(matches!(err, MachineError::UnmappedOp { .. }));
    }

    #[test]
    fn zero_latency_is_an_error() {
        let err = MachineBuilder::new("zl")
            .class(ResourceClass::pipelined("alu", 1))
            .map(OpKind::FpAdd, 0, 0)
            .map_all_remaining_to(0, 1)
            .build()
            .unwrap_err();
        assert!(matches!(err, MachineError::ZeroLatency { .. }));
    }

    #[test]
    fn latency_override_wins_over_default() {
        let m = MachineBuilder::new("ovr")
            .class(ResourceClass::pipelined("alu", 1))
            .latency(OpKind::Load, 5)
            .map_all_remaining_to(0, 1)
            .build()
            .unwrap();
        assert_eq!(m.latency_of(OpKind::Load), 5);
        assert_eq!(m.latency_of(OpKind::Store), 1);
    }

    #[test]
    fn display_lists_classes() {
        let m = MachineBuilder::new("disp")
            .class(ResourceClass::pipelined("alu", 4))
            .map_all_remaining_to(0, 2)
            .build()
            .unwrap();
        let s = m.to_string();
        assert!(s.contains("disp"));
        assert!(s.contains("alu"));
        assert!(s.contains("x4"));
    }
}
