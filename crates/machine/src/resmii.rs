//! Resource-constrained lower bound on the initiation interval (`ResMII`).

use hrms_ddg::Ddg;

use crate::machine::Machine;

/// Computes the resource-constrained minimum initiation interval of `ddg` on
/// `machine`.
///
/// For each functional-unit class the total occupancy of the loop body
/// (1 cycle per operation on pipelined classes, the full latency on
/// non-pipelined classes) is divided by the number of units and rounded up;
/// `ResMII` is the maximum over all classes:
///
/// ```text
/// ResMII = max_c ceil( Σ_{op mapped to c} occupancy(op) / count(c) )
/// ```
///
/// The motivating example of the paper (7 operations on 4 general-purpose
/// units) yields `ResMII = ceil(7/4) = 2`.
pub fn res_mii(ddg: &Ddg, machine: &Machine) -> u32 {
    let mut occupancy = vec![0u64; machine.num_classes()];
    for (_, node) in ddg.nodes() {
        let class = machine.class_of(node.kind());
        occupancy[class.index()] += u64::from(machine.occupancy_of(node.kind()));
    }
    let mut res = 0u64;
    for (i, class) in machine.classes().iter().enumerate() {
        let bound = occupancy[i].div_ceil(u64::from(class.count));
        res = res.max(bound);
    }
    res.max(1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use hrms_ddg::{DdgBuilder, OpKind};

    #[test]
    fn seven_ops_on_four_units_give_res_mii_two() {
        // The paper's motivating example: MII = ceil(7/4) = 2.
        let mut b = DdgBuilder::new("seven");
        for i in 0..7 {
            b.node(format!("op{i}"), OpKind::FpAdd, 2);
        }
        let g = b.build().unwrap();
        assert_eq!(res_mii(&g, &presets::general_purpose()), 2);
    }

    #[test]
    fn bottleneck_class_determines_res_mii() {
        // 3 loads and 1 add on the Govindarajan machine: the single
        // load/store unit is the bottleneck.
        let mut b = DdgBuilder::new("loads");
        for i in 0..3 {
            b.node(format!("ld{i}"), OpKind::Load, 2);
        }
        b.node("add", OpKind::FpAdd, 1);
        let g = b.build().unwrap();
        assert_eq!(res_mii(&g, &presets::govindarajan()), 3);
    }

    #[test]
    fn non_pipelined_units_count_full_latency() {
        // 1 division on the perfect-club machine occupies one of the two
        // non-pipelined div/sqrt units for 17 cycles -> ceil(17/2) = 9.
        let mut b = DdgBuilder::new("div");
        b.node("div", OpKind::FpDiv, 17);
        let g = b.build().unwrap();
        assert_eq!(res_mii(&g, &presets::perfect_club()), 9);
    }

    #[test]
    fn res_mii_is_at_least_one() {
        let mut b = DdgBuilder::new("single");
        b.node("add", OpKind::FpAdd, 1);
        let g = b.build().unwrap();
        assert_eq!(res_mii(&g, &presets::perfect_club()), 1);
    }

    #[test]
    fn pipelined_divider_counts_single_cycle() {
        // On the Govindarajan machine the divider is pipelined: 2 divisions
        // need only 2 issue slots on it.
        let mut b = DdgBuilder::new("divs");
        b.node("div0", OpKind::FpDiv, 17);
        b.node("div1", OpKind::FpDiv, 17);
        let g = b.build().unwrap();
        assert_eq!(res_mii(&g, &presets::govindarajan()), 2);
    }
}
