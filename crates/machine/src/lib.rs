//! Machine descriptions for the HRMS modulo-scheduling reproduction.
//!
//! A [`Machine`] describes the execution resources of the target processor:
//! a set of [`ResourceClass`]es (functional-unit groups with a replication
//! count and a pipelining flag), a mapping from [`hrms_ddg::OpKind`] to the
//! class that executes it, and per-kind latencies.
//!
//! Three preset machines mirror the configurations used in the paper:
//!
//! * [`presets::general_purpose`] — Section 2.1's motivating-example machine:
//!   4 fully-pipelined general-purpose units, every operation has latency 2.
//! * [`presets::govindarajan`] — Section 4.1 / Table 1: 1 FP adder, 1 FP
//!   multiplier, 1 FP divider, 1 load/store unit; add/sub/store latency 1,
//!   mul/load latency 2, div latency 17.
//! * [`presets::perfect_club`] — Section 4.2: 2 load/store units, 2 adders,
//!   2 multipliers and 2 non-pipelined div/sqrt units; store latency 1, load
//!   2, add/mul 4, div 17, sqrt 30.
//!
//! # Example
//!
//! ```
//! use hrms_machine::presets;
//! use hrms_ddg::OpKind;
//!
//! let m = presets::govindarajan();
//! assert_eq!(m.latency_of(OpKind::FpDiv), 17);
//! assert_eq!(m.class_of(OpKind::Load), m.class_of(OpKind::Store));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fingerprint;
pub mod machine;
pub mod presets;
pub mod resmii;
pub mod textfmt;

pub use error::MachineError;
pub use fingerprint::machine_fingerprint;
pub use machine::{ClassId, Machine, MachineBuilder, ResourceClass};
pub use resmii::res_mii;
pub use textfmt::{parse_machine, parse_machine_with_spans, write_machine, MachineSpans};

use hrms_ddg::{Ddg, DdgBuilder};

/// Rebuilds `ddg` with every node's latency replaced by the machine's
/// latency for its operation kind.
///
/// Workload graphs are often defined once and then scheduled for several
/// machine configurations; this helper keeps the graph description and the
/// timing model separate.
///
/// # Errors
///
/// Propagates [`hrms_ddg::DdgError`] if the rebuilt graph is invalid (this
/// can only happen if the machine assigns a zero latency, which
/// [`MachineBuilder`] rejects).
pub fn apply_latencies(machine: &Machine, ddg: &Ddg) -> Result<Ddg, hrms_ddg::DdgError> {
    let mut b = DdgBuilder::new(ddg.name());
    for (_, node) in ddg.nodes() {
        let id = if node.defines_value() {
            b.node(node.name(), node.kind(), machine.latency_of(node.kind()))
        } else {
            b.node_no_result(node.name(), node.kind(), machine.latency_of(node.kind()))
        };
        b.node_invariant_uses(id, node.invariant_uses());
    }
    for (_, e) in ddg.edges() {
        b.edge(e.source(), e.target(), e.kind(), e.distance())?;
    }
    b.invariants(ddg.num_invariants());
    b.iteration_count(ddg.iteration_count());
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DepKind, OpKind};

    #[test]
    fn apply_latencies_rewrites_nodes() {
        let mut b = DdgBuilder::new("g");
        let a = b.node("a", OpKind::FpAdd, 99);
        let s = b.node("s", OpKind::Store, 99);
        b.edge(a, s, DepKind::RegFlow, 0).unwrap();
        b.invariants(2);
        b.iteration_count(7);
        let g = b.build().unwrap();

        let m = presets::perfect_club();
        let g2 = apply_latencies(&m, &g).unwrap();
        assert_eq!(g2.node(a).latency(), 4);
        assert_eq!(g2.node(s).latency(), 1);
        assert_eq!(g2.num_edges(), 1);
        assert_eq!(g2.num_invariants(), 2);
        assert_eq!(g2.iteration_count(), 7);
        assert!(!g2.node(s).defines_value());
    }
}
