//! Structural fingerprints of machine descriptions.
//!
//! The companion of [`hrms_ddg::ddg_fingerprint`] on the machine side: a
//! stable 64-bit FNV-1a digest over everything that affects scheduling
//! results (resource classes, operation→class mapping and latencies).
//! Combined with a loop digest and a scheduler name via
//! [`hrms_ddg::cache_key`], it makes schedule reports content-addressable —
//! two runs with equal keys saw byte-identical inputs.

use hrms_ddg::{Fnv64, OpKind};

use crate::machine::Machine;

/// Computes the stable structural digest of a machine description.
///
/// Two machines compare equal under this digest exactly when they have the
/// same name, the same resource classes in the same [`crate::ClassId`]
/// order, and the same class/latency for every [`OpKind`]. The digest is
/// part of the on-disk format contract (`docs/FORMATS.md`) and must not
/// change between releases.
pub fn machine_fingerprint(machine: &Machine) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(machine.name());
    h.write_u32(machine.num_classes() as u32);
    for class in machine.classes() {
        h.write_str(&class.name);
        h.write_u32(class.count);
        h.write_bool(class.pipelined);
    }
    for kind in OpKind::ALL {
        h.write_str(kind.mnemonic());
        h.write_u32(machine.class_of(kind).0);
        h.write_u32(machine.latency_of(kind));
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::textfmt::{parse_machine, write_machine};

    #[test]
    fn presets_have_distinct_digests() {
        let digests: Vec<u64> = presets::all().iter().map(machine_fingerprint).collect();
        for (i, a) in digests.iter().enumerate() {
            for b in &digests[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn digest_is_stable_across_round_trips() {
        for machine in presets::all() {
            let back = parse_machine(&write_machine(&machine)).unwrap();
            assert_eq!(
                machine_fingerprint(&back),
                machine_fingerprint(&machine),
                "preset `{}`",
                machine.name()
            );
        }
    }

    #[test]
    fn digest_depends_on_structure() {
        let base = machine_fingerprint(&presets::general_purpose());
        assert_ne!(
            base,
            machine_fingerprint(&presets::general_purpose_n(4, 3)),
            "latency change must alter the digest"
        );
        assert_ne!(
            base,
            machine_fingerprint(&presets::general_purpose_n(8, 2)),
            "unit-count change must alter the digest"
        );
    }
}
