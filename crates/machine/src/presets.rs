//! The machine configurations used in the paper's evaluation.

use hrms_ddg::OpKind;

use crate::machine::{Machine, MachineBuilder, ResourceClass};

/// The motivating-example machine of Section 2.1: `n` general-purpose,
/// fully-pipelined functional units where every operation takes `latency`
/// cycles. The paper uses `general_purpose_n(4)` with latency 2.
pub fn general_purpose_n(units: u32, latency: u32) -> Machine {
    MachineBuilder::new(format!("general-{units}xL{latency}"))
        .class(ResourceClass::pipelined("general", units))
        .map_all_remaining_to(0, latency)
        .build()
        .expect("preset machines are always valid")
}

/// The exact Section 2.1 configuration: 4 general-purpose pipelined units,
/// latency 2 for every operation.
pub fn general_purpose() -> Machine {
    general_purpose_n(4, 2)
}

/// The Table 1 / Section 4.1 machine (the configuration of Govindarajan,
/// Altman and Gao's SPILP study): one FP adder, one FP multiplier, one FP
/// divider and one load/store unit, all fully pipelined.
///
/// Latencies: add/sub/store = 1, multiply/load = 2, divide = 17. Integer
/// operations and copies execute on the adder with latency 1; square roots
/// (not present in these loops) are mapped onto the divider.
pub fn govindarajan() -> Machine {
    MachineBuilder::new("govindarajan-4fu")
        .class(ResourceClass::pipelined("fp-add", 1)) // 0
        .class(ResourceClass::pipelined("fp-mul", 1)) // 1
        .class(ResourceClass::pipelined("fp-div", 1)) // 2
        .class(ResourceClass::pipelined("load-store", 1)) // 3
        .map(OpKind::FpAdd, 0, 1)
        .map(OpKind::FpMul, 1, 2)
        .map(OpKind::FpDiv, 2, 17)
        .map(OpKind::FpSqrt, 2, 17)
        .map(OpKind::Load, 3, 2)
        .map(OpKind::Store, 3, 1)
        .map(OpKind::IntAlu, 0, 1)
        .map(OpKind::Copy, 0, 1)
        .map(OpKind::Other, 0, 1)
        .build()
        .expect("preset machines are always valid")
}

/// The Section 4.2 machine used for the Perfect-Club evaluation: 2 load/store
/// units, 2 adders, 2 multipliers and 2 divide/square-root units. All units
/// are fully pipelined **except** the div/sqrt units.
///
/// Latencies: store = 1, load = 2, add = 4, multiply = 4, divide = 17,
/// square root = 30. Integer operations and copies execute on the adders
/// with latency 1.
pub fn perfect_club() -> Machine {
    MachineBuilder::new("perfect-club-8fu")
        .class(ResourceClass::pipelined("load-store", 2)) // 0
        .class(ResourceClass::pipelined("fp-add", 2)) // 1
        .class(ResourceClass::pipelined("fp-mul", 2)) // 2
        .class(ResourceClass::unpipelined("fp-div-sqrt", 2)) // 3
        .map(OpKind::Load, 0, 2)
        .map(OpKind::Store, 0, 1)
        .map(OpKind::FpAdd, 1, 4)
        .map(OpKind::IntAlu, 1, 1)
        .map(OpKind::Copy, 1, 1)
        .map(OpKind::Other, 1, 1)
        .map(OpKind::FpMul, 2, 4)
        .map(OpKind::FpDiv, 3, 17)
        .map(OpKind::FpSqrt, 3, 30)
        .build()
        .expect("preset machines are always valid")
}

/// A wide machine (2x the Perfect-Club configuration) used by the ablation
/// benches to study how register pressure scales with issue width — the
/// trend that motivates the paper (register pressure grows with concurrency).
pub fn perfect_club_wide() -> Machine {
    MachineBuilder::new("perfect-club-16fu")
        .class(ResourceClass::pipelined("load-store", 4))
        .class(ResourceClass::pipelined("fp-add", 4))
        .class(ResourceClass::pipelined("fp-mul", 4))
        .class(ResourceClass::unpipelined("fp-div-sqrt", 4))
        .map(OpKind::Load, 0, 2)
        .map(OpKind::Store, 0, 1)
        .map(OpKind::FpAdd, 1, 4)
        .map(OpKind::IntAlu, 1, 1)
        .map(OpKind::Copy, 1, 1)
        .map(OpKind::Other, 1, 1)
        .map(OpKind::FpMul, 2, 4)
        .map(OpKind::FpDiv, 3, 17)
        .map(OpKind::FpSqrt, 3, 30)
        .build()
        .expect("preset machines are always valid")
}

/// CLI slugs of the nullary presets, in the order reported by [`all`].
///
/// These are the names accepted by [`by_name`] and by `hrms schedule
/// --machine <preset>`; the parameterised [`general_purpose_n`] family is
/// only reachable through a `.machine` file.
pub const PRESET_NAMES: [&str; 4] = [
    "general-purpose",
    "govindarajan",
    "perfect-club",
    "perfect-club-wide",
];

/// Resolves a preset by its [`PRESET_NAMES`] slug.
///
/// Returns `None` for unknown names; callers (the CLI, tests) decide how to
/// report that, typically by listing [`PRESET_NAMES`].
pub fn by_name(name: &str) -> Option<Machine> {
    match name {
        "general-purpose" => Some(general_purpose()),
        "govindarajan" => Some(govindarajan()),
        "perfect-club" => Some(perfect_club()),
        "perfect-club-wide" => Some(perfect_club_wide()),
        _ => None,
    }
}

/// All nullary presets, in [`PRESET_NAMES`] order.
pub fn all() -> Vec<Machine> {
    PRESET_NAMES
        .iter()
        .map(|n| by_name(n).expect("every listed preset resolves"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::ClassId;

    #[test]
    fn general_purpose_has_four_units_latency_two() {
        let m = general_purpose();
        assert_eq!(m.num_classes(), 1);
        assert_eq!(m.classes()[0].count, 4);
        for kind in OpKind::ALL {
            assert_eq!(m.latency_of(kind), 2);
            assert_eq!(m.class_of(kind), ClassId(0));
        }
    }

    #[test]
    fn govindarajan_latencies_match_the_paper() {
        let m = govindarajan();
        assert_eq!(m.latency_of(OpKind::FpAdd), 1);
        assert_eq!(m.latency_of(OpKind::Store), 1);
        assert_eq!(m.latency_of(OpKind::FpMul), 2);
        assert_eq!(m.latency_of(OpKind::Load), 2);
        assert_eq!(m.latency_of(OpKind::FpDiv), 17);
        assert_eq!(m.total_units(), 4);
        // every class is pipelined
        assert!(m.classes().iter().all(|c| c.pipelined));
    }

    #[test]
    fn perfect_club_latencies_match_the_paper() {
        let m = perfect_club();
        assert_eq!(m.latency_of(OpKind::Store), 1);
        assert_eq!(m.latency_of(OpKind::Load), 2);
        assert_eq!(m.latency_of(OpKind::FpAdd), 4);
        assert_eq!(m.latency_of(OpKind::FpMul), 4);
        assert_eq!(m.latency_of(OpKind::FpDiv), 17);
        assert_eq!(m.latency_of(OpKind::FpSqrt), 30);
        assert_eq!(m.total_units(), 8);
    }

    #[test]
    fn perfect_club_div_sqrt_is_not_pipelined() {
        let m = perfect_club();
        let div_class = m.class(m.class_of(OpKind::FpDiv));
        assert!(!div_class.pipelined);
        assert_eq!(m.occupancy_of(OpKind::FpDiv), 17);
        assert_eq!(m.occupancy_of(OpKind::FpSqrt), 30);
        assert_eq!(m.occupancy_of(OpKind::FpMul), 1);
    }

    #[test]
    fn wide_machine_doubles_units() {
        let m = perfect_club_wide();
        assert_eq!(m.total_units(), 16);
    }

    #[test]
    fn loads_and_stores_share_a_unit_on_both_machines() {
        for m in [govindarajan(), perfect_club()] {
            assert_eq!(m.class_of(OpKind::Load), m.class_of(OpKind::Store));
        }
    }

    #[test]
    fn every_preset_name_resolves_and_unknown_names_do_not() {
        assert_eq!(all().len(), PRESET_NAMES.len());
        for (slug, machine) in PRESET_NAMES.iter().zip(all()) {
            assert_eq!(by_name(slug).unwrap(), machine);
        }
        assert!(by_name("bogus").is_none());
        assert!(by_name("govindarajan-4fu").is_none(), "slugs, not names");
    }
}
