//! Hypernode Reduction Modulo Scheduling (HRMS).
//!
//! This crate implements the paper's contribution: a software-pipelining
//! heuristic that minimises the register pressure of the generated schedule
//! without sacrificing the initiation interval. It is split into the same
//! two phases as the paper:
//!
//! 1. **Pre-ordering** ([`preorder`]): nodes are ordered by iteratively
//!    *reducing* them into a growing hypernode, alternating between the
//!    hypernode's predecessors (ordered sinks-first, `PALA`) and successors
//!    (ordered sources-first, `ASAP`), with recurrence circuits handled
//!    first in decreasing `RecMII` order. The resulting order guarantees
//!    that every node (except the first, and nodes closing a recurrence) has
//!    a *reference* neighbour already in the partial schedule, and never has
//!    both predecessors and successors there.
//! 2. **Scheduling** ([`scheduler`]): nodes are placed in that order, as
//!    soon as possible when their reference is a predecessor and as late as
//!    possible when it is a successor, within a window of II cycles; if a
//!    node cannot be placed the II is increased and the placement restarts
//!    (the ordering is reused).
//!
//! The scheduler implements [`hrms_modsched::ModuloScheduler`], so it is
//! interchangeable with the baseline schedulers of `hrms-baselines`.
//!
//! # Dense fast path
//!
//! The pre-ordering phase runs on the dense bitset/CSR machinery of
//! [`hrms_ddg::dense`] (see [`workgraph`]); the original hash-based
//! implementation is preserved in [`legacy`] and produces byte-identical
//! results. Building with the `verify-dense` feature cross-checks every
//! ordering against the legacy path with a debug assertion (CI does this on
//! the whole test suite).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod legacy;
pub mod preorder;
pub mod scheduler;
pub mod workgraph;

pub use legacy::{pre_order_legacy, pre_order_legacy_with, LegacyWorkGraph};
pub use preorder::{pre_order, pre_order_with, PreOrderOptions, PreOrdering, StartNodePolicy};
pub use scheduler::{
    phase_split, program_order_scheduler, schedule_at_ii, schedule_at_ii_reference,
    schedule_at_ii_with, HrmsOptions, HrmsScheduler, OrderingMode,
};
pub use workgraph::WorkGraph;
