//! The original `HashMap`/`BTreeSet`-based pre-ordering implementation,
//! preserved verbatim (modulo the shared disconnected-remainder bugfix) as
//! the reference for differential testing of the dense fast path.
//!
//! [`crate::preorder`] now runs on the dense bitset representation of
//! [`crate::workgraph`]; this module keeps the pointer-chasing original so
//! that
//!
//! * the differential tests (and the `verify-dense` feature gate) can assert
//!   the two paths produce **byte-identical** [`PreOrdering`] results on the
//!   reference suite and on thousands of generated loops, and
//! * the stress benchmarks can measure the speedup of the dense path against
//!   a faithful baseline.
//!
//! Do not extend this module with new functionality: algorithmic changes go
//! to [`crate::preorder`] and must be mirrored here only when they change
//! the *output* (as the fallback-reference bugfix did), so the two paths
//! keep agreeing.

use std::collections::{BTreeSet, HashMap, HashSet};

use hrms_ddg::{
    search_all_paths, sort_asap, sort_pala, CycleRatios, Ddg, GraphView, NodeId, RecurrenceInfo,
};

use crate::preorder::{backward_edges, PreOrderOptions, PreOrdering};

/// Pre-orders the nodes of `ddg` with the default options, using the legacy
/// hash-based work graph. Produces exactly the same result as
/// [`crate::preorder::pre_order`].
pub fn pre_order_legacy(ddg: &Ddg) -> PreOrdering {
    pre_order_legacy_with(ddg, &PreOrderOptions::default())
}

/// Pre-orders the nodes of `ddg` using the legacy hash-based work graph.
/// Produces exactly the same result as [`crate::preorder::pre_order_with`].
pub fn pre_order_legacy_with(ddg: &Ddg, options: &PreOrderOptions) -> PreOrdering {
    let rec_info = RecurrenceInfo::analyze(ddg);
    let dropped = backward_edges(ddg);
    let simplified = rec_info.simplified_node_lists();

    // Components ordered by the most restrictive recurrence they contain.
    let mut components = ddg.connected_components();
    let component_priority: Vec<u64> = components
        .iter()
        .map(|comp| {
            let members: HashSet<NodeId> = comp.iter().copied().collect();
            rec_info
                .subgraphs
                .iter()
                .filter(|sg| sg.nodes.iter().all(|n| members.contains(n)))
                .map(|sg| sg.rec_mii)
                .max()
                .unwrap_or(0)
        })
        .collect();
    let mut component_order: Vec<usize> = (0..components.len()).collect();
    component_order.sort_by(|&a, &b| {
        component_priority[b]
            .cmp(&component_priority[a])
            .then_with(|| components[a][0].cmp(&components[b][0]))
    });
    let num_components = components.len();

    let mut order: Vec<NodeId> = Vec::with_capacity(ddg.num_nodes());
    let mut ordered: HashSet<NodeId> = HashSet::with_capacity(ddg.num_nodes());
    let mut recurrence_subgraphs = 0usize;

    for ci in component_order {
        let component = std::mem::take(&mut components[ci]);
        let member_set: HashSet<NodeId> = component.iter().copied().collect();
        let mut work = LegacyWorkGraph::new(ddg, &component, &dropped);

        // Recurrence subgraph node lists that live in this component,
        // already sorted by decreasing RecMII by `simplified_node_lists`.
        let lists: Vec<&Vec<NodeId>> = simplified
            .iter()
            .filter(|l| member_set.contains(&l[0]))
            .collect();

        let h = if let Some(first_list) = lists.first() {
            recurrence_subgraphs += lists.len();
            // --- Ordering_Recurrences (Section 3.2) ---
            let h = first_list[0];
            push(&mut order, &mut ordered, h);
            // Order the most restrictive recurrence subgraph on its own.
            let region: BTreeSet<NodeId> = first_list.iter().copied().collect();
            order_region(ddg, &mut work, &region, h, &mut order, &mut ordered);

            // Then bring in the remaining recurrence subgraphs one by one,
            // together with the nodes on paths connecting them to the
            // hypernode.
            for list in lists.iter().skip(1) {
                let mut seeds: Vec<NodeId> = vec![h];
                seeds.extend(list.iter().copied());
                let mut region: BTreeSet<NodeId> =
                    search_all_paths(&work, &seeds).into_iter().collect();
                region.extend(list.iter().copied());
                region.insert(h);
                order_region(ddg, &mut work, &region, h, &mut order, &mut ordered);
            }
            h
        } else {
            // No recurrences: pick the initial hypernode per policy.
            let h = options.start_node.pick(&component);
            push(&mut order, &mut ordered, h);
            h
        };

        // Order whatever is left of the component around the hypernode
        // (Section 3.1).
        pre_order_connected(ddg, &mut work, h, &mut order, &mut ordered);
    }

    PreOrdering {
        order,
        components: num_components,
        recurrence_subgraphs,
        // The legacy path is the only one that can truncate: Johnson's
        // enumeration is budgeted, and a hit budget means the recurrence
        // priority above was computed from a circuit subset.
        truncated: rec_info.truncated,
        // The per-node criticality is a graph fact, not an ordering-path
        // fact: both paths report the same cycle-ratio analysis, so the
        // differential suites keep comparing whole `PreOrdering` values.
        // The fresh analysis (own Tarjan + per-edge DPs) is accepted here:
        // its cost scales with the backward-edge count, which stays small
        // on every corpus this test-only path runs on (< 5% of the
        // hash-based ordering above on the stress preset), and the whole
        // path is slated for retirement (ROADMAP).
        node_criticality: CycleRatios::analyze(ddg).per_node().to_vec(),
    }
}

fn push(order: &mut Vec<NodeId>, ordered: &mut HashSet<NodeId>, n: NodeId) {
    order.push(n);
    ordered.insert(n);
}

/// Orders the sub-region `region` of `work` around the hypernode `h`.
fn order_region(
    ddg: &Ddg,
    work: &mut LegacyWorkGraph,
    region: &BTreeSet<NodeId>,
    h: NodeId,
    order: &mut Vec<NodeId>,
    ordered: &mut HashSet<NodeId>,
) {
    let mut temp = work.restricted(region);
    temp.ensure_node(h);
    pre_order_connected(ddg, &mut temp, h, order, ordered);
    let others: Vec<NodeId> = region.iter().copied().filter(|&n| n != h).collect();
    for &n in &others {
        work.ensure_node(n);
    }
    work.reduce(&others, h);
}

/// Whether `n` has any neighbour (predecessor or successor in the full,
/// undropped dependence graph) that is already ordered.
fn has_ordered_reference(ddg: &Ddg, n: NodeId, ordered: &HashSet<NodeId>) -> bool {
    ddg.predecessors(n)
        .into_iter()
        .chain(ddg.successors(n))
        .any(|m| ordered.contains(&m))
}

/// The paper's `Pre_Ordering` function (Figure 5) on the legacy work graph.
fn pre_order_connected(
    ddg: &Ddg,
    work: &mut LegacyWorkGraph,
    h: NodeId,
    order: &mut Vec<NodeId>,
    ordered: &mut HashSet<NodeId>,
) {
    loop {
        let preds = work.predecessors_of(h);
        if !preds.is_empty() {
            let region = neighbour_region(work, h, &preds);
            let sorted = sort_pala(&work.without(h), &region)
                .expect("the work graph is acyclic once backward edges are removed");
            work.reduce(&region, h);
            for n in sorted {
                push(order, ordered, n);
            }
        }

        let succs = work.successors_of(h);
        if !succs.is_empty() {
            let region = neighbour_region(work, h, &succs);
            let sorted = sort_asap(&work.without(h), &region)
                .expect("the work graph is acyclic once backward edges are removed");
            work.reduce(&region, h);
            for n in sorted {
                push(order, ordered, n);
            }
        }

        if work.predecessors_of(h).is_empty() && work.successors_of(h).is_empty() {
            if work.len() <= 1 {
                break;
            }
            // Disconnected remainder (only reachable through dropped backward
            // edges): absorb the lowest-numbered remaining node that has an
            // already-ordered neighbour in the *undropped* graph, so it still
            // gets a reference operation; fall back to the lowest-numbered
            // node only for truly disconnected leftovers.
            let remaining: Vec<NodeId> = work.nodes().into_iter().filter(|&n| n != h).collect();
            let next = remaining
                .iter()
                .copied()
                .find(|&n| has_ordered_reference(ddg, n, ordered))
                .unwrap_or_else(|| remaining[0]);
            push(order, ordered, next);
            work.reduce(&[next], h);
        }
    }
}

/// The region absorbed together with the hypernode's predecessors
/// (successors): the neighbours themselves plus every node lying on a path
/// among them or between them and the hypernode.
fn neighbour_region(work: &LegacyWorkGraph, h: NodeId, neighbours: &[NodeId]) -> Vec<NodeId> {
    let mut seeds: Vec<NodeId> = neighbours.to_vec();
    seeds.push(h);
    let mut region: Vec<NodeId> = search_all_paths(work, &seeds)
        .into_iter()
        .filter(|&n| n != h)
        .collect();
    region.sort();
    region
}

/// The original hash-based mutable work graph (see [`crate::WorkGraph`] for
/// the dense replacement and the documentation of the reduction operation).
#[derive(Debug, Clone)]
pub struct LegacyWorkGraph {
    /// Successor sets, keyed by live node. `BTreeSet` keeps traversal
    /// deterministic.
    succs: HashMap<NodeId, BTreeSet<NodeId>>,
    /// Predecessor sets, keyed by live node.
    preds: HashMap<NodeId, BTreeSet<NodeId>>,
    /// Upper bound on node ids (from the original graph).
    bound: usize,
}

impl LegacyWorkGraph {
    /// Builds a work graph containing `members` and every edge of `ddg`
    /// whose endpoints are both in `members`, **excluding** the edges listed
    /// in `dropped_edges` (the backward edges of recurrence circuits) and
    /// self-loops.
    pub fn new(ddg: &Ddg, members: &[NodeId], dropped_edges: &HashSet<hrms_ddg::EdgeId>) -> Self {
        let member_set: BTreeSet<NodeId> = members.iter().copied().collect();
        let mut succs: HashMap<NodeId, BTreeSet<NodeId>> = HashMap::new();
        let mut preds: HashMap<NodeId, BTreeSet<NodeId>> = HashMap::new();
        for &m in &member_set {
            succs.insert(m, BTreeSet::new());
            preds.insert(m, BTreeSet::new());
        }
        for (eid, e) in ddg.edges() {
            if dropped_edges.contains(&eid) || e.is_self_loop() {
                continue;
            }
            let (s, t) = (e.source(), e.target());
            if member_set.contains(&s) && member_set.contains(&t) {
                succs.get_mut(&s).expect("member").insert(t);
                preds.get_mut(&t).expect("member").insert(s);
            }
        }
        LegacyWorkGraph {
            succs,
            preds,
            bound: ddg.num_nodes(),
        }
    }

    /// Number of nodes still present.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// The live nodes, in ascending id order.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.succs.keys().copied().collect();
        v.sort();
        v
    }

    /// Reduces `set` into the hypernode `h` (see [`crate::WorkGraph::reduce`]).
    ///
    /// # Panics
    ///
    /// Panics if `h` is not present in the graph.
    pub fn reduce(&mut self, set: &[NodeId], h: NodeId) {
        assert!(
            self.succs.contains_key(&h),
            "hypernode {h} is not in the work graph"
        );
        let victims: BTreeSet<NodeId> = set
            .iter()
            .copied()
            .filter(|&v| v != h && self.succs.contains_key(&v))
            .collect();
        for &v in &victims {
            let out = self.succs.remove(&v).unwrap_or_default();
            let inc = self.preds.remove(&v).unwrap_or_default();
            for t in out {
                if let Some(p) = self.preds.get_mut(&t) {
                    p.remove(&v);
                }
                if t == h || victims.contains(&t) {
                    continue;
                }
                // redirect v -> t into h -> t
                self.succs.get_mut(&h).expect("h present").insert(t);
                self.preds.get_mut(&t).expect("t present").insert(h);
            }
            for s in inc {
                if let Some(sset) = self.succs.get_mut(&s) {
                    sset.remove(&v);
                }
                if s == h || victims.contains(&s) {
                    continue;
                }
                // redirect s -> v into s -> h
                self.succs.get_mut(&s).expect("s present").insert(h);
                self.preds.get_mut(&h).expect("h present").insert(s);
            }
        }
        // Drop any edge between h and itself that redirection may have
        // introduced.
        self.succs.get_mut(&h).expect("h present").remove(&h);
        self.preds.get_mut(&h).expect("h present").remove(&h);
    }

    /// Ensures `extra` is present; inserts it with no edges if it was
    /// absent. Returns whether it was inserted.
    pub fn ensure_node(&mut self, extra: NodeId) -> bool {
        if self.succs.contains_key(&extra) {
            return false;
        }
        self.succs.insert(extra, BTreeSet::new());
        self.preds.insert(extra, BTreeSet::new());
        true
    }

    /// A read-only view of this graph that hides one node.
    pub fn without(&self, hidden: NodeId) -> LegacyHiddenNodeView<'_> {
        LegacyHiddenNodeView {
            graph: self,
            hidden,
        }
    }

    /// A new work graph containing only `members` (those of them currently
    /// present) and the edges of this graph whose endpoints are both kept.
    pub fn restricted(&self, members: &BTreeSet<NodeId>) -> LegacyWorkGraph {
        let mut succs: HashMap<NodeId, BTreeSet<NodeId>> = HashMap::new();
        let mut preds: HashMap<NodeId, BTreeSet<NodeId>> = HashMap::new();
        for &m in members {
            if !self.succs.contains_key(&m) {
                continue;
            }
            succs.insert(
                m,
                self.succs[&m]
                    .iter()
                    .copied()
                    .filter(|t| members.contains(t))
                    .collect(),
            );
            preds.insert(
                m,
                self.preds[&m]
                    .iter()
                    .copied()
                    .filter(|s| members.contains(s))
                    .collect(),
            );
        }
        LegacyWorkGraph {
            succs,
            preds,
            bound: self.bound,
        }
    }
}

impl GraphView for LegacyWorkGraph {
    fn node_bound(&self) -> usize {
        self.bound
    }

    fn contains(&self, n: NodeId) -> bool {
        self.succs.contains_key(&n)
    }

    fn successors_of(&self, n: NodeId) -> Vec<NodeId> {
        self.succs
            .get(&n)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    fn predecessors_of(&self, n: NodeId) -> Vec<NodeId> {
        self.preds
            .get(&n)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }
}

/// A [`GraphView`] over a [`LegacyWorkGraph`] with one node hidden.
#[derive(Debug, Clone, Copy)]
pub struct LegacyHiddenNodeView<'a> {
    graph: &'a LegacyWorkGraph,
    hidden: NodeId,
}

impl GraphView for LegacyHiddenNodeView<'_> {
    fn node_bound(&self) -> usize {
        self.graph.node_bound()
    }

    fn contains(&self, n: NodeId) -> bool {
        n != self.hidden && self.graph.contains(n)
    }

    fn successors_of(&self, n: NodeId) -> Vec<NodeId> {
        if n == self.hidden {
            return Vec::new();
        }
        self.graph
            .successors_of(n)
            .into_iter()
            .filter(|&s| s != self.hidden)
            .collect()
    }

    fn predecessors_of(&self, n: NodeId) -> Vec<NodeId> {
        if n == self.hidden {
            return Vec::new();
        }
        self.graph
            .predecessors_of(n)
            .into_iter()
            .filter(|&s| s != self.hidden)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preorder::{pre_order_with, StartNodePolicy};
    use hrms_ddg::{DdgBuilder, DepKind, OpKind};

    /// A family of deterministic small graphs with varied structure:
    /// chains, diamonds, recurrences, multiple components, self-loops.
    fn zoo() -> Vec<Ddg> {
        let mut graphs = Vec::new();

        // Chain.
        graphs.push(hrms_ddg::chain("chain", 9, OpKind::FpAdd, 1));

        // Diamond with a tail and a recurrence.
        let mut b = DdgBuilder::new("diamond_rec");
        let ids: Vec<NodeId> = (0..7)
            .map(|i| b.node(format!("n{i}"), OpKind::FpAdd, 2))
            .collect();
        for (s, t) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 6)] {
            b.edge(ids[s], ids[t], DepKind::RegFlow, 0).unwrap();
        }
        b.edge(ids[4], ids[3], DepKind::RegFlow, 1).unwrap();
        graphs.push(b.build().unwrap());

        // Two components, one with a recurrence connected only through its
        // backward edge (exercises the fallback path).
        let mut b = DdgBuilder::new("islands");
        let ids: Vec<NodeId> = (0..8)
            .map(|i| b.node(format!("m{i}"), OpKind::FpMul, 1))
            .collect();
        b.edge(ids[0], ids[1], DepKind::RegFlow, 0).unwrap();
        b.edge(ids[1], ids[2], DepKind::RegFlow, 0).unwrap();
        b.edge(ids[3], ids[4], DepKind::RegFlow, 0).unwrap();
        b.edge(ids[4], ids[3], DepKind::RegFlow, 1).unwrap();
        b.edge(ids[5], ids[6], DepKind::RegFlow, 0).unwrap();
        b.edge(ids[6], ids[5], DepKind::RegFlow, 2).unwrap();
        // Bridge the two recurrences through a loop-carried (dropped) edge
        // only: after dropping, the second circuit is a disconnected
        // remainder of the component.
        b.edge(ids[4], ids[5], DepKind::RegFlow, 1).unwrap();
        b.edge(ids[7], ids[7], DepKind::RegFlow, 1).unwrap();
        graphs.push(b.build().unwrap());

        graphs
    }

    #[test]
    fn legacy_and_dense_paths_agree_on_the_zoo() {
        for g in zoo() {
            for policy in [
                StartNodePolicy::FirstInProgramOrder,
                StartNodePolicy::LastInProgramOrder,
            ] {
                let options = PreOrderOptions { start_node: policy };
                let dense = pre_order_with(&hrms_ddg::LoopAnalysis::analyze(&g), &options);
                let legacy = pre_order_legacy_with(&g, &options);
                assert_eq!(dense, legacy, "graph `{}` policy {policy:?}", g.name());
            }
        }
    }

    #[test]
    fn legacy_orders_every_node_exactly_once() {
        for g in zoo() {
            let p = pre_order_legacy(&g);
            let mut sorted = p.order.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), g.num_nodes(), "graph `{}`", g.name());
        }
    }
}
