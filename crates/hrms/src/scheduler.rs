//! The scheduling step of HRMS (Section 3.3) and the top-level scheduler.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hrms_ddg::{Ddg, LoopAnalysis, NodeId, PlacementCsr};
use hrms_machine::Machine;
use hrms_modsched::{
    MiiInfo, ModuloScheduler, PartialSchedule, Perturbation, SchedError, Schedule, ScheduleOutcome,
    SchedulerConfig, StartHint,
};

use hrms_ddg::LoopCore;

use crate::preorder::{pre_order_with, PreOrderOptions, PreOrdering, StartNodePolicy};

/// How the node order handed to the scheduling step is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderingMode {
    /// The hypernode-reduction pre-ordering of the paper (default).
    #[default]
    HypernodeReduction,
    /// Plain program order — the "no pre-ordering" ablation. The scheduling
    /// step is unchanged, so the difference in register pressure and II
    /// isolates the contribution of the ordering phase.
    ProgramOrder,
}

/// Configuration of the HRMS scheduler.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HrmsOptions {
    /// Shared scheduler configuration (II caps, budgets).
    pub config: SchedulerConfig,
    /// Pre-ordering options (initial hypernode selection).
    pub preorder: PreOrderOptions,
    /// Ordering mode (hypernode reduction or the program-order ablation).
    pub ordering: OrderingMode,
}

/// Hypernode Reduction Modulo Scheduling.
///
/// The scheduler runs the pre-ordering phase once, then tries increasing
/// initiation intervals starting at `MII`; for each II the nodes are placed
/// one at a time in the pre-computed order:
///
/// * only predecessors already placed → as **soon** as possible, scanning
///   `Early_Start(u) .. Early_Start(u) + II − 1`,
/// * only successors already placed → as **late** as possible, scanning
///   `Late_Start(u) .. Late_Start(u) − II + 1`,
/// * both (the node closes a recurrence) → forward scan limited to
///   `min(Late_Start(u), Early_Start(u) + II − 1)`,
/// * neither (first node of a component) → as soon as possible from cycle 0.
///
/// If any node cannot be placed the II is increased by one and the
/// scheduling step restarts; the ordering is *not* recomputed (one of the
/// stated advantages of HRMS).
///
/// # Example
///
/// ```
/// use hrms_core::HrmsScheduler;
/// use hrms_modsched::ModuloScheduler;
/// use hrms_machine::presets;
/// use hrms_ddg::{DdgBuilder, OpKind, DepKind};
///
/// # fn main() -> Result<(), hrms_modsched::SchedError> {
/// let mut b = DdgBuilder::new("example");
/// let ld = b.node("ld", OpKind::Load, 2);
/// let add = b.node("add", OpKind::FpAdd, 1);
/// b.edge(ld, add, DepKind::RegFlow, 0)?;
/// let ddg = b.build()?;
/// let outcome = HrmsScheduler::new().schedule_loop(&ddg, &presets::govindarajan())?;
/// assert_eq!(outcome.metrics.ii, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct HrmsScheduler {
    options: HrmsOptions,
}

impl HrmsScheduler {
    /// Creates an HRMS scheduler with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an HRMS scheduler with the given options.
    pub fn with_options(options: HrmsOptions) -> Self {
        HrmsScheduler { options }
    }

    /// The options in use.
    pub fn options(&self) -> &HrmsOptions {
        &self.options
    }

    /// Runs only the pre-ordering phase (exposed for tests, the ablation
    /// harness and the phase-time measurements of Section 4.2).
    pub fn pre_order(&self, ddg: &Ddg) -> PreOrdering {
        pre_order_with(&LoopAnalysis::analyze(ddg), &self.options.preorder)
    }

    /// The node order for the scheduling step, plus whether the recurrence
    /// analysis behind it was truncated (never on the default path — the
    /// SCC-derived analysis has no enumeration budget; see
    /// [`PreOrdering::truncated`]).
    fn node_order(&self, la: &LoopAnalysis<'_>) -> (Vec<NodeId>, bool) {
        match self.options.ordering {
            OrderingMode::HypernodeReduction => {
                let p = pre_order_with(la, &self.options.preorder);
                (p.order, p.truncated)
            }
            OrderingMode::ProgramOrder => (la.ddg().node_ids().collect(), false),
        }
    }
}

impl ModuloScheduler for HrmsScheduler {
    fn name(&self) -> &str {
        match self.options.ordering {
            OrderingMode::HypernodeReduction => "HRMS",
            OrderingMode::ProgramOrder => "HRMS-no-preorder",
        }
    }

    fn schedule_loop(&self, ddg: &Ddg, machine: &Machine) -> Result<ScheduleOutcome, SchedError> {
        self.schedule_loop_with_core(ddg, machine, &Arc::new(LoopCore::new()))
    }

    fn schedule_loop_with_core(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        core: &Arc<LoopCore>,
    ) -> Result<ScheduleOutcome, SchedError> {
        let start = Instant::now();
        // One shared analysis for the whole loop: the MII, the pre-ordering
        // and every placement pass below read from the same cache (Tarjan,
        // backward edges, CSRs and dependence latencies are computed once
        // per core — shared across machines when the caller threads one
        // `Arc<LoopCore>` through several `schedule_loop_with_core` calls).
        let analysis = LoopAnalysis::with_core(ddg, Arc::clone(core));
        let mii = MiiInfo::compute(machine, &analysis)?;

        let order_start = Instant::now();
        let (order, recurrence_truncated) = self.node_order(&analysis);
        let ordering_time = order_start.elapsed();

        let max_ii = self.options.config.effective_max_ii(ddg, mii.mii());
        if max_ii < mii.mii() {
            return Err(SchedError::NoValidSchedule {
                max_ii_tried: max_ii,
            });
        }
        // Robustness fallback order: the HRMS order can, on rare pathological
        // graphs, leave an operation with an empty placement window that no
        // II increase can open (a purely intra-iteration path discovered
        // after both of its endpoints were placed). A plain earliest-start
        // order never has that problem, so each II is retried with it before
        // escalating; the fallback almost never fires on real loop bodies.
        let mut fallback_order: Option<Vec<NodeId>> = None;
        let mut attempts = 0;
        let mut ii = mii.mii();
        loop {
            attempts += 1;
            if let Some(schedule) =
                schedule_at_ii_with(ddg, machine, analysis.placement(), &order, ii)
            {
                return Ok(ScheduleOutcome::new(
                    ddg,
                    schedule,
                    mii,
                    attempts,
                    start.elapsed(),
                    ordering_time,
                )
                .with_recurrence_truncated(recurrence_truncated));
            }
            let fallback =
                fallback_order.get_or_insert_with(|| earliest_start_order(&analysis, mii.mii()));
            if let Some(schedule) =
                schedule_at_ii_with(ddg, machine, analysis.placement(), fallback, ii)
            {
                return Ok(ScheduleOutcome::new(
                    ddg,
                    schedule,
                    mii,
                    attempts,
                    start.elapsed(),
                    ordering_time,
                )
                .with_recurrence_truncated(recurrence_truncated));
            }
            if ii >= max_ii {
                return Err(SchedError::NoValidSchedule { max_ii_tried: ii });
            }
            ii += 1;
        }
    }

    /// HRMS's ordering is derived by hypernode reduction rather than a
    /// priority sort, so the perturbation hook maps the [`StartHint`] onto
    /// the pre-ordering's [`StartNodePolicy`]: changing where the hypernode
    /// starts growing reorders the whole traversal around the hinted node.
    /// Per-node boosts are ignored (they have no hypernode analogue).
    fn schedule_loop_perturbed(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        core: &Arc<LoopCore>,
        perturbation: &Perturbation,
    ) -> Result<ScheduleOutcome, SchedError> {
        let mut options = self.options.clone();
        match perturbation.start {
            StartHint::Default => {}
            StartHint::Last => {
                options.preorder.start_node = StartNodePolicy::LastInProgramOrder;
            }
            StartHint::Node(node) => {
                options.preorder.start_node = StartNodePolicy::Fixed(node);
            }
        }
        HrmsScheduler::with_options(options).schedule_loop_with_core(ddg, machine, core)
    }
}

/// A topological-by-earliest-start order used as the robustness fallback of
/// [`HrmsScheduler::schedule_loop`]: with it, every operation is placed after
/// all of its intra-iteration predecessors, so only loop-carried constraints
/// can close a placement window — and those always open up as the II grows.
fn earliest_start_order(la: &LoopAnalysis<'_>, ii: u32) -> Vec<NodeId> {
    let ddg = la.ddg();
    let est = la
        .earliest_starts(ii)
        .unwrap_or_else(|| vec![0; ddg.num_nodes()]);
    let mut order: Vec<NodeId> = ddg.node_ids().collect();
    order.sort_by_key(|n| (est[n.index()], n.index()));
    order
}

/// One pass of the scheduling step (Section 3.3) at a fixed II. Returns the
/// schedule, or `None` if some node found no free slot (the caller then
/// increases the II).
///
/// Builds the loop's dense placement arcs on the fly; callers with a shared
/// per-loop analysis (or several IIs to try) should use
/// [`schedule_at_ii_with`] so the arcs are built once.
pub fn schedule_at_ii(ddg: &Ddg, machine: &Machine, order: &[NodeId], ii: u32) -> Option<Schedule> {
    let arcs = Arc::new(PlacementCsr::from_graph(ddg));
    schedule_at_ii_with(ddg, machine, &arcs, order, ii)
}

/// [`schedule_at_ii`] over prebuilt dense placement arcs (typically
/// `analysis.placement()` of the loop's [`LoopAnalysis`]): every
/// `Early_Start`/`Late_Start` evaluation scans flat arc slices with
/// precomputed dependence latencies instead of walking [`Ddg`] edge lists.
pub fn schedule_at_ii_with(
    ddg: &Ddg,
    machine: &Machine,
    arcs: &Arc<PlacementCsr>,
    order: &[NodeId],
    ii: u32,
) -> Option<Schedule> {
    place_in_order(
        ddg,
        machine,
        PartialSchedule::with_placement(machine, ii, arcs.clone()),
        order,
    )
}

/// The pre-refactor placement path, kept callable for the differential
/// suite and the placement micro-benchmark: identical scan logic, but every
/// `Early_Start`/`Late_Start` walks the [`Ddg`] edge lists and resolves
/// dependence latencies per edge. Produces byte-identical schedules to
/// [`schedule_at_ii_with`] (asserted across the reference and generated
/// workloads by `tests/placement_differential.rs`).
pub fn schedule_at_ii_reference(
    ddg: &Ddg,
    machine: &Machine,
    order: &[NodeId],
    ii: u32,
) -> Option<Schedule> {
    place_in_order(ddg, machine, PartialSchedule::new(machine, ii), order)
}

/// The placement scan shared by the dense and reference paths: the paper's
/// per-node case analysis (preds only → ASAP, succs only → ALAP, both →
/// bounded forward scan, neither → ASAP from 0), driven by whichever
/// start-time machinery `partial` was constructed with.
fn place_in_order(
    ddg: &Ddg,
    machine: &Machine,
    mut partial: PartialSchedule,
    order: &[NodeId],
) -> Option<Schedule> {
    let ii = partial.ii();
    for &u in order {
        let early = partial.early_start(ddg, u);
        let late = partial.late_start(ddg, u);
        let placed = match (early, late) {
            (Some(early), None) => partial.place_forward(ddg, machine, u, early, ii),
            (None, Some(late)) => partial.place_backward(ddg, machine, u, late, ii),
            (Some(early), Some(late)) => {
                // The node closes a recurrence: it must land inside
                // [early, late], and scanning more than II slots is useless.
                if late < early {
                    None
                } else {
                    let window = (late - early + 1).min(i64::from(ii)) as u32;
                    partial.place_forward(ddg, machine, u, early, window)
                }
            }
            (None, None) => partial.place_forward(ddg, machine, u, 0, ii),
        };
        placed?;
    }
    Some(partial.into_schedule(ddg))
}

/// Convenience constructor for the "no pre-ordering" ablation scheduler.
pub fn program_order_scheduler() -> HrmsScheduler {
    HrmsScheduler::with_options(HrmsOptions {
        ordering: OrderingMode::ProgramOrder,
        ..HrmsOptions::default()
    })
}

/// Total time of an outcome split into ordering and scheduling parts — a tiny
/// helper used by the Section 4.2 phase-time report.
pub fn phase_split(outcome: &ScheduleOutcome) -> (Duration, Duration) {
    (
        outcome.ordering_time,
        outcome.elapsed.saturating_sub(outcome.ordering_time),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, DepKind, OpKind};
    use hrms_machine::presets;
    use hrms_modsched::{validate_schedule, LifetimeAnalysis};

    /// The motivating example of the paper (Figure 1 / Section 2.1).
    fn figure1() -> (Ddg, Vec<NodeId>) {
        let mut b = DdgBuilder::new("fig1");
        let names = ["A", "B", "C", "D", "E", "F", "G"];
        let ids: Vec<NodeId> = names.iter().map(|n| b.node(*n, OpKind::Other, 2)).collect();
        let e = |s: usize, t: usize, b: &mut DdgBuilder| {
            b.edge(ids[s], ids[t], DepKind::RegFlow, 0).unwrap();
        };
        e(0, 1, &mut b);
        e(1, 2, &mut b);
        e(1, 3, &mut b);
        e(3, 5, &mut b);
        e(4, 5, &mut b);
        e(5, 6, &mut b);
        (b.build().unwrap(), ids)
    }

    #[test]
    fn motivating_example_matches_the_paper() {
        // Section 2.1: MII = 2; HRMS places A@0, B@2, C@4, D@4, F@7, E@5,
        // G@9 and the loop variants need 6 registers (6 live in row 0 and 5
        // in row 1).
        let (g, ids) = figure1();
        let m = presets::general_purpose();
        let outcome = HrmsScheduler::new().schedule_loop(&g, &m).unwrap();
        assert_eq!(outcome.metrics.mii, 2);
        assert_eq!(outcome.metrics.ii, 2);
        let s = &outcome.schedule;
        let cycles: Vec<i64> = ids.iter().map(|&n| s.cycle(n)).collect();
        assert_eq!(cycles, vec![0, 2, 4, 4, 5, 7, 9]);
        validate_schedule(&g, &m, s).unwrap();

        let lt = LifetimeAnalysis::analyze(&g, s);
        assert_eq!(
            lt.live_at_row(0),
            6,
            "paper: 6 alive registers in the first row"
        );
        assert_eq!(
            lt.live_at_row(1),
            5,
            "paper: 5 alive registers in the second row"
        );
        assert_eq!(lt.max_live(), 6);
    }

    #[test]
    fn accumulator_recurrence_is_scheduled_at_mii() {
        let mut b = DdgBuilder::new("acc");
        let ld = b.node("ld", OpKind::Load, 2);
        let mul = b.node("mul", OpKind::FpMul, 2);
        let acc = b.node("acc", OpKind::FpAdd, 1);
        let st = b.node("st", OpKind::Store, 1);
        b.edge(ld, mul, DepKind::RegFlow, 0).unwrap();
        b.edge(mul, acc, DepKind::RegFlow, 0).unwrap();
        b.edge(acc, acc, DepKind::RegFlow, 1).unwrap();
        b.edge(acc, st, DepKind::RegFlow, 0).unwrap();
        let g = b.build().unwrap();
        let m = presets::govindarajan();
        let outcome = HrmsScheduler::new().schedule_loop(&g, &m).unwrap();
        assert_eq!(outcome.metrics.ii, outcome.metrics.mii);
        validate_schedule(&g, &m, &outcome.schedule).unwrap();
    }

    #[test]
    fn recurrence_closing_node_lands_between_its_bounds() {
        // x -> y -> z -> x (distance 1 on the back edge). Whatever the
        // order, the node that closes the recurrence has both a scheduled
        // predecessor and a scheduled successor.
        let mut b = DdgBuilder::new("cycle3");
        let x = b.node("x", OpKind::FpAdd, 1);
        let y = b.node("y", OpKind::FpMul, 2);
        let z = b.node("z", OpKind::FpAdd, 1);
        b.edge(x, y, DepKind::RegFlow, 0).unwrap();
        b.edge(y, z, DepKind::RegFlow, 0).unwrap();
        b.edge(z, x, DepKind::RegFlow, 1).unwrap();
        let g = b.build().unwrap();
        let m = presets::govindarajan();
        let outcome = HrmsScheduler::new().schedule_loop(&g, &m).unwrap();
        assert_eq!(outcome.metrics.rec_mii, 4);
        assert_eq!(outcome.metrics.ii, 4);
        validate_schedule(&g, &m, &outcome.schedule).unwrap();
    }

    #[test]
    fn ii_escalates_when_resources_are_scarce() {
        // Five independent loads on a single load/store unit: MII = 5 is
        // already resource-exact, but add a recurrence that forces conflicts
        // between the recurrence window and the loads at low II.
        let mut b = DdgBuilder::new("escalate");
        let mut prev: Option<NodeId> = None;
        for i in 0..5 {
            let ld = b.node(format!("ld{i}"), OpKind::Load, 2);
            if let Some(p) = prev {
                b.edge(p, ld, DepKind::Memory, 0).unwrap();
            }
            prev = Some(ld);
        }
        let g = b.build().unwrap();
        let m = presets::govindarajan();
        let outcome = HrmsScheduler::new().schedule_loop(&g, &m).unwrap();
        assert_eq!(outcome.metrics.ii, 5);
        assert!(outcome.attempts >= 1);
        validate_schedule(&g, &m, &outcome.schedule).unwrap();
    }

    #[test]
    fn impossible_budget_reports_no_valid_schedule() {
        let (g, _) = figure1();
        let m = presets::general_purpose();
        let scheduler = HrmsScheduler::with_options(HrmsOptions {
            config: SchedulerConfig {
                max_ii: Some(1), // below MII = 2 and never enough
                ..SchedulerConfig::default()
            },
            ..HrmsOptions::default()
        });
        // With max_ii = 1 < MII the first attempt is at II = 2 > max_ii, so
        // the scheduler fails after one attempt.
        let err = scheduler.schedule_loop(&g, &m).unwrap_err();
        assert!(matches!(err, SchedError::NoValidSchedule { .. }));
    }

    #[test]
    fn zero_distance_cycles_are_rejected() {
        let mut b = DdgBuilder::new("bad");
        let a = b.node("a", OpKind::FpAdd, 1);
        let c = b.node("c", OpKind::FpAdd, 1);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, a, DepKind::RegFlow, 0).unwrap();
        let g = b.build().unwrap();
        let err = HrmsScheduler::new()
            .schedule_loop(&g, &presets::govindarajan())
            .unwrap_err();
        assert_eq!(err, SchedError::ZeroDistanceCycle);
    }

    #[test]
    fn program_order_ablation_also_produces_valid_schedules() {
        let (g, _) = figure1();
        let m = presets::general_purpose();
        let ablation = program_order_scheduler();
        assert_eq!(ablation.name(), "HRMS-no-preorder");
        let outcome = ablation.schedule_loop(&g, &m).unwrap();
        validate_schedule(&g, &m, &outcome.schedule).unwrap();
        // The ablation may or may not use more registers on this tiny graph,
        // but it must never beat HRMS's II here.
        let hrms = HrmsScheduler::new().schedule_loop(&g, &m).unwrap();
        assert!(hrms.metrics.ii <= outcome.metrics.ii);
    }

    #[test]
    fn hrms_uses_fewer_registers_than_program_order_on_a_stretchy_graph() {
        // A graph designed to punish orderings that place source nodes too
        // early: many independent producers feeding one late consumer chain.
        let mut b = DdgBuilder::new("stretchy");
        let mut chain_prev = None;
        let mut chain_nodes = Vec::new();
        for i in 0..6 {
            let n = b.node(format!("chain{i}"), OpKind::FpAdd, 2);
            if let Some(p) = chain_prev {
                b.edge(p, n, DepKind::RegFlow, 0).unwrap();
            }
            chain_prev = Some(n);
            chain_nodes.push(n);
        }
        for (i, &chain_node) in chain_nodes.iter().enumerate() {
            let src = b.node(format!("src{i}"), OpKind::Load, 2);
            b.edge(src, chain_node, DepKind::RegFlow, 0).unwrap();
        }
        let g = b.build().unwrap();
        let m = presets::perfect_club();
        let hrms = HrmsScheduler::new().schedule_loop(&g, &m).unwrap();
        let ablation = program_order_scheduler().schedule_loop(&g, &m).unwrap();
        validate_schedule(&g, &m, &hrms.schedule).unwrap();
        validate_schedule(&g, &m, &ablation.schedule).unwrap();
        assert!(
            hrms.metrics.max_live <= ablation.metrics.max_live,
            "hypernode ordering should not need more registers ({} vs {})",
            hrms.metrics.max_live,
            ablation.metrics.max_live
        );
    }

    #[test]
    fn ordering_time_is_part_of_the_outcome() {
        let (g, _) = figure1();
        let outcome = HrmsScheduler::new()
            .schedule_loop(&g, &presets::general_purpose())
            .unwrap();
        let (ordering, scheduling) = phase_split(&outcome);
        assert!(ordering <= outcome.elapsed);
        assert!(scheduling <= outcome.elapsed);
    }

    #[test]
    fn single_node_loop_schedules_at_ii_one() {
        let mut b = DdgBuilder::new("single");
        b.node("only", OpKind::FpAdd, 1);
        let g = b.build().unwrap();
        let outcome = HrmsScheduler::new()
            .schedule_loop(&g, &presets::govindarajan())
            .unwrap();
        assert_eq!(outcome.metrics.ii, 1);
        assert_eq!(outcome.schedule.cycle(NodeId(0)), 0);
    }

    #[test]
    fn larger_random_style_graph_is_scheduled_and_valid() {
        // A deterministic but irregular graph exercising all placement
        // branches (preds only, succs only, both, neither).
        let mut b = DdgBuilder::new("irregular");
        let mut ids = Vec::new();
        for i in 0..20 {
            let kind = match i % 5 {
                0 => OpKind::Load,
                1 => OpKind::FpMul,
                2 => OpKind::FpAdd,
                3 => OpKind::FpDiv,
                _ => OpKind::Store,
            };
            let lat = match kind {
                OpKind::Load | OpKind::FpMul => 2,
                OpKind::FpDiv => 17,
                _ => 1,
            };
            ids.push(b.node(format!("n{i}"), kind, lat));
        }
        for i in 0..15 {
            // Stores produce no value, so dependences leaving them are
            // memory-ordering edges.
            let kind = |src: usize| {
                if src % 5 == 4 {
                    DepKind::Memory
                } else {
                    DepKind::RegFlow
                }
            };
            b.edge(ids[i], ids[i + 3], kind(i), 0).unwrap();
            if i % 4 == 0 {
                b.edge(ids[i + 3], ids[i], kind(i + 3), 2).unwrap();
            }
        }
        let g = b.build().unwrap();
        let m = presets::govindarajan();
        let outcome = HrmsScheduler::new().schedule_loop(&g, &m).unwrap();
        validate_schedule(&g, &m, &outcome.schedule).unwrap();
        assert!(outcome.metrics.ii >= outcome.metrics.mii);
    }
}
