//! The pre-ordering phase of HRMS (Sections 3.1 and 3.2 of the paper).
//!
//! The pre-ordering decides the order in which operations will be handed to
//! the scheduling step. It guarantees that, when an operation is scheduled,
//! the partial schedule contains only its predecessors **or** only its
//! successors (never both), except when the last node of a recurrence
//! circuit is placed. It also gives priority to recurrence circuits, most
//! restrictive (highest `RecMII`) first, so that recurrences are never
//! stretched.
//!
//! Since the dense-representation rewrite, the phase runs entirely on the
//! index/bitset machinery of [`hrms_ddg::dense`]: the loop's adjacency is
//! materialised once as a CSR with the backward edges of recurrence circuits
//! removed, each weakly connected component gets a bitset [`WorkGraph`]
//! carved out of it, and every `Search_All_Paths` / `Sort_ASAP` /
//! `Sort_PALA` / reduction step is a word-level operation — restoring the
//! `O(|V| + |E|)` per-step footprint the paper claims in footnote 2. The
//! original hash-based implementation is preserved in [`crate::legacy`] and
//! produces byte-identical results; enabling the `verify-dense` feature
//! cross-checks every ordering against it with a debug assertion.

use std::collections::HashSet;

use hrms_ddg::dense::KahnScratch;
use hrms_ddg::{analysis, dense, scc, Csr, Ddg, EdgeId, LoopAnalysis, NodeId, NodeSet};

use crate::workgraph::WorkGraph;

/// How the initial hypernode of a recurrence-free component is chosen.
///
/// The paper (footnote 1) notes that the algorithm shortens lifetimes
/// irrespective of the starting node; this policy exists so that the
/// ablation benchmarks can verify that claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StartNodePolicy {
    /// The first node of the component in program order (the paper's
    /// default).
    #[default]
    FirstInProgramOrder,
    /// The last node of the component in program order.
    LastInProgramOrder,
    /// A caller-chosen node (falls back to program order when the node is
    /// not part of the component being ordered).
    Fixed(NodeId),
}

impl StartNodePolicy {
    pub(crate) fn pick(self, candidates: &[NodeId]) -> NodeId {
        match self {
            StartNodePolicy::FirstInProgramOrder => candidates[0],
            StartNodePolicy::LastInProgramOrder => *candidates.last().expect("non-empty"),
            StartNodePolicy::Fixed(n) if candidates.contains(&n) => n,
            StartNodePolicy::Fixed(_) => candidates[0],
        }
    }
}

/// Options for the pre-ordering phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreOrderOptions {
    /// Initial-hypernode selection policy.
    pub start_node: StartNodePolicy,
}

/// The result of the pre-ordering phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreOrdering {
    /// The complete node order handed to the scheduling step.
    pub order: Vec<NodeId>,
    /// Number of weakly connected components of the loop body.
    pub components: usize,
    /// Number of (non-trivial) recurrence subgraphs handled with priority.
    pub recurrence_subgraphs: usize,
    /// Whether the recurrence analysis behind this ordering was truncated
    /// (its enumeration budget was hit), degrading the recurrence priority.
    /// Always `false` on the default path — the SCC-derived analysis is
    /// polynomial and complete by construction; only the preserved legacy
    /// path (Johnson's enumeration) can report `true`.
    pub truncated: bool,
    /// Per-node recurrence criticality, indexed by [`NodeId`]: the exact
    /// `RecMII` of the most critical recurrence circuit through each node
    /// (`0` for nodes on no recurrence), from
    /// [`hrms_ddg::CycleRatios`]. The ordering seeds each component from
    /// the most critical recurrence group; this surfaces the per-node
    /// bound behind that priority to schedulers and harnesses.
    pub node_criticality: Vec<u64>,
}

/// Pre-orders the nodes of the analysed loop with the default options.
pub fn pre_order(la: &LoopAnalysis<'_>) -> PreOrdering {
    pre_order_with(la, &PreOrderOptions::default())
}

/// Pre-orders the nodes of the analysed loop.
///
/// The returned order contains every node exactly once. Graphs whose
/// zero-distance subgraph is cyclic (invalid loop bodies) are still ordered
/// — the order degenerates towards program order — but the scheduling step
/// will subsequently reject them when computing the MII.
///
/// The recurrence circuits, backward edges and both CSR adjacencies come
/// from (and are cached in) `la`, so the pre-ordering itself is pure index
/// manipulation; callers that also compute the MII or drive the scheduling
/// step hand the same [`LoopAnalysis`] to every phase and Tarjan plus the
/// CSR construction run once per loop.
pub fn pre_order_with(la: &LoopAnalysis<'_>, options: &PreOrderOptions) -> PreOrdering {
    let ddg = la.ddg();
    // The enumeration-free recurrence analysis: polynomial in the graph
    // size whatever the density of the SCCs, never truncated. (The legacy
    // path keeps Johnson's enumeration; the differential suites pin the two
    // producing identical orderings wherever the enumeration completes.)
    let rec_info = la.recurrence_groups();
    let simplified = rec_info.simplified_node_lists();
    let bound = ddg.num_nodes();

    // The acyclic work adjacency (backward edges removed) and the full,
    // undropped adjacency (used to find reference operations for nodes only
    // connected through dropped edges).
    let work_csr = la.csr_work();
    let full_csr = la.csr_full();

    // Components ordered by the most restrictive recurrence they contain.
    let mut components = ddg.connected_components();
    let component_priority: Vec<u64> = components
        .iter()
        .map(|comp| {
            let members = NodeSet::from_indices(bound, comp.iter().map(|n| n.index()));
            rec_info
                .groups
                .iter()
                .filter(|sg| sg.nodes.iter().all(|n| members.contains(n.index())))
                .map(|sg| sg.rec_mii)
                .max()
                .unwrap_or(0)
        })
        .collect();
    let mut component_order: Vec<usize> = (0..components.len()).collect();
    component_order.sort_by(|&a, &b| {
        component_priority[b]
            .cmp(&component_priority[a])
            .then_with(|| components[a][0].cmp(&components[b][0]))
    });
    let num_components = components.len();

    let mut order: Vec<NodeId> = Vec::with_capacity(bound);
    let mut ordered = NodeSet::new(bound);
    let mut scratch = KahnScratch::new();
    let mut recurrence_subgraphs = 0usize;

    for ci in component_order {
        let component = std::mem::take(&mut components[ci]);
        let member_set = NodeSet::from_indices(bound, component.iter().map(|n| n.index()));
        let mut work = WorkGraph::from_csr(work_csr, &component);

        // Recurrence subgraph node lists that live in this component,
        // already sorted by decreasing RecMII by `simplified_node_lists`.
        let lists: Vec<&Vec<NodeId>> = simplified
            .iter()
            .filter(|l| member_set.contains(l[0].index()))
            .collect();

        let h = if let Some(first_list) = lists.first() {
            recurrence_subgraphs += lists.len();
            // --- Ordering_Recurrences (Section 3.2) ---
            let h = first_list[0];
            push(&mut order, &mut ordered, h);
            // Order the most restrictive recurrence subgraph on its own.
            let region = NodeSet::from_indices(bound, first_list.iter().map(|n| n.index()));
            order_region(
                &mut work,
                &region,
                h,
                &mut order,
                &mut ordered,
                full_csr,
                &mut scratch,
            );

            // Then bring in the remaining recurrence subgraphs one by one,
            // together with the nodes on paths connecting them to the
            // hypernode.
            for list in lists.iter().skip(1) {
                let mut seeds: Vec<usize> = vec![h.index()];
                seeds.extend(list.iter().map(|n| n.index()));
                let mut region = dense::search_all_paths(&work, &seeds);
                for n in list.iter() {
                    region.insert(n.index());
                }
                region.insert(h.index());
                order_region(
                    &mut work,
                    &region,
                    h,
                    &mut order,
                    &mut ordered,
                    full_csr,
                    &mut scratch,
                );
            }
            h
        } else {
            // No recurrences: pick the initial hypernode per policy.
            let h = options.start_node.pick(&component);
            push(&mut order, &mut ordered, h);
            h
        };

        // Order whatever is left of the component around the hypernode
        // (Section 3.1).
        pre_order_connected(
            &mut work,
            h,
            &mut order,
            &mut ordered,
            full_csr,
            &mut scratch,
        );
    }

    let result = PreOrdering {
        order,
        components: num_components,
        recurrence_subgraphs,
        truncated: false,
        node_criticality: la.cycle_ratios().per_node().to_vec(),
    };

    // With the `verify-dense` feature on (CI runs the whole suite with it),
    // every ordering is cross-checked against the preserved legacy
    // implementation in debug builds. The legacy path still derives its
    // recurrence subgraphs from Johnson's enumeration, so this doubles as
    // an end-to-end check of the SCC-derived analysis — byte-equality is
    // asserted whenever the enumeration completed and the recurrence
    // cross-check reports the two analyses exactly interchangeable (since
    // the cycle-ratio pair ranking, that is every reference and generated
    // corpus loop, interleaved recurrences included; a truncated
    // enumeration orders from a circuit subset and proves nothing).
    #[cfg(feature = "verify-dense")]
    {
        let oracle = la.recurrences();
        if !oracle.truncated
            && hrms_ddg::recurrence::cross_check(rec_info, oracle)
                .is_ok_and(|report| report.is_exact())
        {
            let legacy = crate::legacy::pre_order_legacy_with(ddg, options);
            debug_assert!(
                result == legacy,
                "dense pre-ordering diverged from the legacy implementation on `{}`",
                ddg.name()
            );
        }
    }

    result
}

/// The backward edges of every recurrence circuit: loop-carried edges whose
/// endpoints belong to the same strongly connected component. Removing them
/// makes the work graph acyclic (any remaining cycle would have distance 0,
/// which the MII computation rejects).
///
/// Standalone convenience that runs its own Tarjan pass; the pre-ordering
/// itself reads the cached set from [`LoopAnalysis::backward_edges`]
/// instead, so the single implementation lives in
/// [`hrms_ddg::analysis::backward_edges_of`].
pub fn backward_edges(ddg: &Ddg) -> HashSet<EdgeId> {
    analysis::backward_edges_of(ddg, &scc::strongly_connected_components(ddg))
}

fn push(order: &mut Vec<NodeId>, ordered: &mut NodeSet, n: NodeId) {
    order.push(n);
    ordered.insert(n.index());
}

/// Orders the sub-region `region` (which includes the hypernode `h`) of
/// `work` around `h`: generates the restricted subgraph, runs the
/// recurrence-free pre-ordering on it, and reduces the whole region into `h`
/// in the main work graph.
fn order_region(
    work: &mut WorkGraph,
    region: &NodeSet,
    h: NodeId,
    order: &mut Vec<NodeId>,
    ordered: &mut NodeSet,
    full_csr: &Csr,
    scratch: &mut KahnScratch,
) {
    let mut temp = work.restricted_set(region);
    temp.ensure_node(h);
    pre_order_connected(&mut temp, h, order, ordered, full_csr, scratch);
    let mut others = region.clone();
    others.remove(h.index());
    work.reduce_set(&others, h);
}

/// The paper's `Pre_Ordering` function (Figure 5) for graphs without
/// recurrence circuits, operating on an acyclic [`WorkGraph`]: alternately
/// absorbs the hypernode's predecessors (with all nodes on paths among them,
/// in PALA order) and successors (in ASAP order) until nothing is adjacent,
/// then falls back to pulling in a remaining node (this covers the paper's
/// "no path between the hypernode and the next recurrence circuit" case as
/// well as disconnected leftovers). The fallback prefers the lowest-numbered
/// remaining node with an already-ordered neighbour in the *undropped*
/// graph, so that every such node still has a reference operation for the
/// scheduler's placement windows; only truly disconnected leftovers are
/// absorbed by plain lowest-number order.
fn pre_order_connected(
    work: &mut WorkGraph,
    h: NodeId,
    order: &mut Vec<NodeId>,
    ordered: &mut NodeSet,
    full_csr: &Csr,
    scratch: &mut KahnScratch,
) {
    let hi = h.index();
    loop {
        if !work.pred_row(hi).is_empty() {
            let region = neighbour_region(work, hi, Side::Preds);
            let sorted = dense::sort_pala_scratch(work, &region, scratch)
                .expect("the work graph is acyclic once backward edges are removed");
            work.reduce_set(&region, h);
            for i in sorted {
                push(order, ordered, NodeId::from_index(i));
            }
        }

        if !work.succ_row(hi).is_empty() {
            let region = neighbour_region(work, hi, Side::Succs);
            let sorted = dense::sort_asap_scratch(work, &region, scratch)
                .expect("the work graph is acyclic once backward edges are removed");
            work.reduce_set(&region, h);
            for i in sorted {
                push(order, ordered, NodeId::from_index(i));
            }
        }

        if work.pred_row(hi).is_empty() && work.succ_row(hi).is_empty() {
            if work.len() <= 1 {
                break;
            }
            // Disconnected remainder (paper, Section 3.2, last paragraph of
            // the recurrence-ordering description).
            let next = work
                .live()
                .iter()
                .filter(|&i| i != hi)
                .find(|&i| full_csr.has_neighbour_in(i, ordered))
                .or_else(|| work.live().iter().find(|&i| i != hi))
                .expect("len > 1 guarantees another node");
            let next = NodeId::from_index(next);
            push(order, ordered, next);
            work.reduce(&[next], h);
        }
    }
}

/// Which side of the hypernode is being absorbed.
#[derive(Clone, Copy)]
enum Side {
    Preds,
    Succs,
}

/// The region absorbed together with the hypernode's predecessors
/// (successors): the neighbours themselves plus every node lying on a path
/// among them **or between them and the hypernode**.
///
/// Including the hypernode as a path-search seed is essential: once the
/// hypernode has absorbed several original operations, a node can be
/// simultaneously a (transitive) successor of one absorbed operation and a
/// (transitive) predecessor of a neighbour being absorbed now. Ordering it
/// together with that neighbour keeps the paper's invariant — no operation
/// is scheduled after both a predecessor and a successor have already been
/// placed on opposite, too-tight sides.
fn neighbour_region(work: &WorkGraph, hi: usize, side: Side) -> NodeSet {
    let row = match side {
        Side::Preds => work.pred_row(hi),
        Side::Succs => work.succ_row(hi),
    };
    let mut seeds: Vec<usize> = row.iter().map(|&x| x as usize).collect();
    seeds.push(hi);
    let mut region = dense::search_all_paths(work, &seeds);
    region.remove(hi);
    region
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, DepKind, OpKind};

    /// The dependence graph of the paper's Figure 1 (motivating example),
    /// reconstructed from the scheduling walk-through of Section 2.1.
    fn figure1() -> (Ddg, Vec<NodeId>) {
        let mut b = DdgBuilder::new("fig1");
        let names = ["A", "B", "C", "D", "E", "F", "G"];
        let ids: Vec<NodeId> = names.iter().map(|n| b.node(*n, OpKind::Other, 2)).collect();
        let e = |b: &mut DdgBuilder, s: usize, t: usize| {
            b.edge(ids[s], ids[t], DepKind::RegFlow, 0).unwrap();
        };
        e(&mut b, 0, 1); // A -> B
        e(&mut b, 1, 2); // B -> C
        e(&mut b, 1, 3); // B -> D
        e(&mut b, 3, 5); // D -> F
        e(&mut b, 4, 5); // E -> F
        e(&mut b, 5, 6); // F -> G
        (b.build().unwrap(), ids)
    }

    /// The dependence graph of the paper's Figure 7a, reconstructed from the
    /// step-by-step ordering walk-through of Section 3.1.
    fn figure7() -> (Ddg, Vec<NodeId>) {
        let mut b = DdgBuilder::new("fig7");
        let names = ["A", "B", "C", "D", "E", "F", "G", "H", "I", "J"];
        let ids: Vec<NodeId> = names.iter().map(|n| b.node(*n, OpKind::Other, 1)).collect();
        let idx = |c: char| (c as u8 - b'A') as usize;
        let e = |s: char, t: char, bld: &mut DdgBuilder| {
            bld.edge(ids[idx(s)], ids[idx(t)], DepKind::RegFlow, 0)
                .unwrap();
        };
        e('A', 'C', &mut b);
        e('C', 'G', &mut b);
        e('C', 'H', &mut b);
        e('D', 'H', &mut b);
        e('H', 'J', &mut b);
        e('B', 'J', &mut b);
        e('I', 'J', &mut b);
        e('B', 'E', &mut b);
        e('E', 'I', &mut b);
        e('F', 'I', &mut b);
        (b.build().unwrap(), ids)
    }

    fn names(ddg: &Ddg, order: &[NodeId]) -> Vec<String> {
        order
            .iter()
            .map(|&n| ddg.node(n).name().to_string())
            .collect()
    }

    #[test]
    fn figure1_is_ordered_as_in_the_paper() {
        let (g, _) = figure1();
        let p = pre_order(&LoopAnalysis::analyze(&g));
        assert_eq!(
            names(&g, &p.order),
            vec!["A", "B", "C", "D", "F", "E", "G"],
            "Section 2.1 gives the order {{A, B, C, D, F, E, G}}"
        );
        assert_eq!(p.components, 1);
        assert_eq!(p.recurrence_subgraphs, 0);
    }

    #[test]
    fn figure7_is_ordered_as_in_the_paper() {
        let (g, _) = figure7();
        let p = pre_order(&LoopAnalysis::analyze(&g));
        assert_eq!(
            names(&g, &p.order),
            vec!["A", "C", "G", "H", "D", "J", "I", "E", "B", "F"],
            "Section 3.1 walks through the order {{A, C, G, H, D, J, I, E, B, F}}"
        );
    }

    #[test]
    fn every_node_appears_exactly_once() {
        for (g, _) in [figure1(), figure7()] {
            let p = pre_order(&LoopAnalysis::analyze(&g));
            let mut sorted: Vec<NodeId> = p.order.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), g.num_nodes());
        }
    }

    #[test]
    fn neighbour_invariant_holds() {
        // The defining property: when a node is ordered, the already-ordered
        // prefix contains only its predecessors or only its successors (in
        // the acyclic graph), never both — except for nodes closing a
        // recurrence.
        let (g, _) = figure7();
        let p = pre_order(&LoopAnalysis::analyze(&g));
        let mut placed: HashSet<NodeId> = HashSet::new();
        for &n in &p.order {
            let preds_in = g
                .predecessors(n)
                .iter()
                .filter(|p| placed.contains(p))
                .count();
            let succs_in = g
                .successors(n)
                .iter()
                .filter(|s| placed.contains(s))
                .count();
            assert!(
                preds_in == 0 || succs_in == 0,
                "node {n} has both predecessors and successors already ordered"
            );
            placed.insert(n);
        }
    }

    #[test]
    fn every_ordered_node_has_a_reference_neighbour() {
        // Except for the very first node of each component, every node must
        // have at least one already-ordered neighbour (its "reference
        // operation") in a weakly connected graph.
        let (g, _) = figure7();
        let p = pre_order(&LoopAnalysis::analyze(&g));
        let mut placed: HashSet<NodeId> = HashSet::new();
        for (i, &n) in p.order.iter().enumerate() {
            if i > 0 {
                let has_ref = g
                    .predecessors(n)
                    .iter()
                    .chain(g.successors(n).iter())
                    .any(|x| placed.contains(x));
                assert!(has_ref, "node {n} was ordered without any reference");
            }
            placed.insert(n);
        }
    }

    #[test]
    fn recurrence_nodes_come_first() {
        // A graph with a recurrence {X, Y} and a long acyclic tail: the
        // recurrence must be ordered before the tail regardless of program
        // order.
        let mut b = DdgBuilder::new("rec_first");
        let t0 = b.node("t0", OpKind::FpAdd, 1);
        let t1 = b.node("t1", OpKind::FpAdd, 1);
        let x = b.node("x", OpKind::FpAdd, 1);
        let y = b.node("y", OpKind::FpAdd, 1);
        b.edge(t0, t1, DepKind::RegFlow, 0).unwrap();
        b.edge(t1, x, DepKind::RegFlow, 0).unwrap();
        b.edge(x, y, DepKind::RegFlow, 0).unwrap();
        b.edge(y, x, DepKind::RegFlow, 1).unwrap();
        let g = b.build().unwrap();
        let p = pre_order(&LoopAnalysis::analyze(&g));
        assert_eq!(p.recurrence_subgraphs, 1);
        let pos = |n: NodeId| p.order.iter().position(|&m| m == n).unwrap();
        assert!(pos(x) < pos(t0));
        assert!(pos(y) < pos(t0));
    }

    #[test]
    fn most_restrictive_recurrence_is_ordered_first() {
        // Two recurrences: {a, b} with RecMII 2 and {c, d} with RecMII 10,
        // connected through a path. The slower one must be ordered first.
        let mut bld = DdgBuilder::new("two_rec");
        let a = bld.node("a", OpKind::FpAdd, 1);
        let b = bld.node("b", OpKind::FpAdd, 1);
        let mid = bld.node("mid", OpKind::FpAdd, 1);
        let c = bld.node("c", OpKind::FpDiv, 17);
        let d = bld.node("d", OpKind::FpAdd, 3);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 1).unwrap();
        bld.edge(b, mid, DepKind::RegFlow, 0).unwrap();
        bld.edge(mid, c, DepKind::RegFlow, 0).unwrap();
        bld.edge(c, d, DepKind::RegFlow, 0).unwrap();
        bld.edge(d, c, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let p = pre_order(&LoopAnalysis::analyze(&g));
        let pos = |n: NodeId| p.order.iter().position(|&m| m == n).unwrap();
        assert!(pos(c) < pos(a), "the RecMII-20 recurrence goes first");
        assert!(pos(d) < pos(b));
        assert_eq!(p.order.len(), 5);
        assert_eq!(p.recurrence_subgraphs, 2);
    }

    #[test]
    fn disconnected_recurrence_is_still_ordered() {
        // Two recurrences with no path between them at all.
        let mut bld = DdgBuilder::new("islands");
        let a = bld.node("a", OpKind::FpAdd, 4);
        let b = bld.node("b", OpKind::FpAdd, 4);
        let c = bld.node("c", OpKind::FpAdd, 1);
        let d = bld.node("d", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 1).unwrap();
        bld.edge(c, d, DepKind::RegFlow, 0).unwrap();
        bld.edge(d, c, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let p = pre_order(&LoopAnalysis::analyze(&g));
        assert_eq!(p.order.len(), 4);
        assert_eq!(p.components, 2);
    }

    #[test]
    fn multiple_components_are_all_ordered() {
        let mut b = DdgBuilder::new("comps");
        let a = b.node("a", OpKind::FpAdd, 1);
        let c = b.node("c", OpKind::FpAdd, 1);
        let d = b.node("d", OpKind::FpAdd, 1);
        let e = b.node("e", OpKind::FpAdd, 1);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(d, e, DepKind::RegFlow, 0).unwrap();
        let g = b.build().unwrap();
        let p = pre_order(&LoopAnalysis::analyze(&g));
        assert_eq!(p.order.len(), 4);
        assert_eq!(p.components, 2);
    }

    #[test]
    fn component_with_recurrence_has_priority() {
        // Component 1 is acyclic (and first in program order), component 2
        // has a recurrence: the recurrence component must be ordered first.
        let mut b = DdgBuilder::new("prio");
        let a = b.node("a", OpKind::FpAdd, 1);
        let c = b.node("c", OpKind::FpAdd, 1);
        let x = b.node("x", OpKind::FpAdd, 1);
        let y = b.node("y", OpKind::FpAdd, 1);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(x, y, DepKind::RegFlow, 0).unwrap();
        b.edge(y, x, DepKind::RegFlow, 1).unwrap();
        let g = b.build().unwrap();
        let p = pre_order(&LoopAnalysis::analyze(&g));
        let pos = |n: NodeId| p.order.iter().position(|&m| m == n).unwrap();
        assert!(pos(x) < pos(a));
        assert!(pos(y) < pos(a));
    }

    #[test]
    fn self_loops_do_not_disturb_the_ordering() {
        let (g, _) = figure1();
        // Re-build figure 1 with an accumulator-style self-loop on G.
        let mut b = DdgBuilder::new("fig1_self");
        let ids: Vec<NodeId> = (0..g.num_nodes())
            .map(|i| {
                let n = g.node(NodeId::from_index(i));
                b.node(n.name(), n.kind(), n.latency())
            })
            .collect();
        for (_, e) in g.edges() {
            b.edge(e.source(), e.target(), e.kind(), e.distance())
                .unwrap();
        }
        b.edge(ids[6], ids[6], DepKind::RegFlow, 1).unwrap();
        let g2 = b.build().unwrap();
        let p = pre_order(&LoopAnalysis::analyze(&g2));
        let names: Vec<String> = p
            .order
            .iter()
            .map(|&n| g2.node(n).name().to_string())
            .collect();
        assert_eq!(names, vec!["A", "B", "C", "D", "F", "E", "G"]);
    }

    #[test]
    fn start_node_policy_changes_the_first_node() {
        let (g, ids) = figure1();
        let p = pre_order_with(
            &LoopAnalysis::analyze(&g),
            &PreOrderOptions {
                start_node: StartNodePolicy::Fixed(ids[4]),
            },
        );
        assert_eq!(
            p.order[0], ids[4],
            "E was requested as the initial hypernode"
        );
        assert_eq!(p.order.len(), 7);

        let p = pre_order_with(
            &LoopAnalysis::analyze(&g),
            &PreOrderOptions {
                start_node: StartNodePolicy::LastInProgramOrder,
            },
        );
        assert_eq!(p.order[0], ids[6]);
        assert_eq!(p.order.len(), 7);
    }

    #[test]
    fn backward_edges_are_exactly_the_in_scc_loop_carried_edges() {
        let mut b = DdgBuilder::new("be");
        let a = b.node("a", OpKind::FpAdd, 1);
        let c = b.node("c", OpKind::FpAdd, 1);
        let d = b.node("d", OpKind::FpAdd, 1);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, a, DepKind::RegFlow, 1).unwrap(); // backward
        b.edge(c, d, DepKind::RegFlow, 2).unwrap(); // loop-carried but not in a cycle
        let g = b.build().unwrap();
        let be = backward_edges(&g);
        assert_eq!(be.len(), 1);
        let (eid, _) = g
            .edges()
            .find(|(_, e)| e.source() == c && e.target() == a)
            .unwrap();
        assert!(be.contains(&eid));
    }

    #[test]
    fn fallback_prefers_nodes_with_an_ordered_reference() {
        // Component layout: recurrence {r0, r1} bridged to a second
        // recurrence {s0, s1} only through a loop-carried (dropped) edge,
        // plus a node `far` attached to s1. After ordering {r0, r1} the
        // remainder {s0, s1, far} is disconnected in the work graph; the
        // fallback must pick s0/s1 (adjacent in the undropped graph to the
        // ordered prefix through the dropped bridge... none) — here no
        // remaining node touches the ordered set, so the lowest-numbered one
        // is taken; once s0 is in, `far` and s1 follow with references.
        let mut b = DdgBuilder::new("fallback");
        let r0 = b.node("r0", OpKind::FpAdd, 1);
        let r1 = b.node("r1", OpKind::FpAdd, 1);
        let s0 = b.node("s0", OpKind::FpAdd, 1);
        let s1 = b.node("s1", OpKind::FpAdd, 1);
        let far = b.node("far", OpKind::FpAdd, 1);
        b.edge(r0, r1, DepKind::RegFlow, 0).unwrap();
        b.edge(r1, r0, DepKind::RegFlow, 1).unwrap();
        b.edge(s0, s1, DepKind::RegFlow, 0).unwrap();
        b.edge(s1, s0, DepKind::RegFlow, 1).unwrap();
        b.edge(s1, far, DepKind::RegFlow, 0).unwrap();
        // Bridge the recurrences with a loop-carried edge that joins the two
        // SCCs into one weak component but is *not* a backward edge (it
        // leaves its SCC), so it stays in the work graph. To force the
        // disconnected-remainder case the bridge must be within one SCC:
        // close it back so {r0, r1, s0, s1} become a single SCC chain is too
        // strong; instead bridge through a dropped edge by making it part of
        // a circuit: r1 -> s0 (distance 1) and s1 -> r0 (distance 1) form a
        // big circuit, so both are backward edges and get dropped.
        b.edge(r1, s0, DepKind::RegFlow, 1).unwrap();
        b.edge(s1, r0, DepKind::RegFlow, 1).unwrap();
        let g = b.build().unwrap();
        let p = pre_order(&LoopAnalysis::analyze(&g));
        assert_eq!(p.components, 1);
        // Every node ordered exactly once.
        let mut sorted = p.order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), g.num_nodes());
        // With the reference-aware fallback, every node after the first has
        // an already-ordered neighbour in the full graph.
        let mut placed: HashSet<NodeId> = HashSet::new();
        for (i, &n) in p.order.iter().enumerate() {
            if i > 0 {
                let has_ref = g
                    .predecessors(n)
                    .iter()
                    .chain(g.successors(n).iter())
                    .any(|x| placed.contains(x));
                assert!(has_ref, "node {n} was ordered without any reference");
            }
            placed.insert(n);
        }
    }
}
