//! The mutable working graph on which hypernode reduction operates.

use std::collections::{BTreeSet, HashMap};

use hrms_ddg::{Ddg, GraphView, NodeId};

/// A mutable directed graph over a subset of a [`Ddg`]'s nodes, supporting
/// the *hypernode reduction* operation of the paper (Section 3.1):
///
/// > The reduction of a set of nodes to the Hypernode consists of deleting
/// > the set of edges among the nodes of the set and the Hypernode, replacing
/// > the edges between the rest of the nodes and the reduced set of nodes by
/// > edges between the rest of the nodes and the Hypernode, and finally
/// > deleting the set of nodes being reduced.
///
/// The hypernode is identified by the node id it started from; after a
/// reduction the reduced nodes disappear from the graph and their external
/// edges are re-attached to the hypernode. Parallel edges collapse (the
/// pre-ordering only needs adjacency, not multiplicity), and dependence
/// distances are irrelevant here — the work graph is built with the backward
/// edges of every recurrence already removed, so it is acyclic.
#[derive(Debug, Clone)]
pub struct WorkGraph {
    /// Successor sets, keyed by live node. `BTreeSet` keeps traversal
    /// deterministic.
    succs: HashMap<NodeId, BTreeSet<NodeId>>,
    /// Predecessor sets, keyed by live node.
    preds: HashMap<NodeId, BTreeSet<NodeId>>,
    /// Upper bound on node ids (from the original graph).
    bound: usize,
}

impl WorkGraph {
    /// Builds a work graph containing `members` and every edge of `ddg`
    /// whose endpoints are both in `members`, **excluding** the edges listed
    /// in `dropped_edges` (the backward edges of recurrence circuits) and
    /// self-loops.
    pub fn new(
        ddg: &Ddg,
        members: &[NodeId],
        dropped_edges: &std::collections::HashSet<hrms_ddg::EdgeId>,
    ) -> Self {
        let member_set: BTreeSet<NodeId> = members.iter().copied().collect();
        let mut succs: HashMap<NodeId, BTreeSet<NodeId>> = HashMap::new();
        let mut preds: HashMap<NodeId, BTreeSet<NodeId>> = HashMap::new();
        for &m in &member_set {
            succs.insert(m, BTreeSet::new());
            preds.insert(m, BTreeSet::new());
        }
        for (eid, e) in ddg.edges() {
            if dropped_edges.contains(&eid) || e.is_self_loop() {
                continue;
            }
            let (s, t) = (e.source(), e.target());
            if member_set.contains(&s) && member_set.contains(&t) {
                succs.get_mut(&s).expect("member").insert(t);
                preds.get_mut(&t).expect("member").insert(s);
            }
        }
        WorkGraph {
            succs,
            preds,
            bound: ddg.num_nodes(),
        }
    }

    /// Number of nodes still present.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// The live nodes, in ascending id order.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.succs.keys().copied().collect();
        v.sort();
        v
    }

    /// Reduces `set` into the hypernode `h`: every member of `set` is
    /// removed, its edges to/from `h` (or other members) are deleted, and
    /// its edges to/from the rest of the graph are re-attached to `h`.
    ///
    /// Nodes of `set` that are not (or no longer) present are ignored; `h`
    /// itself is never removed.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not present in the graph.
    pub fn reduce(&mut self, set: &[NodeId], h: NodeId) {
        assert!(
            self.succs.contains_key(&h),
            "hypernode {h} is not in the work graph"
        );
        let victims: BTreeSet<NodeId> = set
            .iter()
            .copied()
            .filter(|&v| v != h && self.succs.contains_key(&v))
            .collect();
        for &v in &victims {
            let out = self.succs.remove(&v).unwrap_or_default();
            let inc = self.preds.remove(&v).unwrap_or_default();
            for t in out {
                if let Some(p) = self.preds.get_mut(&t) {
                    p.remove(&v);
                }
                if t == h || victims.contains(&t) {
                    continue;
                }
                // redirect v -> t into h -> t
                self.succs.get_mut(&h).expect("h present").insert(t);
                self.preds.get_mut(&t).expect("t present").insert(h);
            }
            for s in inc {
                if let Some(sset) = self.succs.get_mut(&s) {
                    sset.remove(&v);
                }
                if s == h || victims.contains(&s) {
                    continue;
                }
                // redirect s -> v into s -> h
                self.succs.get_mut(&s).expect("s present").insert(h);
                self.preds.get_mut(&h).expect("h present").insert(s);
            }
        }
        // Drop any edge between h and itself that redirection may have
        // introduced.
        self.succs.get_mut(&h).expect("h present").remove(&h);
        self.preds.get_mut(&h).expect("h present").remove(&h);
    }

    /// Ensures `extra` is present (used when connecting a disconnected
    /// recurrence subgraph to the hypernode): inserts it with no edges if it
    /// was absent. Returns whether it was inserted.
    pub fn ensure_node(&mut self, extra: NodeId) -> bool {
        if self.succs.contains_key(&extra) {
            return false;
        }
        self.succs.insert(extra, BTreeSet::new());
        self.preds.insert(extra, BTreeSet::new());
        true
    }

    /// A read-only view of this graph that hides one node (the hypernode);
    /// used by the path search so that paths running *through* the hypernode
    /// are not reported.
    pub fn without(&self, hidden: NodeId) -> HiddenNodeView<'_> {
        HiddenNodeView {
            graph: self,
            hidden,
        }
    }

    /// A new work graph containing only `members` (those of them currently
    /// present) and the edges of this graph whose endpoints are both kept.
    ///
    /// This implements the paper's `Generate_Subgraph(V', G)`: the
    /// recurrence-ordering procedure extracts the subgraph spanned by the
    /// hypernode, the next recurrence circuit and the paths connecting them,
    /// orders it in isolation, and then reduces it in the main graph.
    pub fn restricted(&self, members: &BTreeSet<NodeId>) -> WorkGraph {
        let mut succs: HashMap<NodeId, BTreeSet<NodeId>> = HashMap::new();
        let mut preds: HashMap<NodeId, BTreeSet<NodeId>> = HashMap::new();
        for &m in members {
            if !self.succs.contains_key(&m) {
                continue;
            }
            succs.insert(
                m,
                self.succs[&m]
                    .iter()
                    .copied()
                    .filter(|t| members.contains(t))
                    .collect(),
            );
            preds.insert(
                m,
                self.preds[&m]
                    .iter()
                    .copied()
                    .filter(|s| members.contains(s))
                    .collect(),
            );
        }
        WorkGraph {
            succs,
            preds,
            bound: self.bound,
        }
    }
}

impl GraphView for WorkGraph {
    fn node_bound(&self) -> usize {
        self.bound
    }

    fn contains(&self, n: NodeId) -> bool {
        self.succs.contains_key(&n)
    }

    fn successors_of(&self, n: NodeId) -> Vec<NodeId> {
        self.succs
            .get(&n)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    fn predecessors_of(&self, n: NodeId) -> Vec<NodeId> {
        self.preds
            .get(&n)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }
}

/// A [`GraphView`] over a [`WorkGraph`] with one node hidden.
#[derive(Debug, Clone, Copy)]
pub struct HiddenNodeView<'a> {
    graph: &'a WorkGraph,
    hidden: NodeId,
}

impl GraphView for HiddenNodeView<'_> {
    fn node_bound(&self) -> usize {
        self.graph.node_bound()
    }

    fn contains(&self, n: NodeId) -> bool {
        n != self.hidden && self.graph.contains(n)
    }

    fn successors_of(&self, n: NodeId) -> Vec<NodeId> {
        if n == self.hidden {
            return Vec::new();
        }
        self.graph
            .successors_of(n)
            .into_iter()
            .filter(|&s| s != self.hidden)
            .collect()
    }

    fn predecessors_of(&self, n: NodeId) -> Vec<NodeId> {
        if n == self.hidden {
            return Vec::new();
        }
        self.graph
            .predecessors_of(n)
            .into_iter()
            .filter(|&s| s != self.hidden)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, DepKind, OpKind};
    use std::collections::HashSet;

    /// a -> b -> c, a -> c
    fn triangle() -> (Ddg, Vec<NodeId>) {
        let mut bld = DdgBuilder::new("t");
        let a = bld.node("a", OpKind::FpAdd, 1);
        let b = bld.node("b", OpKind::FpAdd, 1);
        let c = bld.node("c", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, c, DepKind::RegFlow, 0).unwrap();
        bld.edge(a, c, DepKind::RegFlow, 0).unwrap();
        let g = bld.build().unwrap();
        (g, vec![a, b, c])
    }

    #[test]
    fn construction_restricts_to_members() {
        let (g, ids) = triangle();
        let wg = WorkGraph::new(&g, &[ids[0], ids[1]], &HashSet::new());
        assert_eq!(wg.len(), 2);
        assert_eq!(wg.successors_of(ids[0]), vec![ids[1]]);
        assert!(wg.successors_of(ids[1]).is_empty(), "edge to c is outside");
        assert!(!wg.contains(ids[2]));
    }

    #[test]
    fn dropped_edges_are_excluded() {
        let (g, ids) = triangle();
        let drop: HashSet<_> = g
            .edges()
            .filter(|(_, e)| e.source() == ids[0] && e.target() == ids[2])
            .map(|(eid, _)| eid)
            .collect();
        let wg = WorkGraph::new(&g, &ids, &drop);
        assert_eq!(wg.successors_of(ids[0]), vec![ids[1]]);
        assert_eq!(wg.predecessors_of(ids[2]), vec![ids[1]]);
    }

    #[test]
    fn self_loops_never_appear() {
        let mut bld = DdgBuilder::new("s");
        let a = bld.node("a", OpKind::FpAdd, 1);
        bld.edge(a, a, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let wg = WorkGraph::new(&g, &[a], &HashSet::new());
        assert!(wg.successors_of(a).is_empty());
        assert!(wg.predecessors_of(a).is_empty());
    }

    #[test]
    fn reduce_redirects_external_edges() {
        // a -> b -> c with hypernode a: reducing {b} must leave a -> c.
        let (g, ids) = triangle();
        let mut wg = WorkGraph::new(&g, &ids, &HashSet::new());
        wg.reduce(&[ids[1]], ids[0]);
        assert_eq!(wg.len(), 2);
        assert_eq!(wg.successors_of(ids[0]), vec![ids[2]]);
        assert_eq!(wg.predecessors_of(ids[2]), vec![ids[0]]);
        assert!(!wg.contains(ids[1]));
    }

    #[test]
    fn reduce_from_the_other_side() {
        // Hypernode c: reducing {b} must produce a -> c (already present) and
        // drop b entirely.
        let (g, ids) = triangle();
        let mut wg = WorkGraph::new(&g, &ids, &HashSet::new());
        wg.reduce(&[ids[1]], ids[2]);
        assert_eq!(wg.successors_of(ids[0]), vec![ids[2]]);
        assert_eq!(wg.predecessors_of(ids[2]), vec![ids[0]]);
    }

    #[test]
    fn reduce_never_creates_hypernode_self_loop() {
        let (g, ids) = triangle();
        let mut wg = WorkGraph::new(&g, &ids, &HashSet::new());
        // Reducing both b and c into a leaves a alone with no self edges.
        wg.reduce(&[ids[1], ids[2]], ids[0]);
        assert_eq!(wg.len(), 1);
        assert!(wg.successors_of(ids[0]).is_empty());
        assert!(wg.predecessors_of(ids[0]).is_empty());
    }

    #[test]
    fn reduce_ignores_absent_nodes_and_hypernode_itself() {
        let (g, ids) = triangle();
        let mut wg = WorkGraph::new(&g, &ids, &HashSet::new());
        wg.reduce(&[ids[1]], ids[0]);
        // Reducing b again (already gone) and a (the hypernode) is a no-op.
        wg.reduce(&[ids[1], ids[0]], ids[0]);
        assert_eq!(wg.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not in the work graph")]
    fn reduce_panics_without_hypernode() {
        let (g, ids) = triangle();
        let mut wg = WorkGraph::new(&g, &[ids[0], ids[1]], &HashSet::new());
        wg.reduce(&[ids[1]], ids[2]);
    }

    #[test]
    fn hidden_view_skips_the_hypernode() {
        let (g, ids) = triangle();
        let wg = WorkGraph::new(&g, &ids, &HashSet::new());
        let view = wg.without(ids[1]);
        assert!(!view.contains(ids[1]));
        assert!(view.successors_of(ids[0]).contains(&ids[2]));
        assert!(!view.successors_of(ids[0]).contains(&ids[1]));
        assert!(view.successors_of(ids[1]).is_empty());
        assert_eq!(view.predecessors_of(ids[2]), vec![ids[0]]);
    }

    #[test]
    fn ensure_node_inserts_isolated_nodes() {
        let (g, ids) = triangle();
        let mut wg = WorkGraph::new(&g, &[ids[0]], &HashSet::new());
        assert!(wg.ensure_node(ids[2]));
        assert!(!wg.ensure_node(ids[2]));
        assert!(wg.contains(ids[2]));
        assert!(wg.successors_of(ids[2]).is_empty());
    }

    #[test]
    fn figure7_style_chain_of_reductions() {
        // Mirrors the shape of the paper's Figure 7 walk-through on a small
        // graph: successively reducing neighbours into the hypernode keeps
        // exposing the next layer.
        let mut bld = DdgBuilder::new("f");
        let a = bld.node("A", OpKind::FpAdd, 1);
        let c = bld.node("C", OpKind::FpAdd, 1);
        let g_ = bld.node("G", OpKind::FpAdd, 1);
        let h = bld.node("H", OpKind::FpAdd, 1);
        let d = bld.node("D", OpKind::FpAdd, 1);
        bld.edge(a, c, DepKind::RegFlow, 0).unwrap();
        bld.edge(c, g_, DepKind::RegFlow, 0).unwrap();
        bld.edge(c, h, DepKind::RegFlow, 0).unwrap();
        bld.edge(d, h, DepKind::RegFlow, 0).unwrap();
        let g = bld.build().unwrap();
        let mut wg = WorkGraph::new(&g, &g.node_ids().collect::<Vec<_>>(), &HashSet::new());

        assert_eq!(wg.successors_of(a), vec![c]);
        wg.reduce(&[c], a);
        assert_eq!(wg.successors_of(a), vec![g_, h]);
        wg.reduce(&[g_, h], a);
        assert_eq!(wg.predecessors_of(a), vec![d]);
        wg.reduce(&[d], a);
        assert_eq!(wg.len(), 1);
    }
}
