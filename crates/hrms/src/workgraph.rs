//! The mutable working graph on which hypernode reduction operates.
//!
//! Since the dense-representation rewrite this graph stores its live set as
//! a u64-word bitset ([`hrms_ddg::NodeSet`]) and its per-node adjacency as
//! sorted index vectors (`Vec<u32>`) keyed by the original dense node ids,
//! instead of `HashMap<NodeId, BTreeSet<NodeId>>`. Reduction is `O(degree)`
//! per reduced node, adjacency iteration is `O(degree)` with no hashing and
//! no per-query allocation, and path search / topological sorts run on the
//! index machinery of [`hrms_ddg::dense`] — the representation dense
//! subgraph-extraction schedulers use to make repeated region queries scale.
//! The public API and the deterministic (ascending node id) traversal order
//! of the original implementation are preserved; the original itself
//! survives as [`crate::legacy::LegacyWorkGraph`] for differential testing.

use std::collections::BTreeSet;

use hrms_ddg::dense::DenseAdjacency;
use hrms_ddg::{Csr, Ddg, GraphView, NodeId, NodeSet};

/// A mutable directed graph over a subset of a [`Ddg`]'s nodes, supporting
/// the *hypernode reduction* operation of the paper (Section 3.1):
///
/// > The reduction of a set of nodes to the Hypernode consists of deleting
/// > the set of edges among the nodes of the set and the Hypernode, replacing
/// > the edges between the rest of the nodes and the reduced set of nodes by
/// > edges between the rest of the nodes and the Hypernode, and finally
/// > deleting the set of nodes being reduced.
///
/// The hypernode is identified by the node id it started from; after a
/// reduction the reduced nodes disappear from the graph and their external
/// edges are re-attached to the hypernode. Parallel edges collapse (the
/// pre-ordering only needs adjacency, not multiplicity), and dependence
/// distances are irrelevant here — the work graph is built with the backward
/// edges of every recurrence already removed, so it is acyclic.
#[derive(Debug, Clone)]
pub struct WorkGraph {
    /// The live nodes.
    live: NodeSet,
    /// Number of live nodes (kept incrementally; `NodeSet::len` is a
    /// popcount).
    len: usize,
    /// Successor rows, indexed by node id: sorted, deduplicated index
    /// vectors. Rows of dead nodes are empty and live rows only ever contain
    /// live nodes.
    succs: Vec<Vec<u32>>,
    /// Predecessor rows, symmetric to `succs`.
    preds: Vec<Vec<u32>>,
    /// Upper bound on node ids (from the original graph).
    bound: usize,
}

/// Inserts `x` into a sorted, deduplicated row.
#[inline]
fn row_insert(row: &mut Vec<u32>, x: u32) {
    if let Err(pos) = row.binary_search(&x) {
        row.insert(pos, x);
    }
}

/// Removes `x` from a sorted row if present.
#[inline]
fn row_remove(row: &mut Vec<u32>, x: u32) {
    if let Ok(pos) = row.binary_search(&x) {
        row.remove(pos);
    }
}

impl WorkGraph {
    /// Builds a work graph containing `members` and every edge of `ddg`
    /// whose endpoints are both in `members`, **excluding** the edges listed
    /// in `dropped_edges` (the backward edges of recurrence circuits) and
    /// self-loops.
    pub fn new(
        ddg: &Ddg,
        members: &[NodeId],
        dropped_edges: &std::collections::HashSet<hrms_ddg::EdgeId>,
    ) -> Self {
        let csr = Csr::filtered(ddg, dropped_edges);
        Self::from_csr(&csr, members)
    }

    /// Builds a work graph over `members` from a pre-built (already
    /// backward-edge-filtered) [`Csr`] adjacency, in
    /// `O(bound + Σ degree(members))`. The pre-ordering driver builds the
    /// CSR once per loop and carves one work graph per weakly connected
    /// component out of it.
    pub fn from_csr(csr: &Csr, members: &[NodeId]) -> Self {
        let bound = csr.node_bound();
        let mut live = NodeSet::new(bound);
        for &m in members {
            live.insert(m.index());
        }
        let len = live.len();
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); bound];
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); bound];
        for m in live.iter() {
            // CSR rows are sorted and deduplicated, so the filtered copies
            // are too; predecessor rows receive ascending `m`, keeping them
            // sorted as well.
            succs[m] = csr
                .succs(m)
                .iter()
                .copied()
                .filter(|&t| live.contains(t as usize))
                .collect();
            for &t in &succs[m] {
                preds[t as usize].push(m as u32);
            }
        }
        WorkGraph {
            live,
            len,
            succs,
            preds,
            bound,
        }
    }

    /// Number of nodes still present.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The live nodes, in ascending id order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.live.to_node_ids()
    }

    /// The live-node bitset (ascending iteration order).
    #[inline]
    pub fn live(&self) -> &NodeSet {
        &self.live
    }

    /// The successor row of node `i`: a sorted, deduplicated slice of live
    /// node indices (empty for dead nodes).
    #[inline]
    pub fn succ_row(&self, i: usize) -> &[u32] {
        &self.succs[i]
    }

    /// The predecessor row of node `i` (empty for dead nodes).
    #[inline]
    pub fn pred_row(&self, i: usize) -> &[u32] {
        &self.preds[i]
    }

    /// Reduces `set` into the hypernode `h`: every member of `set` is
    /// removed, its edges to/from `h` (or other members) are deleted, and
    /// its edges to/from the rest of the graph are re-attached to `h`.
    ///
    /// Nodes of `set` that are not (or no longer) present are ignored; `h`
    /// itself is never removed.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not present in the graph.
    pub fn reduce(&mut self, set: &[NodeId], h: NodeId) {
        let mut victims = NodeSet::new(self.bound);
        for &v in set {
            if v.index() < self.bound {
                victims.insert(v.index());
            }
        }
        self.reduce_set(&victims, h);
    }

    /// [`WorkGraph::reduce`] over a bitset of victims — the allocation-free
    /// fast path used by the pre-ordering phase. Runs in
    /// `O(Σ degree(victims))` word operations.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not present in the graph.
    pub fn reduce_set(&mut self, set: &NodeSet, h: NodeId) {
        let hi = h.index();
        assert!(
            self.live.contains(hi),
            "hypernode {h} is not in the work graph"
        );
        let mut victims = set.clone();
        victims.intersect_with(&self.live);
        victims.remove(hi);

        for v in victims.iter() {
            let out = std::mem::take(&mut self.succs[v]);
            let inc = std::mem::take(&mut self.preds[v]);
            self.live.remove(v);
            self.len -= 1;
            for &t in &out {
                row_remove(&mut self.preds[t as usize], v as u32);
                if t as usize == hi || victims.contains(t as usize) {
                    continue;
                }
                // redirect v -> t into h -> t
                row_insert(&mut self.succs[hi], t);
                row_insert(&mut self.preds[t as usize], hi as u32);
            }
            for &s in &inc {
                row_remove(&mut self.succs[s as usize], v as u32);
                if s as usize == hi || victims.contains(s as usize) {
                    continue;
                }
                // redirect s -> v into s -> h
                row_insert(&mut self.succs[s as usize], hi as u32);
                row_insert(&mut self.preds[hi], s);
            }
        }
        // Drop any edge between h and itself that redirection may have
        // introduced.
        row_remove(&mut self.succs[hi], hi as u32);
        row_remove(&mut self.preds[hi], hi as u32);
    }

    /// Ensures `extra` is present (used when connecting a disconnected
    /// recurrence subgraph to the hypernode): inserts it with no edges if it
    /// was absent. Returns whether it was inserted.
    pub fn ensure_node(&mut self, extra: NodeId) -> bool {
        if self.live.contains(extra.index()) {
            return false;
        }
        self.live.insert(extra.index());
        self.len += 1;
        true
    }

    /// A read-only view of this graph that hides one node (the hypernode);
    /// used by the path search so that paths running *through* the hypernode
    /// are not reported.
    pub fn without(&self, hidden: NodeId) -> HiddenNodeView<'_> {
        HiddenNodeView {
            graph: self,
            hidden,
        }
    }

    /// A new work graph containing only `members` (those of them currently
    /// present) and the edges of this graph whose endpoints are both kept.
    ///
    /// This implements the paper's `Generate_Subgraph(V', G)`: the
    /// recurrence-ordering procedure extracts the subgraph spanned by the
    /// hypernode, the next recurrence circuit and the paths connecting them,
    /// orders it in isolation, and then reduces it in the main graph.
    pub fn restricted(&self, members: &BTreeSet<NodeId>) -> WorkGraph {
        let mut set = NodeSet::new(self.bound);
        for &m in members {
            if m.index() < self.bound {
                set.insert(m.index());
            }
        }
        self.restricted_set(&set)
    }

    /// [`WorkGraph::restricted`] over a bitset of members.
    pub fn restricted_set(&self, members: &NodeSet) -> WorkGraph {
        let mut live = members.clone();
        live.intersect_with(&self.live);
        let len = live.len();
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); self.bound];
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); self.bound];
        for m in live.iter() {
            succs[m] = self.succs[m]
                .iter()
                .copied()
                .filter(|&t| live.contains(t as usize))
                .collect();
            preds[m] = self.preds[m]
                .iter()
                .copied()
                .filter(|&s| live.contains(s as usize))
                .collect();
        }
        WorkGraph {
            live,
            len,
            succs,
            preds,
            bound: self.bound,
        }
    }
}

impl GraphView for WorkGraph {
    fn node_bound(&self) -> usize {
        self.bound
    }

    fn contains(&self, n: NodeId) -> bool {
        self.live.contains(n.index())
    }

    fn successors_of(&self, n: NodeId) -> Vec<NodeId> {
        if n.index() >= self.bound {
            return Vec::new();
        }
        self.succs[n.index()].iter().map(|&t| NodeId(t)).collect()
    }

    fn predecessors_of(&self, n: NodeId) -> Vec<NodeId> {
        if n.index() >= self.bound {
            return Vec::new();
        }
        self.preds[n.index()].iter().map(|&s| NodeId(s)).collect()
    }
}

impl DenseAdjacency for WorkGraph {
    fn node_bound(&self) -> usize {
        self.bound
    }

    fn is_live(&self, i: usize) -> bool {
        self.live.contains(i)
    }

    fn for_each_succ(&self, i: usize, f: &mut dyn FnMut(usize)) {
        for &t in &self.succs[i] {
            f(t as usize);
        }
    }

    fn for_each_pred(&self, i: usize, f: &mut dyn FnMut(usize)) {
        for &s in &self.preds[i] {
            f(s as usize);
        }
    }
}

/// A [`GraphView`] over a [`WorkGraph`] with one node hidden.
#[derive(Debug, Clone, Copy)]
pub struct HiddenNodeView<'a> {
    graph: &'a WorkGraph,
    hidden: NodeId,
}

impl GraphView for HiddenNodeView<'_> {
    fn node_bound(&self) -> usize {
        GraphView::node_bound(self.graph)
    }

    fn contains(&self, n: NodeId) -> bool {
        n != self.hidden && self.graph.contains(n)
    }

    fn successors_of(&self, n: NodeId) -> Vec<NodeId> {
        if n == self.hidden {
            return Vec::new();
        }
        self.graph
            .successors_of(n)
            .into_iter()
            .filter(|&s| s != self.hidden)
            .collect()
    }

    fn predecessors_of(&self, n: NodeId) -> Vec<NodeId> {
        if n == self.hidden {
            return Vec::new();
        }
        self.graph
            .predecessors_of(n)
            .into_iter()
            .filter(|&s| s != self.hidden)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, DepKind, OpKind};
    use std::collections::HashSet;

    /// a -> b -> c, a -> c
    fn triangle() -> (Ddg, Vec<NodeId>) {
        let mut bld = DdgBuilder::new("t");
        let a = bld.node("a", OpKind::FpAdd, 1);
        let b = bld.node("b", OpKind::FpAdd, 1);
        let c = bld.node("c", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, c, DepKind::RegFlow, 0).unwrap();
        bld.edge(a, c, DepKind::RegFlow, 0).unwrap();
        let g = bld.build().unwrap();
        (g, vec![a, b, c])
    }

    #[test]
    fn construction_restricts_to_members() {
        let (g, ids) = triangle();
        let wg = WorkGraph::new(&g, &[ids[0], ids[1]], &HashSet::new());
        assert_eq!(wg.len(), 2);
        assert_eq!(wg.successors_of(ids[0]), vec![ids[1]]);
        assert!(wg.successors_of(ids[1]).is_empty(), "edge to c is outside");
        assert!(!wg.contains(ids[2]));
    }

    #[test]
    fn dropped_edges_are_excluded() {
        let (g, ids) = triangle();
        let drop: HashSet<_> = g
            .edges()
            .filter(|(_, e)| e.source() == ids[0] && e.target() == ids[2])
            .map(|(eid, _)| eid)
            .collect();
        let wg = WorkGraph::new(&g, &ids, &drop);
        assert_eq!(wg.successors_of(ids[0]), vec![ids[1]]);
        assert_eq!(wg.predecessors_of(ids[2]), vec![ids[1]]);
    }

    #[test]
    fn self_loops_never_appear() {
        let mut bld = DdgBuilder::new("s");
        let a = bld.node("a", OpKind::FpAdd, 1);
        bld.edge(a, a, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let wg = WorkGraph::new(&g, &[a], &HashSet::new());
        assert!(wg.successors_of(a).is_empty());
        assert!(wg.predecessors_of(a).is_empty());
    }

    #[test]
    fn reduce_redirects_external_edges() {
        // a -> b -> c with hypernode a: reducing {b} must leave a -> c.
        let (g, ids) = triangle();
        let mut wg = WorkGraph::new(&g, &ids, &HashSet::new());
        wg.reduce(&[ids[1]], ids[0]);
        assert_eq!(wg.len(), 2);
        assert_eq!(wg.successors_of(ids[0]), vec![ids[2]]);
        assert_eq!(wg.predecessors_of(ids[2]), vec![ids[0]]);
        assert!(!wg.contains(ids[1]));
    }

    #[test]
    fn reduce_from_the_other_side() {
        // Hypernode c: reducing {b} must produce a -> c (already present) and
        // drop b entirely.
        let (g, ids) = triangle();
        let mut wg = WorkGraph::new(&g, &ids, &HashSet::new());
        wg.reduce(&[ids[1]], ids[2]);
        assert_eq!(wg.successors_of(ids[0]), vec![ids[2]]);
        assert_eq!(wg.predecessors_of(ids[2]), vec![ids[0]]);
    }

    #[test]
    fn reduce_never_creates_hypernode_self_loop() {
        let (g, ids) = triangle();
        let mut wg = WorkGraph::new(&g, &ids, &HashSet::new());
        // Reducing both b and c into a leaves a alone with no self edges.
        wg.reduce(&[ids[1], ids[2]], ids[0]);
        assert_eq!(wg.len(), 1);
        assert!(wg.successors_of(ids[0]).is_empty());
        assert!(wg.predecessors_of(ids[0]).is_empty());
    }

    #[test]
    fn reduce_ignores_absent_nodes_and_hypernode_itself() {
        let (g, ids) = triangle();
        let mut wg = WorkGraph::new(&g, &ids, &HashSet::new());
        wg.reduce(&[ids[1]], ids[0]);
        // Reducing b again (already gone) and a (the hypernode) is a no-op.
        wg.reduce(&[ids[1], ids[0]], ids[0]);
        assert_eq!(wg.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not in the work graph")]
    fn reduce_panics_without_hypernode() {
        let (g, ids) = triangle();
        let mut wg = WorkGraph::new(&g, &[ids[0], ids[1]], &HashSet::new());
        wg.reduce(&[ids[1]], ids[2]);
    }

    #[test]
    fn hidden_view_skips_the_hypernode() {
        let (g, ids) = triangle();
        let wg = WorkGraph::new(&g, &ids, &HashSet::new());
        let view = wg.without(ids[1]);
        assert!(!view.contains(ids[1]));
        assert!(view.successors_of(ids[0]).contains(&ids[2]));
        assert!(!view.successors_of(ids[0]).contains(&ids[1]));
        assert!(view.successors_of(ids[1]).is_empty());
        assert_eq!(view.predecessors_of(ids[2]), vec![ids[0]]);
    }

    #[test]
    fn ensure_node_inserts_isolated_nodes() {
        let (g, ids) = triangle();
        let mut wg = WorkGraph::new(&g, &[ids[0]], &HashSet::new());
        assert!(wg.ensure_node(ids[2]));
        assert!(!wg.ensure_node(ids[2]));
        assert!(wg.contains(ids[2]));
        assert!(wg.successors_of(ids[2]).is_empty());
    }

    #[test]
    fn figure7_style_chain_of_reductions() {
        // Mirrors the shape of the paper's Figure 7 walk-through on a small
        // graph: successively reducing neighbours into the hypernode keeps
        // exposing the next layer.
        let mut bld = DdgBuilder::new("f");
        let a = bld.node("A", OpKind::FpAdd, 1);
        let c = bld.node("C", OpKind::FpAdd, 1);
        let g_ = bld.node("G", OpKind::FpAdd, 1);
        let h = bld.node("H", OpKind::FpAdd, 1);
        let d = bld.node("D", OpKind::FpAdd, 1);
        bld.edge(a, c, DepKind::RegFlow, 0).unwrap();
        bld.edge(c, g_, DepKind::RegFlow, 0).unwrap();
        bld.edge(c, h, DepKind::RegFlow, 0).unwrap();
        bld.edge(d, h, DepKind::RegFlow, 0).unwrap();
        let g = bld.build().unwrap();
        let mut wg = WorkGraph::new(&g, &g.node_ids().collect::<Vec<_>>(), &HashSet::new());

        assert_eq!(wg.successors_of(a), vec![c]);
        wg.reduce(&[c], a);
        assert_eq!(wg.successors_of(a), vec![g_, h]);
        wg.reduce(&[g_, h], a);
        assert_eq!(wg.predecessors_of(a), vec![d]);
        wg.reduce(&[d], a);
        assert_eq!(wg.len(), 1);
    }

    #[test]
    fn restricted_set_keeps_only_internal_edges() {
        let (g, ids) = triangle();
        let wg = WorkGraph::new(&g, &ids, &HashSet::new());
        let mut keep = NodeSet::new(g.num_nodes());
        keep.insert(ids[0].index());
        keep.insert(ids[2].index());
        let sub = wg.restricted_set(&keep);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.successors_of(ids[0]), vec![ids[2]]);
        assert!(!sub.contains(ids[1]));
        // The original is untouched.
        assert_eq!(wg.len(), 3);
    }

    #[test]
    fn dense_rows_track_reductions() {
        let (g, ids) = triangle();
        let mut wg = WorkGraph::new(&g, &ids, &HashSet::new());
        assert!(wg.succ_row(ids[0].index()).contains(&ids[1].0));
        wg.reduce(&[ids[1]], ids[0]);
        assert!(wg.succ_row(ids[1].index()).is_empty(), "dead row is empty");
        assert!(wg.pred_row(ids[2].index()).contains(&ids[0].0));
        assert_eq!(wg.live().to_node_ids(), vec![ids[0], ids[2]]);
    }
}
