//! The independent schedule certifier.
//!
//! [`certify`] takes a loop, a machine and a finished [`Schedule`] and
//! re-derives every property a correct modulo schedule must have — from
//! scratch, sharing no working state with the schedulers:
//!
//! * `S007` / `S001` — the II is a positive integer and the schedule
//!   assigns a cycle to every operation (and the re-derived kernel covers
//!   them all exactly once).
//! * `S002` — every dependence `(u, v)` satisfies
//!   `t(v) ≥ t(u) + λ(u,v) − δ(u,v)·II`.
//! * `S003` — a modulo reservation table rebuilt here (per-class,
//!   per-slot demand totals including non-pipelined wrap-around) never
//!   exceeds any class's unit count.
//! * `S004` — the II is at least the loop's MII, re-derived via
//!   [`MiiInfo`] (which fails when RecMII is undefined).
//! * `S005` — MaxLive from the lifetime table equals the loop-variant
//!   register count measured independently by the register-pressure pass.
//! * `S006` — modulo-variable-expansion renaming is consistent and the
//!   expanded kernel's register count matches `mve_registers`.
//!
//! The result is a machine-readable [`Certificate`]: one [`CheckResult`]
//! per property plus an `S0xx` [`Diagnostic`] for every failure, rendered
//! to JSON in the schema documented in `docs/DIAGNOSTICS.md`.

use std::fmt::Write as _;

use hrms_ddg::{ddg_fingerprint, format_digest, Ddg};
use hrms_machine::{machine_fingerprint, Machine};
use hrms_modsched::{dependence_latency, LifetimeAnalysis, MiiInfo, Schedule};
use hrms_regalloc::{mve_registers, mve_unroll_factor, ExpandedKernel, RegisterPressure};

use crate::diag::{push_json_str, Code, Diagnostic};

/// The outcome of one certifier check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckResult {
    /// Stable check name (`"dependences"`, `"resources"`, ...).
    pub name: &'static str,
    /// Whether the property holds.
    pub passed: bool,
    /// Human-readable evidence: what was checked and what was found.
    pub detail: String,
}

/// A machine-readable certificate for one (loop, machine, schedule)
/// triple.
///
/// `passed()` is the verdict; the rest is the evidence — enough to audit
/// the schedule without re-running the scheduler (digests pin the inputs,
/// the derived quantities are all re-computed by the certifier itself).
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Name of the certified loop.
    pub loop_name: String,
    /// Name of the machine it was scheduled for.
    pub machine_name: String,
    /// [`format_digest`] of the loop's fingerprint.
    pub ddg_digest: String,
    /// [`format_digest`] of the machine's fingerprint.
    pub machine_digest: String,
    /// The schedule's initiation interval.
    pub ii: u32,
    /// Re-derived resource-constrained lower bound.
    pub res_mii: u32,
    /// Re-derived recurrence-constrained lower bound (`None` when a
    /// zero-distance cycle makes it undefined).
    pub rec_mii: Option<u32>,
    /// `max(ResMII, RecMII, 1)`, when RecMII is defined.
    pub mii: Option<u32>,
    /// Re-derived MaxLive (simultaneously-live loop variants).
    pub max_live: u64,
    /// Re-derived total lifetime buffers.
    pub buffers: u64,
    /// Re-derived modulo-variable-expansion unroll factor.
    pub mve_unroll: u32,
    /// Registers required after MVE renaming.
    pub mve_registers: u64,
    /// One entry per property checked, in a fixed order.
    pub checks: Vec<CheckResult>,
    /// An `S0xx` diagnostic for every failed check (empty iff all passed).
    pub diagnostics: Vec<Diagnostic>,
}

impl Certificate {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Renders the certificate as a single JSON object (one line).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"loop\":");
        push_json_str(&mut out, &self.loop_name);
        out.push_str(",\"machine\":");
        push_json_str(&mut out, &self.machine_name);
        let _ = write!(
            out,
            ",\"ddg_digest\":\"{}\",\"machine_digest\":\"{}\",\"ii\":{},\"res_mii\":{}",
            self.ddg_digest, self.machine_digest, self.ii, self.res_mii
        );
        match self.rec_mii {
            Some(r) => {
                let _ = write!(out, ",\"rec_mii\":{r}");
            }
            None => out.push_str(",\"rec_mii\":null"),
        }
        match self.mii {
            Some(m) => {
                let _ = write!(out, ",\"mii\":{m}");
            }
            None => out.push_str(",\"mii\":null"),
        }
        let _ = write!(
            out,
            ",\"max_live\":{},\"buffers\":{},\"mve_unroll\":{},\"mve_registers\":{}",
            self.max_live, self.buffers, self.mve_unroll, self.mve_registers
        );
        let _ = write!(out, ",\"passed\":{}", self.passed());
        out.push_str(",\"checks\":[");
        for (i, c) in self.checks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"passed\":{},\"detail\":",
                c.name, c.passed
            );
            push_json_str(&mut out, &c.detail);
            out.push('}');
        }
        out.push_str("],\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":",
                d.code, d.severity
            );
            push_json_str(&mut out, &d.message);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Certifies `schedule` against `ddg` and `machine`. Never panics: a
/// schedule broken enough to make later checks meaningless (zero II,
/// missing operations) fails fast with the early checks and the rest are
/// skipped.
pub fn certify(ddg: &Ddg, machine: &Machine, schedule: &Schedule) -> Certificate {
    let mut cert = Certificate {
        loop_name: ddg.name().to_string(),
        machine_name: machine.name().to_string(),
        ddg_digest: format_digest(ddg_fingerprint(ddg)),
        machine_digest: format_digest(machine_fingerprint(machine)),
        ii: schedule.ii(),
        res_mii: 0,
        rec_mii: None,
        mii: None,
        max_live: 0,
        buffers: 0,
        mve_unroll: 0,
        mve_registers: 0,
        checks: Vec::new(),
        diagnostics: Vec::new(),
    };

    // S007: the II must be a positive integer before anything modular
    // makes sense.
    let ii = schedule.ii();
    if !check(
        &mut cert,
        Code::S007,
        "ii-positive",
        ii >= 1,
        format!("II = {ii}"),
    ) {
        return cert;
    }

    // S001: one start cycle per operation, and the re-derived kernel
    // places each exactly once.
    let covered = schedule.len() == ddg.num_nodes();
    let detail = format!(
        "schedule covers {} of {} operations",
        schedule.len(),
        ddg.num_nodes()
    );
    if !check(&mut cert, Code::S001, "coverage", covered, detail) {
        return cert;
    }
    let kernel = schedule.kernel();
    check(
        &mut cert,
        Code::S001,
        "kernel-coverage",
        kernel.num_ops() == ddg.num_nodes(),
        format!(
            "re-derived kernel holds {} operations in {} rows",
            kernel.num_ops(),
            kernel.ii()
        ),
    );

    // S002: every dependence checked against the start times, modulo δ·II.
    let mut violations = 0usize;
    for (_, e) in ddg.edges() {
        let t_u = schedule.cycle(e.source());
        let t_v = schedule.cycle(e.target());
        let lat = i64::from(dependence_latency(ddg, e));
        let slack = t_v + i64::from(e.distance()) * i64::from(ii) - t_u - lat;
        if slack < 0 {
            violations += 1;
            cert.diagnostics.push(Diagnostic::new(
                Code::S002,
                format!(
                    "dependence `{}` -> `{}` violated: t({}) = {} < t({}) + {} - {}*{} = {}",
                    ddg.node(e.source()).name(),
                    ddg.node(e.target()).name(),
                    ddg.node(e.target()).name(),
                    t_v,
                    ddg.node(e.source()).name(),
                    lat,
                    e.distance(),
                    ii,
                    t_u + lat - i64::from(e.distance()) * i64::from(ii)
                ),
            ));
        }
    }
    push_check(
        &mut cert,
        "dependences",
        violations == 0,
        format!(
            "{} of {} dependences satisfied modulo delta*II",
            ddg.num_edges() - violations,
            ddg.num_edges()
        ),
    );

    // S003: rebuild the modulo reservation table from scratch — per-class,
    // per-slot demand totals, including the wrap-around demand of
    // operations whose occupancy exceeds the II.
    let mut demand: Vec<Vec<u64>> = machine
        .classes()
        .iter()
        .map(|_| vec![0u64; ii as usize])
        .collect();
    for id in ddg.node_ids() {
        let kind = ddg.node(id).kind();
        let class = machine.class_of(kind).index();
        let occupancy = machine.occupancy_of(kind);
        let start = schedule.cycle(id).rem_euclid(i64::from(ii)) as usize;
        let ii_us = ii as usize;
        let base = (occupancy / ii) as u64;
        let rem = (occupancy % ii) as usize;
        for (s, d) in demand[class].iter_mut().enumerate() {
            *d += base + u64::from((s + ii_us - start) % ii_us < rem);
        }
    }
    let mut oversubscribed = Vec::new();
    for (c, class) in machine.classes().iter().enumerate() {
        for (slot, &d) in demand[c].iter().enumerate() {
            if d > u64::from(class.count) {
                oversubscribed.push((c, slot, d, class.count));
            }
        }
    }
    for &(c, slot, d, count) in &oversubscribed {
        cert.diagnostics.push(Diagnostic::new(
            Code::S003,
            format!(
                "class `{}` oversubscribed in modulo slot {}: demand {} exceeds {} units",
                machine.classes()[c].name,
                slot,
                d,
                count
            ),
        ));
    }
    push_check(
        &mut cert,
        "resources",
        oversubscribed.is_empty(),
        format!(
            "rebuilt MRT: {} classes x {} slots, {} oversubscribed",
            machine.num_classes(),
            ii,
            oversubscribed.len()
        ),
    );

    // S004: the II must not beat the re-derived lower bound.
    match MiiInfo::compute(machine, &hrms_ddg::LoopAnalysis::analyze(ddg)) {
        Ok(info) => {
            cert.res_mii = info.res_mii;
            cert.rec_mii = Some(info.rec_mii);
            cert.mii = Some(info.mii());
            check(
                &mut cert,
                Code::S004,
                "ii-at-least-mii",
                ii >= info.mii(),
                format!(
                    "II = {} vs MII = max(ResMII {}, RecMII {}) = {}",
                    ii,
                    info.res_mii,
                    info.rec_mii,
                    info.mii()
                ),
            );
        }
        Err(e) => {
            check(
                &mut cert,
                Code::S004,
                "ii-at-least-mii",
                false,
                format!("MII is undefined: {e}"),
            );
        }
    }

    // S005: MaxLive re-derived two independent ways must agree.
    let lifetimes = LifetimeAnalysis::analyze(ddg, schedule);
    let pressure = RegisterPressure::measure(ddg, schedule);
    cert.max_live = lifetimes.max_live();
    cert.buffers = lifetimes.buffers();
    check(
        &mut cert,
        Code::S005,
        "max-live",
        lifetimes.max_live() == pressure.variants,
        format!(
            "lifetime table MaxLive = {}, pressure scan = {}",
            lifetimes.max_live(),
            pressure.variants
        ),
    );

    // S006: MVE renaming must be consistent and agree on register counts.
    let unroll = mve_unroll_factor(&lifetimes);
    let registers = mve_registers(&lifetimes);
    cert.mve_unroll = unroll;
    cert.mve_registers = registers;
    let expanded = ExpandedKernel::expand(ddg, schedule);
    let consistent = expanded.renaming_is_consistent(ddg, schedule);
    let counts_agree = expanded.unroll_factor() == unroll && expanded.registers() == registers;
    check(
        &mut cert,
        Code::S006,
        "mve-renaming",
        consistent && counts_agree,
        format!(
            "expanded kernel: unroll {} (expected {}), {} registers (expected {}), renaming {}",
            expanded.unroll_factor(),
            unroll,
            expanded.registers(),
            registers,
            if consistent {
                "consistent"
            } else {
                "inconsistent"
            }
        ),
    );

    cert
}

/// Records a check; on failure also emits the matching diagnostic.
/// Returns `passed` so callers can early-return on fatal failures.
fn check(
    cert: &mut Certificate,
    code: Code,
    name: &'static str,
    passed: bool,
    detail: String,
) -> bool {
    if !passed {
        cert.diagnostics
            .push(Diagnostic::new(code, format!("{name}: {detail}")));
    }
    cert.checks.push(CheckResult {
        name,
        passed,
        detail,
    });
    passed
}

/// Records a check whose diagnostics (if any) were already pushed
/// individually.
fn push_check(cert: &mut Certificate, name: &'static str, passed: bool, detail: String) {
    cert.checks.push(CheckResult {
        name,
        passed,
        detail,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, DepKind, OpKind};
    use hrms_machine::presets;

    fn dot_product() -> Ddg {
        let mut b = DdgBuilder::new("dot_product");
        let la = b.node("load_a", OpKind::Load, 2);
        let lb = b.node("load_b", OpKind::Load, 2);
        let mul = b.node("mul", OpKind::FpMul, 2);
        let acc = b.node("acc", OpKind::FpAdd, 1);
        b.edge(la, mul, DepKind::RegFlow, 0).unwrap();
        b.edge(lb, mul, DepKind::RegFlow, 0).unwrap();
        b.edge(mul, acc, DepKind::RegFlow, 0).unwrap();
        b.edge(acc, acc, DepKind::RegFlow, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn a_correct_schedule_certifies() {
        let ddg = dot_product();
        let machine = presets::govindarajan();
        // loads at 0 and 1 (one load/store unit), mul at 2, acc at 4; II=2.
        let schedule = Schedule::new(2, vec![0, 1, 3, 5]);
        let cert = certify(&ddg, &machine, &schedule);
        assert!(cert.passed(), "{:#?}", cert.checks);
        assert!(cert.diagnostics.is_empty());
        assert_eq!(cert.ii, 2);
        assert_eq!(cert.res_mii, 2);
        assert_eq!(cert.rec_mii, Some(1));
        assert_eq!(cert.mii, Some(2));
        let json = cert.to_json();
        assert!(json.contains("\"passed\":true"));
        assert!(json.contains("\"loop\":\"dot_product\""));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn dependence_violations_fail_s002() {
        let ddg = dot_product();
        let machine = presets::govindarajan();
        // mul starts before its loads complete.
        let schedule = Schedule::new(2, vec![0, 1, 2, 5]);
        let cert = certify(&ddg, &machine, &schedule);
        assert!(!cert.passed());
        let dep = cert
            .checks
            .iter()
            .find(|c| c.name == "dependences")
            .unwrap();
        assert!(!dep.passed);
        assert!(cert.diagnostics.iter().any(|d| d.code == Code::S002));
        assert!(cert
            .diagnostics
            .iter()
            .any(|d| d.message.contains("`load_a`") || d.message.contains("`load_b`")));
    }

    #[test]
    fn oversubscription_fails_s003() {
        let ddg = dot_product();
        let machine = presets::govindarajan();
        // Both loads in the same modulo slot of the single load/store unit.
        let schedule = Schedule::new(2, vec![0, 2, 4, 6]);
        let cert = certify(&ddg, &machine, &schedule);
        let res = cert.checks.iter().find(|c| c.name == "resources").unwrap();
        assert!(!res.passed);
        assert!(cert
            .diagnostics
            .iter()
            .any(|d| d.code == Code::S003 && d.message.contains("slot 0")));
    }

    #[test]
    fn ii_below_mii_fails_s004() {
        let ddg = dot_product();
        let machine = presets::govindarajan();
        // II=1 < ResMII=2 but plenty of spacing: dependences fine at II=1?
        // loads 0,1 collide modulo 1 anyway; the point is the S004 verdict.
        let schedule = Schedule::new(1, vec![0, 1, 3, 4]);
        let cert = certify(&ddg, &machine, &schedule);
        let mii = cert
            .checks
            .iter()
            .find(|c| c.name == "ii-at-least-mii")
            .unwrap();
        assert!(!mii.passed);
        assert!(cert.diagnostics.iter().any(|d| d.code == Code::S004));
    }

    #[test]
    fn missing_operations_fail_fast() {
        let ddg = dot_product();
        let machine = presets::govindarajan();
        let schedule = Schedule::new(2, vec![0, 1]);
        let cert = certify(&ddg, &machine, &schedule);
        assert!(!cert.passed());
        assert_eq!(cert.checks.last().unwrap().name, "coverage");
        assert!(cert.diagnostics.iter().any(|d| d.code == Code::S001));
    }

    #[test]
    fn non_pipelined_wraparound_demand_is_counted() {
        // One non-pipelined divider, latency 17, II=4: a single div occupies
        // ceil(17/4) > 1 units in some slot, so even one div oversubscribes
        // a 1-unit class... at II=4 occupancy 17 needs base 4 + 1 extra.
        let mut b = DdgBuilder::new("divloop");
        let d = b.node("div", OpKind::FpDiv, 17);
        b.edge(d, d, DepKind::RegFlow, 5).unwrap();
        let ddg = b.build().unwrap();
        let machine = presets::perfect_club();
        let schedule = Schedule::new(4, vec![0]);
        let cert = certify(&ddg, &machine, &schedule);
        let res = cert.checks.iter().find(|c| c.name == "resources").unwrap();
        // perfect_club has 2 div/sqrt units, non-pipelined: demand base
        // 17/4 = 4 per slot exceeds 2 units.
        assert!(!res.passed);
        assert!(cert.diagnostics.iter().any(|d| d.code == Code::S003));
    }

    #[test]
    fn schedule_longer_than_the_loop_fails_coverage() {
        let ddg = dot_product();
        let machine = presets::govindarajan();
        let schedule = Schedule::new(2, vec![0, 1, 3, 5, 7]);
        let cert = certify(&ddg, &machine, &schedule);
        assert!(!cert.passed());
        assert_eq!(cert.checks.last().unwrap().name, "coverage");
    }
}
