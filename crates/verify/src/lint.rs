//! The lint pass: DDG well-formedness and machine-description checks.
//!
//! Lints come in two layers. The *source* entry points
//! ([`lint_loop_source`], [`lint_dot_source`], [`lint_machine_source`])
//! parse an on-disk input and report parse failures as `L001` / `M001`
//! with the parser's span; when the input parses they delegate to the
//! *semantic* entry points ([`lint_ddg`], [`lint_machine`]) with the
//! codec's span tables so every finding points at the offending line.
//!
//! The semantic lints reuse the shared per-loop analysis
//! ([`hrms_ddg::analysis::LoopAnalysis`]) rather than re-implementing the
//! graph algorithms: RecMII-undefined detection is the analysis's own
//! verdict, and the zero-distance cycle is only re-walked to find a span
//! to point at.

use std::collections::{HashMap, HashSet};

use hrms_ddg::analysis::LoopAnalysis;
use hrms_ddg::dot::from_dot_with_spans;
use hrms_ddg::textfmt::tokenize_line;
use hrms_ddg::{parse_loops_with_spans, Ddg, EdgeId, LoopSpans, OpKind, ParseError, Span};
use hrms_machine::{parse_machine_with_spans, Machine, MachineSpans};

use crate::diag::{sort_diagnostics, Code, Diagnostic};

/// Latencies and distances at or above this are almost certainly typos
/// (`L006`). The largest legitimate value in the paper's workloads is the
/// square-root latency, 30; a mistyped extra digit is still far below this.
pub const MAGNITUDE_LIMIT: u32 = 1 << 20;

/// Lints a `.loop` file (possibly holding several loops). Parse failures
/// become a single `L001`; otherwise every loop is linted with spans.
///
/// `machine` enables the machine-dependent lints (`L007`, `L008`); pass
/// `None` to lint the graph alone.
pub fn lint_loop_source(input: &str, machine: Option<&Machine>) -> Vec<Diagnostic> {
    match parse_loops_with_spans(input) {
        Ok(loops) => {
            let mut diags = Vec::new();
            for (ddg, spans) in &loops {
                diags.extend(lint_ddg(ddg, Some(spans), machine));
            }
            sort_diagnostics(&mut diags);
            diags
        }
        Err(e) => vec![parse_diag(Code::L001, &e)],
    }
}

/// Lints a Graphviz DOT import (one loop per file).
pub fn lint_dot_source(input: &str, machine: Option<&Machine>) -> Vec<Diagnostic> {
    match from_dot_with_spans(input) {
        Ok((ddg, spans)) => lint_ddg(&ddg, Some(&spans), machine),
        Err(e) => vec![parse_diag(Code::L001, &e)],
    }
}

/// Lints a `.machine` file. Parse failures become `M001` — except that a
/// build rejection caused by zero-unit classes is reported as one `M002`
/// per offending class (located by a lenient re-scan of the raw text),
/// which is the actionable finding.
pub fn lint_machine_source(input: &str) -> Vec<Diagnostic> {
    match parse_machine_with_spans(input) {
        Ok((machine, spans)) => lint_machine(&machine, Some(&spans)),
        Err(e) => {
            if e.message.contains("has zero units") {
                let zero = scan_zero_count_classes(input);
                if !zero.is_empty() {
                    return zero
                        .into_iter()
                        .map(|(name, span)| {
                            Diagnostic::new(
                                Code::M002,
                                format!("functional-unit class `{name}` has zero units"),
                            )
                            .with_span(span)
                            .with_note("no operation mapped to this class can ever issue")
                        })
                        .collect();
                }
            }
            vec![parse_diag(Code::M001, &e)]
        }
    }
}

/// The semantic DDG lints over an already-built graph.
///
/// `spans` (from [`hrms_ddg::parse_loops_with_spans`] or
/// [`from_dot_with_spans`]) locates findings in the source; without it
/// diagnostics are emitted spanless. `machine` gates `L007`/`L008`.
pub fn lint_ddg(
    ddg: &Ddg,
    spans: Option<&LoopSpans>,
    machine: Option<&Machine>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let node_span = |id: usize| spans.map(|s| s.nodes[id]);
    let edge_span = |id: usize| spans.map(|s| s.edges[id]);

    // L002: byte-for-byte duplicate edges.
    let mut seen: HashMap<(u32, u32, &str, u32), usize> = HashMap::new();
    // L003: zero-distance self-dependences.
    let mut self_deps = 0usize;
    for (eid, e) in ddg.edges() {
        let i = eid.index();
        let key = (e.source().0, e.target().0, e.kind().label(), e.distance());
        if let Some(&first) = seen.get(&key) {
            let mut d = Diagnostic::new(
                Code::L002,
                format!(
                    "duplicate {} dependence `{}` -> `{}` (distance {})",
                    e.kind().label(),
                    ddg.node(e.source()).name(),
                    ddg.node(e.target()).name(),
                    e.distance()
                ),
            )
            .with_note("the scheduler evaluates the same constraint twice");
            if let Some(span) = edge_span(i) {
                d = d.with_span(span);
            }
            if let Some(first_span) = edge_span(first) {
                d = d.with_note(format!("first declared at line {}", first_span.line));
            }
            diags.push(d);
        } else {
            seen.insert(key, i);
        }
        if e.is_self_loop() && e.distance() == 0 {
            self_deps += 1;
            let mut d = Diagnostic::new(
                Code::L003,
                format!(
                    "zero-distance self-dependence on `{}`",
                    ddg.node(e.source()).name()
                ),
            )
            .with_note("no start time t satisfies t >= t + latency; no II admits a schedule");
            if let Some(span) = edge_span(i) {
                d = d.with_span(span);
            }
            diags.push(d);
        }
    }

    // L004: a zero-distance dependence cycle — the analysis's own verdict
    // (RecMII undefined), re-walked only to find a span. Suppressed when an
    // L003 already explains it (a δ=0 self-edge is the degenerate cycle).
    let analysis = LoopAnalysis::analyze(ddg);
    if analysis.rec_mii().is_none() && self_deps == 0 {
        let mut d = Diagnostic::new(
            Code::L004,
            format!(
                "loop `{}` has a zero-distance dependence cycle; RecMII is undefined",
                ddg.name()
            ),
        )
        .with_note("the dependence constraints are infeasible for every II");
        if let Some((cycle_names, edge)) = find_zero_distance_cycle(ddg) {
            d = d.with_note(format!("cycle through {}", cycle_names.join(" -> ")));
            if let Some(span) = edge_span(edge.index()) {
                d = d.with_span(span);
            }
        } else if let Some(s) = spans {
            d = d.with_span(s.header);
        }
        diags.push(d);
    }

    // L005: the body splits into disconnected components.
    let components = ddg.connected_components();
    if components.len() > 1 {
        let mut d = Diagnostic::new(
            Code::L005,
            format!(
                "loop `{}` splits into {} disconnected components",
                ddg.name(),
                components.len()
            ),
        )
        .with_note("independent subloops usually indicate a merge or naming mistake");
        if let Some(first) = components.get(1).and_then(|c| c.first()) {
            d = d.with_note(format!(
                "`{}` is unreachable from the first component",
                ddg.node(*first).name()
            ));
        }
        if let Some(s) = spans {
            d = d.with_span(s.header);
        }
        diags.push(d);
    }

    // L006: implausibly large latencies / distances.
    for (i, id) in ddg.node_ids().enumerate() {
        let node = ddg.node(id);
        if node.latency() >= MAGNITUDE_LIMIT {
            let mut d = Diagnostic::new(
                Code::L006,
                format!(
                    "latency {} of `{}` is implausibly large",
                    node.latency(),
                    node.name()
                ),
            )
            .with_note(format!(
                "values at or above {MAGNITUDE_LIMIT} are treated as typos"
            ));
            if let Some(span) = node_span(i) {
                d = d.with_span(span);
            }
            diags.push(d);
        }
    }
    for (eid, e) in ddg.edges() {
        let i = eid.index();
        if e.distance() >= MAGNITUDE_LIMIT {
            let mut d = Diagnostic::new(
                Code::L006,
                format!(
                    "dependence distance {} on `{}` -> `{}` is implausibly large",
                    e.distance(),
                    ddg.node(e.source()).name(),
                    ddg.node(e.target()).name()
                ),
            )
            .with_note(format!(
                "values at or above {MAGNITUDE_LIMIT} are treated as typos"
            ));
            if let Some(span) = edge_span(i) {
                d = d.with_span(span);
            }
            diags.push(d);
        }
    }

    // L007 / L008: machine-gated checks.
    if let Some(machine) = machine {
        for (i, id) in ddg.node_ids().enumerate() {
            let node = ddg.node(id);
            let machine_latency = machine.latency_of(node.kind());
            if machine_latency != node.latency() {
                let mut d = Diagnostic::new(
                    Code::L007,
                    format!(
                        "`{}` declares latency {} but machine `{}` executes {} in {} cycles",
                        node.name(),
                        node.latency(),
                        machine.name(),
                        node.kind(),
                        machine_latency
                    ),
                )
                .with_note("run the scheduler with machine latencies applied, or fix the graph");
                if let Some(span) = node_span(i) {
                    d = d.with_span(span);
                }
                diags.push(d);
            }
            let class = machine.class(machine.class_of(node.kind()));
            if class.count == 0 {
                let mut d = Diagnostic::new(
                    Code::L008,
                    format!(
                        "no functional unit of machine `{}` can execute `{}` ({})",
                        machine.name(),
                        node.name(),
                        node.kind()
                    ),
                )
                .with_note(format!("class `{}` has zero units", class.name));
                if let Some(span) = node_span(i) {
                    d = d.with_span(span);
                }
                diags.push(d);
            }
        }
    }

    sort_diagnostics(&mut diags);
    diags
}

/// The semantic machine lints over an already-built description.
pub fn lint_machine(machine: &Machine, spans: Option<&MachineSpans>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let class_span = |id: usize| spans.map(|s| s.classes[id]);

    let mut names: HashMap<&str, usize> = HashMap::new();
    for (i, class) in machine.classes().iter().enumerate() {
        // M002: zero-unit classes (the builder rejects these, so this only
        // fires for descriptions constructed by other means).
        if class.count == 0 {
            let mut d = Diagnostic::new(
                Code::M002,
                format!("functional-unit class `{}` has zero units", class.name),
            )
            .with_note("no operation mapped to this class can ever issue");
            if let Some(span) = class_span(i) {
                d = d.with_span(span);
            }
            diags.push(d);
        }
        // M003: duplicate class names.
        if let Some(&first) = names.get(class.name.as_str()) {
            let mut d = Diagnostic::new(
                Code::M003,
                format!(
                    "resource classes {first} and {i} share the name `{}`",
                    class.name
                ),
            )
            .with_note("reports and blame messages cannot tell the two apart");
            if let Some(span) = class_span(i) {
                d = d.with_span(span);
            }
            diags.push(d);
        } else {
            names.insert(class.name.as_str(), i);
        }
    }

    // M004: classes no operation kind is mapped to.
    let reachable: HashSet<usize> = OpKind::ALL
        .iter()
        .map(|&k| machine.class_of(k).index())
        .collect();
    for (i, class) in machine.classes().iter().enumerate() {
        if !reachable.contains(&i) {
            let mut d = Diagnostic::new(
                Code::M004,
                format!(
                    "resource class `{}` is unreachable: no operation kind maps to it",
                    class.name
                ),
            )
            .with_note("ResMII and utilisation figures silently ignore its units");
            if let Some(span) = class_span(i) {
                d = d.with_span(span);
            }
            diags.push(d);
        }
    }

    sort_diagnostics(&mut diags);
    diags
}

/// Converts a codec [`ParseError`] into an `L001`/`M001` diagnostic,
/// preserving its span when it has one.
fn parse_diag(code: Code, e: &ParseError) -> Diagnostic {
    let mut d = Diagnostic::new(code, e.message.clone());
    if let Some(span) = e.span {
        d = d.with_span(span);
    }
    d
}

/// Leniently re-scans raw `.machine` text for `class ... count=0` lines.
/// Used to locate `M002` findings when the strict parser has already
/// rejected the input.
fn scan_zero_count_classes(input: &str) -> Vec<(String, Span)> {
    let mut found = Vec::new();
    let mut base = 0usize;
    for (i, raw) in input.split_inclusive('\n').enumerate() {
        let lineno = i + 1;
        let line = raw.strip_suffix('\n').unwrap_or(raw);
        let line = line.strip_suffix('\r').unwrap_or(line);
        if let Ok(tokens) = tokenize_line(line, lineno, base) {
            let is_class = tokens
                .first()
                .is_some_and(|t| !t.quoted && t.text == "class");
            if is_class && tokens.len() >= 2 {
                if let Some(tok) = tokens.iter().find(|t| !t.quoted && t.text == "count=0") {
                    found.push((tokens[1].text.clone(), tok.span));
                }
            }
        }
        base += raw.len();
    }
    found
}

/// Finds one cycle made entirely of zero-distance edges (exactly the
/// zero-distance dependence cycles, since δ ≥ 0). Returns the node names
/// along the cycle and one participating edge for the span.
fn find_zero_distance_cycle(ddg: &Ddg) -> Option<(Vec<String>, EdgeId)> {
    let n = ddg.num_nodes();
    let mut adj: Vec<Vec<(usize, EdgeId)>> = vec![Vec::new(); n];
    for (eid, e) in ddg.edges() {
        if e.distance() == 0 {
            adj[e.source().index()].push((e.target().index(), eid));
        }
    }
    // Iterative DFS with an explicit path; a gray neighbour closes a cycle.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; n];
    for root in 0..n {
        if color[root] != WHITE {
            continue;
        }
        // Stack frames: (node, next out-edge index).
        let mut stack = vec![(root, 0usize)];
        color[root] = GRAY;
        while let Some(&(u, next)) = stack.last() {
            if next < adj[u].len() {
                stack.last_mut().expect("non-empty").1 += 1;
                let (v, edge) = adj[u][next];
                match color[v] {
                    WHITE => {
                        color[v] = GRAY;
                        stack.push((v, 0));
                    }
                    GRAY => {
                        // The path from v to u on the stack, plus (u, v).
                        let start = stack.iter().position(|&(w, _)| w == v).unwrap();
                        let mut names: Vec<String> = stack[start..]
                            .iter()
                            .map(|&(w, _)| {
                                ddg.node(hrms_ddg::NodeId::from_index(w)).name().to_string()
                            })
                            .collect();
                        names.push(ddg.node(hrms_ddg::NodeId::from_index(v)).name().to_string());
                        return Some((names, edge));
                    }
                    _ => {}
                }
            } else {
                color[u] = BLACK;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use hrms_ddg::{DdgBuilder, DepKind};
    use hrms_machine::presets;

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_loop_source_lints_clean() {
        let input = "\
loop dot
  node l load latency=2
  node m fmul latency=2
  node a fadd latency=1
  edge l -> m flow
  edge m -> a flow
  edge a -> a flow dist=1
end
";
        assert!(lint_loop_source(input, None).is_empty());
        assert!(lint_loop_source(input, Some(&presets::govindarajan())).is_empty());
    }

    #[test]
    fn parse_failure_is_l001_with_span() {
        let diags = lint_loop_source("loop l\n  node a zzz latency=1\nend\n", None);
        assert_eq!(codes(&diags), [Code::L001]);
        let span = diags[0].span.expect("span");
        assert_eq!((span.line, span.col), (2, 10));
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn duplicate_edges_warn_with_both_lines() {
        let input = "\
loop l
  node a load latency=2
  node b fadd latency=1
  edge a -> b flow
  edge a -> b flow
end
";
        let diags = lint_loop_source(input, None);
        assert_eq!(codes(&diags), [Code::L002]);
        assert_eq!(diags[0].span.unwrap().line, 5);
        assert!(diags[0].notes.iter().any(|n| n.contains("line 4")));
    }

    #[test]
    fn zero_distance_self_dependence_is_l003_and_suppresses_l004() {
        let input = "\
loop l
  node a fadd latency=1
  edge a -> a flow
end
";
        let diags = lint_loop_source(input, None);
        assert_eq!(codes(&diags), [Code::L003]);
        assert_eq!(diags[0].span.unwrap().line, 3);
    }

    #[test]
    fn zero_distance_cycle_is_l004_with_cycle_note() {
        let input = "\
loop l
  node a fadd latency=1
  node b fmul latency=2
  edge a -> b flow
  edge b -> a flow
end
";
        let diags = lint_loop_source(input, None);
        assert_eq!(codes(&diags), [Code::L004]);
        assert!(diags[0].notes.iter().any(|n| n.contains("a -> b -> a")));
        // The span points at an edge of the cycle.
        assert!(matches!(diags[0].span.unwrap().line, 4 | 5));
    }

    #[test]
    fn disconnected_components_warn() {
        let input = "\
loop l
  node a fadd latency=1
  node b fmul latency=2
  edge a -> a flow dist=1
  edge b -> b flow dist=1
end
";
        let diags = lint_loop_source(input, None);
        assert_eq!(codes(&diags), [Code::L005]);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert_eq!(diags[0].span.unwrap().line, 1);
    }

    #[test]
    fn implausible_magnitudes_warn() {
        let input = format!(
            "loop l\n  node a fadd latency={}\n  node b fadd latency=1\n  edge a -> b flow dist={}\nend\n",
            MAGNITUDE_LIMIT,
            MAGNITUDE_LIMIT + 7
        );
        let diags = lint_loop_source(&input, None);
        assert_eq!(codes(&diags), [Code::L006, Code::L006]);
        assert_eq!(diags[0].span.unwrap().line, 2);
        assert_eq!(diags[1].span.unwrap().line, 4);
    }

    #[test]
    fn machine_gated_latency_mismatch_is_l007() {
        let input = "\
loop l
  node a fdiv latency=3
  edge a -> a flow dist=1
end
";
        assert!(lint_loop_source(input, None).is_empty());
        let diags = lint_loop_source(input, Some(&presets::govindarajan()));
        assert_eq!(codes(&diags), [Code::L007]);
        assert!(diags[0].message.contains("17 cycles"));
        assert_eq!(diags[0].span.unwrap().line, 2);
    }

    #[test]
    fn dot_import_is_linted_too() {
        let dot = "digraph l {\n  a -> a;\n}\n";
        let diags = lint_dot_source(dot, None);
        assert_eq!(codes(&diags), [Code::L003]);
    }

    #[test]
    fn machine_parse_failure_is_m001() {
        let diags = lint_machine_source("machine m\n  zzz\nend\n");
        assert_eq!(codes(&diags), [Code::M001]);
        assert_eq!(diags[0].span.unwrap().line, 2);
    }

    #[test]
    fn zero_count_class_is_m002_via_lenient_scan() {
        let input = "\
machine m
  class alu count=0 pipelined
  class mem count=1 pipelined
  op fadd class=alu latency=1
  op fmul class=alu latency=1
  op fdiv class=alu latency=1
  op fsqrt class=alu latency=1
  op load class=mem latency=2
  op store class=mem latency=1
  op ialu class=alu latency=1
  op copy class=alu latency=1
  op op class=alu latency=1
end
";
        let diags = lint_machine_source(input);
        assert_eq!(codes(&diags), [Code::M002]);
        assert!(diags[0].message.contains("`alu`"));
        let span = diags[0].span.unwrap();
        assert_eq!(span.line, 2);
        assert_eq!(span.len, "count=0".len());
    }

    #[test]
    fn unreachable_class_is_m004() {
        use hrms_machine::{MachineBuilder, ResourceClass};
        let m = MachineBuilder::new("m")
            .class(ResourceClass::pipelined("used", 2))
            .class(ResourceClass::pipelined("idle", 2))
            .map_all_remaining_to(0, 1)
            .build()
            .unwrap();
        let diags = lint_machine(&m, None);
        assert_eq!(codes(&diags), [Code::M004]);
        assert!(diags[0].message.contains("`idle`"));
    }

    #[test]
    fn presets_lint_clean() {
        for m in [
            presets::general_purpose(),
            presets::govindarajan(),
            presets::perfect_club(),
        ] {
            assert!(lint_machine(&m, None).is_empty(), "{}", m.name());
        }
    }

    #[test]
    fn lint_ddg_works_spanless() {
        let mut b = DdgBuilder::new("l");
        let a = b.node("a", hrms_ddg::OpKind::FpAdd, 1);
        b.edge(a, a, DepKind::RegFlow, 0).unwrap();
        let ddg = b.build().unwrap();
        let diags = lint_ddg(&ddg, None, None);
        assert_eq!(codes(&diags), [Code::L003]);
        assert!(diags[0].span.is_none());
    }
}
