//! Static analysis for the HRMS reproduction.
//!
//! Three layers, all built on one diagnostics substrate ([`diag`]):
//!
//! * **Diagnostics** — [`Diagnostic`]s carry a stable [`Code`] from a
//!   fixed registry (`L0xx` loop lints, `M0xx` machine lints, `S0xx`
//!   schedule-certification failures), an optional byte-offset
//!   [`hrms_ddg::Span`] into the source, and render in rustc style
//!   (message, `--> file:line:col`, excerpt with carets, notes) or as
//!   JSON lines.
//! * **Lints** ([`lint`]) — well-formedness checks over `.loop` / DOT /
//!   `.machine` inputs: duplicate edges, unsatisfiable zero-distance
//!   dependences, disconnected bodies, implausible magnitudes,
//!   machine/graph latency disagreements, zero-unit and unreachable
//!   resource classes. Parse failures surface as `L001`/`M001` with the
//!   codec's own span.
//! * **Certifier** ([`certify()`]) — an independent checker for finished
//!   schedules: it rebuilds the modulo reservation table from scratch,
//!   re-checks every dependence modulo `δ·II`, re-derives the kernel,
//!   lifetime and MVE tables, and cross-checks the II against the
//!   re-computed MII. The output is a machine-readable [`Certificate`].
//!
//! The certifier shares no working state with the schedulers in
//! `hrms-modsched` — it is the referee, not a replay of the player's
//! moves. Every code is documented with a worked example in
//! `docs/DIAGNOSTICS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certify;
pub mod diag;
pub mod lint;

pub use certify::{certify, Certificate, CheckResult};
pub use diag::{has_errors, sort_diagnostics, Code, Diagnostic, Severity};
pub use lint::{
    lint_ddg, lint_dot_source, lint_loop_source, lint_machine, lint_machine_source, MAGNITUDE_LIMIT,
};
