//! The diagnostics infrastructure: stable codes, severities, and
//! rustc-style text / JSON-lines rendering.
//!
//! Every diagnostic the verify crate can emit carries a [`Code`] from the
//! fixed registry below. Codes are a stable contract (documented with
//! worked examples in `docs/DIAGNOSTICS.md`): tooling may match on them,
//! golden tests pin them, and they are never renumbered — retired codes
//! would be left as gaps.

use std::fmt;
use std::fmt::Write as _;

use hrms_ddg::Span;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but schedulable: the input is accepted, the result may
    /// not be what the author intended.
    Warning,
    /// The input is rejected (lint) or the schedule is wrong (certifier).
    Error,
}

impl Severity {
    /// The lowercase label used in rendered output (`error` / `warning`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The stable diagnostic-code registry.
///
/// `L0xx` codes are loop (DDG) lints, `M0xx` machine-description lints,
/// `S0xx` schedule-certification failures. The numeric part is stable
/// across releases; see `docs/DIAGNOSTICS.md` for one worked example per
/// code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Code {
    /// The loop input (`.loop` or DOT) does not parse.
    L001,
    /// Two edges are byte-for-byte identical (same endpoints, kind and
    /// distance).
    L002,
    /// A zero-distance self-dependence: `t(v) ≥ t(v) + λ` is unsatisfiable.
    L003,
    /// A zero-distance dependence cycle: RecMII is undefined and no II
    /// admits a schedule.
    L004,
    /// The loop body splits into several disconnected components.
    L005,
    /// A latency or dependence distance is implausibly large.
    L006,
    /// A node's declared latency disagrees with the machine's latency for
    /// its operation kind.
    L007,
    /// No functional unit of the machine can execute a node's operation
    /// kind.
    L008,
    /// The machine description does not parse.
    M001,
    /// A functional-unit class has zero units.
    M002,
    /// Two resource classes share a name.
    M003,
    /// No operation kind is mapped to a resource class.
    M004,
    /// Certifier: the schedule does not cover every operation.
    S001,
    /// Certifier: a dependence is violated modulo `δ·II`.
    S002,
    /// Certifier: a functional-unit class is oversubscribed in some modulo
    /// slot.
    S003,
    /// Certifier: the II is below the loop's MII (or RecMII is undefined).
    S004,
    /// Certifier: MaxLive disagrees between independent lifetime analyses.
    S005,
    /// Certifier: modulo-variable-expansion renaming is inconsistent.
    S006,
    /// Certifier: the schedule's II is not a positive integer.
    S007,
}

impl Code {
    /// Every code, in registry order.
    pub const ALL: [Code; 19] = [
        Code::L001,
        Code::L002,
        Code::L003,
        Code::L004,
        Code::L005,
        Code::L006,
        Code::L007,
        Code::L008,
        Code::M001,
        Code::M002,
        Code::M003,
        Code::M004,
        Code::S001,
        Code::S002,
        Code::S003,
        Code::S004,
        Code::S005,
        Code::S006,
        Code::S007,
    ];

    /// The stable textual form (`"L003"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::L001 => "L001",
            Code::L002 => "L002",
            Code::L003 => "L003",
            Code::L004 => "L004",
            Code::L005 => "L005",
            Code::L006 => "L006",
            Code::L007 => "L007",
            Code::L008 => "L008",
            Code::M001 => "M001",
            Code::M002 => "M002",
            Code::M003 => "M003",
            Code::M004 => "M004",
            Code::S001 => "S001",
            Code::S002 => "S002",
            Code::S003 => "S003",
            Code::S004 => "S004",
            Code::S005 => "S005",
            Code::S006 => "S006",
            Code::S007 => "S007",
        }
    }

    /// The severity this code is always emitted with.
    ///
    /// The policy (documented in `docs/DIAGNOSTICS.md`): a code is an
    /// error when the input cannot be scheduled correctly at all — parse
    /// failures, unsatisfiable dependences, zero-capacity resources, and
    /// every certifier failure — and a warning when the input is accepted
    /// but suspicious.
    pub fn severity(self) -> Severity {
        match self {
            Code::L002 | Code::L005 | Code::L006 | Code::L007 | Code::M003 | Code::M004 => {
                Severity::Warning
            }
            _ => Severity::Error,
        }
    }

    /// One-line summary of what the code means.
    pub fn summary(self) -> &'static str {
        match self {
            Code::L001 => "loop input does not parse",
            Code::L002 => "duplicate dependence edge",
            Code::L003 => "zero-distance self-dependence",
            Code::L004 => "zero-distance dependence cycle (RecMII undefined)",
            Code::L005 => "loop body is disconnected",
            Code::L006 => "implausibly large latency or distance",
            Code::L007 => "node latency disagrees with the machine",
            Code::L008 => "operation kind has no functional unit",
            Code::M001 => "machine description does not parse",
            Code::M002 => "functional-unit class has zero units",
            Code::M003 => "duplicate resource-class name",
            Code::M004 => "resource class is unreachable",
            Code::S001 => "schedule does not cover every operation",
            Code::S002 => "dependence violated modulo δ·II",
            Code::S003 => "functional-unit class oversubscribed",
            Code::S004 => "II below the loop's MII",
            Code::S005 => "MaxLive disagrees between analyses",
            Code::S006 => "MVE renaming inconsistent",
            Code::S007 => "II is not a positive integer",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a coded, located, human-readable problem report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Registry code; fixes the severity.
    pub code: Code,
    /// Severity ([`Code::severity`] of the code).
    pub severity: Severity,
    /// Primary human-readable message.
    pub message: String,
    /// Location in the linted source, when the finding maps to one.
    pub span: Option<Span>,
    /// Additional `= note:` lines rendered under the excerpt.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with the code's default severity and no notes.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            span: None,
            notes: Vec::new(),
        }
    }

    /// Attaches a source span.
    #[must_use]
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Appends a `= note:` line.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the diagnostic in rustc style. `path` names the input (any
    /// label: a file path or `<stdin>`), `source` is the full input text
    /// the span indexes into (used for the excerpt line; pass `""` when
    /// unavailable).
    ///
    /// ```text
    /// error[L003]: zero-distance self-dependence on `acc`
    ///   --> dotprod.loop:9:3
    ///    |  edge acc -> acc flow
    ///    |  ^^^^^^^^^^^^^^^^^^^^
    ///    = note: no cycle t satisfies t >= t + 1
    /// ```
    pub fn render_text(&self, path: &str, source: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}[{}]: {}", self.severity, self.code, self.message);
        match self.span {
            Some(span) => {
                let _ = writeln!(out, "  --> {path}:{}:{}", span.line, span.col);
                if let Some(line) = source.lines().nth(span.line.wrapping_sub(1)) {
                    let line = line.trim_end();
                    let _ = writeln!(out, "   |  {line}");
                    out.push_str("   |  ");
                    for _ in 1..span.col {
                        out.push(' ');
                    }
                    for _ in 0..span.len.max(1) {
                        out.push('^');
                    }
                    out.push('\n');
                }
            }
            None => {
                let _ = writeln!(out, "  --> {path}");
            }
        }
        for note in &self.notes {
            let _ = writeln!(out, "   = note: {note}");
        }
        out
    }

    /// Renders the diagnostic as a single JSON line (no trailing newline),
    /// in the schema documented in `docs/DIAGNOSTICS.md`.
    pub fn render_json(&self, path: &str) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"file\":");
        push_json_str(&mut out, path);
        let _ = write!(
            out,
            ",\"code\":\"{}\",\"severity\":\"{}\",\"message\":",
            self.code, self.severity
        );
        push_json_str(&mut out, &self.message);
        match self.span {
            Some(s) => {
                let _ = write!(
                    out,
                    ",\"line\":{},\"col\":{},\"offset\":{},\"len\":{}",
                    s.line, s.col, s.offset, s.len
                );
            }
            None => out.push_str(",\"line\":null"),
        }
        out.push_str(",\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, n);
        }
        out.push_str("]}");
        out
    }
}

/// Sorts diagnostics into the deterministic reporting order: by source
/// position (spanless findings last), then by code, then by message.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        let pos = |d: &Diagnostic| d.span.map_or((usize::MAX, usize::MAX), |s| (s.line, s.col));
        pos(a)
            .cmp(&pos(b))
            .then_with(|| a.code.cmp(&b.code))
            .then_with(|| a.message.cmp(&b.message))
    });
}

/// Whether any diagnostic in `diags` is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Appends `s` as a JSON string literal (with escapes) to `out`. Same
/// escaping as the schedule reports in `hrms_modsched::report`.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for code in Code::ALL {
            assert!(seen.insert(code.as_str()), "duplicate code {code}");
            assert_eq!(code.to_string(), code.as_str());
            assert!(!code.summary().is_empty());
        }
        assert_eq!(Code::ALL.len(), 19);
    }

    #[test]
    fn severity_policy_is_fixed_per_code() {
        assert_eq!(Code::L001.severity(), Severity::Error);
        assert_eq!(Code::L002.severity(), Severity::Warning);
        assert_eq!(Code::L003.severity(), Severity::Error);
        assert_eq!(Code::M002.severity(), Severity::Error);
        assert_eq!(Code::M004.severity(), Severity::Warning);
        for code in [
            Code::S001,
            Code::S002,
            Code::S003,
            Code::S004,
            Code::S005,
            Code::S006,
            Code::S007,
        ] {
            assert_eq!(code.severity(), Severity::Error, "{code}");
        }
    }

    #[test]
    fn text_rendering_includes_excerpt_and_caret() {
        let source = "loop l\nedge a -> a flow\nend\n";
        let d = Diagnostic::new(Code::L003, "zero-distance self-dependence on `a`")
            .with_span(Span::new(2, 1, 7, 16))
            .with_note("no cycle t satisfies t >= t + 1");
        let text = d.render_text("x.loop", source);
        assert!(text.starts_with("error[L003]: zero-distance self-dependence on `a`\n"));
        assert!(text.contains("--> x.loop:2:1\n"));
        assert!(text.contains("   |  edge a -> a flow\n"));
        assert!(text.contains("   |  ^^^^^^^^^^^^^^^^\n"));
        assert!(text.contains("   = note: no cycle t satisfies t >= t + 1\n"));
    }

    #[test]
    fn json_rendering_is_one_line_with_span_fields() {
        let d = Diagnostic::new(Code::M002, "class `alu` has zero units")
            .with_span(Span::new(3, 2, 20, 10));
        let json = d.render_json("m.machine");
        assert!(!json.contains('\n'));
        assert!(json.starts_with("{\"file\":\"m.machine\",\"code\":\"M002\""));
        assert!(json.contains("\"severity\":\"error\""));
        assert!(json.contains("\"line\":3,\"col\":2,\"offset\":20,\"len\":10"));
        let spanless = Diagnostic::new(Code::S002, "violated").render_json("-");
        assert!(spanless.contains("\"line\":null"));
    }

    #[test]
    fn sorting_is_positional_then_by_code() {
        let mut diags = vec![
            Diagnostic::new(Code::S001, "spanless"),
            Diagnostic::new(Code::L003, "late").with_span(Span::new(9, 1, 90, 4)),
            Diagnostic::new(Code::L002, "early").with_span(Span::new(2, 5, 12, 4)),
            Diagnostic::new(Code::L006, "same line").with_span(Span::new(2, 1, 8, 2)),
        ];
        sort_diagnostics(&mut diags);
        let order: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(order, ["same line", "early", "late", "spanless"]);
        assert!(has_errors(&diags));
    }
}
