//! Spill-code insertion and re-scheduling under a register budget.
//!
//! Figure 14 of the paper evaluates the schedulers on machines with 64 and
//! 32 registers: "when a loop requires more than the available number of
//! registers, spill code has been added and the loop has been re-scheduled".
//! This module reproduces that methodology:
//!
//! 1. schedule the loop and measure its register pressure;
//! 2. while the pressure exceeds the budget, pick the live value with the
//!    longest lifetime, split it through memory (a store after the producer
//!    and one reload in front of each consumer), and re-schedule the grown
//!    loop body;
//! 3. stop when the pressure fits, or when every spillable value has been
//!    spilled.
//!
//! Each spill adds memory operations, which raises `ResMII` on
//! memory-limited machines — that is exactly why register-frugal schedulers
//! (HRMS) end up faster than register-hungry ones (Top-Down) on Figure 14.

use std::collections::HashSet;

use hrms_ddg::{Ddg, DdgBuilder, DepKind, NodeId, OpKind};
use hrms_machine::Machine;
use hrms_modsched::{LifetimeAnalysis, ModuloScheduler, SchedError, ScheduleOutcome};

use crate::pressure::PressureKind;

/// Configuration of the spill loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillConfig {
    /// The register budget.
    pub registers: u64,
    /// Which registers count against the budget.
    pub kind: PressureKind,
    /// Upper bound on the number of spill rounds (defensive; the spill loop
    /// also stops when no spillable value remains).
    pub max_rounds: usize,
}

impl SpillConfig {
    /// Budget on loop variants plus invariants (the Figure-14 setting).
    pub fn new(registers: u64) -> Self {
        SpillConfig {
            registers,
            kind: PressureKind::VariantsAndInvariants,
            max_rounds: 64,
        }
    }
}

/// The result of scheduling under a register budget.
#[derive(Debug, Clone)]
pub struct SpillResult {
    /// The final loop body (with any inserted spill code).
    pub ddg: Ddg,
    /// The final schedule of that body.
    pub outcome: ScheduleOutcome,
    /// Number of values that were spilled.
    pub spilled_values: usize,
    /// Number of schedule/spill rounds executed (1 = no spilling needed).
    pub rounds: usize,
    /// Whether the final schedule fits the register budget.
    pub fits: bool,
}

impl SpillResult {
    /// Final register pressure (of the configured kind).
    pub fn registers(&self, kind: PressureKind) -> u64 {
        let lt = LifetimeAnalysis::analyze(&self.ddg, &self.outcome.schedule);
        match kind {
            PressureKind::VariantsOnly => lt.max_live(),
            PressureKind::VariantsAndInvariants => lt.max_live_with_invariants(),
        }
    }
}

/// Schedules `ddg` with `scheduler`, inserting spill code and re-scheduling
/// until the register pressure fits `config.registers`.
///
/// # Errors
///
/// Propagates scheduling errors from the underlying scheduler.
pub fn schedule_with_register_budget(
    ddg: &Ddg,
    machine: &Machine,
    scheduler: &dyn ModuloScheduler,
    config: &SpillConfig,
) -> Result<SpillResult, SchedError> {
    let mut current = ddg.clone();
    let mut spilled: HashSet<String> = HashSet::new();
    let mut rounds = 0;

    loop {
        rounds += 1;
        let outcome = scheduler.schedule_loop(&current, machine)?;
        let lt = LifetimeAnalysis::analyze(&current, &outcome.schedule);
        let pressure = match config.kind {
            PressureKind::VariantsOnly => lt.max_live(),
            PressureKind::VariantsAndInvariants => lt.max_live_with_invariants(),
        };
        if pressure <= config.registers || rounds >= config.max_rounds {
            return Ok(SpillResult {
                fits: pressure <= config.registers,
                spilled_values: spilled.len(),
                rounds,
                ddg: current,
                outcome,
            });
        }

        // Pick the unspilled value with the longest lifetime. Values that
        // live for less than one II occupy a single register and cannot be
        // improved by spilling, so only multi-II lifetimes are candidates.
        let ii = i64::from(outcome.schedule.ii());
        let victim = lt
            .lifetimes()
            .iter()
            .filter(|l| {
                let node = current.node(l.producer);
                !spilled.contains(node.name()) && l.length() > ii
            })
            .max_by_key(|l| (l.length(), std::cmp::Reverse(l.producer.index())));
        let Some(victim) = victim else {
            // Nothing left to spill: report the best we can do.
            return Ok(SpillResult {
                fits: false,
                spilled_values: spilled.len(),
                rounds,
                ddg: current,
                outcome,
            });
        };
        let producer = victim.producer;
        spilled.insert(current.node(producer).name().to_string());
        current = spill_value(&current, producer)?;
    }
}

/// Rebuilds `ddg` with the value defined by `producer` split through memory:
/// a store is inserted right after the producer, the original flow edges to
/// its consumers are removed, and each consumer reads a freshly-loaded copy
/// instead.
pub fn spill_value(ddg: &Ddg, producer: NodeId) -> Result<Ddg, hrms_ddg::DdgError> {
    let mut b = DdgBuilder::new(format!("{}+spill", ddg.name()));
    // Copy the original nodes (ids are preserved because insertion order is
    // preserved).
    for (_, node) in ddg.nodes() {
        let id = if node.defines_value() {
            b.node(node.name(), node.kind(), node.latency())
        } else {
            b.node_no_result(node.name(), node.kind(), node.latency())
        };
        b.node_invariant_uses(id, node.invariant_uses());
    }
    // The spill store.
    let store_latency = ddg
        .nodes()
        .find(|(_, n)| n.kind() == OpKind::Store)
        .map(|(_, n)| n.latency())
        .unwrap_or(1);
    let load_latency = ddg
        .nodes()
        .find(|(_, n)| n.kind() == OpKind::Load)
        .map(|(_, n)| n.latency())
        .unwrap_or(2);
    let spill_store = b.node(
        format!("spill_store_{}", ddg.node(producer).name()),
        OpKind::Store,
        store_latency,
    );
    b.edge(producer, spill_store, DepKind::RegFlow, 0)?;

    // Copy edges, replacing the producer's flow edges by reloads.
    let mut reload_index = 0usize;
    for (_, e) in ddg.edges() {
        if e.source() == producer && e.kind() == DepKind::RegFlow && e.target() != producer {
            let reload = b.node(
                format!("spill_load_{}_{}", ddg.node(producer).name(), reload_index),
                OpKind::Load,
                load_latency,
            );
            reload_index += 1;
            // The reload cannot start before the store of `distance`
            // iterations earlier has completed.
            b.edge(spill_store, reload, DepKind::Memory, e.distance())?;
            b.edge(reload, e.target(), DepKind::RegFlow, 0)?;
        } else {
            b.edge(e.source(), e.target(), e.kind(), e.distance())?;
        }
    }
    b.invariants(ddg.num_invariants());
    b.iteration_count(ddg.iteration_count());
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_baselines::TopDownScheduler;
    use hrms_core::HrmsScheduler;
    use hrms_ddg::DdgBuilder;
    use hrms_machine::presets;
    use hrms_modsched::validate_schedule;

    /// A loop with deliberately long lifetimes: several early loads consumed
    /// only at the end of a long chain.
    fn pressure_heavy() -> Ddg {
        let mut b = DdgBuilder::new("heavy");
        let mut chain = Vec::new();
        let mut prev: Option<NodeId> = None;
        for i in 0..6 {
            let n = b.node(format!("mul{i}"), OpKind::FpMul, 2);
            if let Some(p) = prev {
                b.edge(p, n, DepKind::RegFlow, 0).unwrap();
            }
            prev = Some(n);
            chain.push(n);
        }
        for i in 0..6 {
            let ld = b.node(format!("ld{i}"), OpKind::Load, 2);
            b.edge(ld, chain[5], DepKind::RegFlow, 0).unwrap();
            let _ = i;
        }
        b.build().unwrap()
    }

    #[test]
    fn no_spill_when_budget_is_generous() {
        let g = pressure_heavy();
        let m = presets::perfect_club();
        let result =
            schedule_with_register_budget(&g, &m, &HrmsScheduler::new(), &SpillConfig::new(1000))
                .unwrap();
        assert!(result.fits);
        assert_eq!(result.rounds, 1);
        assert_eq!(result.spilled_values, 0);
        assert_eq!(result.ddg.num_nodes(), g.num_nodes());
    }

    #[test]
    fn spilling_reduces_pressure_until_it_fits() {
        let g = pressure_heavy();
        let m = presets::perfect_club();
        let unlimited = schedule_with_register_budget(
            &g,
            &m,
            &TopDownScheduler::new(),
            &SpillConfig::new(1000),
        )
        .unwrap();
        let baseline = unlimited.registers(PressureKind::VariantsAndInvariants);
        assert!(
            baseline > 4,
            "the test loop must actually be pressure-heavy"
        );

        let budget = baseline - 2;
        let result = schedule_with_register_budget(
            &g,
            &m,
            &TopDownScheduler::new(),
            &SpillConfig::new(budget),
        )
        .unwrap();
        assert!(
            result.fits,
            "spilling must eventually fit {budget} registers"
        );
        assert!(result.spilled_values > 0);
        assert!(
            result.ddg.num_nodes() > g.num_nodes(),
            "spill code was added"
        );
        validate_schedule(&result.ddg, &m, &result.outcome.schedule).unwrap();
        assert!(result.registers(PressureKind::VariantsAndInvariants) <= budget);
    }

    #[test]
    fn spill_code_slows_the_loop_down_on_a_memory_bound_machine() {
        let g = pressure_heavy();
        let m = presets::govindarajan(); // single load/store unit
        let unlimited = schedule_with_register_budget(
            &g,
            &m,
            &TopDownScheduler::new(),
            &SpillConfig::new(1000),
        )
        .unwrap();
        let tight =
            schedule_with_register_budget(&g, &m, &TopDownScheduler::new(), &SpillConfig::new(6))
                .unwrap();
        assert!(
            tight.outcome.metrics.ii >= unlimited.outcome.metrics.ii,
            "extra memory traffic cannot make the loop faster"
        );
    }

    #[test]
    fn spill_value_rewrites_the_flow_edges() {
        let mut b = DdgBuilder::new("s");
        let prod = b.node("prod", OpKind::FpMul, 2);
        let c0 = b.node("c0", OpKind::FpAdd, 1);
        let c1 = b.node("c1", OpKind::FpAdd, 1);
        b.edge(prod, c0, DepKind::RegFlow, 0).unwrap();
        b.edge(prod, c1, DepKind::RegFlow, 1).unwrap();
        let g = b.build().unwrap();
        let spilled = spill_value(&g, prod).unwrap();
        // 3 original nodes + 1 store + 2 reloads
        assert_eq!(spilled.num_nodes(), 6);
        // prod no longer feeds c0/c1 directly.
        assert!(spilled
            .consumers(prod)
            .iter()
            .all(|(c, _)| { spilled.node(*c).kind() == OpKind::Store }));
        // each consumer is fed by exactly one load
        for c in [c0, c1] {
            let preds = spilled.predecessors(c);
            assert_eq!(preds.len(), 1);
            assert_eq!(spilled.node(preds[0]).kind(), OpKind::Load);
        }
    }

    #[test]
    fn unspillable_pressure_is_reported_honestly() {
        // A single accumulator chain whose pressure cannot go below 1, asked
        // to fit in 0 registers: the result must say it does not fit.
        let mut b = DdgBuilder::new("acc");
        let acc = b.node("acc", OpKind::FpAdd, 1);
        let use_ = b.node("use", OpKind::FpMul, 2);
        b.edge(acc, use_, DepKind::RegFlow, 0).unwrap();
        let g = b.build().unwrap();
        let m = presets::perfect_club();
        let result = schedule_with_register_budget(
            &g,
            &m,
            &HrmsScheduler::new(),
            &SpillConfig {
                registers: 0,
                kind: PressureKind::VariantsOnly,
                max_rounds: 8,
            },
        )
        .unwrap();
        assert!(!result.fits);
    }
}
