//! The register-allocator-backed spill evaluator for feedback-guided
//! rescheduling.
//!
//! `hrms_modsched::feedback` defines the iterative rescheduler but cannot
//! depend on this crate (the dependency points the other way), so it counts
//! spills through the object-safe [`SpillEvaluator`] hook. This module
//! provides the real implementation over
//! [`schedule_with_register_budget`]:
//! the paper's Figure-14 methodology — schedule, measure pressure, spill the
//! longest multi-II lifetime through a store/reload pair, reschedule —
//! run as a *what-if* query. The feedback loop keeps the original loop's
//! schedule; only the spill **count** feeds back into attempt selection.

use hrms_ddg::Ddg;
use hrms_machine::Machine;
use hrms_modsched::{ModuloScheduler, SchedError, SpillEvaluator, SpillSignals};

use crate::pressure::PressureKind;
use crate::spill::{schedule_with_register_budget, SpillConfig};

/// [`SpillEvaluator`] over the spill/reschedule pass, counting variants and
/// invariants against the budget (the same [`PressureKind`] convention as
/// [`SpillConfig::new`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct BudgetSpillEvaluator;

impl SpillEvaluator for BudgetSpillEvaluator {
    fn evaluate(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        scheduler: &dyn ModuloScheduler,
        registers: u64,
        max_rounds: usize,
    ) -> Result<SpillSignals, SchedError> {
        let config = SpillConfig {
            registers,
            kind: PressureKind::VariantsAndInvariants,
            max_rounds,
        };
        let result = schedule_with_register_budget(ddg, machine, scheduler, &config)?;
        Ok(SpillSignals {
            spills: result.spilled_values as u64,
            fits: result.fits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::OpKind;
    use hrms_machine::presets;
    use hrms_modsched::{FeedbackConfig, IterativeRescheduler, RegisterBudget};

    /// A wide fan from one load: every consumer stretches the load's value,
    /// so a tight budget forces spills.
    fn fan(width: usize) -> Ddg {
        let mut b = hrms_ddg::DdgBuilder::new("fan");
        let ld = b.node("ld", OpKind::Load, 2);
        let mut prev = ld;
        for i in 0..width {
            let n = b.node(format!("a{i}"), OpKind::FpAdd, 1);
            b.edge(ld, n, hrms_ddg::DepKind::RegFlow, 0).unwrap();
            b.edge(prev, n, hrms_ddg::DepKind::RegFlow, 0).unwrap();
            prev = n;
        }
        b.build().unwrap()
    }

    #[test]
    fn evaluator_counts_spills_under_a_tight_budget() {
        let g = fan(8);
        let m = presets::govindarajan();
        let hrms = hrms_core::HrmsScheduler::new();
        let signals = BudgetSpillEvaluator.evaluate(&g, &m, &hrms, 2, 16).unwrap();
        assert!(signals.spills > 0, "a 2-register budget must force spills");
    }

    #[test]
    fn evaluator_reports_zero_spills_when_the_loop_fits() {
        let g = fan(4);
        let m = presets::govindarajan();
        let hrms = hrms_core::HrmsScheduler::new();
        let signals = BudgetSpillEvaluator
            .evaluate(&g, &m, &hrms, 64, 16)
            .unwrap();
        assert_eq!(signals.spills, 0);
        assert!(signals.fits);
    }

    #[test]
    fn rescheduler_with_evaluator_returns_the_original_loops_schedule() {
        let g = fan(8);
        let m = presets::govindarajan();
        let config = FeedbackConfig {
            budget: Some(RegisterBudget { registers: 8 }),
            ..FeedbackConfig::default()
        };
        let r = IterativeRescheduler::new(Box::new(hrms_core::HrmsScheduler::new()), config)
            .with_evaluator(Box::new(BudgetSpillEvaluator));
        let outcome = r.schedule_loop(&g, &m).unwrap();
        // The returned schedule covers the *original* graph (spilling is
        // what-if evaluation only), so downstream reporting and
        // certification see the loop the caller asked about.
        hrms_modsched::validate_schedule(&g, &m, &outcome.schedule).unwrap();
        let trace = outcome.feedback.expect("trace attached");
        assert_eq!(trace.iterations[0].perturbation, "baseline");
    }
}
