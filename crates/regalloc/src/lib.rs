//! Register-pressure analysis and register allocation for software-pipelined
//! loops.
//!
//! The scheduling crates (`hrms-core`, `hrms-baselines`) decide *when* each
//! operation executes; this crate deals with the consequences for registers:
//!
//! * [`pressure`] — summary statistics and cumulative distributions of
//!   register requirements across a set of scheduled loops (Figures 11–13 of
//!   the paper),
//! * [`spill`] — spill-code insertion and re-scheduling under a fixed
//!   register budget (Figure 14),
//! * [`mve`] — modulo variable expansion: kernel unrolling with compile-time
//!   renaming, the software alternative to rotating register files,
//! * [`rotating`] — allocation of loop-variant lifetimes onto a rotating
//!   register file using the wands-only end-fit strategy with adjacency
//!   ordering (Rau et al.), which the paper's footnote 4 cites as achieving
//!   `MaxLive + 1` registers or better in practice,
//! * [`feedback`] — the allocator-backed spill evaluator plugged into
//!   `hrms_modsched::feedback`'s iterative rescheduler.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod feedback;
pub mod mve;
pub mod pressure;
pub mod rotating;
pub mod spill;

pub use feedback::BudgetSpillEvaluator;
pub use mve::{mve_registers, mve_unroll_factor, ExpandedKernel};
pub use pressure::{CumulativeDistribution, PressureKind, RegisterPressure};
pub use rotating::{allocate_rotating, RotatingAllocation};
pub use spill::{schedule_with_register_budget, SpillConfig, SpillResult};
