//! Register-pressure summaries and cumulative distributions.

use hrms_ddg::Ddg;
use hrms_modsched::{LifetimeAnalysis, Schedule};

/// Which registers are being counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PressureKind {
    /// Only loop variants (Figures 11 and 12 of the paper).
    VariantsOnly,
    /// Loop variants plus one register per loop invariant (Figures 13 and
    /// 14).
    VariantsAndInvariants,
}

/// The register pressure of one scheduled loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterPressure {
    /// `MaxLive` of the loop variants.
    pub variants: u64,
    /// Number of loop invariants (each needs one register for the whole
    /// loop).
    pub invariants: u64,
}

impl RegisterPressure {
    /// Measures the pressure of `schedule`.
    pub fn measure(ddg: &Ddg, schedule: &Schedule) -> Self {
        let lt = LifetimeAnalysis::analyze(ddg, schedule);
        RegisterPressure {
            variants: lt.max_live(),
            invariants: u64::from(ddg.num_invariants()),
        }
    }

    /// The register count for the requested [`PressureKind`].
    pub fn registers(&self, kind: PressureKind) -> u64 {
        match kind {
            PressureKind::VariantsOnly => self.variants,
            PressureKind::VariantsAndInvariants => self.variants + self.invariants,
        }
    }
}

/// A cumulative distribution over register requirements, optionally weighted
/// (the paper's "static" distributions weight every loop equally, the
/// "dynamic" ones weight each loop by its execution time).
#[derive(Debug, Clone, PartialEq)]
pub struct CumulativeDistribution {
    /// Sorted `(registers, weight)` samples.
    samples: Vec<(u64, f64)>,
    total_weight: f64,
}

impl CumulativeDistribution {
    /// Builds a distribution from `(registers, weight)` samples.
    pub fn from_samples(mut samples: Vec<(u64, f64)>) -> Self {
        samples.sort_by_key(|a| a.0);
        let total_weight = samples.iter().map(|s| s.1).sum();
        CumulativeDistribution {
            samples,
            total_weight,
        }
    }

    /// Builds an unweighted ("static") distribution.
    pub fn from_counts(counts: impl IntoIterator<Item = u64>) -> Self {
        Self::from_samples(counts.into_iter().map(|c| (c, 1.0)).collect())
    }

    /// The fraction (0..=1) of total weight whose register requirement is
    /// less than or equal to `registers`.
    pub fn fraction_at_or_below(&self, registers: u64) -> f64 {
        if self.total_weight == 0.0 {
            return 1.0;
        }
        let covered: f64 = self
            .samples
            .iter()
            .take_while(|(r, _)| *r <= registers)
            .map(|(_, w)| w)
            .sum();
        covered / self.total_weight
    }

    /// The fraction of total weight that needs **more** than `registers`
    /// registers (the quantity quoted in the paper: "45% of the cycles is
    /// spent in loops requiring more than 32 registers").
    pub fn fraction_above(&self, registers: u64) -> f64 {
        1.0 - self.fraction_at_or_below(registers)
    }

    /// The weighted mean register requirement.
    pub fn mean(&self) -> f64 {
        if self.total_weight == 0.0 {
            return 0.0;
        }
        self.samples.iter().map(|(r, w)| *r as f64 * w).sum::<f64>() / self.total_weight
    }

    /// The smallest register count `r` such that at least `q` (0..=1) of the
    /// weight needs `r` registers or fewer.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let target = q.clamp(0.0, 1.0) * self.total_weight;
        let mut acc = 0.0;
        for (r, w) in &self.samples {
            acc += w;
            if acc + 1e-12 >= target {
                return *r;
            }
        }
        self.samples.last().map(|(r, _)| *r).unwrap_or(0)
    }

    /// The points of the cumulative curve (register count, cumulative
    /// fraction) at the sample values — what the figure-generation binaries
    /// print.
    pub fn curve(&self) -> Vec<(u64, f64)> {
        let mut distinct: Vec<u64> = self.samples.iter().map(|(r, _)| *r).collect();
        distinct.dedup();
        distinct
            .into_iter()
            .map(|r| (r, self.fraction_at_or_below(r)))
            .collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the distribution has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, DepKind, OpKind};

    #[test]
    fn pressure_counts_variants_and_invariants() {
        let mut b = DdgBuilder::new("p");
        let ld = b.node("ld", OpKind::Load, 2);
        let add = b.node("add", OpKind::FpAdd, 1);
        b.edge(ld, add, DepKind::RegFlow, 0).unwrap();
        b.invariants(3);
        let g = b.build().unwrap();
        let s = Schedule::new(2, vec![0, 2]);
        let p = RegisterPressure::measure(&g, &s);
        assert_eq!(p.variants, 1);
        assert_eq!(p.invariants, 3);
        assert_eq!(p.registers(PressureKind::VariantsOnly), 1);
        assert_eq!(p.registers(PressureKind::VariantsAndInvariants), 4);
    }

    #[test]
    fn static_distribution_counts_loops_equally() {
        let d = CumulativeDistribution::from_counts([4, 8, 16, 64]);
        assert_eq!(d.len(), 4);
        assert!((d.fraction_at_or_below(8) - 0.5).abs() < 1e-12);
        assert!((d.fraction_above(32) - 0.25).abs() < 1e-12);
        assert!((d.mean() - 23.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_distribution_weights_by_execution_time() {
        // One loop needs 64 registers but dominates execution time.
        let d = CumulativeDistribution::from_samples(vec![(8, 1.0), (64, 9.0)]);
        assert!((d.fraction_above(32) - 0.9).abs() < 1e-12);
        assert_eq!(d.quantile(0.5), 64);
        assert_eq!(d.quantile(0.05), 8);
    }

    #[test]
    fn curve_is_monotone_and_ends_at_one() {
        let d = CumulativeDistribution::from_counts([2, 2, 5, 9, 9, 9]);
        let curve = d.curve();
        assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution_is_harmless() {
        let d = CumulativeDistribution::from_counts(Vec::<u64>::new());
        assert!(d.is_empty());
        assert_eq!(d.quantile(0.5), 0);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.fraction_at_or_below(10), 1.0);
    }
}
