//! Allocation of loop-variant lifetimes onto a rotating register file.
//!
//! A rotating register file renames registers in hardware: each time a new
//! iteration starts (every II cycles) the register base advances, so the
//! instance of a value produced by iteration *i+1* automatically lands in a
//! different physical register than iteration *i*'s instance. Allocation
//! then amounts to packing the per-iteration lifetime intervals onto a
//! cylinder whose circumference is the number of physical registers.
//!
//! The allocator below implements the *wands-only* strategy of Rau et al.
//! ("Register allocation for software pipelined loops") with **end-fit** and
//! **adjacency ordering**, the variant the paper's footnote 4 singles out as
//! never needing more than `MaxLive + 1` registers: values are processed in
//! order of their start cycle, and each is given the offset whose previous
//! occupant finished closest to (but not after) the new value's start.

use std::collections::HashMap;

use hrms_ddg::{Ddg, NodeId};
use hrms_modsched::{LifetimeAnalysis, Schedule, ValueLifetime};

/// The result of rotating-register allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotatingAllocation {
    /// Number of physical rotating registers required.
    pub registers: u64,
    /// Offset (rotating register number at definition time) of each value,
    /// keyed by producer.
    pub offsets: HashMap<NodeId, u64>,
    /// The `MaxLive` lower bound of the same schedule, for reporting.
    pub max_live: u64,
}

impl RotatingAllocation {
    /// `registers − max_live`: how far from the lower bound the allocation
    /// landed (0 or 1 for the wands-only end-fit strategy in practice).
    pub fn overhead(&self) -> u64 {
        self.registers - self.max_live
    }
}

/// Allocates the loop variants of `schedule` onto a rotating register file.
pub fn allocate_rotating(ddg: &Ddg, schedule: &Schedule) -> RotatingAllocation {
    let lifetimes = LifetimeAnalysis::analyze(ddg, schedule);
    let max_live = lifetimes.max_live();
    let ii = u64::from(schedule.ii());

    // Values in adjacency order: by start cycle, then producer id.
    let mut values: Vec<&ValueLifetime> = lifetimes
        .lifetimes()
        .iter()
        .filter(|l| l.length() > 0)
        .collect();
    values.sort_by_key(|l| (l.start, l.producer.index()));

    if values.is_empty() {
        return RotatingAllocation {
            registers: 0,
            offsets: HashMap::new(),
            max_live,
        };
    }

    // Try register-file sizes starting at the lower bound until the end-fit
    // packing succeeds.
    let mut size = max_live.max(1);
    loop {
        if let Some(offsets) = try_allocate(&values, size, ii) {
            return RotatingAllocation {
                registers: size,
                offsets,
                max_live,
            };
        }
        size += 1;
    }
}

/// Attempts an end-fit allocation with `size` rotating registers. Returns
/// the chosen offsets, or `None` if some value cannot be placed.
fn try_allocate(values: &[&ValueLifetime], size: u64, ii: u64) -> Option<HashMap<NodeId, u64>> {
    // `free_at[o]` = the cycle at which rotating offset `o` becomes free
    // (relative to the defining iteration of the previous occupant, after
    // unrotating). An offset `o` is usable for a value starting at `s` if
    // every previously-placed value with a conflicting offset has ended.
    let mut placed: Vec<(u64, &ValueLifetime)> = Vec::new();
    let mut offsets = HashMap::new();

    for &v in values {
        // Candidate offsets, end-fit order: prefer the offset whose previous
        // occupant's end is latest but still compatible.
        let mut candidates: Vec<u64> = (0..size).collect();
        candidates.sort_by_key(|&o| {
            let last_end = placed
                .iter()
                .filter(|(po, _)| *po == o)
                .map(|(_, pv)| pv.end)
                .max();
            match last_end {
                Some(e) if e <= v.start => (0, -(e)), // ended already: closest end first
                Some(e) => (1, e),                    // still alive: least preferred
                None => (0, i64::MIN / 2 + o as i64), // never used: after reuse candidates
            }
        });
        let mut chosen = None;
        for &o in &candidates {
            if placed
                .iter()
                .all(|&(po, pv)| !conflicts(v, o, pv, po, size, ii))
            {
                chosen = Some(o);
                break;
            }
        }
        let o = chosen?;
        offsets.insert(v.producer, o);
        placed.push((o, v));
    }
    Some(offsets)
}

/// Whether value `a` at rotating offset `oa` conflicts with value `b` at
/// offset `ob` in a rotating file of `size` registers rotating every `ii`
/// cycles.
///
/// Iteration `k` of a value allocated at offset `o` occupies physical
/// register `(o + k) mod size` during `[start + k·ii, end + k·ii)`. Two
/// allocations conflict if any pair of instances shares a physical register
/// while their intervals overlap.
fn conflicts(a: &ValueLifetime, oa: u64, b: &ValueLifetime, ob: u64, size: u64, ii: u64) -> bool {
    // Instances of `a` at iteration 0 against instances of `b` at iteration
    // d, for every d with overlapping lifetimes; by rotation symmetry it is
    // enough to scan the relative iteration distance.
    let max_span = ((a.length().max(b.length())) as u64 / ii) + 2;
    let size_i = size as i64;
    for d in -(max_span as i64)..=(max_span as i64) {
        // b's instance of iteration d.
        let same_register = ((oa as i64) - (ob as i64 + d)).rem_euclid(size_i) == 0;
        if !same_register {
            continue;
        }
        let b_start = b.start + d * ii as i64;
        let b_end = b.end + d * ii as i64;
        let overlap = a.start < b_end && b_start < a.end;
        if overlap && !(std::ptr::eq(a, b) && d == 0) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_core::HrmsScheduler;
    use hrms_ddg::{DdgBuilder, DepKind, OpKind};
    use hrms_machine::presets;
    use hrms_modsched::ModuloScheduler;

    fn allocate_for(ddg: &Ddg) -> RotatingAllocation {
        let m = presets::perfect_club();
        let outcome = HrmsScheduler::new().schedule_loop(ddg, &m).unwrap();
        allocate_rotating(ddg, &outcome.schedule)
    }

    #[test]
    fn empty_value_set_needs_no_registers() {
        let mut b = DdgBuilder::new("stores_only");
        b.node("st", OpKind::Store, 1);
        let g = b.build().unwrap();
        let alloc = allocate_for(&g);
        assert_eq!(alloc.registers, 0);
        assert!(alloc.offsets.is_empty());
    }

    #[test]
    fn simple_chain_allocates_at_the_lower_bound() {
        let g = hrms_ddg::chain("chain", 5, OpKind::FpAdd, 1);
        let alloc = allocate_for(&g);
        assert!(alloc.registers >= alloc.max_live);
        assert!(
            alloc.overhead() <= 1,
            "wands-only end-fit stays near MaxLive"
        );
    }

    #[test]
    fn overlapping_instances_get_distinct_physical_registers() {
        // One value alive for 3 II: three instances overlap and the rotation
        // must give them distinct registers; a single value still only needs
        // `ceil(lifetime/II)` = MaxLive registers.
        let mut b = DdgBuilder::new("long");
        let prod = b.node("prod", OpKind::Load, 2);
        let cons = b.node("cons", OpKind::FpAdd, 1);
        b.edge(prod, cons, DepKind::RegFlow, 0).unwrap();
        let g = b.build().unwrap();
        let s = hrms_modsched::Schedule::new(2, vec![0, 6]);
        let alloc = allocate_rotating(&g, &s);
        assert_eq!(alloc.max_live, 3);
        assert_eq!(alloc.registers, 3);
    }

    #[test]
    fn allocation_respects_the_max_live_bound_on_realistic_loops() {
        // A handful of structurally different loops; the paper's claim is
        // MaxLive + 1 at worst, which we verify with a small safety margin.
        let mut graphs = Vec::new();
        {
            let mut b = DdgBuilder::new("fan");
            let sink = b.node("sink", OpKind::FpAdd, 1);
            for i in 0..5 {
                let ld = b.node(format!("ld{i}"), OpKind::Load, 2);
                b.edge(ld, sink, DepKind::RegFlow, 0).unwrap();
            }
            graphs.push(b.build().unwrap());
        }
        {
            let mut b = DdgBuilder::new("recurrence");
            let x = b.node("x", OpKind::FpAdd, 4);
            let y = b.node("y", OpKind::FpMul, 4);
            let st = b.node("st", OpKind::Store, 1);
            b.edge(x, y, DepKind::RegFlow, 0).unwrap();
            b.edge(y, x, DepKind::RegFlow, 1).unwrap();
            b.edge(y, st, DepKind::RegFlow, 0).unwrap();
            graphs.push(b.build().unwrap());
        }
        for g in &graphs {
            let alloc = allocate_for(g);
            assert!(
                alloc.overhead() <= 2,
                "loop `{}` needed {} registers for MaxLive {}",
                g.name(),
                alloc.registers,
                alloc.max_live
            );
        }
    }

    #[test]
    fn offsets_are_within_the_register_file() {
        let g = hrms_ddg::chain("chain", 8, OpKind::FpMul, 2);
        let alloc = allocate_for(&g);
        for &o in alloc.offsets.values() {
            assert!(o < alloc.registers);
        }
        assert_eq!(alloc.offsets.len(), 7, "the last value has no consumer");
    }
}
