//! Modulo variable expansion (MVE).
//!
//! When a loop variant lives longer than one II, successive iterations would
//! overwrite it before its last use. Section 2 of the paper lists the two
//! classic fixes: *modulo variable expansion* — unroll the kernel and rename
//! each definition at compile time (Lam) — and rotating register files
//! (handled in [`crate::rotating`]). This module implements MVE: it computes
//! the required unroll factor, the per-value register counts, and the
//! expanded (unrolled, renamed) kernel.

use std::collections::HashMap;

use hrms_ddg::{Ddg, NodeId};
use hrms_modsched::{LifetimeAnalysis, Schedule};

/// The kernel-unroll factor MVE needs: the maximum, over all loop variants,
/// of the number of concurrently-live instances (`ceil(lifetime / II)`), and
/// at least 1.
pub fn mve_unroll_factor(lifetimes: &LifetimeAnalysis) -> u32 {
    lifetimes
        .lifetimes()
        .iter()
        .map(|l| l.buffers(lifetimes.ii()) as u32)
        .max()
        .unwrap_or(1)
        .max(1)
}

/// The total number of registers MVE needs: one register per live instance
/// of each value (`Σ ceil(lifetime / II)`), which equals the Govindarajan
/// buffer count minus the per-store buffers.
pub fn mve_registers(lifetimes: &LifetimeAnalysis) -> u64 {
    lifetimes
        .lifetimes()
        .iter()
        .map(|l| l.buffers(lifetimes.ii()))
        .sum()
}

/// One operation instance in the expanded kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpandedOp {
    /// The original operation.
    pub node: NodeId,
    /// Which unrolled copy of the kernel this instance belongs to
    /// (`0..unroll_factor`).
    pub copy: u32,
    /// The register assigned to the value this instance defines (`None` for
    /// operations that define no value).
    pub register: Option<u32>,
}

/// The unrolled, renamed kernel produced by modulo variable expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandedKernel {
    unroll_factor: u32,
    ii: u32,
    /// `rows[r]` lists the operations issued in row `r` of the expanded
    /// kernel (`0 <= r < unroll_factor * ii`).
    rows: Vec<Vec<ExpandedOp>>,
    /// Total registers used by the renaming.
    registers: u64,
}

impl ExpandedKernel {
    /// Expands the kernel of `schedule` for `ddg`.
    pub fn expand(ddg: &Ddg, schedule: &Schedule) -> Self {
        let lifetimes = LifetimeAnalysis::analyze(ddg, schedule);
        let ii = schedule.ii();
        let factor = mve_unroll_factor(&lifetimes);

        // Assign one register block per value: value v gets
        // `ceil(lifetime/II)` registers, used round-robin by consecutive
        // kernel copies.
        let mut next_register = 0u32;
        let mut block: HashMap<NodeId, (u32, u32)> = HashMap::new(); // node -> (base, count)
        for l in lifetimes.lifetimes() {
            let count = l.buffers(ii) as u32;
            block.insert(l.producer, (next_register, count));
            next_register += count;
        }

        let mut rows = vec![Vec::new(); (factor * ii) as usize];
        for copy in 0..factor {
            for (node, _) in schedule.iter() {
                let row = copy * ii + schedule.row(node);
                let register = block.get(&node).map(|&(base, count)| base + (copy % count));
                rows[row as usize].push(ExpandedOp {
                    node,
                    copy,
                    register,
                });
            }
        }
        for row in &mut rows {
            row.sort_by_key(|op| (op.node, op.copy));
        }
        ExpandedKernel {
            unroll_factor: factor,
            ii,
            rows,
            registers: u64::from(next_register),
        }
    }

    /// The unroll factor (number of kernel copies).
    pub fn unroll_factor(&self) -> u32 {
        self.unroll_factor
    }

    /// Number of rows of the expanded kernel (`unroll_factor × II`).
    pub fn len_rows(&self) -> usize {
        self.rows.len()
    }

    /// The operations issued in expanded row `row`.
    pub fn row(&self, row: u32) -> &[ExpandedOp] {
        &self.rows[row as usize]
    }

    /// Total number of registers used by the expansion.
    pub fn registers(&self) -> u64 {
        self.registers
    }

    /// Checks the renaming invariant: within any window of `lifetime`
    /// cycles, no register is redefined — i.e. consecutive definitions of
    /// the same value use different registers whenever their lifetimes
    /// overlap.
    pub fn renaming_is_consistent(&self, ddg: &Ddg, schedule: &Schedule) -> bool {
        let lifetimes = LifetimeAnalysis::analyze(ddg, schedule);
        let by_producer: HashMap<NodeId, i64> = lifetimes
            .lifetimes()
            .iter()
            .map(|l| (l.producer, l.length()))
            .collect();
        let expanded_ii = i64::from(self.unroll_factor * self.ii);
        for (node, length) in by_producer {
            // Definition k of this value (one per expanded-kernel repetition
            // per copy) must not clash with definition k+1 .. while alive.
            let mut regs = Vec::new();
            for copy in 0..self.unroll_factor {
                let row = copy * self.ii + schedule.row(node);
                let op = self.rows[row as usize]
                    .iter()
                    .find(|op| op.node == node && op.copy == copy)
                    .expect("every copy of every op is in the expanded kernel");
                regs.push((i64::from(copy * self.ii), op.register));
            }
            // Two consecutive definitions d apart in time share a register
            // only if d >= lifetime.
            for i in 0..regs.len() {
                for j in (i + 1)..regs.len() {
                    let gap = regs[j].0 - regs[i].0;
                    if regs[i].1 == regs[j].1 && gap < length && gap < expanded_ii {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, DepKind, OpKind};

    /// A value alive for 2·II, so MVE must unroll twice.
    fn long_lifetime() -> (Ddg, Schedule) {
        let mut b = DdgBuilder::new("long");
        let prod = b.node("prod", OpKind::Load, 2);
        let cons = b.node("cons", OpKind::FpAdd, 1);
        b.edge(prod, cons, DepKind::RegFlow, 0).unwrap();
        let g = b.build().unwrap();
        let s = Schedule::new(2, vec![0, 4]);
        (g, s)
    }

    #[test]
    fn unroll_factor_covers_the_longest_lifetime() {
        let (g, s) = long_lifetime();
        let lt = LifetimeAnalysis::analyze(&g, &s);
        assert_eq!(mve_unroll_factor(&lt), 2);
        assert_eq!(mve_registers(&lt), 2);
    }

    #[test]
    fn short_lifetimes_need_no_unrolling() {
        let mut b = DdgBuilder::new("short");
        let prod = b.node("prod", OpKind::FpAdd, 1);
        let cons = b.node("cons", OpKind::FpAdd, 1);
        b.edge(prod, cons, DepKind::RegFlow, 0).unwrap();
        let g = b.build().unwrap();
        let s = Schedule::new(2, vec![0, 1]);
        let lt = LifetimeAnalysis::analyze(&g, &s);
        assert_eq!(mve_unroll_factor(&lt), 1);
    }

    #[test]
    fn expanded_kernel_has_factor_times_ii_rows() {
        let (g, s) = long_lifetime();
        let k = ExpandedKernel::expand(&g, &s);
        assert_eq!(k.unroll_factor(), 2);
        assert_eq!(k.len_rows(), 4);
        // Every (node, copy) pair appears exactly once.
        let mut count = 0;
        for r in 0..k.len_rows() {
            count += k.row(r as u32).len();
        }
        assert_eq!(count, g.num_nodes() * 2);
    }

    #[test]
    fn consecutive_copies_use_different_registers_for_long_values() {
        let (g, s) = long_lifetime();
        let k = ExpandedKernel::expand(&g, &s);
        let reg_of = |copy: u32| {
            (0..k.len_rows() as u32)
                .flat_map(|r| k.row(r).to_vec())
                .find(|op| op.node == NodeId(0) && op.copy == copy)
                .and_then(|op| op.register)
                .unwrap()
        };
        assert_ne!(reg_of(0), reg_of(1));
        assert!(k.renaming_is_consistent(&g, &s));
        assert_eq!(k.registers(), 2);
    }

    #[test]
    fn valueless_ops_get_no_register() {
        let mut b = DdgBuilder::new("store");
        let prod = b.node("prod", OpKind::FpAdd, 1);
        let st = b.node("st", OpKind::Store, 1);
        b.edge(prod, st, DepKind::RegFlow, 0).unwrap();
        let g = b.build().unwrap();
        let s = Schedule::new(1, vec![0, 1]);
        let k = ExpandedKernel::expand(&g, &s);
        let store_op = (0..k.len_rows() as u32)
            .flat_map(|r| k.row(r).to_vec())
            .find(|op| op.node == NodeId(1))
            .unwrap();
        assert_eq!(store_op.register, None);
    }
}
