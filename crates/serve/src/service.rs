//! The long-running batch scheduling service.
//!
//! [`Service`] is transport-agnostic: [`Service::handle_line`] maps one
//! request line to its response lines, and [`Service::run`] drives that
//! over any `BufRead`/`Write` pair — the CLI's stdin/stdout pipe, a Unix
//! socket connection ([`Service::serve_unix`]), or an in-process string
//! for tests ([`Service::process`]). The protocol itself is specified in
//! `docs/SERVICE.md`.
//!
//! Guarantees (all tested by `tests/serve_protocol.rs` and the soak
//! suite):
//!
//! * **Input-order streaming.** A `schedule` batch answers with exactly
//!   one record per loop × machine cell, loop-major in input order, no
//!   matter how the cells were interleaved across the worker pool.
//! * **Each loop is analysed once per request.** All machines a request
//!   names share one [`hrms_ddg::LoopCore`] per loop; only the cheap
//!   per-machine overlay differs between cells.
//! * **Each distinct loop is paid for once.** Results are cached under
//!   the content-addressed [`hrms_ddg::cache_key`]; duplicate entries —
//!   within one batch or across requests — are served from cache, and
//!   the hit/miss/eviction counters are observable via `stats`.
//! * **Cached and cold results are byte-identical.** The cache stores the
//!   rendered report record; a hit replays exactly the bytes a cold run
//!   would produce.
//! * **Failure containment.** A malformed request is answered with a
//!   structured error record (with source-span diagnostics where they
//!   apply) and the connection lives on; a panicking scheduler cell is
//!   contained by the engine and becomes a per-cell error record carrying
//!   the panic message and location.
//! * **Clean shutdown.** A `shutdown` request (or EOF) drains in-flight
//!   work — requests are handled to completion in arrival order — then
//!   closes.

use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;
use std::sync::Arc;

use hrms_ddg::{cache_key, ddg_fingerprint, dot, parse_loops, Ddg, LoopCore};
use hrms_engine::{schedule_cell_with_core, BatchEngine, CacheStats, ResultCache};
use hrms_machine::{machine_fingerprint, Machine};
use hrms_modsched::{error_line, report_line, ReportOptions};
use hrms_verify::{lint_dot_source, lint_loop_source, lint_machine_source};

use crate::protocol::{
    bye_record, cell_error_record, done_record, looks_like_dot, parse_request,
    request_error_record, result_record, stats_record, Request, RequestError, ScheduleRequest,
};
use crate::registry::{resolve_machine, scheduler_by_slug, MachineError, MachineFiles};

/// Configuration of a [`Service`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads for the scheduling pool (`None`: one per available
    /// core).
    pub workers: Option<usize>,
    /// Capacity of the content-addressed result cache, in entries.
    pub cache_capacity: usize,
    /// Whether the cache is enabled at all (individual requests can also
    /// opt out with `"cache":false`).
    pub cache: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: None,
            cache_capacity: 4096,
            cache: true,
        }
    }
}

/// Resolves one machine entry of a schedule request through the shared
/// [`resolve_machine`] registry under the service policy
/// ([`MachineFiles::Deny`] — a remote client must not be able to read
/// server-side files), attaching span diagnostics when inline `.machine`
/// text fails to parse.
pub fn resolve_machine_request(id: &Value, text: &str) -> Result<Machine, RequestError> {
    resolve_machine(text, MachineFiles::Deny).map_err(|e| match e {
        MachineError::InlineParse { .. } => RequestError {
            id: id.clone(),
            message: e.to_string(),
            diagnostics: lint_machine_source(text)
                .iter()
                .map(|d| d.render_json("machine"))
                .collect(),
        },
        other => RequestError::new(id.clone(), other.to_string()),
    })
}

use crate::json::Value;

/// One record body for a scheduled cell: the rendered report line on
/// success, the rendered error line on failure.
#[derive(Debug, Clone)]
enum CellBody {
    Ok(String),
    Err(String),
}

/// The batch scheduling service. See the module docs for the guarantees.
#[derive(Debug)]
pub struct Service {
    engine: BatchEngine,
    cache: ResultCache<String>,
    cache_enabled: bool,
    /// Distinct machine digests seen per loop-core fingerprint on the
    /// caching path — the `stats` breakdown that makes multi-machine
    /// batches observable (one core amortised across N machine keys).
    seen: HashMap<u64, HashSet<u64>>,
    requests: u64,
    results: u64,
    errors: u64,
}

impl Service {
    /// A service with the given configuration.
    pub fn new(config: &ServeConfig) -> Self {
        Service {
            engine: match config.workers {
                Some(n) => BatchEngine::with_workers(n),
                None => BatchEngine::new(),
            },
            cache: ResultCache::with_capacity(config.cache_capacity),
            cache_enabled: config.cache,
            seen: HashMap::new(),
            requests: 0,
            results: 0,
            errors: 0,
        }
    }

    /// The cache counters (also exposed to clients via the `stats`
    /// request).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Handles one request line, passing each response line (without the
    /// trailing newline) to `emit`. Returns `true` when the line was a
    /// `shutdown` request and the service should close.
    ///
    /// Blank lines are ignored. Every failure mode — bad JSON, unknown
    /// verbs, unresolvable schedulers/machines, unparsable loops — is
    /// answered with a `stage:"request"` error record; the connection is
    /// never the casualty of a bad request.
    pub fn handle_line(&mut self, line: &str, emit: &mut dyn FnMut(&str)) -> bool {
        if line.trim().is_empty() {
            return false;
        }
        match parse_request(line) {
            Err(e) => {
                emit(&request_error_record(&e));
                false
            }
            Ok(Request::Stats { id }) => {
                emit(&stats_record(
                    &id,
                    self.cache.stats(),
                    self.seen.len(),
                    self.seen.values().map(HashSet::len).sum(),
                    self.requests,
                    self.results,
                    self.errors,
                ));
                false
            }
            Ok(Request::Shutdown { id }) => {
                emit(&bye_record(&id));
                true
            }
            Ok(Request::Schedule(request)) => {
                match self.handle_schedule(&request) {
                    Ok(records) => {
                        for record in &records {
                            emit(record);
                        }
                    }
                    Err(e) => emit(&request_error_record(&e)),
                }
                false
            }
        }
    }

    /// Parses every loop entry, flattening multi-loop `.loop` entries in
    /// order. A parse failure rejects the whole request (the index ↔ loop
    /// correspondence would otherwise be ambiguous) with span diagnostics
    /// for the offending entry.
    fn parse_request_loops(id: &Value, entries: &[String]) -> Result<Vec<Ddg>, Box<RequestError>> {
        let mut loops = Vec::new();
        for (i, text) in entries.iter().enumerate() {
            let path = format!("loops[{i}]");
            let parsed = if looks_like_dot(text) {
                dot::from_dot(text).map(|g| vec![g]).map_err(|e| (e, true))
            } else {
                parse_loops(text).map_err(|e| (e, false))
            };
            match parsed {
                Ok(parsed) if parsed.is_empty() => {
                    return Err(Box::new(RequestError::new(
                        id.clone(),
                        format!("{path} contains no loops"),
                    )));
                }
                Ok(parsed) => loops.extend(parsed),
                Err((e, is_dot)) => {
                    let lints = if is_dot {
                        lint_dot_source(text, None)
                    } else {
                        lint_loop_source(text, None)
                    };
                    return Err(Box::new(RequestError {
                        id: id.clone(),
                        message: format!("{path} does not parse: {e}"),
                        diagnostics: lints.iter().map(|d| d.render_json(&path)).collect(),
                    }));
                }
            }
        }
        Ok(loops)
    }

    fn handle_schedule(&mut self, request: &ScheduleRequest) -> Result<Vec<String>, RequestError> {
        let ScheduleRequest { id, .. } = request;
        let scheduler = scheduler_by_slug(&request.scheduler).ok_or_else(|| {
            RequestError::new(
                id.clone(),
                format!(
                    "unknown scheduler `{}` (known: {}, or `feedback:<slug>`)",
                    request.scheduler,
                    crate::registry::SCHEDULER_SLUGS.join(", ")
                ),
            )
        })?;
        // A `"feedback":{...}` option wraps the named scheduler in the
        // iterative rescheduler. The wrapper's display name embeds the
        // feedback configuration, so the cache keys derived from
        // `scheduler.name()` below keep differently-configured feedback
        // results apart (and apart from one-shot results).
        let scheduler = match request.feedback {
            Some(config) => crate::registry::wrap_feedback(scheduler, config),
            None => scheduler,
        };
        let machines = request
            .machines
            .iter()
            .map(|text| resolve_machine_request(id, text))
            .collect::<Result<Vec<Machine>, RequestError>>()?;
        let loops = Self::parse_request_loops(id, &request.loops).map_err(|e| *e)?;

        self.requests += 1;
        let scheduler_name = scheduler.name().to_string();
        let core_fps: Vec<u64> = loops.iter().map(ddg_fingerprint).collect();
        let machine_digests: Vec<u64> = machines.iter().map(machine_fingerprint).collect();
        // Cells are loop-major: the record for loop `l` on machine `m` has
        // index `l * machines.len() + m`, so single-machine requests keep
        // their historical loop-per-record indexing.
        let mut keys = Vec::with_capacity(core_fps.len() * machine_digests.len());
        for &fp in &core_fps {
            for &digest in &machine_digests {
                keys.push(cache_key(fp, digest, &scheduler_name));
            }
        }
        for &fp in &core_fps {
            let digests = self.seen.entry(fp).or_default();
            digests.extend(machine_digests.iter().copied());
        }

        let use_cache = self.cache_enabled && request.cache && !request.timing;
        let bodies: HashMap<u64, CellBody> = if use_cache {
            self.cached_bodies(&scheduler_name, &*scheduler, &loops, &machines, &keys)
        } else {
            // A cold run: every cell is scheduled independently — no
            // dedup, no cache reads or writes, no counter movement (one
            // analysis core per loop is still shared across machines).
            // This is the baseline the cache contract is tested against.
            let matrix = self
                .engine
                .schedule_matrix(&[&*scheduler], &loops, &machines);
            let options = ReportOptions {
                timing: request.timing,
            };
            // Later duplicates overwrite earlier ones with identical
            // bytes (deterministic schedulers), so the map is still one
            // body per key.
            let mut bodies = HashMap::new();
            let per_loop = matrix.into_iter().next().expect("one scheduler");
            for (l, per_machine) in per_loop.into_iter().enumerate() {
                for (m, outcome) in per_machine.into_iter().enumerate() {
                    let body = match outcome {
                        Ok(outcome) => CellBody::Ok(report_line(
                            &loops[l],
                            &machines[m],
                            &scheduler_name,
                            &outcome,
                            options,
                        )),
                        Err(e) => CellBody::Err(error_line(
                            loops[l].name(),
                            &scheduler_name,
                            machines[m].name(),
                            &e.to_string(),
                        )),
                    };
                    bodies.insert(keys[l * machines.len() + m], body);
                }
            }
            bodies
        };

        let cells = keys.len();
        let mut records = Vec::with_capacity(cells + 1);
        let mut errors = 0usize;
        for (index, &key) in keys.iter().enumerate() {
            match &bodies[&key] {
                CellBody::Ok(body) => records.push(result_record(id, index, body)),
                CellBody::Err(body) => {
                    errors += 1;
                    records.push(cell_error_record(id, index, body));
                }
            }
        }
        self.results += (cells - errors) as u64;
        self.errors += errors as u64;
        records.push(done_record(id, cells - errors, errors));
        Ok(records)
    }

    /// The caching path: consult the cache per distinct key, schedule each
    /// distinct miss exactly once across the pool, and populate the cache
    /// with the successful records. Every cell counts as exactly one hit
    /// or miss: the first occurrence of a key is a real lookup, batch-local
    /// duplicates count as hits (they are served from the in-flight
    /// result). Misses that share a loop share one analysis core, so the
    /// machine-independent analysis is paid once per loop however many
    /// machines the request names.
    fn cached_bodies(
        &mut self,
        scheduler_name: &str,
        scheduler: &(dyn hrms_modsched::ModuloScheduler + Sync),
        loops: &[Ddg],
        machines: &[Machine],
        keys: &[u64],
    ) -> HashMap<u64, CellBody> {
        let mut bodies: HashMap<u64, CellBody> = HashMap::new();
        let mut to_schedule: Vec<usize> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            if bodies.contains_key(&key) || to_schedule.iter().any(|&j| keys[j] == key) {
                self.cache.count_reuse_hit();
            } else if let Some(cached) = self.cache.get(key) {
                bodies.insert(key, CellBody::Ok(cached.clone()));
            } else {
                to_schedule.push(i);
            }
        }

        let cores: Vec<Arc<LoopCore>> = loops.iter().map(|_| Arc::new(LoopCore::new())).collect();
        let outcomes = self.engine.map(&to_schedule, |_, &cell| {
            let (l, m) = (cell / machines.len(), cell % machines.len());
            schedule_cell_with_core(scheduler, &loops[l], &machines[m], &cores[l])
        });
        for (&cell, outcome) in to_schedule.iter().zip(outcomes) {
            let (l, m) = (cell / machines.len(), cell % machines.len());
            let key = keys[cell];
            match outcome {
                Ok(outcome) => {
                    let body = report_line(
                        &loops[l],
                        &machines[m],
                        scheduler_name,
                        &outcome,
                        ReportOptions { timing: false },
                    );
                    self.cache.insert(key, body.clone());
                    bodies.insert(key, CellBody::Ok(body));
                }
                Err(e) => {
                    // Errors are answered but not cached: a transient
                    // failure (e.g. a contained panic) must not poison
                    // future requests for the same key.
                    bodies.insert(
                        key,
                        CellBody::Err(error_line(
                            loops[l].name(),
                            scheduler_name,
                            machines[m].name(),
                            &e.to_string(),
                        )),
                    );
                }
            }
        }
        bodies
    }

    /// Drives the service over a reader/writer pair: one request per line
    /// in, the response lines out, flushed after every request so pipe and
    /// socket clients see results as soon as they exist.
    ///
    /// Returns `Ok(true)` when the stream ended with a `shutdown` request,
    /// `Ok(false)` on EOF. Either way all received requests were answered
    /// in full before returning (drain semantics).
    pub fn run<R: BufRead, W: Write>(&mut self, reader: R, mut writer: W) -> io::Result<bool> {
        for line in reader.lines() {
            let line = line?;
            let mut responses: Vec<String> = Vec::new();
            let shutdown = self.handle_line(&line, &mut |record| responses.push(record.into()));
            for record in &responses {
                writer.write_all(record.as_bytes())?;
                writer.write_all(b"\n")?;
            }
            writer.flush()?;
            if shutdown {
                return Ok(true);
            }
        }
        writer.flush()?;
        Ok(false)
    }

    /// Convenience for in-process use (tests, the CLI's string-driven pipe
    /// mode): processes every request line of `input` and returns the full
    /// response text plus whether a `shutdown` request was seen.
    pub fn process(&mut self, input: &str) -> (String, bool) {
        let mut out = Vec::new();
        let shutdown = self
            .run(io::Cursor::new(input), &mut out)
            .expect("in-memory I/O cannot fail");
        (
            String::from_utf8(out).expect("responses are UTF-8"),
            shutdown,
        )
    }

    /// Binds a Unix socket at `path` and serves connections until one of
    /// them sends a `shutdown` request.
    ///
    /// Connections are accepted one at a time — the parallelism of this
    /// service lives in the scheduling pool, and a single reader keeps the
    /// result cache lock-free. A connection that breaks mid-request (I/O
    /// error) is dropped and the next one is accepted; only `shutdown`
    /// (from any client) stops the service. A stale socket file from a
    /// previous run is replaced; the file is removed on clean shutdown.
    pub fn serve_unix(&mut self, path: &Path) -> io::Result<()> {
        use std::os::unix::fs::FileTypeExt;
        use std::os::unix::net::UnixListener;
        // Re-binding over a dead service's socket must work; refuse only
        // if the path exists and is not a socket.
        match std::fs::symlink_metadata(path) {
            Ok(meta) if !meta.file_type().is_socket() => {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!("`{}` exists and is not a socket", path.display()),
                ));
            }
            Ok(_) => std::fs::remove_file(path)?,
            Err(_) => {}
        }
        let listener = UnixListener::bind(path)?;
        for stream in listener.incoming() {
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let reader = match stream.try_clone() {
                Ok(clone) => BufReader::new(clone),
                Err(_) => continue,
            };
            // EOF and broken connections keep serving; only shutdown stops.
            if let Ok(true) = self.run(reader, &stream) {
                break;
            }
        }
        let _ = std::fs::remove_file(path);
        Ok(())
    }
}

impl Default for Service {
    fn default() -> Self {
        Service::new(&ServeConfig::default())
    }
}
