//! `hrms-serve` — the batch scheduling service behind `hrms serve`.
//!
//! A long-lived service that accepts JSON-lines requests over a pipe
//! (stdin/stdout) or a Unix socket, schedules batches of loops across the
//! [`hrms_engine`] work-stealing pool, and streams one result record per
//! loop back **in input order**. Results are cached under the
//! content-addressed [`hrms_ddg::cache_key`], so a loop/machine/scheduler
//! triple is ever scheduled once; the cache's hit/miss/eviction counters
//! are observable through the `stats` request. The wire protocol is
//! specified in `docs/SERVICE.md`.
//!
//! The crate is transport-agnostic at its core: [`Service::handle_line`]
//! maps one request line to its response lines, and everything else —
//! [`Service::run`] over `BufRead`/`Write`, [`Service::process`] over
//! strings, [`Service::serve_unix`] over a socket — is plumbing around
//! it, which is what makes the protocol testable entirely in-process.
//!
//! This crate also hosts the string-driven registries ([`registry`])
//! shared with the CLI, and a small dependency-free JSON parser
//! ([`json`]) for the request side of the protocol (responses are
//! rendered with the same escaping helpers as `hrms schedule --emit
//! json`, so service records are byte-compatible with CLI records).

pub mod json;
pub mod protocol;
pub mod registry;
mod service;

pub use protocol::{looks_like_dot, looks_like_machine};
pub use service::{resolve_machine_request, ServeConfig, Service};
