//! A minimal JSON reader/writer for the service protocol.
//!
//! The workspace deliberately carries no serialisation dependency, so the
//! protocol layer parses requests with this hand-rolled recursive-descent
//! parser. It accepts exactly the JSON grammar (RFC 8259) with two
//! service-grade hardening choices:
//!
//! * **Byte offsets on every error.** A malformed request line is answered
//!   with a structured error record; the offset lets clients point at the
//!   exact byte that broke.
//! * **Bounded nesting.** Arrays/objects nest at most [`MAX_DEPTH`] deep,
//!   so a hostile request cannot overflow the parser stack of a
//!   long-running service.
//!
//! Numbers keep their raw source text ([`Value::Num`]): the protocol never
//! does arithmetic on request numbers, but it echoes request ids back
//! verbatim — re-rendering the original token is the only way `1e2` stays
//! `1e2`.

use std::fmt;

use hrms_modsched::push_json_str;

/// Maximum nesting depth of arrays/objects accepted by [`parse`].
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source token (see the module docs).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as a key → value list in source order (duplicate keys are
    /// kept; [`Value::get`] returns the first).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value back to compact JSON.
    ///
    /// A parse → render round trip is value-preserving: strings are
    /// re-escaped canonically and numbers keep their original token.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.render(&mut out);
        out
    }

    fn render(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(raw) => out.push_str(raw),
            Value::Str(s) => push_json_str(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_str(out, key);
                    out.push(':');
                    value.render(out);
                }
                out.push('}');
            }
        }
    }
}

/// A JSON syntax error with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses `input` as exactly one JSON value (leading/trailing whitespace
/// allowed, nothing else).
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!(
                "unexpected character `{}`",
                char::from(other).escape_default()
            ))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')
            .map_err(|_| self.error("expected a string"))?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let s = std::str::from_utf8(&rest[..len])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.error("dangling escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: require the paired low surrogate.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')
                            .map_err(|_| self.error("high surrogate not followed by \\u"))?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.error("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))?
                    } else {
                        return Err(self.error("unpaired high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.error("unpaired low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.error("invalid \\u escape"))?
                }
            }
            other => {
                return Err(self.error(format!(
                    "unknown escape `\\{}`",
                    char::from(other).escape_default()
                )))
            }
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.error("non-hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a non-zero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.error("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected a digit after `.`"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected a digit in the exponent"));
            }
            self.digits();
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number token");
        Ok(Value::Num(raw.to_string()))
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(text: &str) -> Value {
        Value::Str(text.to_string())
    }

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e3").unwrap(), Value::Num("-12.5e3".into()));
        assert_eq!(parse("\"hi\"").unwrap(), s("hi"));
    }

    #[test]
    fn structures_parse_and_get() {
        let v = parse(r#"{"req":"schedule","loops":["a","b"],"cache":false,"n":3}"#).unwrap();
        assert_eq!(v.get("req").and_then(Value::as_str), Some("schedule"));
        assert_eq!(v.get("cache").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("loops").and_then(Value::as_array).unwrap().len(), 2);
        assert_eq!(v.get("n"), Some(&Value::Num("3".into())));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escapes_round_trip() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v, s("a\"b\\c\ndA\u{e9}\u{1F600}"));
        // Render and re-parse: value-preserving.
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn render_round_trips_structures() {
        let text = r#"{"a":[1,2.5,"x"],"b":{"c":null},"d":true}"#;
        let v = parse(text).unwrap();
        assert_eq!(
            v.to_json(),
            text,
            "already-compact JSON renders identically"
        );
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn numbers_keep_their_raw_token() {
        let v = parse("[1e2, 0.50, -0]").unwrap();
        assert_eq!(v.to_json(), "[1e2,0.50,-0]");
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse("{\"a\": }").unwrap_err();
        assert_eq!(e.offset, 6);
        let e = parse("[1, 2").unwrap_err();
        assert_eq!(e.offset, 5);
        assert!(parse("").unwrap_err().message.contains("end of input"));
        assert!(parse("01").unwrap_err().message.contains("trailing"));
        assert!(parse("\"\u{1}\"").unwrap_err().message.contains("control"));
        assert!(parse("\"\\ud800x\"").is_err(), "unpaired surrogate");
    }

    #[test]
    fn nesting_is_bounded() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let e = parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting"), "{e}");
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_return_the_first() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k"), Some(&Value::Num("1".into())));
    }
}
