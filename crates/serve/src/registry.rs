//! Name-based registries shared by the CLI and the batch service:
//! scheduler slugs and machine references.
//!
//! The library crates expose schedulers as concrete types; every
//! string-driven harness — the `hrms` CLI, the `hrms serve` protocol —
//! needs to go from a stable slug to a boxed [`ModuloScheduler`]. The
//! slugs here — not the display names returned by
//! [`ModuloScheduler::name`] — are the contract documented in
//! `docs/CLI.md` and `docs/SERVICE.md`. The registry lives in this crate
//! (rather than the facade) so the service can resolve schedulers without
//! a dependency cycle; the facade re-exports it unchanged.

use hrms_baselines::{
    BottomUpScheduler, BranchAndBoundScheduler, FrlcScheduler, IterativeScheduler, SlackScheduler,
    TopDownScheduler,
};
use hrms_core::HrmsScheduler;
use hrms_ddg::Ddg;
use hrms_machine::{presets, Machine};
use hrms_modsched::{
    FeedbackConfig, IterativeRescheduler, ModuloScheduler, SchedError, ScheduleOutcome,
};
use hrms_regalloc::BudgetSpillEvaluator;

/// A scheduler that can be shared across the engine's worker threads.
pub type BoxedScheduler = Box<dyn ModuloScheduler + Sync + Send>;

/// CLI slugs of every scheduler, in the fixed order used by
/// `--scheduler all`: HRMS first, then the baselines in the order the
/// paper's comparison tables list them.
pub const SCHEDULER_SLUGS: [&str; 7] = [
    "hrms",
    "top-down",
    "bottom-up",
    "slack",
    "frlc",
    "iterative",
    "bnb",
];

/// A deliberately broken scheduler for fault-injection drills: it panics
/// on every loop. Resolved by the `chaos` slug but never listed in
/// [`SCHEDULER_SLUGS`], so `--scheduler all` and `hrms list` stay clean.
/// The service tests (and operators rehearsing failure handling) use it to
/// prove that a panicking cell degrades to a structured error record
/// without terminating the batch or the connection (`docs/SERVICE.md`).
struct ChaosScheduler;

impl ModuloScheduler for ChaosScheduler {
    fn name(&self) -> &str {
        "Chaos"
    }

    fn schedule_loop(&self, ddg: &Ddg, _machine: &Machine) -> Result<ScheduleOutcome, SchedError> {
        panic!("chaos scheduler always panics (loop `{}`)", ddg.name())
    }
}

/// Resolves a scheduler by its [`SCHEDULER_SLUGS`] slug (or the hidden
/// `chaos` fault-injection slug).
///
/// A `feedback:` prefix wraps the named scheduler in the feedback-guided
/// [`IterativeRescheduler`] under the default [`FeedbackConfig`] with the
/// register-allocator spill evaluator wired in — `feedback:hrms` is
/// iteratively rescheduled HRMS. The prefix composes with every slug,
/// including `chaos` (whose panics stay contained by the engine).
///
/// Every scheduler is built with its default configuration — the same
/// configuration the in-process harnesses use, so CLI and service results
/// are comparable with library results.
pub fn scheduler_by_slug(slug: &str) -> Option<BoxedScheduler> {
    if let Some(inner) = slug.strip_prefix("feedback:") {
        return feedback_scheduler(inner, FeedbackConfig::default());
    }
    Some(match slug {
        "hrms" => Box::new(HrmsScheduler::new()),
        "top-down" => Box::new(TopDownScheduler::new()),
        "bottom-up" => Box::new(BottomUpScheduler::new()),
        "slack" => Box::new(SlackScheduler::new()),
        "frlc" => Box::new(FrlcScheduler::new()),
        "iterative" => Box::new(IterativeScheduler::new()),
        "bnb" => Box::new(BranchAndBoundScheduler::new()),
        "chaos" => Box::new(ChaosScheduler),
        _ => return None,
    })
}

/// Resolves `inner_slug` and wraps it in the feedback-guided rescheduler
/// under `config` (see [`wrap_feedback`]). `None` when the inner slug is
/// unknown.
pub fn feedback_scheduler(inner_slug: &str, config: FeedbackConfig) -> Option<BoxedScheduler> {
    Some(wrap_feedback(scheduler_by_slug(inner_slug)?, config))
}

/// Wraps an already-built scheduler in the feedback-guided
/// [`IterativeRescheduler`] with the register-allocator spill evaluator
/// ([`BudgetSpillEvaluator`]) injected — the composition point where the
/// regalloc feedback signal meets the modsched feedback loop (the two
/// crates cannot depend on each other; this crate depends on both).
pub fn wrap_feedback(inner: BoxedScheduler, config: FeedbackConfig) -> BoxedScheduler {
    Box::new(
        IterativeRescheduler::new(inner, config).with_evaluator(Box::new(BudgetSpillEvaluator)),
    )
}

/// All schedulers in [`SCHEDULER_SLUGS`] order.
pub fn all_schedulers() -> Vec<BoxedScheduler> {
    SCHEDULER_SLUGS
        .iter()
        .map(|s| scheduler_by_slug(s).expect("every listed slug resolves"))
        .collect()
}

/// Whether [`resolve_machine`] may read `.machine` files from disk.
///
/// The CLI resolves on behalf of a local user and allows files; the
/// service resolves on behalf of a remote client and must never read
/// server-side files, whatever the request says.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineFiles {
    /// Unresolved names may be tried as paths to `.machine` files.
    Allow,
    /// The filesystem is never touched (service policy).
    Deny,
}

/// A failed [`resolve_machine`] call, split by stage so callers can attach
/// the right context (the service adds span diagnostics to
/// [`MachineError::InlineParse`]; the CLI just formats the message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The reference was inline `.machine` text that does not parse.
    InlineParse {
        /// The parse error, already rendered.
        error: String,
    },
    /// The reference named a readable file whose contents do not parse.
    FileParse {
        /// The path that was read.
        path: String,
        /// The parse error, already rendered.
        error: String,
    },
    /// The reference is no preset, no inline text, and — under
    /// [`MachineFiles::Allow`] — no readable file either.
    Unknown {
        /// The unresolvable reference.
        name: String,
        /// The I/O error from the file attempt, when files were allowed.
        io: Option<String>,
    },
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::InlineParse { error } => {
                write!(f, "inline machine does not parse: {error}")
            }
            MachineError::FileParse { path, error } => write!(f, "{path}: {error}"),
            MachineError::Unknown { name, io: Some(io) } => write!(
                f,
                "`{name}` is not a machine preset ({}), inline `.machine` text, or a readable \
                 file: {io}",
                presets::PRESET_NAMES.join(", ")
            ),
            MachineError::Unknown { name, io: None } => write!(
                f,
                "`{name}` is not a machine preset ({}) or inline `.machine` text",
                presets::PRESET_NAMES.join(", ")
            ),
        }
    }
}

impl std::error::Error for MachineError {}

/// Resolves a machine reference — the CLI's `--machine` values and the
/// service protocol's `machine`/`machines` entries go through this one
/// function, so a reference means the same thing everywhere:
///
/// 1. inline `.machine` text (auto-detected by its `machine` header),
/// 2. a preset name ([`presets::by_name`]),
/// 3. under [`MachineFiles::Allow`] only, a path to a `.machine` file.
///
/// # Errors
///
/// Returns a [`MachineError`] naming the failing stage.
pub fn resolve_machine(reference: &str, files: MachineFiles) -> Result<Machine, MachineError> {
    if crate::protocol::looks_like_machine(reference) {
        return hrms_machine::parse_machine(reference).map_err(|e| MachineError::InlineParse {
            error: e.to_string(),
        });
    }
    if let Some(machine) = presets::by_name(reference) {
        return Ok(machine);
    }
    if files == MachineFiles::Deny {
        return Err(MachineError::Unknown {
            name: reference.to_string(),
            io: None,
        });
    }
    match std::fs::read_to_string(reference) {
        Ok(text) => hrms_machine::parse_machine(&text).map_err(|e| MachineError::FileParse {
            path: reference.to_string(),
            error: e.to_string(),
        }),
        Err(io) => Err(MachineError::Unknown {
            name: reference.to_string(),
            io: Some(io.to_string()),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_slug_resolves_to_a_distinct_scheduler() {
        let names: Vec<String> = all_schedulers().iter().map(|s| s.name().into()).collect();
        assert_eq!(names.len(), SCHEDULER_SLUGS.len());
        let expected = [
            "HRMS",
            "Top-Down",
            "Bottom-Up",
            "Slack",
            "FRLC",
            "Iterative",
            "B&B (SPILP stand-in)",
        ];
        assert_eq!(names, expected);
        assert!(scheduler_by_slug("HRMS").is_none(), "slugs are lowercase");
    }

    #[test]
    fn machine_presets_resolve_and_bad_names_explain_themselves() {
        for files in [MachineFiles::Allow, MachineFiles::Deny] {
            assert_eq!(
                resolve_machine("govindarajan", files).unwrap().name(),
                "govindarajan-4fu"
            );
            let err = resolve_machine("no-such-machine", files)
                .unwrap_err()
                .to_string();
            assert!(
                err.contains("perfect-club"),
                "error lists the presets: {err}"
            );
        }
    }

    #[test]
    fn inline_machine_text_resolves_under_both_policies() {
        let inline = hrms_machine::write_machine(&presets::perfect_club());
        for files in [MachineFiles::Allow, MachineFiles::Deny] {
            assert_eq!(
                resolve_machine(&inline, files).unwrap().name(),
                "perfect-club-8fu"
            );
        }
        let err = resolve_machine("machine m\n  zzz\nend\n", MachineFiles::Deny).unwrap_err();
        assert!(matches!(err, MachineError::InlineParse { .. }), "{err}");
    }

    #[test]
    fn file_resolution_is_a_policy_decision() {
        let dir = std::env::temp_dir().join("hrms-registry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resolve.machine");
        std::fs::write(&path, hrms_machine::write_machine(&presets::govindarajan())).unwrap();
        let path = path.to_str().unwrap();

        let m = resolve_machine(path, MachineFiles::Allow).unwrap();
        assert_eq!(m.name(), "govindarajan-4fu");
        let err = resolve_machine(path, MachineFiles::Deny).unwrap_err();
        assert!(
            matches!(err, MachineError::Unknown { io: None, .. }),
            "the service policy never reads files: {err}"
        );
    }

    #[test]
    fn chaos_resolves_but_stays_out_of_the_listing() {
        let chaos = scheduler_by_slug("chaos").expect("chaos slug resolves");
        assert_eq!(chaos.name(), "Chaos");
        assert!(!SCHEDULER_SLUGS.contains(&"chaos"));
    }

    #[test]
    fn feedback_prefix_wraps_any_slug() {
        let fb = scheduler_by_slug("feedback:hrms").expect("feedback:hrms resolves");
        assert_eq!(fb.name(), "HRMS+feedback[r32,i6,s16]");
        let fb = scheduler_by_slug("feedback:top-down").unwrap();
        assert!(fb.name().starts_with("Top-Down+feedback["));
        assert!(scheduler_by_slug("feedback:zzz").is_none());
        // The hidden chaos slug composes too (panics stay contained by the
        // engine; tests/serve_protocol.rs drills the full path).
        assert!(scheduler_by_slug("feedback:chaos").is_some());
    }

    #[test]
    fn feedback_config_is_part_of_the_scheduler_name() {
        let small = feedback_scheduler(
            "hrms",
            hrms_modsched::FeedbackConfig {
                budget: Some(hrms_modsched::RegisterBudget { registers: 16 }),
                ..hrms_modsched::FeedbackConfig::default()
            },
        )
        .unwrap();
        let default = scheduler_by_slug("feedback:hrms").unwrap();
        assert_ne!(
            small.name(),
            default.name(),
            "different configs must produce different cache keys"
        );
    }

    #[test]
    fn chaos_panics_are_contained_by_the_engine() {
        let chaos = scheduler_by_slug("chaos").unwrap();
        let loops = [hrms_ddg::chain("victim", 3, hrms_ddg::OpKind::FpAdd, 1)];
        let results = hrms_engine::BatchEngine::with_workers(2).schedule_batch_contained(
            &*chaos,
            &loops,
            &presets::govindarajan(),
        );
        match &results[0] {
            Err(SchedError::Internal { what }) => {
                assert!(what.contains("chaos scheduler always panics"), "{what}");
                assert!(what.contains("`victim`"), "{what}");
                assert!(what.contains("registry.rs:"), "{what}");
            }
            other => panic!("expected contained panic, got {other:?}"),
        }
    }
}
