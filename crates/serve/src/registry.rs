//! Name-based registries shared by the CLI and the batch service:
//! scheduler slugs and machine references.
//!
//! The library crates expose schedulers as concrete types; every
//! string-driven harness — the `hrms` CLI, the `hrms serve` protocol —
//! needs to go from a stable slug to a boxed [`ModuloScheduler`]. The
//! slugs here — not the display names returned by
//! [`ModuloScheduler::name`] — are the contract documented in
//! `docs/CLI.md` and `docs/SERVICE.md`. The registry lives in this crate
//! (rather than the facade) so the service can resolve schedulers without
//! a dependency cycle; the facade re-exports it unchanged.

use hrms_baselines::{
    BottomUpScheduler, BranchAndBoundScheduler, FrlcScheduler, IterativeScheduler, SlackScheduler,
    TopDownScheduler,
};
use hrms_core::HrmsScheduler;
use hrms_ddg::Ddg;
use hrms_machine::{presets, Machine};
use hrms_modsched::{ModuloScheduler, SchedError, ScheduleOutcome};

/// A scheduler that can be shared across the engine's worker threads.
pub type BoxedScheduler = Box<dyn ModuloScheduler + Sync + Send>;

/// CLI slugs of every scheduler, in the fixed order used by
/// `--scheduler all`: HRMS first, then the baselines in the order the
/// paper's comparison tables list them.
pub const SCHEDULER_SLUGS: [&str; 7] = [
    "hrms",
    "top-down",
    "bottom-up",
    "slack",
    "frlc",
    "iterative",
    "bnb",
];

/// A deliberately broken scheduler for fault-injection drills: it panics
/// on every loop. Resolved by the `chaos` slug but never listed in
/// [`SCHEDULER_SLUGS`], so `--scheduler all` and `hrms list` stay clean.
/// The service tests (and operators rehearsing failure handling) use it to
/// prove that a panicking cell degrades to a structured error record
/// without terminating the batch or the connection (`docs/SERVICE.md`).
struct ChaosScheduler;

impl ModuloScheduler for ChaosScheduler {
    fn name(&self) -> &str {
        "Chaos"
    }

    fn schedule_loop(&self, ddg: &Ddg, _machine: &Machine) -> Result<ScheduleOutcome, SchedError> {
        panic!("chaos scheduler always panics (loop `{}`)", ddg.name())
    }
}

/// Resolves a scheduler by its [`SCHEDULER_SLUGS`] slug (or the hidden
/// `chaos` fault-injection slug).
///
/// Every scheduler is built with its default configuration — the same
/// configuration the in-process harnesses use, so CLI and service results
/// are comparable with library results.
pub fn scheduler_by_slug(slug: &str) -> Option<BoxedScheduler> {
    Some(match slug {
        "hrms" => Box::new(HrmsScheduler::new()),
        "top-down" => Box::new(TopDownScheduler::new()),
        "bottom-up" => Box::new(BottomUpScheduler::new()),
        "slack" => Box::new(SlackScheduler::new()),
        "frlc" => Box::new(FrlcScheduler::new()),
        "iterative" => Box::new(IterativeScheduler::new()),
        "bnb" => Box::new(BranchAndBoundScheduler::new()),
        "chaos" => Box::new(ChaosScheduler),
        _ => return None,
    })
}

/// All schedulers in [`SCHEDULER_SLUGS`] order.
pub fn all_schedulers() -> Vec<BoxedScheduler> {
    SCHEDULER_SLUGS
        .iter()
        .map(|s| scheduler_by_slug(s).expect("every listed slug resolves"))
        .collect()
}

/// Resolves a `--machine` argument: first as a preset slug
/// ([`presets::by_name`]), then as a path to a `.machine` file.
///
/// This is the *CLI* resolution rule — it touches the filesystem. The
/// service protocol resolves machines with
/// [`crate::resolve_machine_request`] instead, which deliberately never
/// reads files on behalf of a remote client.
///
/// # Errors
///
/// Returns a human-readable message when the name is neither a preset nor
/// a readable, well-formed machine file.
pub fn resolve_machine(name: &str) -> Result<Machine, String> {
    if let Some(machine) = presets::by_name(name) {
        return Ok(machine);
    }
    match std::fs::read_to_string(name) {
        Ok(text) => hrms_machine::parse_machine(&text).map_err(|e| format!("{name}: {e}")),
        Err(io) => Err(format!(
            "`{name}` is neither a machine preset ({}) nor a readable file: {io}",
            presets::PRESET_NAMES.join(", ")
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_slug_resolves_to_a_distinct_scheduler() {
        let names: Vec<String> = all_schedulers().iter().map(|s| s.name().into()).collect();
        assert_eq!(names.len(), SCHEDULER_SLUGS.len());
        let expected = [
            "HRMS",
            "Top-Down",
            "Bottom-Up",
            "Slack",
            "FRLC",
            "Iterative",
            "B&B (SPILP stand-in)",
        ];
        assert_eq!(names, expected);
        assert!(scheduler_by_slug("HRMS").is_none(), "slugs are lowercase");
    }

    #[test]
    fn machine_presets_resolve_and_bad_names_explain_themselves() {
        assert_eq!(
            resolve_machine("govindarajan").unwrap().name(),
            "govindarajan-4fu"
        );
        let err = resolve_machine("no-such-machine").unwrap_err();
        assert!(
            err.contains("perfect-club"),
            "error lists the presets: {err}"
        );
    }

    #[test]
    fn chaos_resolves_but_stays_out_of_the_listing() {
        let chaos = scheduler_by_slug("chaos").expect("chaos slug resolves");
        assert_eq!(chaos.name(), "Chaos");
        assert!(!SCHEDULER_SLUGS.contains(&"chaos"));
    }

    #[test]
    fn chaos_panics_are_contained_by_the_engine() {
        let chaos = scheduler_by_slug("chaos").unwrap();
        let loops = [hrms_ddg::chain("victim", 3, hrms_ddg::OpKind::FpAdd, 1)];
        let results = hrms_engine::BatchEngine::with_workers(2).schedule_batch_contained(
            &*chaos,
            &loops,
            &presets::govindarajan(),
        );
        match &results[0] {
            Err(SchedError::Internal { what }) => {
                assert!(what.contains("chaos scheduler always panics"), "{what}");
                assert!(what.contains("`victim`"), "{what}");
                assert!(what.contains("registry.rs:"), "{what}");
            }
            other => panic!("expected contained panic, got {other:?}"),
        }
    }
}
