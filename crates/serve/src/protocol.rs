//! Request parsing and response-record rendering.
//!
//! One protocol message is one line of JSON in each direction; the full
//! schema — field tables, ordering and caching guarantees, the error
//! taxonomy — is documented in `docs/SERVICE.md`. This module owns the
//! exact bytes: requests are decoded from [`crate::json::Value`]s, and
//! responses are rendered by *splicing an envelope onto the existing
//! report records* from [`hrms_modsched::report_line`] /
//! [`hrms_modsched::error_line`], so a service result carries exactly the
//! same fields, bytes and digests as `hrms schedule --emit json` on the
//! same input — the envelope (`type`, `id`, `index`) is prepended, nothing
//! else changes.

use std::fmt::Write as _;

use hrms_engine::CacheStats;
use hrms_modsched::{push_json_str, FeedbackConfig, RegisterBudget};

use crate::json::{self, Value};

/// Whether `text` looks like Graphviz DOT rather than the `.loop` format:
/// the first line that is neither blank nor a `#` comment starts a DOT
/// construct.
pub fn looks_like_dot(text: &str) -> bool {
    for line in text.lines() {
        let t = line.trim_start();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        return t.starts_with("digraph")
            || t.starts_with("strict")
            || t.starts_with("//")
            || t.starts_with("/*");
    }
    false
}

/// Whether `text` looks like a `.machine` description: the first line that
/// is neither blank nor a `#` comment starts with the `machine` keyword.
pub fn looks_like_machine(text: &str) -> bool {
    for line in text.lines() {
        let t = line.trim_start();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        return t == "machine" || t.starts_with("machine ");
    }
    false
}

/// A decoded `schedule` request.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleRequest {
    /// Client-chosen id, echoed verbatim on every response record.
    pub id: Value,
    /// Scheduler slug (`crate::registry::scheduler_by_slug`).
    pub scheduler: String,
    /// Machine references — preset names and/or inline `.machine` text —
    /// from the singular `machine` field (one entry) or the `machines`
    /// array (one result record per loop × machine cell). Never empty.
    pub machines: Vec<String>,
    /// Loop entries: `.loop` text (possibly multi-loop) or DOT,
    /// auto-detected per entry.
    pub loops: Vec<String>,
    /// Whether this request may read from and populate the result cache.
    pub cache: bool,
    /// Include wall-clock timing fields; implies a cache bypass (cached
    /// records deliberately carry no timing).
    pub timing: bool,
    /// Feedback-guided rescheduling options (`"feedback":true` or
    /// `"feedback":{...}`): the named scheduler is wrapped in the
    /// iterative rescheduler under this configuration, and every result
    /// record embeds the per-iteration [`hrms_modsched::FeedbackTrace`].
    /// The configuration is part of the scheduler's display name, so cache
    /// keys distinguish feedback configurations.
    pub feedback: Option<FeedbackConfig>,
}

/// A decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Schedule a batch of loops.
    Schedule(ScheduleRequest),
    /// Report cache and service counters.
    Stats {
        /// Echoed id.
        id: Value,
    },
    /// Drain and exit.
    Shutdown {
        /// Echoed id.
        id: Value,
    },
}

/// A request that could not be decoded or validated; rendered as a
/// `stage:"request"` error record.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// The request id when it could be recovered, `null` otherwise.
    pub id: Value,
    /// What went wrong.
    pub message: String,
    /// Pre-rendered diagnostic JSON objects
    /// ([`hrms_verify::Diagnostic::render_json`]) locating the problem in
    /// the offending source text, when the span machinery applies.
    pub diagnostics: Vec<String>,
}

impl RequestError {
    /// An error with no source diagnostics.
    pub fn new(id: Value, message: impl Into<String>) -> Self {
        RequestError {
            id,
            message: message.into(),
            diagnostics: Vec::new(),
        }
    }
}

fn string_field(obj: &Value, id: &Value, key: &str, default: &str) -> Result<String, RequestError> {
    match obj.get(key) {
        None => Ok(default.to_string()),
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(_) => Err(RequestError::new(
            id.clone(),
            format!("`{key}` must be a string"),
        )),
    }
}

fn bool_field(obj: &Value, id: &Value, key: &str, default: bool) -> Result<bool, RequestError> {
    match obj.get(key) {
        None => Ok(default),
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(RequestError::new(
            id.clone(),
            format!("`{key}` must be a boolean"),
        )),
    }
}

/// Caps on the per-request feedback knobs: a remote client must not be
/// able to demand unbounded rescheduling work out of one request.
const MAX_FEEDBACK_ITERATIONS: usize = 32;
const MAX_FEEDBACK_SPILL_ROUNDS: usize = 64;

/// Parses a non-negative integer field value (the JSON layer keeps numbers
/// as raw tokens, so `7.5` and `-1` simply fail to parse as `u64`).
fn count_value(value: &Value) -> Option<u64> {
    match value {
        Value::Num(token) => token.parse().ok(),
        _ => None,
    }
}

/// Decodes the `feedback` field of a schedule request: absent or `false`
/// disables feedback, `true` enables it with defaults, an object overrides
/// `registers` (number, or `null` for no register budget), `iterations`
/// and `spill_rounds` individually.
fn feedback_field(obj: &Value, id: &Value) -> Result<Option<FeedbackConfig>, RequestError> {
    let value = match obj.get("feedback") {
        None => return Ok(None),
        Some(v) => v,
    };
    match value {
        Value::Bool(false) => Ok(None),
        Value::Bool(true) => Ok(Some(FeedbackConfig::default())),
        Value::Obj(_) => {
            let mut config = FeedbackConfig::default();
            match value.get("registers") {
                None => {}
                Some(Value::Null) => config.budget = None,
                Some(v) => match count_value(v) {
                    Some(registers) => config.budget = Some(RegisterBudget { registers }),
                    None => {
                        return Err(RequestError::new(
                            id.clone(),
                            "`feedback.registers` must be a non-negative integer or null",
                        ));
                    }
                },
            }
            if let Some(v) = value.get("iterations") {
                match count_value(v) {
                    Some(n) if n >= 1 && n <= MAX_FEEDBACK_ITERATIONS as u64 => {
                        config.max_iterations = n as usize;
                    }
                    _ => {
                        return Err(RequestError::new(
                            id.clone(),
                            format!(
                                "`feedback.iterations` must be an integer in 1..={MAX_FEEDBACK_ITERATIONS}"
                            ),
                        ));
                    }
                }
            }
            if let Some(v) = value.get("spill_rounds") {
                match count_value(v) {
                    Some(n) if n >= 1 && n <= MAX_FEEDBACK_SPILL_ROUNDS as u64 => {
                        config.max_spill_rounds = n as usize;
                    }
                    _ => {
                        return Err(RequestError::new(
                            id.clone(),
                            format!(
                                "`feedback.spill_rounds` must be an integer in 1..={MAX_FEEDBACK_SPILL_ROUNDS}"
                            ),
                        ));
                    }
                }
            }
            Ok(Some(config))
        }
        _ => Err(RequestError::new(
            id.clone(),
            "`feedback` must be a boolean or an object",
        )),
    }
}

/// Decodes one request line.
///
/// Unknown *fields* are ignored (forward compatibility); an unknown *`req`
/// verb*, a JSON syntax error or a wrongly-typed field is a
/// [`RequestError`].
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let value = json::parse(line)
        .map_err(|e| RequestError::new(Value::Null, format!("request is not valid JSON: {e}")))?;
    if !matches!(value, Value::Obj(_)) {
        return Err(RequestError::new(
            Value::Null,
            "request must be a JSON object",
        ));
    }
    let id = value.get("id").cloned().unwrap_or(Value::Null);
    let req = match value.get("req") {
        Some(Value::Str(s)) => s.clone(),
        Some(_) => {
            return Err(RequestError::new(id, "`req` must be a string"));
        }
        None => {
            return Err(RequestError::new(
                id,
                "missing `req` field (schedule, stats or shutdown)",
            ));
        }
    };
    match req.as_str() {
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "schedule" => {
            let scheduler = string_field(&value, &id, "scheduler", "hrms")?;
            let machines = match value.get("machines") {
                Some(Value::Arr(items)) => {
                    if value.get("machine").is_some() {
                        return Err(RequestError::new(
                            id,
                            "give either `machine` or `machines`, not both",
                        ));
                    }
                    if items.is_empty() {
                        return Err(RequestError::new(id, "`machines` must not be empty"));
                    }
                    let mut texts = Vec::with_capacity(items.len());
                    for (i, item) in items.iter().enumerate() {
                        match item {
                            Value::Str(s) => texts.push(s.clone()),
                            _ => {
                                return Err(RequestError::new(
                                    id,
                                    format!(
                                        "machines[{i}] must be a string (preset name or \
                                         `.machine` text)"
                                    ),
                                ));
                            }
                        }
                    }
                    texts
                }
                Some(_) => {
                    return Err(RequestError::new(
                        id,
                        "`machines` must be an array of strings",
                    ));
                }
                None => vec![string_field(&value, &id, "machine", "govindarajan")?],
            };
            let cache = bool_field(&value, &id, "cache", true)?;
            let timing = bool_field(&value, &id, "timing", false)?;
            let feedback = feedback_field(&value, &id)?;
            let loops = match value.get("loops") {
                Some(Value::Arr(items)) if !items.is_empty() => {
                    let mut texts = Vec::with_capacity(items.len());
                    for (i, item) in items.iter().enumerate() {
                        match item {
                            Value::Str(s) => texts.push(s.clone()),
                            _ => {
                                return Err(RequestError::new(
                                    id,
                                    format!("loops[{i}] must be a string of `.loop` or DOT text"),
                                ));
                            }
                        }
                    }
                    texts
                }
                Some(Value::Arr(_)) => {
                    return Err(RequestError::new(id, "`loops` must not be empty"));
                }
                Some(_) | None => {
                    return Err(RequestError::new(
                        id,
                        "missing `loops` field (array of `.loop` or DOT strings)",
                    ));
                }
            };
            Ok(Request::Schedule(ScheduleRequest {
                id,
                scheduler,
                machines,
                loops,
                cache,
                timing,
                feedback,
            }))
        }
        other => Err(RequestError::new(
            id,
            format!("unknown request `{other}` (schedule, stats or shutdown)"),
        )),
    }
}

/// `{"type":"result","id":...,"index":N,` + the report line's own fields.
pub fn result_record(id: &Value, index: usize, report_line: &str) -> String {
    debug_assert!(report_line.starts_with('{'));
    format!(
        "{{\"type\":\"result\",\"id\":{},\"index\":{index},{}",
        id.to_json(),
        &report_line[1..]
    )
}

/// `{"type":"error","id":...,"index":N,"stage":"schedule",` + the error
/// line's own fields.
pub fn cell_error_record(id: &Value, index: usize, error_line: &str) -> String {
    debug_assert!(error_line.starts_with('{'));
    format!(
        "{{\"type\":\"error\",\"id\":{},\"index\":{index},\"stage\":\"schedule\",{}",
        id.to_json(),
        &error_line[1..]
    )
}

/// A request-stage error record, with optional embedded diagnostics.
pub fn request_error_record(err: &RequestError) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(
        out,
        "{{\"type\":\"error\",\"id\":{},\"stage\":\"request\",\"error\":",
        err.id.to_json()
    );
    push_json_str(&mut out, &err.message);
    if !err.diagnostics.is_empty() {
        out.push_str(",\"diagnostics\":[");
        for (i, d) in err.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(d);
        }
        out.push(']');
    }
    out.push('}');
    out
}

/// The batch terminator record.
pub fn done_record(id: &Value, results: usize, errors: usize) -> String {
    format!(
        "{{\"type\":\"done\",\"id\":{},\"results\":{results},\"errors\":{errors}}}",
        id.to_json()
    )
}

/// The `stats` response record.
///
/// `cores` counts the distinct loop (core) fingerprints ever scheduled;
/// `core_machine_keys` counts the distinct (core fingerprint, machine
/// digest) pairs. Their ratio makes multi-machine batches observable: a
/// batch of one loop against four machines moves `cores` by one and
/// `core_machine_keys` by four.
pub fn stats_record(
    id: &Value,
    cache: CacheStats,
    cores: usize,
    core_machine_keys: usize,
    requests: u64,
    results: u64,
    errors: u64,
) -> String {
    format!(
        "{{\"type\":\"stats\",\"id\":{},\"hits\":{},\"misses\":{},\"evictions\":{},\
         \"entries\":{},\"capacity\":{},\"cores\":{cores},\
         \"core_machine_keys\":{core_machine_keys},\"requests\":{requests},\
         \"results\":{results},\"errors\":{errors}}}",
        id.to_json(),
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.entries,
        cache.capacity
    )
}

/// The shutdown acknowledgement record.
pub fn bye_record(id: &Value) -> String {
    format!("{{\"type\":\"bye\",\"id\":{}}}", id.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_requests_parse_with_defaults() {
        let r = parse_request(r#"{"req":"schedule","loops":["loop l\nnode a op latency=1\nend"]}"#)
            .unwrap();
        match r {
            Request::Schedule(s) => {
                assert_eq!(s.id, Value::Null);
                assert_eq!(s.scheduler, "hrms");
                assert_eq!(s.machines, vec!["govindarajan".to_string()]);
                assert!(s.cache);
                assert!(!s.timing);
                assert_eq!(s.loops.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn machines_arrays_parse_and_misuses_are_named() {
        let r = parse_request(
            r#"{"req":"schedule","machines":["govindarajan","perfect-club"],"loops":["x"]}"#,
        )
        .unwrap();
        match r {
            Request::Schedule(s) => {
                assert_eq!(
                    s.machines,
                    vec!["govindarajan".to_string(), "perfect-club".to_string()]
                );
            }
            other => panic!("{other:?}"),
        }
        let e = parse_request(r#"{"req":"schedule","machine":"a","machines":["b"],"loops":["x"]}"#)
            .unwrap_err();
        assert!(e.message.contains("not both"), "{}", e.message);
        let e = parse_request(r#"{"req":"schedule","machines":[],"loops":["x"]}"#).unwrap_err();
        assert!(e.message.contains("must not be empty"), "{}", e.message);
        let e = parse_request(r#"{"req":"schedule","machines":[7],"loops":["x"]}"#).unwrap_err();
        assert!(e.message.contains("machines[0]"), "{}", e.message);
        let e = parse_request(r#"{"req":"schedule","machines":"a","loops":["x"]}"#).unwrap_err();
        assert!(e.message.contains("array of strings"), "{}", e.message);
    }

    #[test]
    fn ids_are_preserved_verbatim() {
        let r = parse_request(r#"{"req":"stats","id":1e2}"#).unwrap();
        match r {
            Request::Stats { id } => assert_eq!(id.to_json(), "1e2"),
            other => panic!("{other:?}"),
        }
        let r = parse_request(r#"{"req":"shutdown","id":"x-1"}"#).unwrap();
        match r {
            Request::Shutdown { id } => assert_eq!(id.to_json(), "\"x-1\""),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        let e = parse_request("{").unwrap_err();
        assert!(e.message.contains("not valid JSON"), "{}", e.message);
        let e = parse_request("[1]").unwrap_err();
        assert!(e.message.contains("JSON object"), "{}", e.message);
        let e = parse_request(r#"{"id":"k"}"#).unwrap_err();
        assert_eq!(e.id.to_json(), "\"k\"", "id recovered before the error");
        assert!(e.message.contains("missing `req`"), "{}", e.message);
        let e = parse_request(r#"{"req":"frobnicate"}"#).unwrap_err();
        assert!(e.message.contains("unknown request"), "{}", e.message);
        let e = parse_request(r#"{"req":"schedule"}"#).unwrap_err();
        assert!(e.message.contains("missing `loops`"), "{}", e.message);
        let e = parse_request(r#"{"req":"schedule","loops":[]}"#).unwrap_err();
        assert!(e.message.contains("must not be empty"), "{}", e.message);
        let e = parse_request(r#"{"req":"schedule","loops":[7]}"#).unwrap_err();
        assert!(e.message.contains("loops[0]"), "{}", e.message);
        let e = parse_request(r#"{"req":"schedule","loops":["x"],"cache":"yes"}"#).unwrap_err();
        assert!(e.message.contains("`cache` must be"), "{}", e.message);
    }

    #[test]
    fn feedback_options_parse_with_defaults_and_overrides() {
        let r = parse_request(r#"{"req":"schedule","loops":["x"]}"#).unwrap();
        match r {
            Request::Schedule(s) => assert_eq!(s.feedback, None),
            other => panic!("{other:?}"),
        }
        let r = parse_request(r#"{"req":"schedule","loops":["x"],"feedback":true}"#).unwrap();
        match r {
            Request::Schedule(s) => assert_eq!(s.feedback, Some(FeedbackConfig::default())),
            other => panic!("{other:?}"),
        }
        let r = parse_request(r#"{"req":"schedule","loops":["x"],"feedback":false}"#).unwrap();
        match r {
            Request::Schedule(s) => assert_eq!(s.feedback, None),
            other => panic!("{other:?}"),
        }
        let r = parse_request(
            r#"{"req":"schedule","loops":["x"],
                "feedback":{"registers":16,"iterations":4,"spill_rounds":8}}"#,
        )
        .unwrap();
        match r {
            Request::Schedule(s) => {
                let config = s.feedback.unwrap();
                assert_eq!(config.budget, Some(RegisterBudget { registers: 16 }));
                assert_eq!(config.max_iterations, 4);
                assert_eq!(config.max_spill_rounds, 8);
            }
            other => panic!("{other:?}"),
        }
        let r = parse_request(r#"{"req":"schedule","loops":["x"],"feedback":{"registers":null}}"#)
            .unwrap();
        match r {
            Request::Schedule(s) => assert_eq!(s.feedback.unwrap().budget, None),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn feedback_misuses_are_named() {
        let e = parse_request(r#"{"req":"schedule","loops":["x"],"feedback":7}"#).unwrap_err();
        assert!(e.message.contains("`feedback` must be"), "{}", e.message);
        let e = parse_request(r#"{"req":"schedule","loops":["x"],"feedback":{"registers":-1}}"#)
            .unwrap_err();
        assert!(e.message.contains("`feedback.registers`"), "{}", e.message);
        let e = parse_request(r#"{"req":"schedule","loops":["x"],"feedback":{"iterations":0}}"#)
            .unwrap_err();
        assert!(e.message.contains("`feedback.iterations`"), "{}", e.message);
        let e =
            parse_request(r#"{"req":"schedule","loops":["x"],"feedback":{"spill_rounds":999}}"#)
                .unwrap_err();
        assert!(
            e.message.contains("`feedback.spill_rounds`"),
            "{}",
            e.message
        );
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let r = parse_request(r#"{"req":"stats","future":"field"}"#).unwrap();
        assert!(matches!(r, Request::Stats { .. }));
    }

    #[test]
    fn envelope_splicing_preserves_the_inner_fields() {
        let inner = "{\"loop\":\"l\",\"x\":1}";
        let rec = result_record(&Value::Str("r1".into()), 3, inner);
        assert_eq!(
            rec,
            "{\"type\":\"result\",\"id\":\"r1\",\"index\":3,\"loop\":\"l\",\"x\":1}"
        );
        assert!(rec.ends_with(&inner[1..]), "inner record embedded verbatim");
        let rec = cell_error_record(&Value::Null, 0, "{\"loop\":\"l\",\"error\":\"e\"}");
        assert_eq!(
            rec,
            "{\"type\":\"error\",\"id\":null,\"index\":0,\"stage\":\"schedule\",\
             \"loop\":\"l\",\"error\":\"e\"}"
        );
    }

    #[test]
    fn detectors_classify_the_three_formats() {
        assert!(looks_like_dot("# comment\ndigraph g {}"));
        assert!(looks_like_dot("strict digraph g {}"));
        assert!(!looks_like_dot("loop l\nend"));
        assert!(looks_like_machine("\nmachine m\nend"));
        assert!(!looks_like_machine("loop l\nend"));
        assert!(!looks_like_machine("machinery"));
    }
}
