//! Error type shared by all schedulers.

use std::error::Error;
use std::fmt;

/// Errors produced by MII computation and by the schedulers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedError {
    /// The loop body contains a dependence cycle whose total distance is
    /// zero: the single-iteration body itself is cyclic, which no schedule
    /// can satisfy.
    ZeroDistanceCycle,
    /// No valid schedule was found for any initiation interval up to
    /// `max_ii_tried`.
    NoValidSchedule {
        /// The largest II attempted before giving up.
        max_ii_tried: u32,
    },
    /// A scheduler-specific budget (backtracking steps, branch-and-bound
    /// nodes, wall-clock time) was exhausted before a schedule was found.
    BudgetExhausted {
        /// Description of the exhausted budget.
        what: String,
    },
    /// The graph propagated an error from the `hrms-ddg` crate (e.g. an
    /// empty loop body).
    Graph(hrms_ddg::DdgError),
    /// A scheduler panicked and the panic was contained at an isolation
    /// boundary (the batch engine catches per-cell panics so one broken
    /// scheduler/loop pair cannot take down a whole evaluation run).
    Internal {
        /// The panic payload, when it was a string.
        what: String,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::ZeroDistanceCycle => {
                write!(f, "loop body contains a zero-distance dependence cycle")
            }
            SchedError::NoValidSchedule { max_ii_tried } => {
                write!(f, "no valid schedule found for any II up to {max_ii_tried}")
            }
            SchedError::BudgetExhausted { what } => {
                write!(f, "scheduling budget exhausted: {what}")
            }
            SchedError::Graph(e) => write!(f, "invalid dependence graph: {e}"),
            SchedError::Internal { what } => {
                write!(f, "internal scheduler failure: {what}")
            }
        }
    }
}

impl Error for SchedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchedError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hrms_ddg::DdgError> for SchedError {
    fn from(e: hrms_ddg::DdgError) -> Self {
        SchedError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SchedError::NoValidSchedule { max_ii_tried: 64 };
        assert!(e.to_string().contains("64"));
        let e = SchedError::BudgetExhausted {
            what: "10000 branch-and-bound nodes".into(),
        };
        assert!(e.to_string().contains("branch-and-bound"));
    }

    #[test]
    fn graph_errors_are_wrapped_with_source() {
        let inner = hrms_ddg::DdgError::EmptyGraph;
        let e = SchedError::from(inner.clone());
        assert_eq!(e, SchedError::Graph(inner));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn is_send_sync_error() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<SchedError>();
    }
}
