//! Modulo-scheduling substrate shared by HRMS and every baseline scheduler.
//!
//! Software pipelining overlaps consecutive loop iterations: a new iteration
//! is initiated every *II* cycles (the *initiation interval*). A modulo
//! schedule assigns each operation `u` a start cycle `t(u)` such that
//!
//! * every dependence `(u, v)` with distance `δ` satisfies
//!   `t(v) ≥ t(u) + λ(u) − δ·II`, and
//! * no functional unit is oversubscribed in any *modulo slot*
//!   (`t(u) mod II`), because the same slot is reused by every iteration.
//!
//! This crate provides the machinery every scheduler needs:
//!
//! * the lower bound on the II ([`mii`]): `MII = max(ResMII, RecMII)`,
//! * the modulo reservation table ([`mrt`]),
//! * partial schedules with the `Early_Start` / `Late_Start` computations of
//!   the paper ([`partial`]),
//! * finished schedules, kernels and stage counts ([`schedule`], [`kernel`]),
//! * loop-variant lifetimes, `MaxLive` and buffer requirements
//!   ([`lifetime`]),
//! * an independent schedule validator used by the test-suite
//!   ([`validate`]),
//! * feedback-guided iterative rescheduling around any scheduler
//!   ([`feedback`]),
//! * the [`ModuloScheduler`] trait implemented by HRMS and all baselines
//!   ([`scheduler`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod feedback;
pub mod kernel;
pub mod lifetime;
pub mod mii;
pub mod mrt;
pub mod partial;
pub mod report;
pub mod schedule;
pub mod scheduler;
pub mod validate;

pub use error::SchedError;
pub use feedback::{
    FeedbackConfig, FeedbackIteration, FeedbackTrace, IterativeRescheduler, Perturbation,
    RegisterBudget, SpillEvaluator, SpillSignals, StartHint,
};
pub use kernel::Kernel;
pub use lifetime::{LifetimeAnalysis, ValueLifetime};
pub use mii::{dependence_latency, MiiInfo};
pub use mrt::ModuloReservationTable;
pub use partial::PartialSchedule;
pub use report::{error_line, push_json_str, report_line, ReportOptions};
pub use schedule::Schedule;
pub use scheduler::{ModuloScheduler, ScheduleMetrics, ScheduleOutcome, SchedulerConfig};
pub use validate::{validate_schedule, ValidationError};
