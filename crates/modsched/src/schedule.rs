//! Finished modulo schedules.

use std::fmt;

use hrms_ddg::{Ddg, NodeId};

use crate::kernel::Kernel;

/// An immutable modulo schedule: one start cycle per operation plus the
/// initiation interval it was built for.
///
/// Cycles are normalised so that the earliest operation starts at cycle 0
/// (schedulers may internally produce negative cycles when placing
/// operations "as late as possible" before their successors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    ii: u32,
    cycles: Vec<i64>,
}

impl Schedule {
    /// Builds a schedule from per-node cycles (indexed by node id), shifting
    /// them so the minimum cycle is 0.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is empty or `ii` is 0.
    pub fn new(ii: u32, cycles: Vec<i64>) -> Self {
        assert!(ii > 0, "the initiation interval must be at least 1");
        assert!(
            !cycles.is_empty(),
            "a schedule needs at least one operation"
        );
        let min = *cycles.iter().min().expect("non-empty");
        let cycles = cycles.into_iter().map(|c| c - min).collect();
        Schedule { ii, cycles }
    }

    /// The initiation interval.
    #[inline]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Number of scheduled operations.
    #[inline]
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Whether the schedule is empty (never true for schedules produced by
    /// the constructors).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// The start cycle of `node` within one iteration's flat schedule.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn cycle(&self, node: NodeId) -> i64 {
        self.cycles[node.index()]
    }

    /// The kernel row (`cycle mod II`) of `node`.
    #[inline]
    pub fn row(&self, node: NodeId) -> u32 {
        (self.cycle(node).rem_euclid(i64::from(self.ii))) as u32
    }

    /// The pipeline stage (`cycle div II`) of `node`.
    #[inline]
    pub fn stage(&self, node: NodeId) -> u32 {
        (self.cycle(node).div_euclid(i64::from(self.ii))) as u32
    }

    /// Length in cycles of one iteration's flat schedule: last start cycle
    /// plus one (the paper draws this as the per-iteration schedule of
    /// Figures 2a/3a/4a).
    pub fn span(&self) -> i64 {
        self.cycles.iter().copied().max().unwrap_or(0) + 1
    }

    /// The *stage count* (`SC`): the number of II-cycle stages one iteration
    /// spans, i.e. the number of iterations in flight in steady state.
    pub fn stage_count(&self) -> u32 {
        let max = self.cycles.iter().copied().max().unwrap_or(0);
        (max.div_euclid(i64::from(self.ii)) + 1) as u32
    }

    /// Iterates over `(node, cycle)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, i64)> + '_ {
        self.cycles
            .iter()
            .enumerate()
            .map(|(i, &c)| (NodeId::from_index(i), c))
    }

    /// Builds the steady-state kernel of this schedule.
    pub fn kernel(&self) -> Kernel {
        Kernel::from_schedule(self)
    }

    /// Total number of cycles needed to execute `iterations` iterations of
    /// the loop with this schedule: the pipeline fills for
    /// `(SC − 1)·II` cycles and then completes one iteration every II cycles.
    ///
    /// The paper's dynamic figures use the simpler `II × iterations` estimate
    /// (the fill/drain overhead is negligible for the profiled loops); that
    /// estimate is available as [`Schedule::estimated_cycles`].
    pub fn total_cycles(&self, iterations: u64) -> u64 {
        if iterations == 0 {
            return 0;
        }
        u64::from(self.stage_count() - 1) * u64::from(self.ii) + iterations * u64::from(self.ii)
    }

    /// The paper's execution-time estimate: `II × iterations`.
    pub fn estimated_cycles(&self, iterations: u64) -> u64 {
        u64::from(self.ii) * iterations
    }

    /// Renders the flat one-iteration schedule as a table of cycles and
    /// operation names (similar to Figures 2a, 3a and 4a of the paper).
    pub fn render(&self, ddg: &Ddg) -> String {
        let mut out = String::new();
        out.push_str(&format!("II = {}\n", self.ii));
        for cycle in 0..self.span() {
            let ops: Vec<&str> = self
                .iter()
                .filter(|&(_, c)| c == cycle)
                .map(|(n, _)| ddg.node(n).name())
                .collect();
            out.push_str(&format!("{cycle:>4} | {}\n", ops.join(" ")));
        }
        out
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule(II={}, {} ops)", self.ii, self.cycles.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, OpKind};

    #[test]
    fn cycles_are_normalised_to_start_at_zero() {
        let s = Schedule::new(2, vec![-3, 1, 5]);
        assert_eq!(s.cycle(NodeId(0)), 0);
        assert_eq!(s.cycle(NodeId(1)), 4);
        assert_eq!(s.cycle(NodeId(2)), 8);
    }

    #[test]
    fn rows_and_stages() {
        let s = Schedule::new(3, vec![0, 4, 8]);
        assert_eq!(s.row(NodeId(0)), 0);
        assert_eq!(s.row(NodeId(1)), 1);
        assert_eq!(s.row(NodeId(2)), 2);
        assert_eq!(s.stage(NodeId(0)), 0);
        assert_eq!(s.stage(NodeId(1)), 1);
        assert_eq!(s.stage(NodeId(2)), 2);
        assert_eq!(s.stage_count(), 3);
        assert_eq!(s.span(), 9);
    }

    #[test]
    fn stage_count_of_single_stage_schedule_is_one() {
        let s = Schedule::new(4, vec![0, 1, 3]);
        assert_eq!(s.stage_count(), 1);
    }

    #[test]
    fn total_cycles_accounts_for_pipeline_fill() {
        let s = Schedule::new(2, vec![0, 2, 4]); // 3 stages
        assert_eq!(s.total_cycles(0), 0);
        // fill = (3-1)*2 = 4, then 10 iterations * 2 cycles
        assert_eq!(s.total_cycles(10), 24);
        assert_eq!(s.estimated_cycles(10), 20);
    }

    #[test]
    fn render_lists_operations_by_cycle() {
        let mut b = DdgBuilder::new("r");
        b.node("alpha", OpKind::FpAdd, 1);
        b.node("beta", OpKind::FpMul, 2);
        let g = b.build().unwrap();
        let s = Schedule::new(2, vec![0, 1]);
        let text = s.render(&g);
        assert!(text.contains("alpha"));
        assert!(text.contains("beta"));
        assert!(text.contains("II = 2"));
    }

    #[test]
    #[should_panic(expected = "at least one operation")]
    fn empty_schedule_panics() {
        let _ = Schedule::new(1, vec![]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_ii_panics() {
        let _ = Schedule::new(0, vec![0]);
    }

    #[test]
    fn display_is_compact() {
        let s = Schedule::new(2, vec![0, 1]);
        assert_eq!(s.to_string(), "schedule(II=2, 2 ops)");
    }
}
