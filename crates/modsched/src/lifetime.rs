//! Loop-variant lifetimes, `MaxLive` and buffer requirements.
//!
//! Register pressure is the quantity HRMS optimises, so the evaluation
//! (Tables 1–2, Figures 11–14 of the paper) is driven by the metrics in this
//! module:
//!
//! * the *lifetime* of a loop variant starts when its producer issues and
//!   ends when its **last** consumer issues (paper, Section 2.1),
//! * `MaxLive` is the maximum number of simultaneously-live values over the
//!   kernel's rows, counting the overlapping instances from several
//!   in-flight iterations — a tight lower bound on the registers needed,
//! * the *buffer* count (the metric of Govindarajan et al. used by Table 1)
//!   charges each value one buffer per issue of its producer before the last
//!   consumer's issue, plus one buffer per store.

use hrms_ddg::{Ddg, NodeId, OpKind};

use crate::schedule::Schedule;

/// The lifetime of one loop-variant value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueLifetime {
    /// The operation that defines the value.
    pub producer: NodeId,
    /// Issue cycle of the producer.
    pub start: i64,
    /// Issue cycle of the last consumer (taking dependence distances into
    /// account: a consumer at distance δ reads the value δ iterations — i.e.
    /// `δ·II` cycles — later).
    pub end: i64,
}

impl ValueLifetime {
    /// Length of the lifetime in cycles.
    pub fn length(&self) -> i64 {
        self.end - self.start
    }

    /// Number of buffers this value needs at initiation interval `ii`:
    /// the number of times the producer issues before the last consumer's
    /// issue, i.e. `ceil(length / II)` (and at least 1 for any consumed
    /// value).
    pub fn buffers(&self, ii: u32) -> u64 {
        let len = self.length();
        if len <= 0 {
            1
        } else {
            (len as u64).div_ceil(u64::from(ii))
        }
    }

    /// Number of live instances of this value at kernel row `row`
    /// (0 ≤ row < II): the number of iterations whose instance of the value
    /// is alive at that row in steady state.
    pub fn live_instances_at(&self, ii: u32, row: u32) -> u64 {
        let len = self.length();
        if len <= 0 {
            return 0;
        }
        // Count integers k such that start <= row + k*II < end.
        let ii = i64::from(ii);
        let row = i64::from(row);
        // smallest k with row + k*II >= start  ->  k_min = ceil((start - row)/II)
        let k_min =
            (self.start - row).div_euclid(ii) + i64::from((self.start - row).rem_euclid(ii) != 0);
        // largest k with row + k*II < end      ->  k_max = ceil((end - row)/II) - 1
        let k_max =
            (self.end - row).div_euclid(ii) + i64::from((self.end - row).rem_euclid(ii) != 0) - 1;
        (k_max - k_min + 1).max(0) as u64
    }
}

/// Lifetime analysis of one schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifetimeAnalysis {
    ii: u32,
    lifetimes: Vec<ValueLifetime>,
    live_per_row: Vec<u64>,
    num_stores: u64,
    invariants: u32,
}

impl LifetimeAnalysis {
    /// Analyses the lifetimes of every loop variant of `ddg` under
    /// `schedule`.
    ///
    /// Values that are produced but never consumed through a register flow
    /// edge have an empty lifetime and contribute nothing to `MaxLive`
    /// (they still count one buffer if their producer is a store — but
    /// stores never define values, so in practice they contribute nothing).
    pub fn analyze(ddg: &Ddg, schedule: &Schedule) -> Self {
        let ii = schedule.ii();
        let mut lifetimes = Vec::new();
        for (id, node) in ddg.nodes() {
            if !node.defines_value() {
                continue;
            }
            let start = schedule.cycle(id);
            let mut end = start;
            let mut has_consumer = false;
            for (consumer, distance) in ddg.consumers(id) {
                has_consumer = true;
                let consumer_issue = schedule.cycle(consumer) + i64::from(distance) * i64::from(ii);
                end = end.max(consumer_issue);
            }
            if has_consumer {
                lifetimes.push(ValueLifetime {
                    producer: id,
                    start,
                    end,
                });
            }
        }
        let live_per_row: Vec<u64> = (0..ii)
            .map(|row| lifetimes.iter().map(|l| l.live_instances_at(ii, row)).sum())
            .collect();
        let num_stores = ddg
            .nodes()
            .filter(|(_, n)| n.kind() == OpKind::Store)
            .count() as u64;
        LifetimeAnalysis {
            ii,
            lifetimes,
            live_per_row,
            num_stores,
            invariants: ddg.num_invariants(),
        }
    }

    /// The initiation interval of the analysed schedule.
    #[inline]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// The individual value lifetimes.
    pub fn lifetimes(&self) -> &[ValueLifetime] {
        &self.lifetimes
    }

    /// Number of loop-variant values live at kernel row `row`.
    pub fn live_at_row(&self, row: u32) -> u64 {
        self.live_per_row[row as usize]
    }

    /// `MaxLive`: the maximum over kernel rows of the number of live
    /// loop-variant values — the lower bound on the register requirement
    /// used throughout Section 4.2 of the paper.
    pub fn max_live(&self) -> u64 {
        self.live_per_row.iter().copied().max().unwrap_or(0)
    }

    /// `MaxLive` plus one register per loop invariant (the combined figure
    /// of Figures 13–14).
    pub fn max_live_with_invariants(&self) -> u64 {
        self.max_live() + u64::from(self.invariants)
    }

    /// The buffer requirement of the schedule (Govindarajan et al.): one
    /// buffer per producer issue before the last consumer's issue, plus one
    /// buffer per store.
    pub fn buffers(&self) -> u64 {
        self.lifetimes
            .iter()
            .map(|l| l.buffers(self.ii))
            .sum::<u64>()
            + self.num_stores
    }

    /// Sum of all lifetime lengths (a secondary quality metric: HRMS's goal
    /// is to shorten exactly this).
    pub fn total_lifetime(&self) -> i64 {
        self.lifetimes.iter().map(ValueLifetime::length).sum()
    }

    /// Average lifetime length per value.
    pub fn mean_lifetime(&self) -> f64 {
        if self.lifetimes.is_empty() {
            0.0
        } else {
            self.total_lifetime() as f64 / self.lifetimes.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, DepKind};

    /// load(λ2)@0 -> add(λ1)@2 -> store@3 ; value of load lives [0,2),
    /// value of add lives [2,3).
    fn simple() -> (Ddg, Schedule) {
        let mut b = DdgBuilder::new("s");
        let ld = b.node("ld", OpKind::Load, 2);
        let add = b.node("add", OpKind::FpAdd, 1);
        let st = b.node("st", OpKind::Store, 1);
        b.edge(ld, add, DepKind::RegFlow, 0).unwrap();
        b.edge(add, st, DepKind::RegFlow, 0).unwrap();
        let g = b.build().unwrap();
        let s = Schedule::new(2, vec![0, 2, 3]);
        (g, s)
    }

    #[test]
    fn lifetimes_run_from_producer_to_last_consumer() {
        let (g, s) = simple();
        let lt = LifetimeAnalysis::analyze(&g, &s);
        assert_eq!(lt.lifetimes().len(), 2, "store defines no value");
        let ld = &lt.lifetimes()[0];
        assert_eq!((ld.start, ld.end), (0, 2));
        let add = &lt.lifetimes()[1];
        assert_eq!((add.start, add.end), (2, 3));
    }

    #[test]
    fn loop_carried_consumers_extend_lifetimes_by_distance_times_ii() {
        let mut b = DdgBuilder::new("carried");
        let prod = b.node("prod", OpKind::FpMul, 2);
        let cons = b.node("cons", OpKind::FpAdd, 1);
        b.edge(prod, cons, DepKind::RegFlow, 2).unwrap();
        let g = b.build().unwrap();
        let s = Schedule::new(3, vec![0, 1]);
        let lt = LifetimeAnalysis::analyze(&g, &s);
        // consumer issues at 1 + 2*3 = 7
        assert_eq!(lt.lifetimes()[0].end, 7);
        assert_eq!(lt.lifetimes()[0].length(), 7);
        // ceil(7/3) = 3 buffers
        assert_eq!(lt.lifetimes()[0].buffers(3), 3);
    }

    #[test]
    fn max_live_counts_overlapping_instances() {
        // One value alive for 4 cycles at II = 2: two instances overlap.
        let mut b = DdgBuilder::new("overlap");
        let prod = b.node("prod", OpKind::Load, 2);
        let cons = b.node("cons", OpKind::FpAdd, 1);
        b.edge(prod, cons, DepKind::RegFlow, 0).unwrap();
        let g = b.build().unwrap();
        let s = Schedule::new(2, vec![0, 4]);
        let lt = LifetimeAnalysis::analyze(&g, &s);
        assert_eq!(lt.lifetimes()[0].length(), 4);
        assert_eq!(lt.live_at_row(0), 2);
        assert_eq!(lt.live_at_row(1), 2);
        assert_eq!(lt.max_live(), 2);
        assert_eq!(lt.buffers(), 2);
    }

    #[test]
    fn live_instances_formula_matches_enumeration() {
        // Cross-check the closed-form instance count against brute force.
        for (start, end, ii) in [
            (0i64, 5i64, 2u32),
            (1, 7, 3),
            (3, 4, 4),
            (2, 2, 3),
            (0, 12, 4),
        ] {
            let l = ValueLifetime {
                producer: NodeId(0),
                start,
                end,
            };
            for row in 0..ii {
                let brute = (-100..100)
                    .filter(|k| {
                        let c = i64::from(row) + k * i64::from(ii);
                        c >= start && c < end
                    })
                    .count() as u64;
                assert_eq!(
                    l.live_instances_at(ii, row),
                    brute,
                    "start={start} end={end} ii={ii} row={row}"
                );
            }
        }
    }

    #[test]
    fn stores_add_one_buffer_each() {
        let (g, s) = simple();
        let lt = LifetimeAnalysis::analyze(&g, &s);
        // ld: length 2, ii 2 -> 1 buffer; add: length 1 -> 1 buffer; store -> 1.
        assert_eq!(lt.buffers(), 3);
    }

    #[test]
    fn unconsumed_values_do_not_contribute() {
        let mut b = DdgBuilder::new("dead");
        b.node("dead", OpKind::FpAdd, 1);
        let g = b.build().unwrap();
        let s = Schedule::new(1, vec![0]);
        let lt = LifetimeAnalysis::analyze(&g, &s);
        assert!(lt.lifetimes().is_empty());
        assert_eq!(lt.max_live(), 0);
        assert_eq!(lt.buffers(), 0);
    }

    #[test]
    fn invariants_add_to_the_combined_pressure() {
        let mut b = DdgBuilder::new("inv");
        let prod = b.node("prod", OpKind::Load, 2);
        let cons = b.node("cons", OpKind::FpAdd, 1);
        b.edge(prod, cons, DepKind::RegFlow, 0).unwrap();
        b.invariants(3);
        let g = b.build().unwrap();
        let s = Schedule::new(2, vec![0, 2]);
        let lt = LifetimeAnalysis::analyze(&g, &s);
        assert_eq!(lt.max_live(), 1);
        assert_eq!(lt.max_live_with_invariants(), 4);
    }

    #[test]
    fn mean_and_total_lifetime() {
        let (g, s) = simple();
        let lt = LifetimeAnalysis::analyze(&g, &s);
        assert_eq!(lt.total_lifetime(), 3);
        assert!((lt.mean_lifetime() - 1.5).abs() < 1e-9);
    }
}
