//! JSON-lines schedule reports.
//!
//! One schedule result serialises to one line of JSON (the *JSON-lines*
//! convention: concatenating results yields a valid stream, and line-oriented
//! tools — `grep`, `sort`, `jq -c` — compose over it). The writer is
//! hand-rolled because the workspace deliberately carries no serialisation
//! dependency; the exact field set and ordering are part of the on-disk
//! format contract documented in `docs/FORMATS.md`.
//!
//! Every line embeds the structural digests of its inputs
//! ([`hrms_ddg::ddg_fingerprint`], [`hrms_machine::machine_fingerprint`])
//! and the combined [`hrms_ddg::cache_key`], so a report is
//! content-addressable: two lines with equal `cache_key` values were
//! produced from byte-identical loop/machine/scheduler inputs and can be
//! deduplicated or diffed without re-running the scheduler.

use std::fmt::Write as _;

use hrms_ddg::{cache_key, ddg_fingerprint, format_digest, Ddg};
use hrms_machine::{machine_fingerprint, Machine};

use crate::scheduler::ScheduleOutcome;

/// Options controlling what a report line includes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReportOptions {
    /// Include wall-clock timing (`elapsed_us`, `ordering_us`). Off by
    /// default so that reports are deterministic and golden-diffable; the
    /// CLI turns it on with `--timing`.
    pub timing: bool,
}

/// Appends `s` as a JSON string literal (with escapes) to `out`.
///
/// Public because every hand-rolled JSON writer in the workspace (schedule
/// reports here, the service protocol in `hrms-serve`) must escape strings
/// identically for the records to stay byte-stable across layers.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialises one schedule result as a single JSON line (no trailing
/// newline).
///
/// `ddg` must be the graph that was scheduled (it supplies operation names
/// for the kernel table and the loop digest) and `scheduler` the
/// [`crate::ModuloScheduler::name`] of the scheduler that produced
/// `outcome`.
pub fn report_line(
    ddg: &Ddg,
    machine: &Machine,
    scheduler: &str,
    outcome: &ScheduleOutcome,
    options: ReportOptions,
) -> String {
    let loop_digest = ddg_fingerprint(ddg);
    let machine_digest = machine_fingerprint(machine);
    let key = cache_key(loop_digest, machine_digest, scheduler);
    let m = &outcome.metrics;

    let mut out = String::with_capacity(256);
    out.push_str("{\"loop\":");
    push_json_str(&mut out, ddg.name());
    out.push_str(",\"scheduler\":");
    push_json_str(&mut out, scheduler);
    out.push_str(",\"machine\":");
    push_json_str(&mut out, machine.name());
    let _ = write!(
        out,
        ",\"loop_digest\":\"{}\",\"machine_digest\":\"{}\",\"cache_key\":\"{}\"",
        format_digest(loop_digest),
        format_digest(machine_digest),
        format_digest(key)
    );
    let _ = write!(
        out,
        ",\"ii\":{},\"mii\":{},\"res_mii\":{},\"rec_mii\":{},\"ii_optimal\":{}",
        m.ii,
        m.mii,
        m.res_mii,
        m.rec_mii,
        m.ii_is_optimal()
    );
    let _ = write!(
        out,
        ",\"stage_count\":{},\"span\":{},\"max_live\":{},\"max_live_with_invariants\":{},\"buffers\":{},\"total_lifetime\":{},\"attempts\":{}",
        m.stage_count,
        m.span,
        m.max_live,
        m.max_live_with_invariants,
        m.buffers,
        m.total_lifetime,
        outcome.attempts
    );
    if outcome.recurrence_truncated {
        out.push_str(",\"recurrence_truncated\":true");
    }
    if let Some(trace) = &outcome.feedback {
        out.push_str(",\"feedback\":");
        out.push_str(&trace.to_json());
    }
    out.push_str(",\"kernel\":[");
    let kernel = outcome.schedule.kernel();
    for (r, row) in kernel.rows().enumerate() {
        if r > 0 {
            out.push(',');
        }
        out.push('[');
        for (i, &(node, stage)) in row.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"op\":");
            push_json_str(&mut out, ddg.node(node).name());
            let _ = write!(out, ",\"stage\":{stage}}}");
        }
        out.push(']');
    }
    out.push(']');
    if options.timing {
        let _ = write!(
            out,
            ",\"elapsed_us\":{},\"ordering_us\":{}",
            outcome.elapsed.as_micros(),
            outcome.ordering_time.as_micros()
        );
    }
    out.push('}');
    out
}

/// Serialises one *failed* schedule cell as a single JSON line (no
/// trailing newline): the identifying fields of [`report_line`] plus the
/// error text, so a stream mixing successes and failures stays
/// line-oriented and machine-splittable.
///
/// `machine` is the machine *name* rather than a [`Machine`]: some
/// failures (e.g. a panic captured at an isolation boundary) leave no
/// schedule to describe, and the caller may only have the name at hand.
pub fn error_line(loop_name: &str, scheduler: &str, machine: &str, error: &str) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"loop\":");
    push_json_str(&mut out, loop_name);
    out.push_str(",\"scheduler\":");
    push_json_str(&mut out, scheduler);
    out.push_str(",\"machine\":");
    push_json_str(&mut out, machine);
    out.push_str(",\"error\":");
    push_json_str(&mut out, error);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mii::MiiInfo;
    use crate::schedule::Schedule;
    use hrms_ddg::{DdgBuilder, DepKind, OpKind};
    use hrms_machine::presets;
    use std::time::Duration;

    fn sample() -> (Ddg, Machine, ScheduleOutcome) {
        let mut b = DdgBuilder::new("sample \"loop\"");
        let ld = b.node("ld", OpKind::Load, 2);
        let add = b.node("add", OpKind::FpAdd, 1);
        b.edge(ld, add, DepKind::RegFlow, 0).unwrap();
        let g = b.build().unwrap();
        let m = presets::govindarajan();
        let mii = MiiInfo::compute(&m, &hrms_ddg::LoopAnalysis::analyze(&g)).unwrap();
        let outcome = ScheduleOutcome::new(
            &g,
            Schedule::new(1, vec![0, 2]),
            mii,
            1,
            Duration::from_micros(120),
            Duration::from_micros(40),
        );
        (g, m, outcome)
    }

    #[test]
    fn line_contains_the_key_fields_in_order() {
        let (g, m, outcome) = sample();
        let line = report_line(&g, &m, "HRMS", &outcome, ReportOptions::default());
        assert!(line.starts_with("{\"loop\":\"sample \\\"loop\\\"\""));
        assert!(line.contains("\"scheduler\":\"HRMS\""));
        assert!(line.contains("\"machine\":\"govindarajan-4fu\""));
        assert!(line.contains("\"ii\":1,\"mii\":1"));
        assert!(line.contains("\"ii_optimal\":true"));
        assert!(line
            .contains("\"kernel\":[[{\"op\":\"ld\",\"stage\":0},{\"op\":\"add\",\"stage\":2}]]"));
        assert!(line.ends_with('}'));
        assert!(!line.contains('\n'), "one result = one line");
        assert!(!line.contains("elapsed_us"), "timing is opt-in");
    }

    #[test]
    fn timing_is_included_on_request() {
        let (g, m, outcome) = sample();
        let line = report_line(&g, &m, "HRMS", &outcome, ReportOptions { timing: true });
        assert!(line.contains("\"elapsed_us\":120"));
        assert!(line.contains("\"ordering_us\":40"));
    }

    #[test]
    fn digests_match_the_fingerprint_functions() {
        let (g, m, outcome) = sample();
        let line = report_line(&g, &m, "Slack", &outcome, ReportOptions::default());
        let lk = format_digest(ddg_fingerprint(&g));
        let mk = format_digest(machine_fingerprint(&m));
        let ck = format_digest(cache_key(
            ddg_fingerprint(&g),
            machine_fingerprint(&m),
            "Slack",
        ));
        assert!(line.contains(&format!("\"loop_digest\":\"{lk}\"")));
        assert!(line.contains(&format!("\"machine_digest\":\"{mk}\"")));
        assert!(line.contains(&format!("\"cache_key\":\"{ck}\"")));
    }

    #[test]
    fn control_characters_are_escaped() {
        let mut out = String::new();
        push_json_str(&mut out, "a\u{1}b\tc\\d");
        assert_eq!(out, "\"a\\u0001b\\tc\\\\d\"");
    }

    #[test]
    fn error_lines_are_single_escaped_json_objects() {
        let line = error_line(
            "weird \"loop\"",
            "HRMS",
            "govindarajan-4fu",
            "boom\nat line 2",
        );
        assert_eq!(
            line,
            "{\"loop\":\"weird \\\"loop\\\"\",\"scheduler\":\"HRMS\",\
             \"machine\":\"govindarajan-4fu\",\"error\":\"boom\\nat line 2\"}"
        );
        assert!(!line.contains('\n'), "one record = one line");
    }

    #[test]
    fn truncation_flag_is_surfaced() {
        let (g, m, outcome) = sample();
        let outcome = outcome.with_recurrence_truncated(true);
        let line = report_line(&g, &m, "HRMS", &outcome, ReportOptions::default());
        assert!(line.contains("\"recurrence_truncated\":true"));
    }
}
