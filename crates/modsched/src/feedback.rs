//! Feedback-guided iterative rescheduling.
//!
//! HRMS and the baselines schedule one-shot: the node order is fixed before
//! placement and never revisited, even when the result degrades — the
//! achieved II exceeds the MII, or the register requirement (`MaxLive`)
//! exceeds the target machine's register file and the loop would have to
//! spill. Subgraph-extraction feedback scheduling (Ye et al., applied to
//! HLS) closes that loop:
//!
//! 1. **Schedule** the loop with the wrapped scheduler and **evaluate** the
//!    result: achieved II vs MII, `MaxLive` vs a [`RegisterBudget`], and —
//!    when a [`SpillEvaluator`] is wired in — the number of values the
//!    register allocator would spill to make the loop fit.
//! 2. **Extract the critical subgraph** when the schedule degrades: the
//!    binding recurrence group (nodes at the maximum
//!    [`cycle ratio`](hrms_ddg::CycleRatios)) when the II is the problem,
//!    the producers and consumers of the longest (multi-II) lifetimes when
//!    pressure is, or the operations of the saturated resource class when
//!    neither applies.
//! 3. **Perturb** the pre-ordering priorities of the extracted nodes (a
//!    [`Perturbation`] — start-node hints for HRMS's hypernode reduction,
//!    priority boosts for the list-scheduling baselines) and reschedule.
//! 4. **Iterate to a bounded fixpoint**, keeping the lexicographically best
//!    `(spills, II, MaxLive)` attempt. Attempt 0 is always the unperturbed
//!    one-shot schedule, so the rescheduler never returns a worse result
//!    than the scheduler it wraps.
//!
//! The whole run is recorded in a machine-readable [`FeedbackTrace`]
//! (per-iteration II / MaxLive / spills / subgraph size) carried on the
//! returned [`ScheduleOutcome`] and embedded in JSON reports.
//!
//! This module deliberately does not depend on the register allocator (the
//! `hrms-regalloc` crate depends on *this* crate): the spill count is
//! obtained through the object-safe [`SpillEvaluator`] trait, implemented
//! over `schedule_with_register_budget` one layer up and injected by the
//! registry.

use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use hrms_ddg::{Ddg, LoopCore, NodeId};
use hrms_machine::Machine;

use crate::error::SchedError;
use crate::lifetime::LifetimeAnalysis;
use crate::report::push_json_str;
use crate::scheduler::{ModuloScheduler, ScheduleOutcome};

/// A register-file size the feedback loop evaluates schedules against
/// (variants plus invariants, the same convention as the spill pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterBudget {
    /// Number of architectural registers available to the loop.
    pub registers: u64,
}

impl RegisterBudget {
    /// The smaller register file of the paper's evaluated machines.
    pub const PAPER: RegisterBudget = RegisterBudget { registers: 32 };
}

/// Configuration of the [`IterativeRescheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedbackConfig {
    /// Register budget the schedule must fit; `None` disables the pressure
    /// and spill signals (the II-vs-MII signal still drives the loop).
    pub budget: Option<RegisterBudget>,
    /// Total scheduling attempts, including the unperturbed baseline (so
    /// `1` degenerates to one-shot scheduling). The fixpoint bound.
    pub max_iterations: usize,
    /// Spill/reschedule round cap handed to the [`SpillEvaluator`].
    pub max_spill_rounds: usize,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            budget: Some(RegisterBudget::PAPER),
            max_iterations: 6,
            max_spill_rounds: 16,
        }
    }
}

impl FeedbackConfig {
    /// A short stable tag encoding the configuration, e.g. `r32,i6,s16`
    /// (`r-` for no budget). Embedded in the rescheduler's
    /// [`ModuloScheduler::name`] so content-addressed cache keys — which
    /// hash the scheduler name — distinguish feedback configurations.
    pub fn tag(&self) -> String {
        let mut tag = String::new();
        match self.budget {
            Some(b) => {
                let _ = write!(tag, "r{}", b.registers);
            }
            None => tag.push_str("r-"),
        }
        let _ = write!(tag, ",i{},s{}", self.max_iterations, self.max_spill_rounds);
        tag
    }
}

/// Where a perturbed pre-ordering should start growing its hypernode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StartHint {
    /// Keep the scheduler's own default.
    #[default]
    Default,
    /// Start from the last node in program order.
    Last,
    /// Start from this node (falls back to the default when the node is
    /// not a valid start for a component).
    Node(NodeId),
}

/// One priority perturbation: how a rescheduling attempt should differ from
/// the scheduler's default ordering.
///
/// Schedulers consume whichever part applies to them: HRMS honours the
/// [`StartHint`] (its ordering is derived, not priority-sorted), the
/// directional baselines honour the per-node boosts. A scheduler that
/// understands neither ignores the perturbation entirely (the default
/// [`ModuloScheduler::schedule_loop_perturbed`]), which keeps
/// `feedback:<slug>` well-defined for every slug.
#[derive(Debug, Clone, Default)]
pub struct Perturbation {
    /// Stable human-readable label recorded in the [`FeedbackTrace`].
    pub label: String,
    /// Start-node hint for hypernode-reduction orderings.
    pub start: StartHint,
    /// Per-node priority boosts, indexed by [`NodeId::index`]; nodes past
    /// the end of the vector (or an empty vector) have boost 0. Larger
    /// boosts mean "order this node earlier".
    pub boost: Vec<u64>,
}

impl Perturbation {
    /// The identity perturbation (attempt 0 of every feedback run).
    pub fn baseline() -> Self {
        Perturbation {
            label: "baseline".to_string(),
            ..Perturbation::default()
        }
    }

    /// The boost of `node` (0 when none was assigned).
    pub fn boost_of(&self, node: NodeId) -> u64 {
        self.boost.get(node.index()).copied().unwrap_or(0)
    }

    /// Whether this perturbation changes anything at all.
    pub fn is_identity(&self) -> bool {
        self.start == StartHint::Default && self.boost.iter().all(|&b| b == 0)
    }
}

/// What a [`SpillEvaluator`] reports for one schedule attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillSignals {
    /// Number of values spilled to (try to) fit the budget.
    pub spills: u64,
    /// Whether the spilled loop fits the budget.
    pub fits: bool,
}

/// Object-safe hook the register allocator implements so the feedback loop
/// can count spills without this crate depending on `hrms-regalloc`.
pub trait SpillEvaluator: Sync + Send {
    /// Evaluates how many values `scheduler` would have to spill for `ddg`
    /// on `machine` to fit `registers` (variants plus invariants), spending
    /// at most `max_rounds` spill/reschedule rounds.
    ///
    /// # Errors
    ///
    /// Returns a [`SchedError`] when the spilled loop cannot be scheduled
    /// at all.
    fn evaluate(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        scheduler: &dyn ModuloScheduler,
        registers: u64,
        max_rounds: usize,
    ) -> Result<SpillSignals, SchedError>;
}

/// One scheduling attempt of a feedback run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedbackIteration {
    /// Attempt index (0 is the unperturbed baseline).
    pub attempt: usize,
    /// Label of the [`Perturbation`] used.
    pub perturbation: String,
    /// Achieved II.
    pub ii: u32,
    /// `MaxLive` plus invariants — the number compared against the budget.
    pub max_live: u64,
    /// Spill count under the budget (0 when the schedule fits, when no
    /// budget is set, or when no evaluator is wired in).
    pub spills: u64,
    /// Size of the critical subgraph extracted from the *previous* best
    /// schedule that seeded this attempt (0 for the baseline).
    pub subgraph: usize,
}

impl FeedbackIteration {
    /// The selection key: attempts are compared lexicographically by
    /// `(spills, II, MaxLive)` — fewer spills beats a lower II beats lower
    /// residual pressure.
    pub fn score(&self) -> (u64, u32, u64) {
        (self.spills, self.ii, self.max_live)
    }
}

/// Machine-readable record of one feedback run, carried on the returned
/// [`ScheduleOutcome`] and embedded in JSON reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedbackTrace {
    /// Every attempt, in execution order (index 0 is the baseline).
    pub iterations: Vec<FeedbackIteration>,
    /// Index into `iterations` of the attempt whose schedule was returned.
    pub selected: usize,
    /// `true` when the loop stopped *before* exhausting
    /// [`FeedbackConfig::max_iterations`] because the best schedule was no
    /// longer degraded; `false` when the budget or the candidate pool ran
    /// out first.
    pub converged: bool,
}

impl FeedbackTrace {
    /// The winning attempt.
    pub fn best(&self) -> &FeedbackIteration {
        &self.iterations[self.selected]
    }

    /// Serialises the trace as one JSON object (no trailing newline), the
    /// `"feedback"` value of a report line.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96 * self.iterations.len());
        let _ = write!(
            out,
            "{{\"selected\":{},\"converged\":{},\"iterations\":[",
            self.selected, self.converged
        );
        for (i, it) in self.iterations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"attempt\":{},\"perturbation\":", it.attempt);
            push_json_str(&mut out, &it.perturbation);
            let _ = write!(
                out,
                ",\"ii\":{},\"max_live\":{},\"spills\":{},\"subgraph\":{}}}",
                it.ii, it.max_live, it.spills, it.subgraph
            );
        }
        out.push_str("]}");
        out
    }
}

/// Adapter presenting one fixed perturbation of a scheduler as a plain
/// [`ModuloScheduler`], so the spill evaluator (which reschedules grown,
/// spilled graph variants) re-applies the same perturbation on every round.
struct PerturbedScheduler<'a> {
    inner: &'a dyn ModuloScheduler,
    perturbation: &'a Perturbation,
}

impl ModuloScheduler for PerturbedScheduler<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn schedule_loop(&self, ddg: &Ddg, machine: &Machine) -> Result<ScheduleOutcome, SchedError> {
        self.schedule_loop_with_core(ddg, machine, &Arc::new(LoopCore::new()))
    }

    fn schedule_loop_with_core(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        core: &Arc<LoopCore>,
    ) -> Result<ScheduleOutcome, SchedError> {
        self.inner
            .schedule_loop_perturbed(ddg, machine, core, self.perturbation)
    }
}

/// Feedback-guided iterative rescheduler: wraps any [`ModuloScheduler`]
/// and drives it to a bounded fixpoint (see the module docs).
///
/// The rescheduler is itself a [`ModuloScheduler`], so it slots into the
/// registry, the batch engine, the service and the CLI unchanged — and
/// engine containment applies to it like any other scheduler (a panicking
/// inner scheduler, e.g. `feedback:chaos`, degrades to a per-cell error).
pub struct IterativeRescheduler {
    inner: Box<dyn ModuloScheduler + Sync + Send>,
    config: FeedbackConfig,
    evaluator: Option<Box<dyn SpillEvaluator>>,
    name: String,
}

impl std::fmt::Debug for IterativeRescheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IterativeRescheduler")
            .field("name", &self.name)
            .field("config", &self.config)
            .field("evaluator", &self.evaluator.is_some())
            .finish()
    }
}

impl IterativeRescheduler {
    /// Wraps `inner` under `config`. The display name is
    /// `"<inner>+feedback[<tag>]"` — the configuration tag is part of the
    /// name so content-addressed cache keys include the feedback config.
    pub fn new(inner: Box<dyn ModuloScheduler + Sync + Send>, config: FeedbackConfig) -> Self {
        let name = format!("{}+feedback[{}]", inner.name(), config.tag());
        IterativeRescheduler {
            inner,
            config,
            evaluator: None,
            name,
        }
    }

    /// Wires in a spill evaluator (the registry injects the regalloc-backed
    /// one). Without an evaluator the spill signal degrades to the
    /// over-budget excess `MaxLive − budget`.
    #[must_use]
    pub fn with_evaluator(mut self, evaluator: Box<dyn SpillEvaluator>) -> Self {
        self.evaluator = Some(evaluator);
        self
    }

    /// The feedback configuration.
    pub fn config(&self) -> &FeedbackConfig {
        &self.config
    }

    /// Whether the best attempt so far still warrants another iteration.
    fn degraded(&self, it: &FeedbackIteration, mii: u32) -> bool {
        let over_budget = match self.config.budget {
            Some(b) => it.max_live > b.registers,
            None => false,
        };
        it.ii > mii || it.spills > 0 || over_budget
    }

    /// Runs one attempt: schedule under `perturbation`, then evaluate the
    /// pressure and spill signals.
    fn run_attempt(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        core: &Arc<LoopCore>,
        perturbation: &Perturbation,
        attempt: usize,
        subgraph: usize,
    ) -> Result<(ScheduleOutcome, FeedbackIteration), SchedError> {
        let outcome = self
            .inner
            .schedule_loop_perturbed(ddg, machine, core, perturbation)?;
        let max_live = outcome.metrics.max_live_with_invariants;
        let spills = match self.config.budget {
            Some(budget) if max_live > budget.registers => match &self.evaluator {
                Some(evaluator) => {
                    let adapter = PerturbedScheduler {
                        inner: self.inner.as_ref(),
                        perturbation,
                    };
                    match evaluator.evaluate(
                        ddg,
                        machine,
                        &adapter,
                        budget.registers,
                        self.config.max_spill_rounds,
                    ) {
                        Ok(signals) => signals.spills,
                        // A spilled variant that cannot be scheduled at all:
                        // fall back to the raw over-budget excess so the
                        // attempt stays comparable instead of aborting the
                        // whole feedback run.
                        Err(_) => max_live - budget.registers,
                    }
                }
                None => max_live - budget.registers,
            },
            _ => 0,
        };
        let iteration = FeedbackIteration {
            attempt,
            perturbation: perturbation.label.clone(),
            ii: outcome.metrics.ii,
            max_live,
            spills,
            subgraph,
        };
        Ok((outcome, iteration))
    }

    /// Extracts the critical subgraph from the current best schedule:
    /// the ranked list of nodes to perturb (most critical first) and the
    /// size of the full extracted node set.
    fn extract_subgraph(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        core: &Arc<LoopCore>,
        best: &ScheduleOutcome,
        best_it: &FeedbackIteration,
    ) -> (Vec<NodeId>, Vec<u64>, usize) {
        let over_budget = self
            .config
            .budget
            .is_some_and(|b| best_it.max_live > b.registers);
        if over_budget || best_it.spills > 0 {
            return pressure_subgraph(ddg, best);
        }
        // II degradation: the binding recurrence group, ranked by the exact
        // per-node cycle ratios; for recurrence-free loops the saturated
        // resource class is the binding region instead.
        let ratios = core.cycle_ratios(ddg).per_node();
        let max_ratio = ratios.iter().copied().max().unwrap_or(0);
        if max_ratio > 0 {
            let mut ranked: Vec<NodeId> = ddg
                .node_ids()
                .filter(|n| ratios[n.index()] == max_ratio)
                .collect();
            ranked.sort_by_key(|n| n.index());
            let boost: Vec<u64> = ratios.to_vec();
            let size = ranked.len();
            return (ranked, boost, size);
        }
        resource_subgraph(ddg, machine)
    }
}

/// The pressure-critical subgraph: producers of the longest lifetimes
/// (those spanning more than one II — the allocator's spill candidates),
/// plus their consumers. Ranked by decreasing lifetime length; boosts are
/// the lifetime lengths themselves.
fn pressure_subgraph(ddg: &Ddg, best: &ScheduleOutcome) -> (Vec<NodeId>, Vec<u64>, usize) {
    let lt = LifetimeAnalysis::analyze(ddg, &best.schedule);
    let ii = i64::from(best.schedule.ii());
    let mut long: Vec<(i64, NodeId)> = lt
        .lifetimes()
        .iter()
        .filter(|l| l.length() > ii)
        .map(|l| (l.length(), l.producer))
        .collect();
    if long.is_empty() {
        // Nothing spans multiple IIs; take the longest quarter instead so
        // the extraction always yields a candidate set.
        let mut all: Vec<(i64, NodeId)> = lt
            .lifetimes()
            .iter()
            .map(|l| (l.length(), l.producer))
            .collect();
        all.sort_by_key(|&(len, n)| (std::cmp::Reverse(len), n.index()));
        all.truncate(all.len().div_ceil(4));
        long = all;
    }
    long.sort_by_key(|&(len, n)| (std::cmp::Reverse(len), n.index()));
    let mut boost = vec![0u64; ddg.num_nodes()];
    let mut members: HashSet<NodeId> = HashSet::new();
    for &(len, producer) in &long {
        members.insert(producer);
        boost[producer.index()] = boost[producer.index()].max(len.max(0) as u64);
        for (consumer, _) in ddg.consumers(producer) {
            members.insert(consumer);
            boost[consumer.index()] = boost[consumer.index()].max(len.max(0) as u64);
        }
    }
    let ranked: Vec<NodeId> = long.into_iter().map(|(_, n)| n).collect();
    let size = members.len();
    (ranked, boost, size)
}

/// The resource-saturated subgraph: every operation mapped to the class
/// with the highest occupancy-weighted demand per unit (the MRT region
/// that binds ResMII), in program order.
fn resource_subgraph(ddg: &Ddg, machine: &Machine) -> (Vec<NodeId>, Vec<u64>, usize) {
    let mut demand = vec![0u64; machine.num_classes()];
    for (_, node) in ddg.nodes() {
        let class = machine.class_of(node.kind());
        demand[class.index()] += u64::from(machine.occupancy_of(node.kind()));
    }
    let saturated = (0..machine.num_classes())
        .max_by_key(|&i| {
            let units = u64::from(machine.classes()[i].count.max(1));
            (demand[i].div_ceil(units), std::cmp::Reverse(i))
        })
        .unwrap_or(0);
    let mut boost = vec![0u64; ddg.num_nodes()];
    let ranked: Vec<NodeId> = ddg
        .node_ids()
        .filter(|&n| machine.class_of(ddg.node(n).kind()).index() == saturated)
        .collect();
    for &n in &ranked {
        boost[n.index()] = 1;
    }
    let size = ranked.len();
    (ranked, boost, size)
}

/// Generates the next untried perturbation from the ranked critical nodes:
/// first the `hypernode:last` start hint, then fixed starts at the top
/// ranked nodes (each also carrying the boost vector for priority-sorted
/// schedulers).
fn next_candidate(
    ranked: &[NodeId],
    boost: &[u64],
    tried: &HashSet<String>,
) -> Option<Perturbation> {
    if !tried.contains("hypernode:last") {
        return Some(Perturbation {
            label: "hypernode:last".to_string(),
            start: StartHint::Last,
            boost: boost.to_vec(),
        });
    }
    for &node in ranked {
        let label = format!("critical:n{}", node.index());
        if !tried.contains(&label) {
            return Some(Perturbation {
                label,
                start: StartHint::Node(node),
                boost: boost.to_vec(),
            });
        }
    }
    None
}

impl ModuloScheduler for IterativeRescheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn schedule_loop(&self, ddg: &Ddg, machine: &Machine) -> Result<ScheduleOutcome, SchedError> {
        self.schedule_loop_with_core(ddg, machine, &Arc::new(LoopCore::new()))
    }

    fn schedule_loop_with_core(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        core: &Arc<LoopCore>,
    ) -> Result<ScheduleOutcome, SchedError> {
        let start = Instant::now();
        let max_iterations = self.config.max_iterations.max(1);

        let (baseline, baseline_it) =
            self.run_attempt(ddg, machine, core, &Perturbation::baseline(), 0, 0)?;
        let mii = baseline.mii.mii();
        let mut iterations = vec![baseline_it];
        let mut best = baseline;
        let mut best_idx = 0usize;
        let mut tried: HashSet<String> = HashSet::new();
        let mut converged = false;
        let mut attempts_used = 1usize;

        while attempts_used < max_iterations {
            if !self.degraded(&iterations[best_idx], mii) {
                converged = true;
                break;
            }
            let (ranked, boost, subgraph) =
                self.extract_subgraph(ddg, machine, core, &best, &iterations[best_idx]);
            let Some(perturbation) = next_candidate(&ranked, &boost, &tried) else {
                break;
            };
            tried.insert(perturbation.label.clone());
            let attempt = attempts_used;
            attempts_used += 1;
            // A perturbed attempt that fails outright (e.g. the fixed start
            // pushes the II search past its cap) is simply skipped: the
            // baseline already succeeded, so the run still returns a
            // schedule.
            let Ok((outcome, iteration)) =
                self.run_attempt(ddg, machine, core, &perturbation, attempt, subgraph)
            else {
                continue;
            };
            let improved = iteration.score() < iterations[best_idx].score();
            iterations.push(iteration);
            if improved {
                best = outcome;
                best_idx = iterations.len() - 1;
            }
        }
        if !converged && !self.degraded(&iterations[best_idx], mii) {
            converged = true;
        }

        let trace = FeedbackTrace {
            iterations,
            selected: best_idx,
            converged,
        };
        best.elapsed = start.elapsed();
        Ok(best.with_feedback(trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mii::MiiInfo;
    use crate::schedule::Schedule;
    use crate::validate::validate_schedule;
    use hrms_ddg::OpKind;
    use hrms_machine::presets;
    use std::time::Duration;

    /// A trivial one-shot scheduler for framework tests: places nodes in
    /// program order at consecutive cycles (valid only for chains).
    struct NaiveChain;

    impl ModuloScheduler for NaiveChain {
        fn name(&self) -> &str {
            "Naive"
        }

        fn schedule_loop(
            &self,
            ddg: &Ddg,
            machine: &Machine,
        ) -> Result<ScheduleOutcome, SchedError> {
            let la = hrms_ddg::LoopAnalysis::analyze(ddg);
            let mii = MiiInfo::compute(machine, &la)?;
            let mut cycle = 0i64;
            let mut cycles = Vec::with_capacity(ddg.num_nodes());
            for (_, node) in ddg.nodes() {
                cycles.push(cycle);
                cycle += i64::from(node.latency());
            }
            let schedule = Schedule::new(mii.mii().max(1), cycles);
            Ok(ScheduleOutcome::new(
                ddg,
                schedule,
                mii,
                1,
                Duration::ZERO,
                Duration::ZERO,
            ))
        }
    }

    fn chain() -> Ddg {
        hrms_ddg::chain("c", 4, OpKind::FpAdd, 1)
    }

    #[test]
    fn config_tag_is_stable_and_distinguishes_configs() {
        assert_eq!(FeedbackConfig::default().tag(), "r32,i6,s16");
        let no_budget = FeedbackConfig {
            budget: None,
            ..FeedbackConfig::default()
        };
        assert_eq!(no_budget.tag(), "r-,i6,s16");
        assert_ne!(FeedbackConfig::default().tag(), no_budget.tag());
    }

    #[test]
    fn name_embeds_the_config_tag() {
        let r = IterativeRescheduler::new(Box::new(NaiveChain), FeedbackConfig::default());
        assert_eq!(r.name(), "Naive+feedback[r32,i6,s16]");
    }

    #[test]
    fn baseline_attempt_is_always_recorded_and_never_beaten_by_worse() {
        let g = chain();
        let m = presets::govindarajan();
        let r = IterativeRescheduler::new(Box::new(NaiveChain), FeedbackConfig::default());
        let one_shot = NaiveChain.schedule_loop(&g, &m).unwrap();
        let outcome = r.schedule_loop(&g, &m).unwrap();
        let trace = outcome.feedback.as_ref().expect("trace attached");
        assert_eq!(trace.iterations[0].perturbation, "baseline");
        assert!(trace.best().score() <= trace.iterations[0].score());
        assert!(outcome.metrics.ii <= one_shot.metrics.ii);
        validate_schedule(&g, &m, &outcome.schedule).unwrap();
    }

    #[test]
    fn fixpoint_terminates_within_the_iteration_budget() {
        let g = chain();
        let m = presets::govindarajan();
        let config = FeedbackConfig {
            budget: Some(RegisterBudget { registers: 0 }), // unattainable
            max_iterations: 3,
            ..FeedbackConfig::default()
        };
        let r = IterativeRescheduler::new(Box::new(NaiveChain), config);
        let trace = r.schedule_loop(&g, &m).unwrap().feedback.unwrap();
        assert!(trace.iterations.len() <= 3);
        assert!(!trace.converged, "a zero-register budget can never be met");
    }

    #[test]
    fn converges_immediately_when_nothing_degrades() {
        let g = chain();
        let m = presets::govindarajan();
        let config = FeedbackConfig {
            budget: Some(RegisterBudget { registers: 64 }),
            ..FeedbackConfig::default()
        };
        let r = IterativeRescheduler::new(Box::new(NaiveChain), config);
        let trace = r.schedule_loop(&g, &m).unwrap().feedback.unwrap();
        // The naive chain schedule is at MII with tiny pressure: one
        // attempt, converged.
        assert_eq!(trace.iterations.len(), 1);
        assert!(trace.converged);
        assert_eq!(trace.selected, 0);
    }

    #[test]
    fn trace_json_is_schema_stable() {
        let trace = FeedbackTrace {
            iterations: vec![
                FeedbackIteration {
                    attempt: 0,
                    perturbation: "baseline".into(),
                    ii: 4,
                    max_live: 37,
                    spills: 3,
                    subgraph: 0,
                },
                FeedbackIteration {
                    attempt: 1,
                    perturbation: "critical:n7".into(),
                    ii: 4,
                    max_live: 33,
                    spills: 1,
                    subgraph: 9,
                },
            ],
            selected: 1,
            converged: false,
        };
        assert_eq!(
            trace.to_json(),
            "{\"selected\":1,\"converged\":false,\"iterations\":[\
             {\"attempt\":0,\"perturbation\":\"baseline\",\"ii\":4,\"max_live\":37,\
             \"spills\":3,\"subgraph\":0},\
             {\"attempt\":1,\"perturbation\":\"critical:n7\",\"ii\":4,\"max_live\":33,\
             \"spills\":1,\"subgraph\":9}]}"
        );
    }

    #[test]
    fn perturbation_boosts_default_to_zero() {
        let p = Perturbation::baseline();
        assert!(p.is_identity());
        assert_eq!(p.boost_of(NodeId(42)), 0);
        let boosted = Perturbation {
            label: "b".into(),
            start: StartHint::Default,
            boost: vec![0, 5],
        };
        assert!(!boosted.is_identity());
        assert_eq!(boosted.boost_of(NodeId(1)), 5);
        assert_eq!(boosted.boost_of(NodeId(9)), 0);
    }

    #[test]
    fn candidates_are_deduplicated_by_label() {
        let ranked = [NodeId(3), NodeId(1)];
        let boost = vec![0u64; 4];
        let mut tried = HashSet::new();
        let c1 = next_candidate(&ranked, &boost, &tried).unwrap();
        assert_eq!(c1.label, "hypernode:last");
        tried.insert(c1.label);
        let c2 = next_candidate(&ranked, &boost, &tried).unwrap();
        assert_eq!(c2.label, "critical:n3");
        tried.insert(c2.label);
        let c3 = next_candidate(&ranked, &boost, &tried).unwrap();
        assert_eq!(c3.label, "critical:n1");
        tried.insert(c3.label);
        assert!(next_candidate(&ranked, &boost, &tried).is_none());
    }
}
