//! Partial schedules: the mutable state a scheduler builds up node by node.

use std::sync::Arc;

use hrms_ddg::{Ddg, NodeId, PlacementCsr};
use hrms_machine::Machine;

use crate::mii::dependence_latency;
use crate::mrt::ModuloReservationTable;
use crate::schedule::Schedule;

/// Sentinel for "not placed" in the dense cycle array. Real cycles are sums
/// of latencies and `II` multiples and can never reach `i64::MIN`.
const UNPLACED: i64 = i64::MIN;

/// A partially-built modulo schedule: a set of placed operations together
/// with the modulo reservation table that tracks their resource usage.
///
/// Both HRMS and the baselines drive scheduling through this type, which
/// exposes the paper's `Early_Start` / `Late_Start` computations and the
/// modulo-constrained slot scans of Section 3.3.
///
/// # Dense placement path
///
/// Placed cycles live in a dense `Vec<i64>` indexed by node id (grown
/// lazily), so `cycle_of`/`is_scheduled` are array reads instead of hash
/// lookups. A partial schedule created with
/// [`PartialSchedule::with_placement`] additionally holds the loop's
/// [`PlacementCsr`] — per-node dependence arcs with precomputed
/// [`dependence_latency`] values — and computes `Early_Start`/`Late_Start`
/// by scanning those flat slices (`O(degree)` with no per-edge latency
/// dispatch). Without it, the same computations walk the [`Ddg`] edge lists
/// and resolve latencies on the fly; both paths produce identical results
/// (pinned by the workspace differential suite).
#[derive(Debug, Clone)]
pub struct PartialSchedule {
    ii: u32,
    /// Cycle per node index, [`UNPLACED`] when absent; grown on demand.
    cycles: Vec<i64>,
    /// Number of placed operations (kept incrementally).
    placed: usize,
    mrt: ModuloReservationTable,
    /// Dense dependence arcs of the loop being scheduled, if provided.
    /// Shared via [`Arc`]: cloning a partial schedule (the branch-and-bound
    /// search does this on every leaf) must not copy the arc arrays.
    arcs: Option<Arc<PlacementCsr>>,
}

impl PartialSchedule {
    /// Creates an empty partial schedule for the given II. Start-time
    /// bounds fall back to walking the [`Ddg`] passed to each call; prefer
    /// [`PartialSchedule::with_placement`] on hot paths.
    ///
    /// # Panics
    ///
    /// Panics if `ii` is 0.
    pub fn new(machine: &Machine, ii: u32) -> Self {
        PartialSchedule {
            ii,
            cycles: Vec::new(),
            placed: 0,
            mrt: ModuloReservationTable::new(machine, ii),
            arcs: None,
        }
    }

    /// Creates an empty partial schedule that computes `Early_Start` /
    /// `Late_Start` over the given dense placement arcs (typically
    /// `analysis.placement().clone()` from a
    /// [`hrms_ddg::LoopAnalysis`]).
    ///
    /// # Panics
    ///
    /// Panics if `ii` is 0.
    pub fn with_placement(machine: &Machine, ii: u32, arcs: Arc<PlacementCsr>) -> Self {
        let mut ps = PartialSchedule::new(machine, ii);
        ps.cycles = vec![UNPLACED; arcs.node_bound()];
        ps.arcs = Some(arcs);
        ps
    }

    /// The initiation interval being scheduled for.
    #[inline]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Number of operations already placed.
    #[inline]
    pub fn len(&self) -> usize {
        self.placed
    }

    /// Whether no operation has been placed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.placed == 0
    }

    /// The cycle at dense index `i`, if placed.
    #[inline]
    fn cycle_at(&self, i: usize) -> Option<i64> {
        match self.cycles.get(i) {
            Some(&c) if c != UNPLACED => Some(c),
            _ => None,
        }
    }

    /// Records `cycle` for `node`, growing the dense array as needed.
    #[inline]
    fn set_cycle(&mut self, node: NodeId, cycle: i64) {
        let i = node.index();
        if i >= self.cycles.len() {
            self.cycles.resize(i + 1, UNPLACED);
        }
        debug_assert_eq!(self.cycles[i], UNPLACED, "node {node} placed twice");
        self.cycles[i] = cycle;
        self.placed += 1;
    }

    /// The cycle assigned to `node`, if it has been placed.
    #[inline]
    pub fn cycle_of(&self, node: NodeId) -> Option<i64> {
        self.cycle_at(node.index())
    }

    /// Whether `node` has been placed.
    #[inline]
    pub fn is_scheduled(&self, node: NodeId) -> bool {
        self.cycle_at(node.index()).is_some()
    }

    /// Iterates over the placed operations and their cycles, in ascending
    /// node-id order.
    pub fn placements(&self) -> impl Iterator<Item = (NodeId, i64)> + '_ {
        self.cycles
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != UNPLACED)
            .map(|(i, &c)| (NodeId::from_index(i), c))
    }

    /// The *predecessors scheduled previously* of `u` — `PSP(u)` in the
    /// paper.
    pub fn scheduled_predecessors(&self, ddg: &Ddg, u: NodeId) -> Vec<NodeId> {
        ddg.predecessors(u)
            .into_iter()
            .filter(|p| *p != u && self.is_scheduled(*p))
            .collect()
    }

    /// The *successors scheduled previously* of `u` — `PSS(u)` in the paper.
    pub fn scheduled_successors(&self, ddg: &Ddg, u: NodeId) -> Vec<NodeId> {
        ddg.successors(u)
            .into_iter()
            .filter(|s| *s != u && self.is_scheduled(*s))
            .collect()
    }

    /// The paper's `Early_Start(u)`:
    /// `max over scheduled predecessors v of t(v) + λ(v) − δ(v,u)·II`.
    ///
    /// Returns `None` when no predecessor has been scheduled. `O(in-degree)`
    /// over the dense arc slice when the schedule was created with
    /// [`PartialSchedule::with_placement`]; otherwise walks `ddg.in_edges`.
    pub fn early_start(&self, ddg: &Ddg, u: NodeId) -> Option<i64> {
        let ii = i64::from(self.ii);
        let mut best: Option<i64> = None;
        if let Some(arcs) = &self.arcs {
            for a in arcs.in_arcs(u.index()) {
                let Some(tv) = self.cycle_at(a.other as usize) else {
                    continue;
                };
                let bound = tv + i64::from(a.latency) - i64::from(a.distance) * ii;
                best = Some(best.map_or(bound, |b: i64| b.max(bound)));
            }
        } else {
            for (_, e) in ddg.in_edges(u) {
                if e.source() == u {
                    continue; // self-dependences only bound II, not placement
                }
                let Some(tv) = self.cycle_of(e.source()) else {
                    continue;
                };
                let bound =
                    tv + i64::from(dependence_latency(ddg, e)) - i64::from(e.distance()) * ii;
                best = Some(best.map_or(bound, |b: i64| b.max(bound)));
            }
        }
        best
    }

    /// The paper's `Late_Start(u)`:
    /// `min over scheduled successors v of t(v) − λ(u) + δ(u,v)·II`.
    ///
    /// Returns `None` when no successor has been scheduled. `O(out-degree)`
    /// over the dense arc slice when the schedule was created with
    /// [`PartialSchedule::with_placement`]; otherwise walks `ddg.out_edges`.
    pub fn late_start(&self, ddg: &Ddg, u: NodeId) -> Option<i64> {
        let ii = i64::from(self.ii);
        let mut best: Option<i64> = None;
        if let Some(arcs) = &self.arcs {
            for a in arcs.out_arcs(u.index()) {
                let Some(tv) = self.cycle_at(a.other as usize) else {
                    continue;
                };
                let bound = tv - i64::from(a.latency) + i64::from(a.distance) * ii;
                best = Some(best.map_or(bound, |b: i64| b.min(bound)));
            }
        } else {
            for (_, e) in ddg.out_edges(u) {
                if e.target() == u {
                    continue;
                }
                let Some(tv) = self.cycle_of(e.target()) else {
                    continue;
                };
                let bound =
                    tv - i64::from(dependence_latency(ddg, e)) + i64::from(e.distance()) * ii;
                best = Some(best.map_or(bound, |b: i64| b.min(bound)));
            }
        }
        best
    }

    /// Scans forward from `from` (inclusive) over at most `span` cycles for
    /// the first cycle where `u` fits in the reservation table, and places it
    /// there. Returns the chosen cycle, or `None` if no slot was free.
    ///
    /// Scanning more than II cycles is pointless because of the modulo
    /// constraint; the schedulers pass `span = II` (or the distance to a
    /// deadline if smaller).
    pub fn place_forward(
        &mut self,
        ddg: &Ddg,
        machine: &Machine,
        u: NodeId,
        from: i64,
        span: u32,
    ) -> Option<i64> {
        let kind = ddg.node(u).kind();
        for k in 0..i64::from(span) {
            let cycle = from + k;
            if self.mrt.place(machine, u, kind, cycle) {
                self.set_cycle(u, cycle);
                return Some(cycle);
            }
        }
        None
    }

    /// Scans backward from `from` (inclusive) over at most `span` cycles for
    /// the first cycle where `u` fits, and places it there.
    pub fn place_backward(
        &mut self,
        ddg: &Ddg,
        machine: &Machine,
        u: NodeId,
        from: i64,
        span: u32,
    ) -> Option<i64> {
        let kind = ddg.node(u).kind();
        for k in 0..i64::from(span) {
            let cycle = from - k;
            if self.mrt.place(machine, u, kind, cycle) {
                self.set_cycle(u, cycle);
                return Some(cycle);
            }
        }
        None
    }

    /// Places `u` exactly at `cycle` if the reservation table allows it.
    pub fn place_at(&mut self, ddg: &Ddg, machine: &Machine, u: NodeId, cycle: i64) -> bool {
        let kind = ddg.node(u).kind();
        if self.mrt.place(machine, u, kind, cycle) {
            self.set_cycle(u, cycle);
            true
        } else {
            false
        }
    }

    /// Removes `u` from the partial schedule (used by backtracking
    /// schedulers such as Slack). Returns whether it was present.
    pub fn unplace(&mut self, u: NodeId) -> bool {
        let i = u.index();
        if self.cycle_at(i).is_some() {
            self.cycles[i] = UNPLACED;
            self.placed -= 1;
            self.mrt.remove(u);
            true
        } else {
            false
        }
    }

    /// Finalises the partial schedule into an immutable [`Schedule`].
    ///
    /// # Panics
    ///
    /// Panics if some node of `ddg` has not been placed; schedulers only
    /// call this once every node is scheduled.
    pub fn into_schedule(self, ddg: &Ddg) -> Schedule {
        let cycles: Vec<i64> = ddg
            .node_ids()
            .map(|n| {
                self.cycle_at(n.index())
                    .unwrap_or_else(|| panic!("node {n} was never scheduled"))
            })
            .collect();
        Schedule::new(self.ii, cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, DepKind, OpKind};
    use hrms_machine::presets;

    fn simple() -> (Ddg, Vec<NodeId>) {
        // a -> b (flow, dist 0), b -> c (flow, dist 1)
        let mut bld = DdgBuilder::new("p");
        let a = bld.node("a", OpKind::Load, 2);
        let b = bld.node("b", OpKind::FpMul, 2);
        let c = bld.node("c", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, c, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        (g, vec![a, b, c])
    }

    #[test]
    fn early_start_uses_latency_and_distance() {
        let (g, ids) = simple();
        let m = presets::govindarajan();
        let mut ps = PartialSchedule::new(&m, 2);
        assert!(ps.early_start(&g, ids[1]).is_none());
        ps.place_at(&g, &m, ids[0], 0);
        assert_eq!(ps.early_start(&g, ids[1]), Some(2), "t(a) + λ(a)");
        ps.place_at(&g, &m, ids[1], 2);
        // c depends on b with distance 1: early start = 2 + 2 - 1*2 = 2.
        assert_eq!(ps.early_start(&g, ids[2]), Some(2));
    }

    #[test]
    fn late_start_mirrors_early_start() {
        let (g, ids) = simple();
        let m = presets::govindarajan();
        let mut ps = PartialSchedule::new(&m, 2);
        ps.place_at(&g, &m, ids[2], 6);
        // b must finish before c (+ distance 1): late = 6 - 2 + 2 = 6.
        assert_eq!(ps.late_start(&g, ids[1]), Some(6));
        ps.place_at(&g, &m, ids[1], 4);
        assert_eq!(ps.late_start(&g, ids[0]), Some(2));
        assert!(ps.late_start(&g, ids[2]).is_none());
    }

    #[test]
    fn self_loops_do_not_constrain_placement() {
        let mut bld = DdgBuilder::new("self");
        let a = bld.node("a", OpKind::FpAdd, 1);
        bld.edge(a, a, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let m = presets::govindarajan();
        let mut ps = PartialSchedule::new(&m, 1);
        ps.place_at(&g, &m, a, 0);
        assert_eq!(ps.early_start(&g, a), None);
        assert_eq!(ps.late_start(&g, a), None);
    }

    #[test]
    fn forward_scan_skips_busy_slots() {
        let (g, ids) = simple();
        let m = presets::govindarajan();
        let mut ps = PartialSchedule::new(&m, 2);
        // Fill the load/store unit's slot 0 with node a.
        assert_eq!(ps.place_forward(&g, &m, ids[0], 0, 2), Some(0));
        // b is a multiply: unaffected, goes at its requested cycle.
        assert_eq!(ps.place_forward(&g, &m, ids[1], 2, 2), Some(2));
        assert_eq!(ps.len(), 2);
        assert!(ps.is_scheduled(ids[0]));
        assert!(!ps.is_scheduled(ids[2]));
    }

    #[test]
    fn forward_scan_fails_when_window_is_full() {
        let m = presets::govindarajan();
        let mut bld = DdgBuilder::new("loads");
        let l0 = bld.node("l0", OpKind::Load, 2);
        let l1 = bld.node("l1", OpKind::Load, 2);
        let l2 = bld.node("l2", OpKind::Load, 2);
        let g = bld.build().unwrap();
        let mut ps = PartialSchedule::new(&m, 2);
        assert!(ps.place_forward(&g, &m, l0, 0, 2).is_some());
        assert!(ps.place_forward(&g, &m, l1, 0, 2).is_some());
        assert!(
            ps.place_forward(&g, &m, l2, 0, 2).is_none(),
            "both modulo slots of the single load/store unit are taken"
        );
    }

    #[test]
    fn backward_scan_places_as_late_as_possible() {
        let m = presets::govindarajan();
        let mut bld = DdgBuilder::new("l");
        let first = bld.node("first", OpKind::Load, 2);
        let extra = bld.node("extra", OpKind::Load, 2);
        let g = bld.build().unwrap();
        let mut ps = PartialSchedule::new(&m, 2);
        assert_eq!(ps.place_backward(&g, &m, first, 5, 2), Some(5));
        // Second load: slot 5 mod 2 = 1 is taken, so it lands on 4.
        assert_eq!(ps.place_backward(&g, &m, extra, 5, 2), Some(4));
    }

    #[test]
    fn unplace_restores_resources() {
        let (g, ids) = simple();
        let m = presets::govindarajan();
        let mut ps = PartialSchedule::new(&m, 1);
        assert!(ps.place_at(&g, &m, ids[0], 0));
        assert!(!ps.place_at(&g, &m, ids[0], 1), "already placed");
        assert!(ps.unplace(ids[0]));
        assert!(!ps.unplace(ids[0]));
        assert!(ps.place_at(&g, &m, ids[0], 1));
    }

    #[test]
    fn into_schedule_collects_all_cycles() {
        let (g, ids) = simple();
        let m = presets::govindarajan();
        let mut ps = PartialSchedule::new(&m, 2);
        ps.place_at(&g, &m, ids[0], 0);
        ps.place_at(&g, &m, ids[1], 2);
        ps.place_at(&g, &m, ids[2], 4);
        let s = ps.into_schedule(&g);
        assert_eq!(s.ii(), 2);
        assert_eq!(s.cycle(ids[2]) - s.cycle(ids[0]), 4);
    }

    #[test]
    fn dense_placement_matches_ddg_walking_bounds() {
        let (g, ids) = simple();
        let m = presets::govindarajan();
        let arcs = std::sync::Arc::new(hrms_ddg::PlacementCsr::from_graph(&g));
        let mut dense = PartialSchedule::with_placement(&m, 2, arcs);
        let mut sparse = PartialSchedule::new(&m, 2);
        for (u, c) in [(ids[0], 0i64), (ids[2], 6)] {
            assert!(dense.place_at(&g, &m, u, c));
            assert!(sparse.place_at(&g, &m, u, c));
        }
        for &u in &ids {
            assert_eq!(dense.early_start(&g, u), sparse.early_start(&g, u));
            assert_eq!(dense.late_start(&g, u), sparse.late_start(&g, u));
            assert_eq!(dense.cycle_of(u), sparse.cycle_of(u));
        }
        assert_eq!(dense.len(), 2);
        assert!(dense.unplace(ids[2]));
        assert_eq!(dense.len(), 1);
        assert_eq!(dense.late_start(&g, ids[1]), None);
    }

    #[test]
    fn placements_iterate_in_node_order() {
        let (g, ids) = simple();
        let m = presets::govindarajan();
        let mut ps = PartialSchedule::new(&m, 2);
        ps.place_at(&g, &m, ids[2], 4);
        ps.place_at(&g, &m, ids[0], 0);
        let got: Vec<(NodeId, i64)> = ps.placements().collect();
        assert_eq!(got, vec![(ids[0], 0), (ids[2], 4)]);
    }

    #[test]
    #[should_panic(expected = "never scheduled")]
    fn into_schedule_panics_on_missing_nodes() {
        let (g, ids) = simple();
        let m = presets::govindarajan();
        let mut ps = PartialSchedule::new(&m, 2);
        ps.place_at(&g, &m, ids[0], 0);
        let _ = ps.into_schedule(&g);
    }
}
