//! Independent validation of modulo schedules.
//!
//! Every scheduler in the workspace is checked against this validator in the
//! integration and property tests: a schedule is *valid* when every
//! dependence is satisfied (modulo the `δ·II` slack of loop-carried
//! dependences) and no functional-unit class is oversubscribed in any modulo
//! slot.

use std::error::Error;
use std::fmt;

use hrms_ddg::{Ddg, NodeId};
use hrms_machine::Machine;

use crate::mii::dependence_latency;
use crate::mrt::ModuloReservationTable;
use crate::schedule::Schedule;

/// A reason why a schedule is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidationError {
    /// The schedule does not assign a cycle to every operation.
    WrongLength {
        /// Operations in the graph.
        expected: usize,
        /// Cycles in the schedule.
        actual: usize,
    },
    /// A dependence `(source, target)` is violated.
    DependenceViolated {
        /// Producer operation.
        source: NodeId,
        /// Consumer operation.
        target: NodeId,
        /// Cycle assigned to the producer.
        source_cycle: i64,
        /// Cycle assigned to the consumer.
        target_cycle: i64,
        /// Minimum separation required (`latency − δ·II`).
        required: i64,
    },
    /// Some functional-unit class is oversubscribed: the operation could not
    /// be placed in the reservation table at its assigned cycle.
    ResourceOversubscribed {
        /// The operation that did not fit.
        node: NodeId,
        /// Its assigned cycle.
        cycle: i64,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::WrongLength { expected, actual } => write!(
                f,
                "schedule covers {actual} operations but the loop has {expected}"
            ),
            ValidationError::DependenceViolated {
                source,
                target,
                source_cycle,
                target_cycle,
                required,
            } => write!(
                f,
                "dependence {source} -> {target} violated: {target_cycle} < {source_cycle} + {required}"
            ),
            ValidationError::ResourceOversubscribed { node, cycle } => write!(
                f,
                "functional unit oversubscribed: {node} does not fit at cycle {cycle}"
            ),
        }
    }
}

impl Error for ValidationError {}

/// Checks that `schedule` is a valid modulo schedule of `ddg` on `machine`.
///
/// # Errors
///
/// Returns the first [`ValidationError`] found (dependences are checked
/// before resources).
pub fn validate_schedule(
    ddg: &Ddg,
    machine: &Machine,
    schedule: &Schedule,
) -> Result<(), ValidationError> {
    if schedule.len() != ddg.num_nodes() {
        return Err(ValidationError::WrongLength {
            expected: ddg.num_nodes(),
            actual: schedule.len(),
        });
    }
    let ii = i64::from(schedule.ii());

    for (_, e) in ddg.edges() {
        let tu = schedule.cycle(e.source());
        let tv = schedule.cycle(e.target());
        let required = i64::from(dependence_latency(ddg, e)) - i64::from(e.distance()) * ii;
        if tv < tu + required {
            return Err(ValidationError::DependenceViolated {
                source: e.source(),
                target: e.target(),
                source_cycle: tu,
                target_cycle: tv,
                required,
            });
        }
    }

    let mut mrt = ModuloReservationTable::new(machine, schedule.ii());
    for (node, cycle) in schedule.iter() {
        let kind = ddg.node(node).kind();
        if !mrt.place(machine, node, kind, cycle) {
            return Err(ValidationError::ResourceOversubscribed { node, cycle });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, DepKind, OpKind};
    use hrms_machine::presets;

    fn loop_with_recurrence() -> Ddg {
        let mut b = DdgBuilder::new("v");
        let ld = b.node("ld", OpKind::Load, 2);
        let mul = b.node("mul", OpKind::FpMul, 2);
        let acc = b.node("acc", OpKind::FpAdd, 1);
        let st = b.node("st", OpKind::Store, 1);
        b.edge(ld, mul, DepKind::RegFlow, 0).unwrap();
        b.edge(mul, acc, DepKind::RegFlow, 0).unwrap();
        b.edge(acc, acc, DepKind::RegFlow, 1).unwrap();
        b.edge(acc, st, DepKind::RegFlow, 0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn a_correct_schedule_validates() {
        let g = loop_with_recurrence();
        let m = presets::govindarajan();
        // ld@0, mul@2, acc@4, st@5 with II = 2: the self-dependence of acc
        // needs t(acc) >= t(acc) + 1 - 1*2, which always holds, and the load
        // and store land in different modulo slots of the single load/store
        // unit.
        let s = Schedule::new(2, vec![0, 2, 4, 5]);
        assert_eq!(validate_schedule(&g, &m, &s), Ok(()));
    }

    #[test]
    fn dependence_violations_are_reported() {
        let g = loop_with_recurrence();
        let m = presets::govindarajan();
        // mul scheduled before the load finishes.
        let s = Schedule::new(2, vec![0, 1, 4, 7]);
        let err = validate_schedule(&g, &m, &s).unwrap_err();
        assert!(matches!(err, ValidationError::DependenceViolated { .. }));
        assert!(err.to_string().contains("violated"));
    }

    #[test]
    fn loop_carried_slack_is_honoured() {
        // a -> c with distance 1: at II = 4 the constraint
        // t(c) >= t(a) + 4 - 4 is satisfied by t(c) = t(a); at II = 3 it is
        // not.
        let mut b = DdgBuilder::new("carried");
        let a = b.node("a", OpKind::FpAdd, 4);
        let c = b.node("c", OpKind::FpMul, 1);
        b.edge(a, c, DepKind::RegFlow, 1).unwrap();
        let g = b.build().unwrap();
        let m = presets::govindarajan();
        let ok = Schedule::new(4, vec![0, 0]);
        assert_eq!(validate_schedule(&g, &m, &ok), Ok(()));
        let bad = Schedule::new(3, vec![0, 0]);
        assert!(validate_schedule(&g, &m, &bad).is_err());
    }

    #[test]
    fn resource_oversubscription_is_reported() {
        let m = presets::govindarajan();
        let mut b = DdgBuilder::new("two_loads");
        b.node("l0", OpKind::Load, 2);
        b.node("l1", OpKind::Load, 2);
        let g = b.build().unwrap();
        // Both loads in the same modulo slot of the single load/store unit.
        let s = Schedule::new(2, vec![0, 2]);
        let err = validate_schedule(&g, &m, &s).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::ResourceOversubscribed { .. }
        ));
        // Different slots are fine.
        let s = Schedule::new(2, vec![0, 1]);
        assert_eq!(validate_schedule(&g, &m, &s), Ok(()));
    }

    #[test]
    fn wrong_length_is_reported() {
        let g = loop_with_recurrence();
        let m = presets::govindarajan();
        let s = Schedule::new(1, vec![0, 2]);
        assert!(matches!(
            validate_schedule(&g, &m, &s),
            Err(ValidationError::WrongLength {
                expected: 4,
                actual: 2
            })
        ));
    }

    #[test]
    fn non_pipelined_resources_are_checked() {
        let m = presets::perfect_club();
        let mut b = DdgBuilder::new("divs");
        b.node("d0", OpKind::FpDiv, 17);
        b.node("d1", OpKind::FpDiv, 17);
        b.node("d2", OpKind::FpDiv, 17);
        let g = b.build().unwrap();
        // Three 17-cycle divisions on two non-pipelined units need II >= 26,
        // and even then the issue slots must be staggered so that no modulo
        // slot sees all three divisions at once.
        let bad = Schedule::new(17, vec![0, 1, 2]);
        assert!(validate_schedule(&g, &m, &bad).is_err());
        let clustered = Schedule::new(26, vec![0, 1, 2]);
        assert!(validate_schedule(&g, &m, &clustered).is_err());
        let ok = Schedule::new(26, vec![0, 17, 8]);
        assert_eq!(validate_schedule(&g, &m, &ok), Ok(()));
    }
}
