//! Independent validation of modulo schedules.
//!
//! Every scheduler in the workspace is checked against this validator in the
//! integration and property tests: a schedule is *valid* when every
//! dependence is satisfied (modulo the `δ·II` slack of loop-carried
//! dependences) and no functional-unit class is oversubscribed in any modulo
//! slot.

use std::error::Error;
use std::fmt;

use hrms_ddg::{Ddg, NodeId};
use hrms_machine::{ClassId, Machine};

use crate::mii::dependence_latency;
use crate::schedule::Schedule;

/// A reason why a schedule is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidationError {
    /// The schedule does not assign a cycle to every operation.
    WrongLength {
        /// Operations in the graph.
        expected: usize,
        /// Cycles in the schedule.
        actual: usize,
    },
    /// A dependence `(source, target)` is violated.
    DependenceViolated {
        /// Producer operation.
        source: NodeId,
        /// Consumer operation.
        target: NodeId,
        /// Cycle assigned to the producer.
        source_cycle: i64,
        /// Cycle assigned to the consumer.
        target_cycle: i64,
        /// Minimum separation required (`latency − δ·II`).
        required: i64,
    },
    /// Some functional-unit class is oversubscribed: the total demand the
    /// schedule puts on one of the class's modulo slots exceeds the number
    /// of units.
    ResourceOversubscribed {
        /// The first operation (in schedule order) whose demand pushes the
        /// slot over capacity.
        node: NodeId,
        /// Its assigned cycle.
        cycle: i64,
        /// The oversubscribed functional-unit class.
        class: ClassId,
        /// The oversubscribed modulo slot (`0..II`).
        slot: usize,
        /// Total demand the whole schedule puts on that slot.
        demand: u32,
        /// Units available in the class.
        capacity: u32,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::WrongLength { expected, actual } => write!(
                f,
                "schedule covers {actual} operations but the loop has {expected}"
            ),
            ValidationError::DependenceViolated {
                source,
                target,
                source_cycle,
                target_cycle,
                required,
            } => write!(
                f,
                "dependence {source} -> {target} violated: {target_cycle} < {source_cycle} + {required}"
            ),
            ValidationError::ResourceOversubscribed {
                node,
                cycle,
                class,
                slot,
                demand,
                capacity,
            } => write!(
                f,
                "functional unit oversubscribed: {node} does not fit at cycle {cycle} \
                 (class {class} modulo slot {slot} needs {demand} units, has {capacity})"
            ),
        }
    }
}

impl Error for ValidationError {}

/// Checks that `schedule` is a valid modulo schedule of `ddg` on `machine`.
///
/// # Errors
///
/// Returns the first [`ValidationError`] found (dependences are checked
/// before resources).
pub fn validate_schedule(
    ddg: &Ddg,
    machine: &Machine,
    schedule: &Schedule,
) -> Result<(), ValidationError> {
    if schedule.len() != ddg.num_nodes() {
        return Err(ValidationError::WrongLength {
            expected: ddg.num_nodes(),
            actual: schedule.len(),
        });
    }
    let ii = i64::from(schedule.ii());

    for (_, e) in ddg.edges() {
        let tu = schedule.cycle(e.source());
        let tv = schedule.cycle(e.target());
        let required = i64::from(dependence_latency(ddg, e)) - i64::from(e.distance()) * ii;
        if tv < tu + required {
            return Err(ValidationError::DependenceViolated {
                source: e.source(),
                target: e.target(),
                source_cycle: tu,
                target_cycle: tv,
                required,
            });
        }
    }

    check_resources(ddg, machine, schedule)
}

/// Adds the per-slot unit demand of one operation to `demand` (the row for
/// its class). Mirrors the MRT's occupancy model: pipelined operations take
/// one slot, non-pipelined ones take `occupancy` consecutive slots and wrap
/// the whole table when the occupancy exceeds the II.
fn add_demand(demand: &mut [u32], ii: usize, start: usize, occupancy: usize) {
    if occupancy <= ii {
        for k in 0..occupancy {
            let s = start + k;
            let s = if s >= ii { s - ii } else { s };
            demand[s] += 1;
        }
    } else {
        let base = (occupancy / ii) as u32;
        let rem = occupancy % ii;
        for (s, d) in demand.iter_mut().enumerate() {
            *d += base + u32::from((s + ii - start) % ii < rem);
        }
    }
}

/// Checks functional-unit capacity by summing every operation's per-slot
/// demand directly and comparing each (class, modulo slot) total against
/// the class capacity.
///
/// Unlike replaying placements through a
/// [`ModuloReservationTable`](crate::mrt::ModuloReservationTable), the
/// verdict is manifestly independent of the order operations are
/// considered in: the total demand of a slot is a sum, and the schedule is
/// resource-feasible iff every total is within capacity. (Sequential MRT
/// placement reaches the same verdict — a slot can only exceed capacity if
/// some placement fails — but establishes it indirectly; the property test
/// in this module pins the two checks against each other.) For error
/// reporting, the first operation in [`Schedule::iter`] order whose
/// cumulative demand crosses the capacity is blamed, which matches the
/// operation the placement-replay check used to report.
fn check_resources(
    ddg: &Ddg,
    machine: &Machine,
    schedule: &Schedule,
) -> Result<(), ValidationError> {
    let ii = schedule.ii() as usize;
    let mut demand: Vec<Vec<u32>> = machine.classes().iter().map(|_| vec![0u32; ii]).collect();
    for (node, cycle) in schedule.iter() {
        let kind = ddg.node(node).kind();
        let class = machine.class_of(kind);
        let start = cycle.rem_euclid(schedule.ii() as i64) as usize;
        add_demand(
            &mut demand[class.index()],
            ii,
            start,
            machine.occupancy_of(kind) as usize,
        );
    }
    for (c, row) in demand.iter().enumerate() {
        let capacity = machine.classes()[c].count;
        if let Some((slot, &d)) = row.iter().enumerate().find(|&(_, &d)| d > capacity) {
            let class = ClassId(c as u32);
            let (node, cycle) = blame(ddg, machine, schedule, class, slot)
                .expect("an oversubscribed slot has a contributing operation");
            return Err(ValidationError::ResourceOversubscribed {
                node,
                cycle,
                class,
                slot,
                demand: d,
                capacity,
            });
        }
    }
    Ok(())
}

/// The first operation (in schedule order) whose cumulative demand pushes
/// the oversubscribed `(class, slot)` past capacity — the same operation a
/// sequential MRT replay would have failed on.
fn blame(
    ddg: &Ddg,
    machine: &Machine,
    schedule: &Schedule,
    class: ClassId,
    slot: usize,
) -> Option<(NodeId, i64)> {
    let ii = schedule.ii() as usize;
    let capacity = machine.class(class).count;
    let mut row = vec![0u32; ii];
    for (node, cycle) in schedule.iter() {
        let kind = ddg.node(node).kind();
        if machine.class_of(kind) != class {
            continue;
        }
        let start = cycle.rem_euclid(schedule.ii() as i64) as usize;
        add_demand(&mut row, ii, start, machine.occupancy_of(kind) as usize);
        if row[slot] > capacity {
            return Some((node, cycle));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrt::ModuloReservationTable;
    use hrms_ddg::{DdgBuilder, DepKind, OpKind};
    use hrms_machine::presets;

    /// The pre-fix resource check: replay every placement through an MRT in
    /// schedule order and fail on the first refused placement. Kept as the
    /// reference the order-independent check is pinned against.
    fn replay_verdict(
        ddg: &Ddg,
        machine: &Machine,
        schedule: &Schedule,
    ) -> Result<(), (NodeId, i64)> {
        let mut mrt = ModuloReservationTable::new(machine, schedule.ii());
        for (node, cycle) in schedule.iter() {
            if !mrt.place(machine, node, ddg.node(node).kind(), cycle) {
                return Err((node, cycle));
            }
        }
        Ok(())
    }

    fn loop_with_recurrence() -> Ddg {
        let mut b = DdgBuilder::new("v");
        let ld = b.node("ld", OpKind::Load, 2);
        let mul = b.node("mul", OpKind::FpMul, 2);
        let acc = b.node("acc", OpKind::FpAdd, 1);
        let st = b.node("st", OpKind::Store, 1);
        b.edge(ld, mul, DepKind::RegFlow, 0).unwrap();
        b.edge(mul, acc, DepKind::RegFlow, 0).unwrap();
        b.edge(acc, acc, DepKind::RegFlow, 1).unwrap();
        b.edge(acc, st, DepKind::RegFlow, 0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn a_correct_schedule_validates() {
        let g = loop_with_recurrence();
        let m = presets::govindarajan();
        // ld@0, mul@2, acc@4, st@5 with II = 2: the self-dependence of acc
        // needs t(acc) >= t(acc) + 1 - 1*2, which always holds, and the load
        // and store land in different modulo slots of the single load/store
        // unit.
        let s = Schedule::new(2, vec![0, 2, 4, 5]);
        assert_eq!(validate_schedule(&g, &m, &s), Ok(()));
    }

    #[test]
    fn dependence_violations_are_reported() {
        let g = loop_with_recurrence();
        let m = presets::govindarajan();
        // mul scheduled before the load finishes.
        let s = Schedule::new(2, vec![0, 1, 4, 7]);
        let err = validate_schedule(&g, &m, &s).unwrap_err();
        assert!(matches!(err, ValidationError::DependenceViolated { .. }));
        assert!(err.to_string().contains("violated"));
    }

    #[test]
    fn loop_carried_slack_is_honoured() {
        // a -> c with distance 1: at II = 4 the constraint
        // t(c) >= t(a) + 4 - 4 is satisfied by t(c) = t(a); at II = 3 it is
        // not.
        let mut b = DdgBuilder::new("carried");
        let a = b.node("a", OpKind::FpAdd, 4);
        let c = b.node("c", OpKind::FpMul, 1);
        b.edge(a, c, DepKind::RegFlow, 1).unwrap();
        let g = b.build().unwrap();
        let m = presets::govindarajan();
        let ok = Schedule::new(4, vec![0, 0]);
        assert_eq!(validate_schedule(&g, &m, &ok), Ok(()));
        let bad = Schedule::new(3, vec![0, 0]);
        assert!(validate_schedule(&g, &m, &bad).is_err());
    }

    #[test]
    fn resource_oversubscription_is_reported() {
        let m = presets::govindarajan();
        let mut b = DdgBuilder::new("two_loads");
        b.node("l0", OpKind::Load, 2);
        b.node("l1", OpKind::Load, 2);
        let g = b.build().unwrap();
        // Both loads in the same modulo slot of the single load/store unit.
        let s = Schedule::new(2, vec![0, 2]);
        let err = validate_schedule(&g, &m, &s).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::ResourceOversubscribed { .. }
        ));
        // Different slots are fine.
        let s = Schedule::new(2, vec![0, 1]);
        assert_eq!(validate_schedule(&g, &m, &s), Ok(()));
    }

    #[test]
    fn wrong_length_is_reported() {
        let g = loop_with_recurrence();
        let m = presets::govindarajan();
        let s = Schedule::new(1, vec![0, 2]);
        assert!(matches!(
            validate_schedule(&g, &m, &s),
            Err(ValidationError::WrongLength {
                expected: 4,
                actual: 2
            })
        ));
    }

    #[test]
    fn oversubscription_reports_slot_demand_and_capacity() {
        let m = presets::govindarajan();
        let mut b = DdgBuilder::new("two_loads");
        b.node("l0", OpKind::Load, 2);
        b.node("l1", OpKind::Load, 2);
        let g = b.build().unwrap();
        let s = Schedule::new(2, vec![0, 2]);
        match validate_schedule(&g, &m, &s).unwrap_err() {
            ValidationError::ResourceOversubscribed {
                node,
                cycle,
                class,
                slot,
                demand,
                capacity,
            } => {
                assert_eq!((node, cycle), (NodeId(1), 2), "blame matches MRT replay");
                assert_eq!(class, m.class_of(OpKind::Load));
                assert_eq!((slot, demand, capacity), (0, 2, 1));
            }
            other => panic!("expected ResourceOversubscribed, got {other:?}"),
        }
    }

    #[test]
    fn direct_check_matches_mrt_replay_on_randomised_schedules() {
        // A deterministic congruential generator keeps the sweep
        // reproducible without a rand dependency.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move |bound: i64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as i64).rem_euclid(bound)
        };

        let mut divs = DdgBuilder::new("div_mix");
        divs.node("d0", OpKind::FpDiv, 17);
        divs.node("d1", OpKind::FpDiv, 17);
        divs.node("s0", OpKind::FpSqrt, 30);
        divs.node("l0", OpKind::Load, 2);
        divs.node("l1", OpKind::Load, 2);
        let graphs = [loop_with_recurrence(), divs.build().unwrap()];
        let machines = [
            presets::govindarajan(),
            presets::perfect_club(),
            presets::general_purpose(),
        ];
        let mut disagreements = 0usize;
        let mut oversubscribed = 0usize;
        for g in &graphs {
            for m in &machines {
                for _ in 0..200 {
                    let ii = 1 + next(28) as u32;
                    let cycles: Vec<i64> = (0..g.num_nodes()).map(|_| next(60) - 20).collect();
                    let s = Schedule::new(ii, cycles);
                    let direct = check_resources(g, m, &s);
                    match (replay_verdict(g, m, &s), direct) {
                        (Ok(()), Ok(())) => {}
                        (
                            Err((node, cycle)),
                            Err(ValidationError::ResourceOversubscribed {
                                node: n2,
                                cycle: c2,
                                demand,
                                capacity,
                                ..
                            }),
                        ) => {
                            oversubscribed += 1;
                            assert!(demand > capacity);
                            // The direct check reports the first
                            // oversubscribed slot's first offender; the
                            // replay reports the first refused placement.
                            // These coincide for the common single-slot
                            // violation but may legitimately differ when
                            // several slots overflow at once — the verdict
                            // (and its order independence) is the contract.
                            if (node, cycle) != (n2, c2) {
                                disagreements += 1;
                            }
                        }
                        (replay, direct) => panic!(
                            "verdicts diverge on {} / {} at ii={}: replay {replay:?}, direct {direct:?}",
                            g.name(),
                            m.name(),
                            s.ii(),
                        ),
                    }
                }
            }
        }
        assert!(oversubscribed > 100, "the sweep exercises the error path");
        assert!(
            disagreements * 10 <= oversubscribed,
            "blame should almost always match the replay: {disagreements}/{oversubscribed}"
        );
    }

    #[test]
    fn non_pipelined_resources_are_checked() {
        let m = presets::perfect_club();
        let mut b = DdgBuilder::new("divs");
        b.node("d0", OpKind::FpDiv, 17);
        b.node("d1", OpKind::FpDiv, 17);
        b.node("d2", OpKind::FpDiv, 17);
        let g = b.build().unwrap();
        // Three 17-cycle divisions on two non-pipelined units need II >= 26,
        // and even then the issue slots must be staggered so that no modulo
        // slot sees all three divisions at once.
        let bad = Schedule::new(17, vec![0, 1, 2]);
        assert!(validate_schedule(&g, &m, &bad).is_err());
        let clustered = Schedule::new(26, vec![0, 1, 2]);
        assert!(validate_schedule(&g, &m, &clustered).is_err());
        let ok = Schedule::new(26, vec![0, 17, 8]);
        assert_eq!(validate_schedule(&g, &m, &ok), Ok(()));
    }
}
