//! The modulo reservation table (MRT).

use hrms_ddg::{NodeId, OpKind};
use hrms_machine::{ClassId, Machine};

/// Tracks functional-unit usage per *modulo slot*.
///
/// A modulo schedule re-executes the same kernel every II cycles, so an
/// operation placed at cycle `t` occupies a unit of its class in modulo slot
/// `t mod II` (and, for non-pipelined units, in the following
/// `occupancy − 1` slots as well). The MRT counts how many units of each
/// class are busy in each slot and refuses placements that would exceed the
/// class size.
///
/// Cycles may be negative (bottom-up and late placements schedule backwards
/// from cycle 0), so the slot is computed with Euclidean remainder.
#[derive(Debug, Clone)]
pub struct ModuloReservationTable {
    ii: u32,
    /// usage[class][slot] = number of busy units.
    usage: Vec<Vec<u32>>,
    /// capacity per class.
    capacity: Vec<u32>,
    /// Per node index: (class, first cycle, occupancy) while placed. Dense
    /// and grown lazily, so the once-per-placement-attempt "already placed?"
    /// check is an array read rather than a hash lookup.
    placements: Vec<Option<(ClassId, i64, u32)>>,
    /// Number of placed operations (kept incrementally).
    placed: usize,
}

impl ModuloReservationTable {
    /// Creates an empty table for the given machine and initiation interval.
    ///
    /// # Panics
    ///
    /// Panics if `ii` is 0.
    pub fn new(machine: &Machine, ii: u32) -> Self {
        assert!(ii > 0, "the initiation interval must be at least 1");
        ModuloReservationTable {
            ii,
            usage: machine
                .classes()
                .iter()
                .map(|_| vec![0; ii as usize])
                .collect(),
            capacity: machine.classes().iter().map(|c| c.count).collect(),
            placements: Vec::new(),
            placed: 0,
        }
    }

    /// The initiation interval this table was built for.
    #[inline]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Number of operations currently placed.
    #[inline]
    pub fn len(&self) -> usize {
        self.placed
    }

    /// Whether the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.placed == 0
    }

    /// The recorded placement of `node`, if any.
    #[inline]
    fn placement_of(&self, node: NodeId) -> Option<(ClassId, i64, u32)> {
        self.placements.get(node.index()).copied().flatten()
    }

    fn slot(&self, cycle: i64) -> usize {
        cycle.rem_euclid(i64::from(self.ii)) as usize
    }

    /// Whether an operation of kind `kind` can be placed at `cycle` without
    /// oversubscribing its functional-unit class.
    ///
    /// A non-pipelined operation whose occupancy exceeds the II wraps around
    /// the table and demands the same slot more than once (its own execution
    /// overlaps the next iteration's instance), so the check accumulates the
    /// operation's per-slot demand before comparing against the capacity.
    ///
    /// This runs once per *candidate cycle* of every placement scan — the
    /// innermost loop of the scheduling step — so it is allocation-free:
    /// `O(occupancy)` when the operation fits inside one table period (the
    /// overwhelmingly common case), `O(II)` with a closed-form per-slot
    /// demand when it wraps.
    pub fn can_place(&self, machine: &Machine, kind: OpKind, cycle: i64) -> bool {
        let class = machine.class_of(kind);
        let occupancy = machine.occupancy_of(kind) as usize;
        let ii = self.ii as usize;
        let usage = &self.usage[class.index()];
        let capacity = self.capacity[class.index()];
        let start = self.slot(cycle);
        if occupancy <= ii {
            // Demand is exactly 1 in `occupancy` consecutive modulo slots.
            (0..occupancy).all(|k| {
                let s = start + k;
                let s = if s >= ii { s - ii } else { s };
                usage[s] < capacity
            })
        } else {
            // The operation wraps the whole table `occupancy / II` times and
            // covers `occupancy mod II` further slots starting at `start`.
            let base = (occupancy / ii) as u32;
            let rem = occupancy % ii;
            (0..ii).all(|s| {
                let extra = u32::from((s + ii - start) % ii < rem);
                usage[s] + base + extra <= capacity
            })
        }
    }

    /// Places `node` (of kind `kind`) at `cycle`. Returns `false` (and leaves
    /// the table untouched) if the placement would oversubscribe a unit or if
    /// the node is already placed.
    pub fn place(&mut self, machine: &Machine, node: NodeId, kind: OpKind, cycle: i64) -> bool {
        if self.placement_of(node).is_some() || !self.can_place(machine, kind, cycle) {
            return false;
        }
        let class = machine.class_of(kind);
        let occupancy = machine.occupancy_of(kind);
        for k in 0..occupancy {
            let slot = self.slot(cycle + i64::from(k));
            self.usage[class.index()][slot] += 1;
        }
        let i = node.index();
        if i >= self.placements.len() {
            self.placements.resize(i + 1, None);
        }
        self.placements[i] = Some((class, cycle, occupancy));
        self.placed += 1;
        true
    }

    /// Removes a previously placed node, freeing its slots. Returns whether
    /// the node was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let Some((class, cycle, occupancy)) = self.placement_of(node) else {
            return false;
        };
        self.placements[node.index()] = None;
        self.placed -= 1;
        for k in 0..occupancy {
            let slot = self.slot(cycle + i64::from(k));
            debug_assert!(self.usage[class.index()][slot] > 0);
            self.usage[class.index()][slot] -= 1;
        }
        true
    }

    /// Number of units of `class` busy in modulo slot `slot`.
    pub fn usage(&self, class: ClassId, slot: usize) -> u32 {
        self.usage[class.index()][slot % self.ii as usize]
    }

    /// Total number of busy unit-slots divided by total capacity, a utilisation
    /// figure in `[0, 1]` used by reports.
    pub fn utilisation(&self) -> f64 {
        let busy: u32 = self.usage.iter().flatten().sum();
        let total: u32 = self.capacity.iter().map(|c| c * self.ii).sum();
        if total == 0 {
            0.0
        } else {
            f64::from(busy) / f64::from(total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_machine::presets;

    #[test]
    fn placement_respects_capacity() {
        let m = presets::govindarajan(); // single load/store unit
        let mut mrt = ModuloReservationTable::new(&m, 2);
        assert!(mrt.place(&m, NodeId(0), OpKind::Load, 0));
        assert!(!mrt.can_place(&m, OpKind::Load, 2), "slot 0 is taken");
        assert!(mrt.can_place(&m, OpKind::Load, 1));
        assert!(mrt.place(&m, NodeId(1), OpKind::Load, 5)); // slot 1
        assert!(!mrt.can_place(&m, OpKind::Store, 0));
        assert!(!mrt.can_place(&m, OpKind::Store, 1));
        // A different class is unaffected.
        assert!(mrt.can_place(&m, OpKind::FpAdd, 0));
        assert_eq!(mrt.len(), 2);
    }

    #[test]
    fn negative_cycles_wrap_correctly() {
        let m = presets::govindarajan();
        let mut mrt = ModuloReservationTable::new(&m, 3);
        assert!(mrt.place(&m, NodeId(0), OpKind::Load, -1)); // slot 2
        assert!(!mrt.can_place(&m, OpKind::Load, 2));
        assert!(mrt.can_place(&m, OpKind::Load, 0));
    }

    #[test]
    fn removal_frees_slots() {
        let m = presets::govindarajan();
        let mut mrt = ModuloReservationTable::new(&m, 2);
        assert!(mrt.place(&m, NodeId(0), OpKind::FpMul, 0));
        assert!(!mrt.can_place(&m, OpKind::FpMul, 0));
        assert!(mrt.remove(NodeId(0)));
        assert!(mrt.can_place(&m, OpKind::FpMul, 0));
        assert!(!mrt.remove(NodeId(0)), "already removed");
        assert!(mrt.is_empty());
    }

    #[test]
    fn duplicate_placement_is_rejected() {
        let m = presets::govindarajan();
        let mut mrt = ModuloReservationTable::new(&m, 4);
        assert!(mrt.place(&m, NodeId(0), OpKind::FpAdd, 0));
        assert!(!mrt.place(&m, NodeId(0), OpKind::FpAdd, 1));
    }

    #[test]
    fn non_pipelined_ops_occupy_multiple_slots() {
        let m = presets::perfect_club(); // 2 non-pipelined div/sqrt units, div latency 17
        let mut mrt = ModuloReservationTable::new(&m, 9);
        // One division occupies ceil(17/9) = 2 units in some slots, so a
        // second division cannot be placed anywhere, but the capacity of 2
        // units makes a single one fit.
        assert!(mrt.place(&m, NodeId(0), OpKind::FpDiv, 0));
        // With II = 9 and occupancy 17, slots 0..8 all have usage >= 1 and
        // slots 0..7 have usage 2.
        let class = m.class_of(OpKind::FpDiv);
        assert_eq!(mrt.usage(class, 0), 2);
        assert_eq!(mrt.usage(class, 8), 1);
        assert!(!mrt.can_place(&m, OpKind::FpDiv, 0));
        // The adders are untouched.
        assert!(mrt.can_place(&m, OpKind::FpAdd, 0));
    }

    #[test]
    fn non_pipelined_two_divisions_need_ii_17() {
        let m = presets::perfect_club();
        let mut mrt = ModuloReservationTable::new(&m, 17);
        assert!(mrt.place(&m, NodeId(0), OpKind::FpDiv, 0));
        assert!(mrt.place(&m, NodeId(1), OpKind::FpDiv, 5));
        assert!(!mrt.can_place(&m, OpKind::FpDiv, 11), "both units busy");
    }

    #[test]
    fn wrapping_op_counts_its_own_double_demand() {
        // A square root (occupancy 30) at II = 24 demands two units in six
        // of the slots; if one of those slots already has a unit busy, the
        // placement must be refused even though each single check would
        // pass.
        let m = presets::perfect_club();
        let mut mrt = ModuloReservationTable::new(&m, 24);
        assert!(mrt.place(&m, NodeId(0), OpKind::FpDiv, 22)); // slots 22..14
        assert!(
            !mrt.can_place(&m, OpKind::FpSqrt, 22),
            "the sqrt needs 2 units in slot 22 but only 1 is free"
        );
        assert!(mrt.place(&m, NodeId(1), OpKind::FpSqrt, 15));
    }

    #[test]
    fn pipelined_units_only_occupy_issue_slot() {
        let m = presets::govindarajan();
        let mut mrt = ModuloReservationTable::new(&m, 2);
        // The divider is pipelined: latency 17 but occupancy 1.
        assert!(mrt.place(&m, NodeId(0), OpKind::FpDiv, 0));
        assert!(mrt.place(&m, NodeId(1), OpKind::FpDiv, 1));
        assert!(!mrt.can_place(&m, OpKind::FpDiv, 2));
    }

    #[test]
    fn utilisation_reflects_busy_slots() {
        let m = presets::general_purpose(); // 4 units, ii 2 -> 8 unit-slots
        let mut mrt = ModuloReservationTable::new(&m, 2);
        assert_eq!(mrt.utilisation(), 0.0);
        mrt.place(&m, NodeId(0), OpKind::FpAdd, 0);
        mrt.place(&m, NodeId(1), OpKind::FpAdd, 1);
        assert!((mrt.utilisation() - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_ii_panics() {
        let m = presets::govindarajan();
        let _ = ModuloReservationTable::new(&m, 0);
    }
}
