//! Steady-state kernels of software-pipelined loops.

use std::fmt;

use hrms_ddg::{Ddg, NodeId};

use crate::schedule::Schedule;

/// The steady-state kernel of a modulo schedule: II rows, each listing the
/// operations issued in that row (each operation belongs to a possibly
/// different original iteration, identified by its stage).
///
/// This corresponds to the kernels drawn in Figures 2c, 3c and 4c of the
/// paper, where an operation at stage `s` is written with `s` primes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    ii: u32,
    /// rows[r] = operations issued at kernel row r, as (node, stage).
    rows: Vec<Vec<(NodeId, u32)>>,
}

impl Kernel {
    /// Builds the kernel of `schedule`.
    pub fn from_schedule(schedule: &Schedule) -> Self {
        let ii = schedule.ii();
        let mut rows = vec![Vec::new(); ii as usize];
        for (node, _) in schedule.iter() {
            let row = schedule.row(node) as usize;
            let stage = schedule.stage(node);
            rows[row].push((node, stage));
        }
        for row in &mut rows {
            row.sort();
        }
        Kernel { ii, rows }
    }

    /// The initiation interval (number of kernel rows).
    #[inline]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// The operations issued in row `row` as `(node, stage)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `row >= ii`.
    pub fn row(&self, row: u32) -> &[(NodeId, u32)] {
        &self.rows[row as usize]
    }

    /// Iterates over all rows.
    pub fn rows(&self) -> impl Iterator<Item = &[(NodeId, u32)]> + '_ {
        self.rows.iter().map(|r| r.as_slice())
    }

    /// Total number of operations in the kernel (equals the number of
    /// operations of the loop body).
    pub fn num_ops(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// The largest number of operations issued in any single row — a lower
    /// bound on the issue width the kernel requires.
    pub fn max_issue_width(&self) -> usize {
        self.rows.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Renders the kernel like the paper's figures: one line per row,
    /// operations written as `name'`, `name''`, ... according to their
    /// stage.
    pub fn render(&self, ddg: &Ddg) -> String {
        let mut out = String::new();
        for (r, row) in self.rows.iter().enumerate() {
            let ops: Vec<String> = row
                .iter()
                .map(|&(n, stage)| format!("{}{}", ddg.node(n).name(), "'".repeat(stage as usize)))
                .collect();
            out.push_str(&format!("{r:>3} | {}\n", ops.join(" ")));
        }
        out
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel(II={}, {} ops)", self.ii, self.num_ops())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, OpKind};

    fn schedule() -> Schedule {
        // 4 ops, II = 2: cycles 0, 1, 2, 5
        Schedule::new(2, vec![0, 1, 2, 5])
    }

    #[test]
    fn rows_group_by_cycle_mod_ii() {
        let k = schedule().kernel();
        assert_eq!(k.ii(), 2);
        assert_eq!(k.row(0), &[(NodeId(0), 0), (NodeId(2), 1)]);
        assert_eq!(k.row(1), &[(NodeId(1), 0), (NodeId(3), 2)]);
        assert_eq!(k.num_ops(), 4);
        assert_eq!(k.max_issue_width(), 2);
    }

    #[test]
    fn render_marks_stages_with_primes() {
        let mut b = DdgBuilder::new("k");
        b.node("A", OpKind::FpAdd, 1);
        b.node("B", OpKind::FpAdd, 1);
        b.node("C", OpKind::FpAdd, 1);
        b.node("D", OpKind::FpAdd, 1);
        let g = b.build().unwrap();
        let text = schedule().kernel().render(&g);
        assert!(text.contains('A'));
        assert!(text.contains("C'"), "stage-1 op gets one prime");
        assert!(text.contains("D''"), "stage-2 op gets two primes");
    }

    #[test]
    fn every_operation_appears_exactly_once() {
        let k = schedule().kernel();
        let mut seen = std::collections::HashSet::new();
        for row in k.rows() {
            for &(n, _) in row {
                assert!(seen.insert(n));
            }
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!schedule().kernel().to_string().is_empty());
    }
}
