//! The scheduler interface shared by HRMS and the baseline schedulers.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use hrms_ddg::{Ddg, LoopCore};
use hrms_machine::Machine;

use crate::error::SchedError;
use crate::feedback::{FeedbackTrace, Perturbation};
use crate::lifetime::LifetimeAnalysis;
use crate::mii::MiiInfo;
use crate::schedule::Schedule;

/// Configuration shared by every scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Hard upper bound on the II to try before giving up. When `None`, the
    /// bound defaults to `MII + sum of latencies + number of operations`,
    /// which is always sufficient for a work-conserving scheduler.
    pub max_ii: Option<u32>,
    /// Generic per-II effort budget used by schedulers that backtrack
    /// (Slack's ejection count, the branch-and-bound node count). Simple
    /// one-pass schedulers ignore it.
    pub budget_per_ii: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_ii: None,
            budget_per_ii: 200_000,
        }
    }
}

impl SchedulerConfig {
    /// The default II cap for a given loop when [`SchedulerConfig::max_ii`]
    /// is not set.
    pub fn effective_max_ii(&self, ddg: &Ddg, mii: u32) -> u32 {
        self.max_ii.unwrap_or_else(|| {
            let total: u64 = ddg.total_latency() + ddg.num_nodes() as u64;
            mii.saturating_add(total.min(u64::from(u32::MAX)) as u32)
        })
    }
}

/// Summary metrics of a finished schedule; every number the paper's tables
/// and figures report can be derived from these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleMetrics {
    /// Achieved initiation interval.
    pub ii: u32,
    /// Lower bound `MII`.
    pub mii: u32,
    /// Resource-constrained bound.
    pub res_mii: u32,
    /// Recurrence-constrained bound.
    pub rec_mii: u32,
    /// Number of pipeline stages.
    pub stage_count: u32,
    /// Flat length of one iteration's schedule.
    pub span: i64,
    /// Register requirement of the loop variants (`MaxLive`).
    pub max_live: u64,
    /// `MaxLive` plus one register per loop invariant.
    pub max_live_with_invariants: u64,
    /// Buffer requirement (Govindarajan et al. metric, used by Table 1).
    pub buffers: u64,
    /// Sum of loop-variant lifetime lengths.
    pub total_lifetime: i64,
}

impl ScheduleMetrics {
    /// Computes the metrics of `schedule`.
    pub fn compute(ddg: &Ddg, schedule: &Schedule, mii: MiiInfo) -> Self {
        let lt = LifetimeAnalysis::analyze(ddg, schedule);
        ScheduleMetrics {
            ii: schedule.ii(),
            mii: mii.mii(),
            res_mii: mii.res_mii,
            rec_mii: mii.rec_mii,
            stage_count: schedule.stage_count(),
            span: schedule.span(),
            max_live: lt.max_live(),
            max_live_with_invariants: lt.max_live_with_invariants(),
            buffers: lt.buffers(),
            total_lifetime: lt.total_lifetime(),
        }
    }

    /// Whether the achieved II equals the lower bound (an "optimal" II in the
    /// paper's terminology).
    pub fn ii_is_optimal(&self) -> bool {
        self.ii == self.mii
    }

    /// The ratio `II / MII` (1.0 when optimal).
    pub fn ii_ratio(&self) -> f64 {
        f64::from(self.ii) / f64::from(self.mii.max(1))
    }
}

impl fmt::Display for ScheduleMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "II={} (MII={}), SC={}, MaxLive={}, buffers={}",
            self.ii, self.mii, self.stage_count, self.max_live, self.buffers
        )
    }
}

/// The result of scheduling one loop.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// The schedule itself.
    pub schedule: Schedule,
    /// The MII bounds of the loop.
    pub mii: MiiInfo,
    /// Derived metrics.
    pub metrics: ScheduleMetrics,
    /// Number of II values tried before a schedule was found.
    pub attempts: u32,
    /// Wall-clock time spent by the scheduler (total).
    pub elapsed: Duration,
    /// Wall-clock time spent in the pre-ordering phase (zero for schedulers
    /// without one); lets the harness reproduce the paper's "ordering is
    /// only 9% of the time" measurement.
    pub ordering_time: Duration,
    /// Whether the recurrence analysis feeding the scheduler was truncated
    /// (a circuit-enumeration budget was hit), silently degrading the
    /// ordering's recurrence priority. Always `false` for schedulers on the
    /// default enumeration-free recurrence path; surfaced so harnesses can
    /// flag results whose pre-ordering ran on partial recurrence
    /// information instead of hiding the degradation.
    pub recurrence_truncated: bool,
    /// Machine-readable record of the feedback-guided rescheduling run that
    /// produced this schedule; `None` for one-shot schedulers. Attached by
    /// [`crate::feedback::IterativeRescheduler`] and rendered into JSON
    /// reports.
    pub feedback: Option<FeedbackTrace>,
}

impl ScheduleOutcome {
    /// Bundles a finished schedule with its metrics.
    pub fn new(
        ddg: &Ddg,
        schedule: Schedule,
        mii: MiiInfo,
        attempts: u32,
        elapsed: Duration,
        ordering_time: Duration,
    ) -> Self {
        let metrics = ScheduleMetrics::compute(ddg, &schedule, mii);
        ScheduleOutcome {
            schedule,
            mii,
            metrics,
            attempts,
            elapsed,
            ordering_time,
            recurrence_truncated: false,
            feedback: None,
        }
    }

    /// Records whether the recurrence analysis behind this schedule was
    /// truncated (see [`ScheduleOutcome::recurrence_truncated`]).
    #[must_use]
    pub fn with_recurrence_truncated(mut self, truncated: bool) -> Self {
        self.recurrence_truncated = truncated;
        self
    }

    /// Attaches the trace of the feedback run that produced this schedule
    /// (see [`ScheduleOutcome::feedback`]).
    #[must_use]
    pub fn with_feedback(mut self, trace: FeedbackTrace) -> Self {
        self.feedback = Some(trace);
        self
    }
}

/// A resource-constrained software-pipelining scheduler.
///
/// Implemented by HRMS (`hrms-core`) and by every baseline
/// (`hrms-baselines`); the benchmark harness and the register-allocation
/// passes only interact with schedulers through this trait.
pub trait ModuloScheduler {
    /// Short identifier used in reports ("HRMS", "Top-Down", "Slack", ...).
    fn name(&self) -> &str;

    /// Schedules one loop on the given machine.
    ///
    /// # Errors
    ///
    /// Returns a [`SchedError`] when the loop cannot be scheduled (malformed
    /// graph, or the II/search budget was exhausted).
    fn schedule_loop(&self, ddg: &Ddg, machine: &Machine) -> Result<ScheduleOutcome, SchedError>;

    /// Schedules one loop on the given machine, reusing a shared
    /// machine-independent analysis core (see [`LoopCore`]).
    ///
    /// Batch drivers scheduling the *same* loop against several machines
    /// build one `Arc<LoopCore>` per loop and pass it to every cell, so
    /// Tarjan, the cycle-ratio λ-search and every other structural
    /// analysis run once per loop instead of once per (loop, machine)
    /// pair. The default implementation ignores the core and falls back
    /// to [`ModuloScheduler::schedule_loop`]; every scheduler in this
    /// workspace overrides it to thread the core through its analysis.
    ///
    /// # Errors
    ///
    /// Returns a [`SchedError`] when the loop cannot be scheduled (malformed
    /// graph, or the II/search budget was exhausted).
    fn schedule_loop_with_core(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        core: &Arc<LoopCore>,
    ) -> Result<ScheduleOutcome, SchedError> {
        let _ = core;
        self.schedule_loop(ddg, machine)
    }

    /// Schedules one loop under a priority [`Perturbation`] — the hook the
    /// feedback-guided [`crate::feedback::IterativeRescheduler`] drives.
    ///
    /// Schedulers with a perturbable ordering override this: HRMS honours
    /// the start-node hint, the directional baselines honour the per-node
    /// boosts. The default ignores the perturbation and schedules normally,
    /// so wrapping *any* scheduler in the feedback loop is well-defined
    /// (the loop then degenerates to returning the one-shot schedule).
    ///
    /// # Errors
    ///
    /// Returns a [`SchedError`] when the loop cannot be scheduled (malformed
    /// graph, or the II/search budget was exhausted).
    fn schedule_loop_perturbed(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        core: &Arc<LoopCore>,
        perturbation: &Perturbation,
    ) -> Result<ScheduleOutcome, SchedError> {
        let _ = perturbation;
        self.schedule_loop_with_core(ddg, machine, core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, DepKind, OpKind};
    use hrms_machine::presets;

    #[test]
    fn metrics_derive_from_schedule() {
        let mut b = DdgBuilder::new("m");
        let ld = b.node("ld", OpKind::Load, 2);
        let add = b.node("add", OpKind::FpAdd, 1);
        b.edge(ld, add, DepKind::RegFlow, 0).unwrap();
        b.invariants(1);
        let g = b.build().unwrap();
        let m = presets::govindarajan();
        let mii = MiiInfo::compute(&m, &hrms_ddg::LoopAnalysis::analyze(&g)).unwrap();
        let s = Schedule::new(1, vec![0, 2]);
        let metrics = ScheduleMetrics::compute(&g, &s, mii);
        assert_eq!(metrics.ii, 1);
        assert_eq!(metrics.mii, 1);
        assert!(metrics.ii_is_optimal());
        assert_eq!(metrics.stage_count, 3);
        assert_eq!(metrics.span, 3);
        assert_eq!(metrics.max_live, 2, "lifetime 2 at II 1 overlaps twice");
        assert_eq!(metrics.max_live_with_invariants, 3);
        assert_eq!(metrics.buffers, 2);
        assert!((metrics.ii_ratio() - 1.0).abs() < 1e-12);
        assert!(metrics.to_string().contains("II=1"));
    }

    #[test]
    fn default_config_has_a_generous_ii_cap() {
        let g = hrms_ddg::chain("c", 3, OpKind::FpAdd, 1);
        let cfg = SchedulerConfig::default();
        assert!(cfg.effective_max_ii(&g, 2) >= 2 + 3 + 3);
        let cfg = SchedulerConfig {
            max_ii: Some(7),
            ..SchedulerConfig::default()
        };
        assert_eq!(cfg.effective_max_ii(&g, 2), 7);
    }

    #[test]
    fn outcome_carries_timing_information() {
        let mut b = DdgBuilder::new("o");
        b.node("a", OpKind::FpAdd, 1);
        let g = b.build().unwrap();
        let m = presets::govindarajan();
        let mii = MiiInfo::compute(&m, &hrms_ddg::LoopAnalysis::analyze(&g)).unwrap();
        let outcome = ScheduleOutcome::new(
            &g,
            Schedule::new(1, vec![0]),
            mii,
            1,
            Duration::from_millis(3),
            Duration::from_millis(1),
        );
        assert_eq!(outcome.attempts, 1);
        assert_eq!(outcome.elapsed.as_millis(), 3);
        assert_eq!(outcome.ordering_time.as_millis(), 1);
        assert_eq!(outcome.metrics.ii, 1);
    }
}
