//! Minimum initiation interval: `MII = max(ResMII, RecMII)`.
//!
//! The Bellman-Ford cores (longest paths, positive-cycle detection, the
//! exact RecMII binary search) live in [`hrms_ddg::analysis`] so they can
//! run over the flat, latency-resolved edge list a [`LoopAnalysis`] caches
//! once per loop. The free start-time functions here keep the historical
//! `(ddg, ii)`-shaped API — each of them flattens the edge list on every
//! call; callers holding a `LoopAnalysis` use its `earliest_starts` /
//! `latest_starts` / `rec_mii` methods (or [`zero_slack_nodes`]) to reuse
//! the shared cache instead.

use hrms_ddg::analysis::{collect_dep_edges, latest_starts_from, longest_paths};
use hrms_ddg::{Ddg, LoopAnalysis, NodeId};
use hrms_machine::{res_mii, Machine};

use crate::error::SchedError;

// Re-exported from the analysis module (moved there so the shared per-loop
// cache can precompute latencies without depending on this crate); the
// `hrms_modsched::mii::dependence_latency` path remains valid.
pub use hrms_ddg::analysis::dependence_latency;

/// The three lower bounds on the initiation interval of a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiiInfo {
    /// Resource-constrained bound.
    pub res_mii: u32,
    /// Recurrence-constrained bound (0 when the loop has no recurrence).
    pub rec_mii: u32,
}

impl MiiInfo {
    /// Computes both bounds over a shared per-loop analysis: the ResMII
    /// from `machine`'s resources, the RecMII from (and cached in)
    /// `analysis` — so a scheduler that also pre-orders or computes start
    /// times pays the recurrence analysis only once, and N machines
    /// sharing one [`hrms_ddg::LoopCore`] pay it once in total.
    ///
    /// This is the single entry point (the old `compute(ddg, machine)` /
    /// `compute_with(ddg, machine, analysis)` pair collapsed into it);
    /// callers without an analysis at hand wrap the graph on the spot:
    /// `MiiInfo::compute(&machine, &LoopAnalysis::analyze(&ddg))`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::ZeroDistanceCycle`] if the loop body contains a
    /// dependence cycle of total distance zero.
    pub fn compute(machine: &Machine, analysis: &LoopAnalysis<'_>) -> Result<Self, SchedError> {
        let res = res_mii(analysis.ddg(), machine);
        let rec = analysis.rec_mii().ok_or(SchedError::ZeroDistanceCycle)?;
        Ok(MiiInfo {
            res_mii: res,
            rec_mii: rec,
        })
    }

    /// The minimum initiation interval `max(ResMII, RecMII)` (at least 1).
    pub fn mii(&self) -> u32 {
        self.res_mii.max(self.rec_mii).max(1)
    }

    /// Whether the loop is recurrence-bound (its recurrences are more
    /// restrictive than its resource usage).
    pub fn recurrence_bound(&self) -> bool {
        self.rec_mii > self.res_mii
    }
}

/// Computes the exact recurrence-constrained minimum initiation interval.
///
/// `RecMII` is the smallest II for which the dependence constraints
/// `t(v) ≥ t(u) + latency(u,v) − δ(u,v)·II` admit a solution, i.e. the
/// smallest II such that no dependence cycle has positive total weight when
/// each edge weighs `latency − δ·II`. We find it by binary search on II,
/// using a Bellman-Ford longest-path pass for the positive-cycle check; this
/// is exact and does not rely on enumerating every elementary circuit.
///
/// Returns 0 for acyclic graphs.
///
/// # Errors
///
/// Returns [`SchedError::ZeroDistanceCycle`] if a cycle of distance zero
/// exists (the constraint system is infeasible for every II).
pub fn rec_mii(ddg: &Ddg) -> Result<u32, SchedError> {
    hrms_ddg::analysis::exact_rec_mii(ddg.num_nodes(), &collect_dep_edges(ddg))
        .ok_or(SchedError::ZeroDistanceCycle)
}

/// Latency-weighted earliest start times for a *given* II, ignoring
/// resources: the longest-path solution of the dependence constraints. Used
/// by the baseline schedulers as priorities and by the slack computation.
///
/// Returns `None` if the constraints are infeasible at this II (i.e. `ii <
/// RecMII`).
pub fn earliest_starts(ddg: &Ddg, ii: u32) -> Option<Vec<i64>> {
    longest_paths(ddg.num_nodes(), &collect_dep_edges(ddg), ii)
}

/// Latest start times relative to the critical-path length `horizon`, for a
/// given II, ignoring resources. `latest[v]` is the largest start cycle of
/// `v` such that every transitive successor can still finish by `horizon`.
///
/// Returns `None` if the constraints are infeasible at this II.
pub fn latest_starts(ddg: &Ddg, ii: u32, horizon: i64) -> Option<Vec<i64>> {
    latest_starts_from(ddg.num_nodes(), &collect_dep_edges(ddg), ii, horizon)
}

/// Convenience: the set of nodes whose earliest and latest start coincide at
/// `ii` (zero slack), i.e. the nodes on the binding recurrence/critical
/// path, over a shared per-loop analysis (the cached edge list drives both
/// Bellman-Ford passes; the old `zero_slack_nodes(ddg, ii)` /
/// `zero_slack_nodes_with(analysis, ii)` pair collapsed into this).
pub fn zero_slack_nodes(analysis: &LoopAnalysis<'_>, ii: u32) -> Vec<NodeId> {
    let (ddg, edges) = (analysis.ddg(), analysis.dep_edges());
    let n = ddg.num_nodes();
    let Some(early) = longest_paths(n, edges, ii) else {
        return Vec::new();
    };
    let horizon = early.iter().copied().max().unwrap_or(0)
        + ddg
            .nodes()
            .map(|(_, node)| i64::from(node.latency()))
            .max()
            .unwrap_or(0);
    let Some(late) = latest_starts_from(n, edges, ii, horizon) else {
        return Vec::new();
    };
    let min_slack = (0..n).map(|i| late[i] - early[i]).min().unwrap_or(0);
    (0..n)
        .filter(|&i| late[i] - early[i] == min_slack)
        .map(NodeId::from_index)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_ddg::{DdgBuilder, DepKind, OpKind};
    use hrms_machine::presets;

    fn accumulator_loop() -> Ddg {
        // load -> mul -> acc(+), acc has a self-dependence of distance 1.
        let mut b = DdgBuilder::new("acc");
        let ld = b.node("ld", OpKind::Load, 2);
        let mul = b.node("mul", OpKind::FpMul, 2);
        let acc = b.node("acc", OpKind::FpAdd, 1);
        b.edge(ld, mul, DepKind::RegFlow, 0).unwrap();
        b.edge(mul, acc, DepKind::RegFlow, 0).unwrap();
        b.edge(acc, acc, DepKind::RegFlow, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn acyclic_graph_has_zero_rec_mii() {
        let g = hrms_ddg::chain("c", 5, OpKind::FpAdd, 1);
        assert_eq!(rec_mii(&g).unwrap(), 0);
        let info = MiiInfo::compute(&presets::govindarajan(), &LoopAnalysis::analyze(&g)).unwrap();
        assert_eq!(info.rec_mii, 0);
        assert_eq!(info.mii(), info.res_mii);
        assert!(!info.recurrence_bound());
    }

    #[test]
    fn self_loop_rec_mii_equals_latency_over_distance() {
        let g = accumulator_loop();
        assert_eq!(rec_mii(&g).unwrap(), 1);
        let mut b = DdgBuilder::new("slow_acc");
        let acc = b.node("acc", OpKind::FpAdd, 4);
        b.edge(acc, acc, DepKind::RegFlow, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(rec_mii(&g).unwrap(), 4);
    }

    #[test]
    fn two_node_recurrence_rec_mii() {
        // a(λ=17) -> b(λ=1) -> a with distance 2: RecMII = ceil(18/2) = 9.
        let mut b = DdgBuilder::new("r");
        let a = b.node("a", OpKind::FpDiv, 17);
        let c = b.node("c", OpKind::FpAdd, 1);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, a, DepKind::RegFlow, 2).unwrap();
        let g = b.build().unwrap();
        assert_eq!(rec_mii(&g).unwrap(), 9);
    }

    #[test]
    fn rec_mii_matches_circuit_enumeration_bound() {
        let g = accumulator_loop();
        let info = hrms_ddg::RecurrenceInfo::analyze(&g);
        assert_eq!(u64::from(rec_mii(&g).unwrap()), info.rec_mii_lower_bound());
    }

    #[test]
    fn zero_distance_cycle_is_rejected() {
        let mut b = DdgBuilder::new("bad");
        let a = b.node("a", OpKind::FpAdd, 1);
        let c = b.node("c", OpKind::FpAdd, 1);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, a, DepKind::RegFlow, 0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(rec_mii(&g), Err(SchedError::ZeroDistanceCycle));
        assert!(MiiInfo::compute(&presets::govindarajan(), &LoopAnalysis::analyze(&g)).is_err());
    }

    #[test]
    fn mii_takes_the_larger_bound() {
        let g = accumulator_loop();
        let m = presets::govindarajan();
        let info = MiiInfo::compute(&m, &LoopAnalysis::analyze(&g)).unwrap();
        // ResMII: 1 load + 1 mul + 1 add on distinct single units -> 1 each;
        // RecMII = 1; MII = 1.
        assert_eq!(info.mii(), 1);

        // Make the recurrence slower than the resources.
        let mut b = DdgBuilder::new("rec_bound");
        let acc = b.node("acc", OpKind::FpAdd, 1);
        let div = b.node("div", OpKind::FpDiv, 17);
        b.edge(acc, div, DepKind::RegFlow, 0).unwrap();
        b.edge(div, acc, DepKind::RegFlow, 1).unwrap();
        let g = b.build().unwrap();
        let info = MiiInfo::compute(&m, &LoopAnalysis::analyze(&g)).unwrap();
        assert_eq!(info.rec_mii, 18);
        assert!(info.recurrence_bound());
        assert_eq!(info.mii(), 18);
    }

    #[test]
    fn anti_dependences_only_need_issue_order() {
        let mut b = DdgBuilder::new("anti");
        let ld = b.node("ld", OpKind::Load, 2);
        let st = b.node("st", OpKind::Store, 1);
        b.edge(ld, st, DepKind::RegAnti, 0).unwrap();
        let g = b.build().unwrap();
        let (_, e) = g.edges().next().unwrap();
        assert_eq!(dependence_latency(&g, e), 1);
    }

    #[test]
    fn earliest_starts_respect_latencies() {
        let g = accumulator_loop();
        let est = earliest_starts(&g, 1).unwrap();
        assert_eq!(est, vec![0, 2, 4]);
        // Infeasible II returns None.
        let mut b = DdgBuilder::new("tight");
        let a = b.node("a", OpKind::FpAdd, 4);
        b.edge(a, a, DepKind::RegFlow, 1).unwrap();
        let g = b.build().unwrap();
        assert!(earliest_starts(&g, 3).is_none());
        assert!(earliest_starts(&g, 4).is_some());
    }

    #[test]
    fn latest_starts_are_consistent_with_earliest() {
        let g = accumulator_loop();
        let est = earliest_starts(&g, 2).unwrap();
        let horizon = 10;
        let lst = latest_starts(&g, 2, horizon).unwrap();
        for i in 0..g.num_nodes() {
            assert!(lst[i] >= est[i], "slack must be non-negative");
        }
    }

    #[test]
    fn zero_slack_nodes_lie_on_the_critical_recurrence() {
        let mut b = DdgBuilder::new("critical");
        let a = b.node("a", OpKind::FpAdd, 4);
        let c = b.node("c", OpKind::FpAdd, 4);
        let free = b.node("free", OpKind::Load, 2);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, a, DepKind::RegFlow, 1).unwrap();
        b.edge(free, c, DepKind::RegFlow, 0).unwrap();
        let g = b.build().unwrap();
        let critical = zero_slack_nodes(&LoopAnalysis::analyze(&g), 8);
        assert!(critical.contains(&a));
        assert!(critical.contains(&c));
        assert!(!critical.contains(&free));
    }
}
