//! Parallel batch scheduling engine.
//!
//! The evaluation harness (and any production deployment serving many loops
//! at once) schedules hundreds to thousands of independent loop bodies per
//! run. Each loop is a self-contained unit of work — the schedulers take
//! `&Ddg` and `&Machine` and share no mutable state — so a batch
//! parallelises trivially. [`BatchEngine`] runs a batch across a
//! [`std::thread::scope`] worker pool:
//!
//! * **Deterministic output order.** Results come back in input order, no
//!   matter how the items were interleaved across workers, so reports and
//!   differential tests are byte-stable.
//! * **Work stealing via an atomic cursor.** Workers pull the next unclaimed
//!   index, so a batch of wildly different loop sizes load-balances without
//!   any up-front partitioning.
//! * **No spawn overhead for trivial batches.** Batches of one item (or an
//!   engine configured with one worker) run inline on the caller's thread.
//!
//! ```
//! use hrms_engine::BatchEngine;
//!
//! let engine = BatchEngine::with_workers(4);
//! let squares = engine.map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod contain;

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hrms_ddg::{Ddg, LoopCore};
use hrms_machine::Machine;
use hrms_modsched::{ModuloScheduler, SchedError, ScheduleOutcome};

pub use cache::{CacheStats, ResultCache};
pub use contain::run_contained;

/// Runs one scheduler × loop cell with panic containment: a panic inside
/// the scheduler becomes a [`SchedError::Internal`] carrying the panic
/// message and source location (see [`run_contained`]) instead of
/// unwinding into the worker pool.
fn contained_cell(
    scheduler: &(dyn ModuloScheduler + Sync),
    ddg: &Ddg,
    machine: &Machine,
) -> Result<ScheduleOutcome, SchedError> {
    run_contained(|| scheduler.schedule_loop(ddg, machine)).unwrap_or_else(|what| {
        Err(SchedError::Internal {
            what: format!(
                "scheduler `{}` panicked on loop `{}`: {what}",
                scheduler.name(),
                ddg.name()
            ),
        })
    })
}

/// Schedules one loop × machine cell with panic containment and a shared
/// machine-independent analysis core: the
/// scheduler reuses the loop's [`LoopCore`] (Tarjan, cycle ratios, CSRs)
/// instead of rebuilding it, so a loop scheduled against N machines pays
/// for its structural analysis once. Public so custom batch drivers (the
/// service's cache-miss path) can schedule an arbitrary subset of
/// loop × machine cells through [`BatchEngine::map`] with the same
/// containment and core-sharing as [`BatchEngine::schedule_matrix`].
pub fn schedule_cell_with_core(
    scheduler: &(dyn ModuloScheduler + Sync),
    ddg: &Ddg,
    machine: &Machine,
    core: &Arc<LoopCore>,
) -> Result<ScheduleOutcome, SchedError> {
    run_contained(|| scheduler.schedule_loop_with_core(ddg, machine, core)).unwrap_or_else(|what| {
        Err(SchedError::Internal {
            what: format!(
                "scheduler `{}` panicked on loop `{}`: {what}",
                scheduler.name(),
                ddg.name()
            ),
        })
    })
}

/// A fixed-size scoped-thread worker pool for batches of independent work
/// items. See the crate docs for the guarantees.
#[derive(Debug, Clone)]
pub struct BatchEngine {
    workers: usize,
}

impl BatchEngine {
    /// An engine sized to the machine's available parallelism (at least 1).
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        BatchEngine { workers }
    }

    /// An engine with exactly `workers` workers (0 is clamped to 1; 1 means
    /// fully sequential, inline execution).
    pub fn with_workers(workers: usize) -> Self {
        BatchEngine {
            workers: workers.max(1),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every item and returns the results **in input order**.
    ///
    /// `f` receives the item's index and a reference to it. Items are
    /// claimed by workers through an atomic cursor, so the call order across
    /// workers is unspecified — `f` must not rely on it (the schedulers do
    /// not: each loop is independent).
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` after all workers have stopped.
    pub fn map<I, O, F>(&self, items: &[I], f: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(usize, &I) -> O + Sync,
    {
        let workers = self.workers.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        }

        let cursor = AtomicUsize::new(0);
        let buckets: Vec<Vec<(usize, O)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut produced: Vec<(usize, O)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            produced.push((i, f(i, &items[i])));
                        }
                        produced
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(bucket) => bucket,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });

        // Merge the per-worker buckets back into input order.
        let mut slots: Vec<Option<O>> = (0..items.len()).map(|_| None).collect();
        for (i, out) in buckets.into_iter().flatten() {
            slots[i] = Some(out);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index was claimed exactly once"))
            .collect()
    }

    /// Schedules every loop of `loops` with `scheduler` on `machine`,
    /// returning per-loop outcomes in input order.
    pub fn schedule_batch<S>(
        &self,
        scheduler: &S,
        loops: &[Ddg],
        machine: &Machine,
    ) -> Vec<Result<ScheduleOutcome, SchedError>>
    where
        S: ModuloScheduler + Sync + ?Sized,
    {
        self.map(loops, |_, ddg| scheduler.schedule_loop(ddg, machine))
    }

    /// Like [`BatchEngine::schedule_batch`], but every cell is an isolation
    /// boundary: a panicking scheduler yields a [`SchedError::Internal`]
    /// carrying the panic message and source location in that cell instead
    /// of unwinding through the pool. This is the entry point the batch
    /// scheduling service (`hrms serve`) uses, where one poisoned loop must
    /// never take down the batch or the connection.
    pub fn schedule_batch_contained(
        &self,
        scheduler: &(dyn ModuloScheduler + Sync),
        loops: &[Ddg],
        machine: &Machine,
    ) -> Vec<Result<ScheduleOutcome, SchedError>> {
        self.map(loops, |_, ddg| contained_cell(scheduler, ddg, machine))
    }

    /// Schedules the full cross product `schedulers × loops` on `machine`.
    ///
    /// Returns one row per scheduler, each holding the per-loop outcomes in
    /// loop order: `grid[s][l]` is scheduler `s` applied to loop `l`. All
    /// `schedulers.len() * loops.len()` cells are claimed through the same
    /// atomic cursor, so a slow scheduler does not serialise the batch, and
    /// the output shape is deterministic regardless of worker interleaving.
    /// This is the engine entry point behind `hrms schedule` (which prints
    /// cell results in loop-major order to keep the report stream stable).
    ///
    /// Each cell is an isolation boundary: a panicking scheduler yields a
    /// [`SchedError::Internal`] in that cell instead of unwinding through
    /// the pool and poisoning the remaining
    /// `schedulers.len() * loops.len() - 1` results.
    pub fn schedule_grid(
        &self,
        schedulers: &[&(dyn ModuloScheduler + Sync)],
        loops: &[Ddg],
        machine: &Machine,
    ) -> Vec<Vec<Result<ScheduleOutcome, SchedError>>> {
        let cells: Vec<(usize, usize)> = (0..schedulers.len())
            .flat_map(|s| (0..loops.len()).map(move |l| (s, l)))
            .collect();
        let mut flat = self
            .map(&cells, |_, &(s, l)| {
                contained_cell(schedulers[s], &loops[l], machine)
            })
            .into_iter();
        schedulers
            .iter()
            .map(|_| flat.by_ref().take(loops.len()).collect())
            .collect()
    }

    /// Schedules the full cross product `schedulers × loops × machines` —
    /// "one loop, N machines" batch evaluation.
    ///
    /// Returns `matrix[s][l][m]`: scheduler `s` applied to loop `l` on
    /// machine `m`, in deterministic input order regardless of worker
    /// interleaving. Every loop gets exactly **one** shared
    /// [`LoopCore`] — the machine-independent half of the analysis
    /// (Tarjan's SCCs, backward edges, the dense CSRs, the cycle-ratio
    /// λ-search, the exact RecMII) is computed by whichever cell touches
    /// the loop first and reused by every other `(scheduler, machine)`
    /// cell via [`ModuloScheduler::schedule_loop_with_core`], while the
    /// per-machine resource facts (ResMII, MRT occupancy) are recomputed
    /// per cell. The [`std::sync::OnceLock`]s inside the core make the
    /// sharing race-free under the work-stealing pool.
    ///
    /// All `schedulers.len() * loops.len() * machines.len()` cells are
    /// claimed through the same atomic cursor, and each cell is an
    /// isolation boundary exactly as in [`BatchEngine::schedule_grid`].
    pub fn schedule_matrix(
        &self,
        schedulers: &[&(dyn ModuloScheduler + Sync)],
        loops: &[Ddg],
        machines: &[Machine],
    ) -> Vec<Vec<Vec<Result<ScheduleOutcome, SchedError>>>> {
        let cores: Vec<Arc<LoopCore>> = loops.iter().map(|_| Arc::new(LoopCore::new())).collect();
        let cells: Vec<(usize, usize, usize)> = (0..schedulers.len())
            .flat_map(|s| {
                (0..loops.len()).flat_map(move |l| (0..machines.len()).map(move |m| (s, l, m)))
            })
            .collect();
        let mut flat = self
            .map(&cells, |_, &(s, l, m)| {
                schedule_cell_with_core(schedulers[s], &loops[l], &machines[m], &cores[l])
            })
            .into_iter();
        schedulers
            .iter()
            .map(|_| {
                loops
                    .iter()
                    .map(|_| flat.by_ref().take(machines.len()).collect())
                    .collect()
            })
            .collect()
    }

    /// Like [`BatchEngine::schedule_batch`] but panicking on the first loop
    /// that fails to schedule — for harness inputs that are known to be
    /// schedulable.
    pub fn must_schedule_batch<S>(
        &self,
        scheduler: &S,
        loops: &[Ddg],
        machine: &Machine,
    ) -> Vec<ScheduleOutcome>
    where
        S: ModuloScheduler + Sync + ?Sized,
    {
        self.schedule_batch(scheduler, loops, machine)
            .into_iter()
            .zip(loops)
            .map(|(result, ddg)| {
                result.unwrap_or_else(|e| {
                    panic!(
                        "scheduler `{}` failed on loop `{}`: {e}",
                        scheduler.name(),
                        ddg.name()
                    )
                })
            })
            .collect()
    }
}

impl Default for BatchEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrms_core::HrmsScheduler;
    use hrms_machine::presets;
    use hrms_workloads::LoopGenerator;

    #[test]
    fn map_preserves_input_order() {
        let engine = BatchEngine::with_workers(8);
        let items: Vec<usize> = (0..257).collect();
        let out = engine.map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn zero_workers_clamps_to_one_and_runs_inline() {
        let engine = BatchEngine::with_workers(0);
        assert_eq!(engine.workers(), 1);
        let out = engine.map(&[10, 20], |i, &x| x + i);
        assert_eq!(out, vec![10, 21]);
    }

    #[test]
    fn empty_and_single_batches_work() {
        let engine = BatchEngine::with_workers(4);
        let empty: Vec<u32> = Vec::new();
        assert!(engine.map(&empty, |_, &x| x).is_empty());
        assert_eq!(engine.map(&[7u32], |_, &x| x), vec![7]);
    }

    #[test]
    fn parallel_batch_equals_sequential_batch() {
        let loops = LoopGenerator::with_seed(11).generate(40);
        let machine = presets::perfect_club();
        let scheduler = HrmsScheduler::new();
        let sequential = BatchEngine::with_workers(1).schedule_batch(&scheduler, &loops, &machine);
        let parallel = BatchEngine::with_workers(8).schedule_batch(&scheduler, &loops, &machine);
        assert_eq!(sequential.len(), parallel.len());
        for ((s, p), ddg) in sequential.iter().zip(&parallel).zip(&loops) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            // Everything but the wall-clock timings must be identical.
            assert_eq!(s.metrics, p.metrics, "loop `{}`", ddg.name());
            assert_eq!(s.schedule, p.schedule, "loop `{}`", ddg.name());
        }
    }

    #[test]
    fn errors_land_in_the_right_slot() {
        use hrms_ddg::{DdgBuilder, DepKind, OpKind};
        let good = hrms_ddg::chain("good", 4, OpKind::FpAdd, 1);
        // A zero-distance cycle is rejected by the MII computation.
        let mut b = DdgBuilder::new("bad");
        let x = b.node("x", OpKind::FpAdd, 1);
        let y = b.node("y", OpKind::FpAdd, 1);
        b.edge(x, y, DepKind::RegFlow, 0).unwrap();
        b.edge(y, x, DepKind::RegFlow, 0).unwrap();
        let bad = b.build().unwrap();

        let loops = vec![good.clone(), bad, good];
        let engine = BatchEngine::with_workers(3);
        let results =
            engine.schedule_batch(&HrmsScheduler::new(), &loops, &presets::perfect_club());
        assert!(results[0].is_ok());
        assert!(results[1].is_err(), "the malformed loop fails");
        assert!(results[2].is_ok());
    }

    #[test]
    fn must_schedule_batch_unwraps_outcomes() {
        let loops = LoopGenerator::with_seed(3).generate(12);
        let engine = BatchEngine::with_workers(4);
        let outcomes =
            engine.must_schedule_batch(&HrmsScheduler::new(), &loops, &presets::perfect_club());
        assert_eq!(outcomes.len(), loops.len());
        for (o, ddg) in outcomes.iter().zip(&loops) {
            assert_eq!(o.schedule.len(), ddg.num_nodes());
        }
    }

    #[test]
    fn schedule_grid_matches_per_scheduler_batches() {
        use hrms_baselines::{SlackScheduler, TopDownScheduler};
        let loops = LoopGenerator::with_seed(21).generate(10);
        let machine = presets::govindarajan();
        let hrms = HrmsScheduler::new();
        let top_down = TopDownScheduler::new();
        let slack = SlackScheduler::new();
        let schedulers: Vec<&(dyn ModuloScheduler + Sync)> = vec![&hrms, &top_down, &slack];

        let engine = BatchEngine::with_workers(6);
        let grid = engine.schedule_grid(&schedulers, &loops, &machine);
        assert_eq!(grid.len(), schedulers.len());
        for (row, scheduler) in grid.iter().zip(&schedulers) {
            assert_eq!(row.len(), loops.len());
            let batch = engine.schedule_batch(*scheduler, &loops, &machine);
            for ((cell, expected), ddg) in row.iter().zip(&batch).zip(&loops) {
                let (cell, expected) = (cell.as_ref().unwrap(), expected.as_ref().unwrap());
                assert_eq!(
                    cell.schedule,
                    expected.schedule,
                    "scheduler `{}`, loop `{}`",
                    scheduler.name(),
                    ddg.name()
                );
            }
        }
    }

    #[test]
    fn schedule_matrix_matches_from_scratch_per_machine_runs() {
        use hrms_baselines::TopDownScheduler;
        let loops = LoopGenerator::with_seed(33).generate(6);
        let machines = [
            presets::general_purpose(),
            presets::govindarajan(),
            presets::perfect_club(),
            presets::perfect_club_wide(),
        ];
        let hrms = HrmsScheduler::new();
        let top_down = TopDownScheduler::new();
        let schedulers: Vec<&(dyn ModuloScheduler + Sync)> = vec![&hrms, &top_down];

        let engine = BatchEngine::with_workers(6);
        let matrix = engine.schedule_matrix(&schedulers, &loops, &machines);
        assert_eq!(matrix.len(), schedulers.len());
        for (srow, scheduler) in matrix.iter().zip(&schedulers) {
            assert_eq!(srow.len(), loops.len());
            for (lrow, ddg) in srow.iter().zip(&loops) {
                assert_eq!(lrow.len(), machines.len());
                for (cell, machine) in lrow.iter().zip(&machines) {
                    let fresh = scheduler.schedule_loop(ddg, machine).unwrap();
                    let cell = cell.as_ref().unwrap();
                    assert_eq!(
                        cell.schedule,
                        fresh.schedule,
                        "scheduler `{}`, loop `{}`, machine `{}`",
                        scheduler.name(),
                        ddg.name(),
                        machine.name()
                    );
                    assert_eq!(cell.metrics, fresh.metrics);
                }
            }
        }
    }

    #[test]
    fn schedule_matrix_shares_one_analysis_core_per_loop() {
        // Single worker → every cell runs inline on this thread, so the
        // thread-local instrumentation counters observe the whole matrix.
        let loops = LoopGenerator::with_seed(7).generate(3);
        let machines = [
            presets::general_purpose(),
            presets::govindarajan(),
            presets::perfect_club(),
            presets::perfect_club_wide(),
        ];
        let hrms = HrmsScheduler::new();
        let schedulers: Vec<&(dyn ModuloScheduler + Sync)> = vec![&hrms];

        hrms_ddg::instrument::reset();
        let matrix = BatchEngine::with_workers(1).schedule_matrix(&schedulers, &loops, &machines);
        assert!(matrix[0].iter().flatten().all(Result::is_ok));
        assert_eq!(
            hrms_ddg::instrument::tarjan_runs(),
            loops.len(),
            "one Tarjan run per loop across {} machines",
            machines.len()
        );
        assert_eq!(
            hrms_ddg::instrument::cycle_ratio_runs(),
            loops.len(),
            "one cycle-ratio λ-search per loop across {} machines",
            machines.len()
        );
    }

    #[test]
    fn schedule_matrix_with_empty_axes_keeps_its_shape() {
        let engine = BatchEngine::with_workers(2);
        let hrms = HrmsScheduler::new();
        let schedulers: Vec<&(dyn ModuloScheduler + Sync)> = vec![&hrms];
        let loops = LoopGenerator::with_seed(2).generate(2);
        let machines = [presets::govindarajan()];

        let m = engine.schedule_matrix(&schedulers, &loops, &[]);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].len(), 2);
        assert!(m[0].iter().all(Vec::is_empty));
        let m = engine.schedule_matrix(&schedulers, &[], &machines);
        assert_eq!(m.len(), 1);
        assert!(m[0].is_empty());
        let m = engine.schedule_matrix(&[], &loops, &machines);
        assert!(m.is_empty());
    }

    #[test]
    fn schedule_grid_with_no_loops_or_schedulers_is_empty() {
        let engine = BatchEngine::with_workers(2);
        let machine = presets::govindarajan();
        let hrms = HrmsScheduler::new();
        let schedulers: Vec<&(dyn ModuloScheduler + Sync)> = vec![&hrms];
        let grid = engine.schedule_grid(&schedulers, &[], &machine);
        assert_eq!(grid.len(), 1);
        assert!(grid[0].is_empty());
        let grid = engine.schedule_grid(&[], &LoopGenerator::with_seed(1).generate(2), &machine);
        assert!(grid.is_empty());
    }

    #[test]
    fn a_panicking_scheduler_fails_its_cells_and_spares_the_rest() {
        struct PanickingScheduler;
        impl ModuloScheduler for PanickingScheduler {
            fn name(&self) -> &str {
                "panicker"
            }
            fn schedule_loop(
                &self,
                ddg: &Ddg,
                _machine: &Machine,
            ) -> Result<ScheduleOutcome, SchedError> {
                panic!("induced failure on `{}`", ddg.name())
            }
        }

        // No hook juggling needed: contained panics are captured silently
        // by the engine's own panic hook, so the induced failures do not
        // spew to stderr in the first place.
        let loops = LoopGenerator::with_seed(9).generate(4);
        let machine = presets::govindarajan();
        let hrms = HrmsScheduler::new();
        let panicker = PanickingScheduler;
        let schedulers: Vec<&(dyn ModuloScheduler + Sync)> = vec![&hrms, &panicker];
        let grid = BatchEngine::with_workers(4).schedule_grid(&schedulers, &loops, &machine);

        assert!(grid[0].iter().all(Result::is_ok), "healthy row unaffected");
        for (cell, ddg) in grid[1].iter().zip(&loops) {
            match cell {
                Err(SchedError::Internal { what }) => {
                    assert!(what.contains("panicker"), "{what}");
                    assert!(what.contains(&format!("`{}`", ddg.name())), "{what}");
                    assert!(what.contains("induced failure"), "{what}");
                    // The capture hook preserves the panic site, so service
                    // clients can see *where* a cell died, not just that it
                    // did.
                    assert!(what.contains("engine/src/lib.rs:"), "{what}");
                }
                other => panic!("expected Internal error, got {other:?}"),
            }
        }
    }

    #[test]
    fn schedule_batch_contained_isolates_panicking_cells() {
        struct SelectivePanicker;
        impl ModuloScheduler for SelectivePanicker {
            fn name(&self) -> &str {
                "selective"
            }
            fn schedule_loop(
                &self,
                ddg: &Ddg,
                machine: &Machine,
            ) -> Result<ScheduleOutcome, SchedError> {
                if ddg.name().ends_with('1') {
                    panic!("unlucky loop `{}`", ddg.name())
                }
                HrmsScheduler::new().schedule_loop(ddg, machine)
            }
        }

        let loops = LoopGenerator::with_seed(14).generate(8);
        let machine = presets::perfect_club();
        let results = BatchEngine::with_workers(4).schedule_batch_contained(
            &SelectivePanicker,
            &loops,
            &machine,
        );
        assert_eq!(results.len(), loops.len());
        let mut panicked = 0;
        for (result, ddg) in results.iter().zip(&loops) {
            if ddg.name().ends_with('1') {
                panicked += 1;
                match result {
                    Err(SchedError::Internal { what }) => {
                        assert!(what.contains("unlucky"), "{what}");
                        assert!(what.contains("engine/src/lib.rs:"), "{what}");
                    }
                    other => panic!("expected Internal error, got {other:?}"),
                }
            } else {
                assert!(result.is_ok(), "loop `{}`", ddg.name());
            }
        }
        assert!(panicked >= 1, "the generated names include a ...1 loop");
    }

    #[test]
    fn feedback_wrapped_panics_are_contained_per_cell() {
        use hrms_modsched::{FeedbackConfig, IterativeRescheduler};

        // The iterative rescheduler adds no containment of its own: a panic
        // in the wrapped scheduler unwinds straight through `feedback` and
        // must be caught at the engine's cell boundary, exactly as for a
        // bare scheduler. This is what keeps `feedback:<anything>` requests
        // (including the hidden chaos scheduler) safe in the service.
        struct PanickingScheduler;
        impl ModuloScheduler for PanickingScheduler {
            fn name(&self) -> &str {
                "panicker"
            }
            fn schedule_loop(
                &self,
                ddg: &Ddg,
                machine: &Machine,
            ) -> Result<ScheduleOutcome, SchedError> {
                self.schedule_loop_with_core(ddg, machine, &Arc::new(LoopCore::new()))
            }
            fn schedule_loop_with_core(
                &self,
                ddg: &Ddg,
                _machine: &Machine,
                _core: &Arc<LoopCore>,
            ) -> Result<ScheduleOutcome, SchedError> {
                panic!("induced failure on `{}`", ddg.name())
            }
        }

        let wrapped =
            IterativeRescheduler::new(Box::new(PanickingScheduler), FeedbackConfig::default());
        let loops = LoopGenerator::with_seed(9).generate(3);
        let machine = presets::govindarajan();
        let results =
            BatchEngine::with_workers(2).schedule_batch_contained(&wrapped, &loops, &machine);
        assert_eq!(results.len(), loops.len());
        for (cell, ddg) in results.iter().zip(&loops) {
            match cell {
                Err(SchedError::Internal { what }) => {
                    assert!(what.contains("panicker+feedback"), "{what}");
                    assert!(what.contains("induced failure"), "{what}");
                    assert!(what.contains(&format!("`{}`", ddg.name())), "{what}");
                }
                other => panic!("expected Internal error, got {other:?}"),
            }
        }
    }

    #[test]
    fn dyn_schedulers_are_accepted() {
        let loops = LoopGenerator::with_seed(5).generate(6);
        let scheduler: Box<dyn ModuloScheduler + Sync> = Box::new(HrmsScheduler::new());
        let engine = BatchEngine::with_workers(2);
        let results = engine.schedule_batch(&*scheduler, &loops, &presets::perfect_club());
        assert!(results.iter().all(Result::is_ok));
    }
}
