//! Panic containment with payload and location capture.
//!
//! `std::panic::catch_unwind` returns the panic *payload*, but by the time
//! the payload reaches the catcher the panic *location* (`file:line:col`)
//! is gone — it is only observable inside the panic hook. Batch services
//! care about both: when one cell of a thousand-loop batch dies, the error
//! record streamed back to the client should say what panicked and where,
//! not just that something did.
//!
//! [`run_contained`] bridges the two: a process-wide panic hook (installed
//! once, chaining to the hook that was active before) checks a
//! thread-local "armed" flag. While a thread runs inside `run_contained`,
//! its panics are recorded — message plus location — into a thread-local
//! slot and *not* printed to stderr (a contained panic is a structured
//! result, not console noise); panics on every other thread fall through
//! to the previous hook unchanged.

use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe, PanicHookInfo};
use std::sync::Once;

thread_local! {
    /// Whether the current thread is inside [`run_contained`].
    static ARMED: Cell<bool> = const { Cell::new(false) };
    /// The rendered message of the most recent contained panic.
    static CAPTURED: RefCell<Option<String>> = const { RefCell::new(None) };
}

static INSTALL: Once = Once::new();

/// Renders a panic payload: the `&str`/`String` message when there is one,
/// a placeholder otherwise (`std::panic::panic_any` with a non-string
/// payload).
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|m| (*m).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

fn capture_hook(info: &PanicHookInfo<'_>, previous: &dyn Fn(&PanicHookInfo<'_>)) {
    if ARMED.with(Cell::get) {
        let mut message = payload_message(info.payload());
        if let Some(location) = info.location() {
            message.push_str(&format!(
                " at {}:{}:{}",
                location.file(),
                location.line(),
                location.column()
            ));
        }
        CAPTURED.with(|slot| *slot.borrow_mut() = Some(message));
    } else {
        previous(info);
    }
}

fn install_hook() {
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| capture_hook(info, &*previous)));
    });
}

/// Runs `f`, converting a panic into an `Err` describing it.
///
/// On the first call this installs a process-wide panic hook (chaining to
/// whichever hook was active, so uncontained panics behave exactly as
/// before). A panic inside `f` is captured silently — nothing is written
/// to stderr — and the error carries the payload message plus the
/// `file:line:col` panic location. If another component replaced the hook
/// after installation, the location is unavailable and the error degrades
/// to the payload message alone.
pub fn run_contained<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_hook();
    let was_armed = ARMED.with(|armed| armed.replace(true));
    CAPTURED.with(|slot| slot.borrow_mut().take());
    let result = catch_unwind(AssertUnwindSafe(f));
    ARMED.with(|armed| armed.set(was_armed));
    result.map_err(|payload| {
        CAPTURED
            .with(|slot| slot.borrow_mut().take())
            .unwrap_or_else(|| payload_message(&*payload))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_passes_through() {
        assert_eq!(run_contained(|| 41 + 1), Ok(42));
    }

    #[test]
    fn panic_message_and_location_are_captured() {
        let err = run_contained(|| -> () { panic!("boom {}", 7) }).unwrap_err();
        assert!(err.starts_with("boom 7 at "), "{err}");
        assert!(err.contains("contain.rs:"), "{err}");
    }

    #[test]
    fn str_payloads_are_captured() {
        let err = run_contained(|| -> () { panic!("plain") }).unwrap_err();
        assert!(err.starts_with("plain at "), "{err}");
    }

    #[test]
    fn non_string_payloads_degrade_gracefully() {
        let err = run_contained(|| -> () { std::panic::panic_any(13_u32) }).unwrap_err();
        assert!(err.starts_with("non-string panic payload"), "{err}");
    }

    #[test]
    fn nested_calls_restore_the_armed_state() {
        let err = run_contained(|| {
            // The inner containment consumes its own panic and restores
            // the outer arming, so the outer panic is still captured with
            // its location.
            let inner = run_contained(|| -> () { panic!("inner") });
            assert!(inner.unwrap_err().starts_with("inner at "));
            panic!("outer")
        })
        .unwrap_err();
        assert!(err.starts_with("outer at "), "{err}");
    }
}
