//! Bounded content-addressed result cache.
//!
//! [`ResultCache`] maps 64-bit content keys — in this workspace always a
//! [`hrms_ddg::cache_key`] over `(loop, machine, scheduler)` fingerprints —
//! to rendered results. The scheduling service keeps one per process so a
//! traffic mix full of duplicate hot loops pays for each distinct loop
//! once; everything after the first request for a key is a cache hit.
//!
//! The cache is strictly bounded: when an insert would exceed the
//! configured capacity, the least-recently-used entry is evicted first.
//! Hits, misses and evictions are counted ([`CacheStats`]) so a service
//! can surface cache effectiveness without any extra bookkeeping, and the
//! counters are part of the service protocol contract (`docs/SERVICE.md`).
//!
//! The cache itself is single-threaded (`&mut self`); callers that share
//! it across threads wrap it in a lock. The batch service does not need
//! to: its parallelism lives inside [`crate::BatchEngine`], and the cache
//! is consulted on the request thread before and after each batch.

use std::collections::{BTreeMap, HashMap};

/// Counters describing the lifetime behaviour of a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache (including batch-local reuse
    /// recorded via [`ResultCache::count_reuse_hit`]).
    pub hits: u64,
    /// Lookups that found nothing and forced a computation.
    pub misses: u64,
    /// Entries evicted to keep the cache within its capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum number of resident entries.
    pub capacity: usize,
}

/// A bounded LRU cache from 64-bit content keys to values.
///
/// See the module docs for the intended use; `V` is typically a rendered
/// JSON-lines result record, so replaying a hit is a string copy.
#[derive(Debug, Clone)]
pub struct ResultCache<V> {
    capacity: usize,
    /// key → (value, last-use tick).
    map: HashMap<u64, (V, u64)>,
    /// last-use tick → key; the smallest tick is the LRU entry.
    order: BTreeMap<u64, u64>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V> ResultCache<V> {
    /// A cache holding at most `capacity` entries (0 is clamped to 1 —
    /// use a request-level bypass, not a zero-sized cache, to disable
    /// caching).
    pub fn with_capacity(capacity: usize) -> Self {
        ResultCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The maximum number of resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, counting a hit or a miss and refreshing the entry's
    /// recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&key) {
            Some((value, last_use)) => {
                self.order.remove(last_use);
                self.order.insert(tick, key);
                *last_use = tick;
                self.hits += 1;
                Some(value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records a hit that was served outside the map — a batch-local
    /// duplicate of a key whose result was computed earlier in the same
    /// request and has not been inserted yet. Keeps `hits + misses` equal
    /// to the number of cells a caching service answered.
    pub fn count_reuse_hit(&mut self) {
        self.hits += 1;
    }

    /// Inserts (or replaces) `key`, evicting the least-recently-used entry
    /// first when the cache is full.
    pub fn insert(&mut self, key: u64, value: V) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, last_use)) = self.map.get(&key) {
            self.order.remove(last_use);
        } else if self.map.len() >= self.capacity {
            if let Some((&oldest_tick, &oldest_key)) = self.order.iter().next() {
                self.order.remove(&oldest_tick);
                self.map.remove(&oldest_key);
                self.evictions += 1;
            }
        }
        self.order.insert(tick, key);
        self.map.insert(key, (value, tick));
    }

    /// The lifetime counters and current occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses_are_counted() {
        let mut cache: ResultCache<&str> = ResultCache::with_capacity(4);
        assert_eq!(cache.get(1), None);
        cache.insert(1, "one");
        assert_eq!(cache.get(1), Some(&"one"));
        assert_eq!(cache.get(2), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 2, 0));
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.capacity, 4);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut cache: ResultCache<u32> = ResultCache::with_capacity(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(cache.get(1), Some(&10));
        cache.insert(3, 30);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.get(2), None, "2 was evicted");
        assert_eq!(cache.get(1), Some(&10));
        assert_eq!(cache.get(3), Some(&30));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn replacing_a_key_does_not_evict() {
        let mut cache: ResultCache<u32> = ResultCache::with_capacity(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(1, 11);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(1), Some(&11));
        assert_eq!(cache.get(2), Some(&20));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut cache: ResultCache<u32> = ResultCache::with_capacity(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reuse_hits_only_bump_the_hit_counter() {
        let mut cache: ResultCache<u32> = ResultCache::with_capacity(2);
        cache.count_reuse_hit();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 0, 0));
    }
}
