//! Dependence edges.

use std::fmt;

use crate::node::NodeId;

/// Identifier of an edge inside one [`crate::Ddg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `EdgeId` from a dense index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        EdgeId(index as u32)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The kind of a dependence between two operations.
///
/// The paper (Section 3) admits register, memory and control dependences;
/// register dependences are further split into the classical flow / anti /
/// output categories because only *flow* dependences give rise to
/// loop-variant lifetimes (and therefore register pressure), while the other
/// kinds only constrain the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum DepKind {
    /// True (read-after-write) register dependence: the consumer reads the
    /// value defined by the producer. These edges define value lifetimes.
    RegFlow,
    /// Anti (write-after-read) register dependence.
    RegAnti,
    /// Output (write-after-write) register dependence.
    RegOutput,
    /// Memory dependence (load/store ordering).
    Memory,
    /// Control dependence.
    Control,
}

impl DepKind {
    /// Whether this dependence carries a register value from producer to
    /// consumer (and therefore contributes to register lifetimes).
    #[inline]
    pub fn carries_value(self) -> bool {
        matches!(self, DepKind::RegFlow)
    }

    /// Short label used in DOT output.
    pub fn label(self) -> &'static str {
        match self {
            DepKind::RegFlow => "flow",
            DepKind::RegAnti => "anti",
            DepKind::RegOutput => "out",
            DepKind::Memory => "mem",
            DepKind::Control => "ctrl",
        }
    }

    /// Parses a label produced by [`DepKind::label`] back into the kind.
    /// This is the inverse used by the on-disk loop formats
    /// (`docs/FORMATS.md`).
    pub fn from_label(s: &str) -> Option<DepKind> {
        DepKind::ALL.into_iter().find(|k| k.label() == s)
    }

    /// All dependence kinds in a fixed order.
    pub const ALL: [DepKind; 5] = [
        DepKind::RegFlow,
        DepKind::RegAnti,
        DepKind::RegOutput,
        DepKind::Memory,
        DepKind::Control,
    ];
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One dependence edge `(u, v)` with distance `δ(u,v)`.
///
/// A distance of `0` is an intra-iteration dependence; a distance `d > 0`
/// means that the consumer of iteration `i` depends on the producer of
/// iteration `i - d` (a *loop-carried* dependence). Edges with positive
/// distance are also called *backward* edges when they close a recurrence
/// circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Edge {
    source: NodeId,
    target: NodeId,
    kind: DepKind,
    distance: u32,
}

impl Edge {
    /// Creates a new edge description.
    pub(crate) fn new(source: NodeId, target: NodeId, kind: DepKind, distance: u32) -> Self {
        Edge {
            source,
            target,
            kind,
            distance,
        }
    }

    /// The producer (source) operation.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The consumer (target) operation.
    #[inline]
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// The dependence kind.
    #[inline]
    pub fn kind(&self) -> DepKind {
        self.kind
    }

    /// The dependence distance `δ(u,v)` in iterations.
    #[inline]
    pub fn distance(&self) -> u32 {
        self.distance
    }

    /// Whether the dependence is loop-carried (distance > 0).
    #[inline]
    pub fn is_loop_carried(&self) -> bool {
        self.distance > 0
    }

    /// Whether this edge is a self-loop (a *trivial recurrence circuit* in
    /// the paper's terminology).
    #[inline]
    pub fn is_self_loop(&self) -> bool {
        self.source == self.target
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} [{}, δ={}]",
            self.source, self.target, self.kind, self.distance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_id_round_trips() {
        assert_eq!(EdgeId::from_index(42).index(), 42);
        assert_eq!(EdgeId(5).to_string(), "e5");
    }

    #[test]
    fn only_flow_edges_carry_values() {
        assert!(DepKind::RegFlow.carries_value());
        for kind in DepKind::ALL {
            if kind != DepKind::RegFlow {
                assert!(!kind.carries_value(), "{kind:?} must not carry a value");
            }
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for kind in DepKind::ALL {
            assert!(seen.insert(kind.label()));
        }
    }

    #[test]
    fn loop_carried_and_self_loop_predicates() {
        let e = Edge::new(NodeId(0), NodeId(0), DepKind::RegFlow, 1);
        assert!(e.is_loop_carried());
        assert!(e.is_self_loop());
        let e2 = Edge::new(NodeId(0), NodeId(1), DepKind::Memory, 0);
        assert!(!e2.is_loop_carried());
        assert!(!e2.is_self_loop());
    }

    #[test]
    fn display_contains_distance() {
        let e = Edge::new(NodeId(1), NodeId(2), DepKind::RegFlow, 3);
        let s = e.to_string();
        assert!(s.contains("δ=3"));
        assert!(s.contains("n1"));
        assert!(s.contains("n2"));
    }
}
