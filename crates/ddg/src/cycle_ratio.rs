//! Exact per-node maximum cycle-ratio analysis: for every operation, the
//! `RecMII` of the most critical recurrence circuit it participates in,
//! in polynomial time.
//!
//! # Why
//!
//! The pre-ordering phase of HRMS (Section 3.2 of the paper) schedules
//! recurrence subgraphs most-restrictive-first: stretching the circuit
//! with the highest `RecMII = ceil(Σλ / Ω)` (latency sum over distance
//! sum, the paper's Section 2.1 definition) would directly lengthen the
//! initiation interval. The enumeration-free grouping of
//! [`crate::recurrence`] derives every *single-backward-edge* subgraph
//! exactly, but until this module existed it coarsened the *interleaved*
//! recurrences — circuits threading two or more backward edges — into one
//! residual group per strongly connected component, ranked by the
//! component-wide `RecMII`. Sound, but on the rare loops with interleaved
//! recurrences the ranking diverged from Johnson's enumeration oracle.
//!
//! This module closes that gap. It computes, for each node `v`, the
//! **maximum cycle ratio through `v`** — the `RecMII` of the most
//! restrictive recurrence circuit containing `v` — and, as a by-product,
//! the interleaved two-backward-edge recurrence subgraphs themselves
//! (nodes *and* per-subgraph `RecMII`), which
//! [`crate::recurrence::RecurrenceGroups`] uses to split and rank the
//! former residual groups exactly where the enumeration would have.
//!
//! # Algorithm
//!
//! Everything is restricted to one (cached, Tarjan-derived) strongly
//! connected component at a time. Inside an SCC, every dependence edge
//! with distance `δ > 0` is a backward edge; dropping the `B` backward
//! edges leaves an acyclic remainder with a topological order.
//!
//! 1. **Single-edge circuits, exactly.** For each backward edge
//!    `b = (s → t)`, two latency-weighted longest-path DPs over the
//!    remainder — forward from `t` and backward to `s`, `O(V + E)` each —
//!    give for every node `v` on a `t ⇝ v ⇝ s` path the latency of the
//!    heaviest such circuit *through `v`*: `lpf(v) + lpt(v) − λ(v)`. In a
//!    DAG the two sub-paths can only meet at `v`, so the circuit is
//!    elementary and the bound `ceil((lpf + lpt − λ) / δ(b))` is exact.
//! 2. **Two-edge interleaved circuits.** An elementary circuit threading
//!    exactly the backward edges `b₁ = (s₁ → t₁)` and `b₂ = (s₂ → t₂)` is
//!    a pair of remainder paths `t₁ ⇝ s₂` and `t₂ ⇝ s₁`. Reachability of
//!    all backward-edge heads/tails is propagated once as `B`-bit sets in
//!    two linear sweeps (`O((V + E) · B/64)` word operations), so pair
//!    feasibility is two bit tests and the pair's `RecMII` bound is
//!    `ceil((L(t₁⇝s₂) + L(t₂⇝s₁)) / (δ₁ + δ₂))` from the per-edge DPs of
//!    step 1 — no path pair is ever enumerated. Per node, the same
//!    decomposition with the step-1 tables ranks every node on either
//!    segment. When the two segments cannot share a node (a shared `v`
//!    would satisfy `t₁ ⇝ v ⇝ s₁`, i.e. one edge also closes alone) every
//!    path pair is vertex-disjoint and this is provably exact; otherwise
//!    the *risky* pair reruns both segment DPs under mutual exclusion
//!    iterated to a fixpoint — each segment must avoid the other
//!    segment's endpoints and its *unavoidable* nodes (on every path of
//!    the other side, hence on every valid circuit's other half) — which
//!    kills pairs forced through a shared hub, trims nodes on no
//!    elementary circuit, and restores exactness for every shape in the
//!    differential corpora (shared-but-avoidable leftovers could still
//!    over-approximate — the suites count exactly how often that happens
//!    on real corpora: zero on the reference, generated, interleaved and
//!    spill-rewritten suites).
//! 3. **λ-search with a rooted Bellman-Ford (Lawler-style).** The exact
//!    component `RecMII` `m` is the smallest integer `λ` for which the
//!    constraint graph with edge weights `λ(src) − λ·δ` has no positive
//!    cycle. Steps 1–2 already provide a candidate that is almost always
//!    exact, so the search degenerates to one or two feasibility probes
//!    ([`crate::analysis::longest_paths`]); only when the candidate is
//!    not confirmed does a full binary search over `λ` run. If no
//!    per-node bound attains `m` (the critical circuit threads three or
//!    more backward edges), a Bellman-Ford with predecessor tracking
//!    rooted at the relaxation frontier extracts one concrete positive
//!    cycle at `λ = m − 1`; that cycle is elementary with ratio in
//!    `(m − 1, m]`, so its nodes carry **exactly** `m` and the component
//!    maximum is restored. Every per-node bound is finally clamped to
//!    `m`, making `max_v bound(v) = m` an invariant the property suite
//!    pins on every SCC.
//! 4. **Deeper interleavings.** Nodes lying only on circuits threading
//!    three or more backward edges keep the sound component-wide bound
//!    `m` — the same conservative priority the residual grouping always
//!    used, now limited to exactly the nodes that need it.
//!
//! Total cost for a component with `V` nodes, `E` edges and `B` backward
//! edges: `O(B · (V + E))` for the DPs, `O((V + E) · B/64)` for the
//! sweeps, `O(B² · V/64)` word operations for the pair spans and
//! `O(V · E)` for the (rare) confirmation probes — polynomial by
//! construction, with **no enumeration budget and no truncation**.
//!
//! The `RecMII` metric here is the paper's: circuit latency is the sum of
//! *operation* latencies `λ(v)`. The scheduling-constraint metric of
//! [`crate::analysis::exact_rec_mii`] resolves anti and output
//! dependences to issue-order latency 1 instead, so its bound is never
//! larger; the two coincide on flow-only recurrences (the entire
//! reference and generated corpora).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::analysis::{longest_paths, DepEdge};
use crate::edge::EdgeId;
use crate::graph::Ddg;
use crate::node::NodeId;
use crate::recurrence::{RecurrenceGroup, RecurrenceGroupKind};
use crate::scc;

/// The per-node maximum cycle-ratio analysis of a dependence graph, plus
/// the SCC-derived recurrence grouping it induces.
///
/// Construction is polynomial and complete — there is no enumeration
/// budget and no truncation, whatever the density of the SCCs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleRatios {
    per_node: Vec<u64>,
    groups: Vec<RecurrenceGroup>,
}

impl CycleRatios {
    /// Analyses `ddg`, running its own Tarjan pass. Callers holding a
    /// [`crate::LoopAnalysis`] use its cached
    /// [`crate::LoopAnalysis::cycle_ratios`] accessor instead so the
    /// single per-loop Tarjan run is shared.
    pub fn analyze(ddg: &Ddg) -> Self {
        Self::analyze_with_sccs(ddg, &scc::strongly_connected_components(ddg))
    }

    /// Analyses `ddg` over precomputed strongly connected components.
    pub fn analyze_with_sccs(ddg: &Ddg, sccs: &[Vec<NodeId>]) -> Self {
        crate::instrument::record_cycle_ratio_run();
        let n = ddg.num_nodes();
        let mut per_node = vec![0u64; n];
        let mut groups = Vec::new();

        let mut local_of = vec![usize::MAX; n];
        for component in sccs {
            if component.len() < 2 {
                continue;
            }
            analyze_component(ddg, component, &mut local_of, &mut per_node, &mut groups);
            for &node in component {
                local_of[node.index()] = usize::MAX;
            }
        }

        // Self-dependences: exact trivial circuits, merged after the
        // component clamp (a self-loop bounds only its own node, so it is
        // not limited by the component-wide RecMII of multi-node circuits).
        for (_, e) in ddg.edges() {
            if e.is_self_loop() {
                let v = e.source().index();
                let bound = if e.distance() > 0 {
                    u64::from(ddg.node(e.source()).latency()).div_ceil(u64::from(e.distance()))
                } else {
                    u64::MAX
                };
                per_node[v] = per_node[v].max(bound);
            }
        }

        CycleRatios { per_node, groups }
    }

    /// The per-node bound: for each node (indexed by [`NodeId`]), the
    /// `RecMII` of the most critical recurrence circuit through it, `0`
    /// for nodes on no recurrence and `u64::MAX` for nodes on a
    /// zero-distance cycle (no II satisfies such a loop).
    ///
    /// Exact for nodes whose most critical circuit threads at most two
    /// backward edges (and always for the component-wide maximum); nodes
    /// lying only on deeper interleavings carry the sound component
    /// `RecMII`.
    #[inline]
    pub fn per_node(&self) -> &[u64] {
        &self.per_node
    }

    /// The bound of one node (see [`CycleRatios::per_node`]).
    #[inline]
    pub fn bound(&self, node: NodeId) -> u64 {
        self.per_node[node.index()]
    }

    /// Lower bound on the initiation interval imposed by the recurrences,
    /// in the paper's operation-latency metric: the maximum per-node
    /// bound, i.e. the exact `RecMII` of the whole graph. Equals
    /// [`crate::circuits::RecurrenceInfo::rec_mii_lower_bound`] whenever
    /// the enumeration completes, with no budget in sight.
    pub fn rec_mii_lower_bound(&self) -> u64 {
        self.per_node.iter().copied().max().unwrap_or(0)
    }

    /// The SCC-derived recurrence groups (single-edge, interleaved pair,
    /// residual and zero-distance — self-loops are trivial circuits and
    /// are contributed by [`crate::recurrence::RecurrenceGroups`]), in
    /// derivation order. [`crate::recurrence::RecurrenceGroups`] sorts
    /// them into the ordering-phase total order.
    #[inline]
    pub fn scc_groups(&self) -> &[RecurrenceGroup] {
        &self.groups
    }
}

/// `ceil(num / den)` over the non-negative path sums used throughout.
#[inline]
fn div_ceil_u64(num: u64, den: u64) -> u64 {
    num.div_ceil(den)
}

/// One pair-span candidate of the claim sweep: a prospective recurrence
/// group with its member set as a bitset over local indices.
struct Candidate {
    kind: RecurrenceGroupKind,
    rec_mii: u64,
    backward_edges: BTreeSet<EdgeId>,
    span: Vec<u64>,
}

/// Compares two local-index bitsets as their ascending node lists compare
/// lexicographically (the tie-break [`crate::recurrence::RecurrenceGroups`]
/// uses between groups of equal `RecMII`).
fn cmp_spans(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    for (w, (wa, wb)) in a.iter().zip(b.iter()).enumerate() {
        if wa != wb {
            let low = (wa ^ wb).trailing_zeros();
            let in_a = wa >> low & 1 == 1;
            // The set holding the lowest differing element `d` is
            // lex-smaller, unless the other set has no element above `d` —
            // then the other set is a strict prefix, and prefixes sort
            // first.
            let other = if in_a { b } else { a };
            let above = u64::MAX << low << 1;
            let other_has_greater = other[w] & above != 0 || other[w + 1..].iter().any(|&x| x != 0);
            let a_smaller = in_a == other_has_greater;
            return if a_smaller {
                Ordering::Less
            } else {
                Ordering::Greater
            };
        }
    }
    Ordering::Equal
}

/// Analyses one non-trivial SCC: fills `per_node` for its members and
/// appends its recurrence groups. `local_of` is caller-provided scratch,
/// reset by the caller.
fn analyze_component(
    ddg: &Ddg,
    component: &[NodeId],
    local_of: &mut [usize],
    per_node: &mut [u64],
    groups: &mut Vec<RecurrenceGroup>,
) {
    let n = component.len();
    for (i, &node) in component.iter().enumerate() {
        local_of[node.index()] = i;
    }
    let lat: Vec<i64> = component
        .iter()
        .map(|&v| i64::from(ddg.node(v).latency()))
        .collect();

    // Collapse parallel edges per (source, target) pair keeping the
    // smallest distance (the binding choice for any cycle ratio, since
    // circuit latency is a node sum). The representative decides the
    // pair's role: distance 0 → an arc of the acyclic remainder,
    // distance > 0 → a backward edge.
    let mut reps: BTreeMap<(usize, usize), (EdgeId, u32)> = BTreeMap::new();
    for (eid, e) in ddg.edges() {
        if e.is_self_loop() {
            continue;
        }
        let (su, tu) = (local_of[e.source().index()], local_of[e.target().index()]);
        if su == usize::MAX || tu == usize::MAX {
            continue;
        }
        match reps.get(&(su, tu)) {
            Some(&(_, d)) if d <= e.distance() => {}
            _ => {
                reps.insert((su, tu), (eid, e.distance()));
            }
        }
    }

    // Backward edges (local src, local dst, EdgeId, distance), in edge-id
    // order so bit assignment and output are deterministic.
    let mut backward: Vec<(usize, usize, EdgeId, u32)> = Vec::new();
    let mut dag_succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut dag_preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (&(su, tu), &(eid, dist)) in &reps {
        if dist > 0 {
            backward.push((su, tu, eid, dist));
        } else {
            dag_succs[su].push(tu);
            dag_preds[tu].push(su);
        }
    }
    backward.sort_by_key(|&(_, _, eid, _)| eid);
    let nb = backward.len();

    // Topological order of the acyclic remainder. A failure means a
    // zero-distance cycle: no II is feasible — every member node carries
    // the infinite bound and one catch-all group keeps the component
    // prioritised by the pre-ordering.
    let Some(topo) = topo_order(&dag_succs, &dag_preds) else {
        for &node in component {
            per_node[node.index()] = u64::MAX;
        }
        groups.push(RecurrenceGroup {
            kind: RecurrenceGroupKind::ZeroDistance,
            nodes: component.to_vec(),
            backward_edges: backward.iter().map(|&(_, _, eid, _)| eid).collect(),
            rec_mii: u64::MAX,
        });
        return;
    };

    // Two linear sweeps propagate, per node, the set of backward edges
    // reachable through it: `fwd[v]` holds b iff dst(b) ⇝ v, `bwd[v]`
    // holds b iff v ⇝ src(b), both over the acyclic remainder.
    let words = nb.div_ceil(64).max(1);
    let mut fwd = vec![0u64; n * words];
    let mut bwd = vec![0u64; n * words];
    for (k, &(src, dst, _, _)) in backward.iter().enumerate() {
        fwd[dst * words + k / 64] |= 1u64 << (k % 64);
        bwd[src * words + k / 64] |= 1u64 << (k % 64);
    }
    for &v in &topo {
        for &s in &dag_succs[v] {
            for w in 0..words {
                let bits = fwd[v * words + w];
                fwd[s * words + w] |= bits;
            }
        }
    }
    for &v in topo.iter().rev() {
        for &p in &dag_preds[v] {
            for w in 0..words {
                let bits = bwd[v * words + w];
                bwd[p * words + w] |= bits;
            }
        }
    }
    let has_bit = |row: &[u64], v: usize, k: usize| row[v * words + k / 64] >> (k % 64) & 1 == 1;

    // Per backward edge k = (s → t): `lpf[k][v]` is the latency-weighted
    // longest t ⇝ v path (endpoints included), `lpt[k][v]` the longest
    // v ⇝ s path. One forward and one backward topological DP per edge.
    let mut lpf = vec![i64::MIN; nb * n];
    let mut lpt = vec![i64::MIN; nb * n];
    for (k, &(src, dst, _, _)) in backward.iter().enumerate() {
        let row = &mut lpf[k * n..(k + 1) * n];
        row[dst] = lat[dst];
        for &v in &topo {
            if row[v] == i64::MIN {
                continue;
            }
            for &s in &dag_succs[v] {
                let cand = row[v] + lat[s];
                if cand > row[s] {
                    row[s] = cand;
                }
            }
        }
        let row = &mut lpt[k * n..(k + 1) * n];
        row[src] = lat[src];
        for &v in topo.iter().rev() {
            if row[v] == i64::MIN {
                continue;
            }
            for &p in &dag_preds[v] {
                let cand = row[v] + lat[p];
                if cand > row[p] {
                    row[p] = cand;
                }
            }
        }
    }

    // --- Step 1: single-edge circuits (exact per node and per group). ---
    let mut bound = vec![0u64; n]; // per-node bound, local indices
    let mut covered = vec![false; n];
    let mut singles_max = 0u64; // witnessed by real elementary circuits
    let mut candidates: Vec<Candidate> = Vec::new();
    for (k, &(src, _, eid, dist)) in backward.iter().enumerate() {
        if !has_bit(&fwd, src, k) {
            continue; // only closes circuits together with other edges
        }
        let d = u64::from(dist);
        let group_mii = div_ceil_u64(lpf[k * n + src] as u64, d);
        singles_max = singles_max.max(group_mii);
        let mut span = vec![0u64; n.div_ceil(64)];
        for v in 0..n {
            if has_bit(&fwd, v, k) && has_bit(&bwd, v, k) {
                covered[v] = true;
                span[v / 64] |= 1u64 << (v % 64);
                let through = (lpf[k * n + v] + lpt[k * n + v] - lat[v]) as u64;
                bound[v] = bound[v].max(div_ceil_u64(through, d));
            }
        }
        candidates.push(Candidate {
            kind: RecurrenceGroupKind::SingleEdge,
            rec_mii: group_mii,
            backward_edges: BTreeSet::from([eid]),
            span,
        });
    }

    // --- Step 2: two-edge interleaved circuits. ---
    // Pair {j, k} closes a circuit iff t_j ⇝ s_k and t_k ⇝ s_j in the
    // remainder; edges sharing a source or a target can never close an
    // elementary circuit together (the shared endpoint would repeat).
    //
    // Transposed per-edge node sets make the per-pair segment work
    // word-level: `ef[k]` = {v : t_k ⇝ v}, `eb[k]` = {v : v ⇝ s_k}.
    let nw = n.div_ceil(64);
    let mut ef = vec![0u64; nb * nw];
    let mut eb = vec![0u64; nb * nw];
    for v in 0..n {
        for k in 0..nb {
            if has_bit(&fwd, v, k) {
                ef[k * nw + v / 64] |= 1u64 << (v % 64);
            }
            if has_bit(&bwd, v, k) {
                eb[k * nw + v / 64] |= 1u64 << (v % 64);
            }
        }
    }
    // Restricted-DP scratch for the risky pairs.
    let mut f1 = vec![i64::MIN; n];
    let mut t1 = vec![i64::MIN; n];
    let mut f2 = vec![i64::MIN; n];
    let mut t2 = vec![i64::MIN; n];
    let mut x1 = vec![false; n];
    let mut x2 = vec![false; n];
    for j in 0..nb {
        let (sj, dj, ej, wj) = backward[j];
        for (k, &(sk, dk, ek, wk)) in backward.iter().enumerate().skip(j + 1) {
            if sj == sk || dj == dk {
                continue;
            }
            if !has_bit(&fwd, sk, j) || !has_bit(&fwd, sj, k) {
                continue;
            }
            let den = u64::from(wj) + u64::from(wk);
            // Segment A: t_j ⇝ v ⇝ s_k; segment B: t_k ⇝ v ⇝ s_j.
            let seg_a = |w: usize| ef[j * nw + w] & eb[k * nw + w];
            let seg_b = |w: usize| ef[k * nw + w] & eb[j * nw + w];
            // When no node lies on both segments, every path pair is
            // vertex-disjoint and the unrestricted DP tables are exact:
            // a shared node v would satisfy t_j ⇝ v ⇝ s_j, so overlap
            // requires one of the edges to also close alone.
            let risky = (0..nw).any(|w| seg_a(w) & seg_b(w) != 0);
            if !risky {
                let num = (lpf[j * n + sk] + lpf[k * n + sj]) as u64;
                let rec_mii = div_ceil_u64(num, den);
                let mut span = vec![0u64; nw];
                for (w, s) in span.iter_mut().enumerate() {
                    *s = seg_a(w) | seg_b(w);
                }
                let other_a = lpf[k * n + sj];
                let other_b = lpf[j * n + sk];
                for w in 0..nw {
                    let mut abits = seg_a(w);
                    while abits != 0 {
                        let v = w * 64 + abits.trailing_zeros() as usize;
                        abits &= abits - 1;
                        covered[v] = true;
                        let num = (lpf[j * n + v] + lpt[k * n + v] - lat[v] + other_a) as u64;
                        if num > bound[v].saturating_mul(den) {
                            bound[v] = div_ceil_u64(num, den);
                        }
                    }
                    let mut bbits = seg_b(w);
                    while bbits != 0 {
                        let v = w * 64 + bbits.trailing_zeros() as usize;
                        bbits &= bbits - 1;
                        covered[v] = true;
                        let num = (lpf[k * n + v] + lpt[j * n + v] - lat[v] + other_b) as u64;
                        if num > bound[v].saturating_mul(den) {
                            bound[v] = div_ceil_u64(num, den);
                        }
                    }
                }
                candidates.push(Candidate {
                    kind: RecurrenceGroupKind::Interleaved,
                    rec_mii,
                    backward_edges: BTreeSet::from([ej.min(ek), ej.max(ek)]),
                    span,
                });
                continue;
            }
            // Risky pair: one edge also closes alone, so an unrestricted
            // path may run through the other segment's nodes and
            // manufacture a non-elementary "circuit". Recompute both
            // segments under mutual exclusion, iterated to a fixpoint:
            // segment A must avoid {s_j, t_k} (an endpoint inside the
            // opposite segment repeats on the closed walk) plus every
            // node *unavoidable* for segment B — a node on every
            // `t_k ⇝ s_j` path lies on every valid B-side choice, so no
            // elementary circuit can route the A side through it — and
            // vice versa. Each round either grows an exclusion set or
            // stops, so the loop terminates; a segment made infeasible
            // proves the pair closes no elementary circuit at all (spill
            // reload chains rejoining at the loop entry are the canonical
            // shape). Shared-but-avoidable leftovers can still
            // over-approximate the span; the differential suites count
            // how often that happens on real corpora — zero to date.
            let (tj, tk) = (dj, dk);
            x1.fill(false);
            x2.fill(false);
            x1[sj] = true;
            x1[tk] = true;
            x2[sk] = true;
            x2[tj] = true;
            let alive = loop {
                restricted_forward(&mut f1, &lat, &topo, &dag_succs, tj, &x1);
                restricted_backward(&mut t1, &lat, &topo, &dag_preds, sk, &x1);
                if f1[sk] == i64::MIN {
                    break false;
                }
                restricted_forward(&mut f2, &lat, &topo, &dag_succs, tk, &x2);
                restricted_backward(&mut t2, &lat, &topo, &dag_preds, sj, &x2);
                if f2[sj] == i64::MIN {
                    break false;
                }
                let mut grew = false;
                unavoidable_nodes(&topo, &dag_succs, &f2, &t2, |w| {
                    grew |= !x1[w];
                    x1[w] = true;
                });
                unavoidable_nodes(&topo, &dag_succs, &f1, &t1, |w| {
                    grew |= !x2[w];
                    x2[w] = true;
                });
                if !grew {
                    break true;
                }
            };
            if !alive {
                continue;
            }
            let num = (f1[sk] + f2[sj]) as u64;
            let rec_mii = div_ceil_u64(num, den);
            let mut span = vec![0u64; nw];
            for v in 0..n {
                let on_a = f1[v] != i64::MIN && t1[v] != i64::MIN;
                let on_b = f2[v] != i64::MIN && t2[v] != i64::MIN;
                if !(on_a || on_b) {
                    continue;
                }
                covered[v] = true;
                span[v / 64] |= 1u64 << (v % 64);
                let mut best = 0u64;
                if on_a {
                    best = (f1[v] + t1[v] - lat[v] + f2[sj]) as u64;
                }
                if on_b {
                    best = best.max((f2[v] + t2[v] - lat[v] + f1[sk]) as u64);
                }
                if best > bound[v].saturating_mul(den) {
                    bound[v] = div_ceil_u64(best, den);
                }
            }
            candidates.push(Candidate {
                kind: RecurrenceGroupKind::Interleaved,
                rec_mii,
                backward_edges: BTreeSet::from([ej.min(ek), ej.max(ek)]),
                span,
            });
        }
    }

    // --- Step 3: the exact component RecMII via λ-search. ---
    // The candidate from steps 1–2 is almost always the answer: `m` is
    // confirmed by feasibility probes of the constraint graph (weights
    // λ(src) − λ·δ) and only unconfirmed candidates fall back to the
    // full binary search on λ.
    let local_edges: Vec<DepEdge> = reps
        .iter()
        .map(|(&(su, tu), &(_, dist))| DepEdge {
            source: su as u32,
            target: tu as u32,
            latency: lat[su] as u32,
            distance: dist,
        })
        .collect();
    let candidate = bound.iter().copied().max().unwrap_or(0).max(1);
    let feasible = |lambda: u64| {
        u32::try_from(lambda).is_ok_and(|l| longest_paths(n, &local_edges, l).is_some())
    };
    let m = if !feasible(candidate) {
        // The candidate under-shoots: the critical circuit threads three
        // or more backward edges. Binary search (candidate, Σλ].
        let mut lo = candidate; // known infeasible
        let mut hi: u64 = lat.iter().map(|&l| l as u64).sum::<u64>().max(lo + 1);
        debug_assert!(feasible(hi), "the total latency sum is always feasible");
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if feasible(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    } else if candidate == singles_max || !feasible(candidate - 1) {
        // Witnessed by a real circuit (single-edge witness, or confirmed
        // infeasible one below): exactly the component RecMII.
        candidate
    } else {
        // A pair bound over-shot (its two maximizing segments intersect):
        // binary search down to the smallest feasible λ.
        let mut lo = singles_max.saturating_sub(1); // m ≥ singles_max
        let mut hi = candidate - 1; // known feasible
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if feasible(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    };

    // Clamp: no elementary circuit through any node can beat the
    // component RecMII, so `m` caps every per-node bound (this also
    // repairs any pair over-shoot).
    for b in bound.iter_mut() {
        *b = (*b).min(m);
    }

    // --- Step 4: deeper interleavings. ---
    // Nodes on no single- or two-edge circuit keep the sound
    // component-wide bound; the residual group (closed under remainder
    // paths between its members, so the ordering phase's convexity
    // invariant holds) carries them with exactly that priority.
    let mut residual: Option<Candidate> = None;
    if covered.iter().any(|&c| !c) {
        let mut from_left = vec![false; n];
        let mut to_left = vec![false; n];
        for v in 0..n {
            if !covered[v] {
                bound[v] = m;
                from_left[v] = true;
                to_left[v] = true;
            }
        }
        for &v in &topo {
            if from_left[v] {
                for &s in &dag_succs[v] {
                    from_left[s] = true;
                }
            }
        }
        for &v in topo.iter().rev() {
            if to_left[v] {
                for &p in &dag_preds[v] {
                    to_left[p] = true;
                }
            }
        }
        let mut span = vec![0u64; n.div_ceil(64)];
        for v in 0..n {
            if from_left[v] && to_left[v] {
                span[v / 64] |= 1u64 << (v % 64);
            }
        }
        let keyed: BTreeSet<EdgeId> = candidates
            .iter()
            .flat_map(|c| c.backward_edges.iter().copied())
            .collect();
        residual = Some(Candidate {
            kind: RecurrenceGroupKind::Residual,
            rec_mii: m,
            backward_edges: backward
                .iter()
                .map(|&(_, _, eid, _)| eid)
                .filter(|eid| !keyed.contains(eid))
                .collect(),
            span,
        });
    } else if bound.iter().all(|&b| b < m) {
        // Every node is on a shallow circuit, yet none attains the
        // component RecMII: the critical circuit threads three or more
        // backward edges. Extract one concrete positive cycle at
        // λ = m − 1 (its ratio lies in (m − 1, m], so its ceiling is
        // exactly m) and restore the maximum.
        for v in positive_cycle_nodes(n, &local_edges, m - 1) {
            bound[v] = m;
        }
    }

    // --- Claim sweep: emit the groups the ordering phase can see. ---
    // Candidates are visited in the exact total order RecurrenceGroups
    // sorts by; an interleaved pair whose members are all claimed by
    // earlier groups can never contribute a simplified node list (nor
    // change a component priority — some earlier group in the same SCC
    // ranks at least as high), so it is dropped. Single-edge groups are
    // always emitted: they are the objects the differential oracle
    // matches one-to-one.
    if let Some(r) = residual {
        candidates.push(r);
    }
    // No group may out-rank the exact component RecMII: single-edge
    // bounds are witnessed by real circuits (≤ m by definition) and the
    // residual carries m itself, but a risky pair whose restricted
    // segments still share an interior node can over-approximate —
    // clamping before the sort keeps every emitted rank (and
    // `RecurrenceGroups::rec_mii_lower_bound`) sound.
    for c in &mut candidates {
        c.rec_mii = c.rec_mii.min(m);
    }
    candidates.sort_by(|a, b| {
        b.rec_mii
            .cmp(&a.rec_mii)
            .then_with(|| cmp_spans(&a.span, &b.span))
            .then_with(|| a.backward_edges.cmp(&b.backward_edges))
    });
    let mut claimed = vec![0u64; n.div_ceil(64)];
    for c in candidates {
        let fresh = c
            .span
            .iter()
            .zip(claimed.iter())
            .any(|(s, cl)| s & !cl != 0);
        if c.kind == RecurrenceGroupKind::Interleaved && !fresh {
            continue;
        }
        let nodes: Vec<NodeId> = (0..n)
            .filter(|&v| c.span[v / 64] >> (v % 64) & 1 == 1)
            .map(|v| component[v])
            .collect();
        if nodes.len() > 1 {
            for (cl, s) in claimed.iter_mut().zip(c.span.iter()) {
                *cl |= s;
            }
        }
        groups.push(RecurrenceGroup {
            kind: c.kind,
            nodes,
            backward_edges: c.backward_edges,
            rec_mii: c.rec_mii,
        });
    }

    for (v, &node) in component.iter().enumerate() {
        per_node[node.index()] = bound[v];
    }
}

/// Emits the nodes *unavoidable* for a restricted segment — on **every**
/// path of the `root ⇝ sink` sub-graph whose members are the nodes with
/// both DP values reachable (`f`/`t` from [`restricted_forward`] /
/// [`restricted_backward`]), endpoints included.
///
/// In a DAG, a member node is unavoidable exactly when no member-to-member
/// edge jumps over its topological rank: a bypassing path must cross the
/// rank with some edge, and conversely a jumping edge `(u, v)` extends to
/// a full path `root ⇝ u → v ⇝ sink` that stays below the rank before `u`
/// and above it after `v`. One `O(V + E)` sweep.
fn unavoidable_nodes(
    topo: &[usize],
    succs: &[Vec<usize>],
    f: &[i64],
    t: &[i64],
    mut emit: impl FnMut(usize),
) {
    let mut rank = vec![usize::MAX; f.len()];
    let mut order = Vec::new();
    for &v in topo {
        if f[v] != i64::MIN && t[v] != i64::MIN {
            rank[v] = order.len();
            order.push(v);
        }
    }
    // Difference array over ranks: +1/−1 where an edge starts/stops
    // covering the strictly-interior ranks it jumps across.
    let mut cover = vec![0i64; order.len() + 1];
    for &v in &order {
        for &s in &succs[v] {
            if rank[s] != usize::MAX && rank[s] > rank[v] + 1 {
                cover[rank[v] + 1] += 1;
                cover[rank[s]] -= 1;
            }
        }
    }
    let mut covered = 0i64;
    for (r, &v) in order.iter().enumerate() {
        covered += cover[r];
        if covered == 0 {
            emit(v);
        }
    }
}

/// Longest-path DP from `root` over the topological order, with the
/// masked `excluded` nodes unusable (neither endpoints nor interior).
/// Values include both endpoints' latencies; `i64::MIN` marks
/// unreachable.
fn restricted_forward(
    out: &mut [i64],
    lat: &[i64],
    topo: &[usize],
    succs: &[Vec<usize>],
    root: usize,
    excluded: &[bool],
) {
    out.fill(i64::MIN);
    out[root] = lat[root];
    for &v in topo {
        if out[v] == i64::MIN || excluded[v] {
            continue;
        }
        for &s in &succs[v] {
            if excluded[s] {
                continue;
            }
            let cand = out[v] + lat[s];
            if cand > out[s] {
                out[s] = cand;
            }
        }
    }
}

/// The backward counterpart of [`restricted_forward`]: longest-path DP
/// *to* `root` over the reverse topological order.
fn restricted_backward(
    out: &mut [i64],
    lat: &[i64],
    topo: &[usize],
    preds: &[Vec<usize>],
    root: usize,
    excluded: &[bool],
) {
    out.fill(i64::MIN);
    out[root] = lat[root];
    for &v in topo.iter().rev() {
        if out[v] == i64::MIN || excluded[v] {
            continue;
        }
        for &p in &preds[v] {
            if excluded[p] {
                continue;
            }
            let cand = out[v] + lat[p];
            if cand > out[p] {
                out[p] = cand;
            }
        }
    }
}

/// Kahn's algorithm over local adjacency; `None` when the graph is cyclic.
fn topo_order(succs: &[Vec<usize>], preds: &[Vec<usize>]) -> Option<Vec<usize>> {
    let n = succs.len();
    let mut indegree: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = ready.pop() {
        order.push(v);
        for &s in &succs[v] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                ready.push(s);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Extracts the node set of one positive-weight cycle of the constraint
/// graph at initiation interval `lambda` (weights `latency − λ·δ`): a
/// longest-path Bellman-Ford with predecessor tracking rooted at the
/// all-zero solution; a node still relaxing after `n` rounds sits on a
/// walk from a positive cycle, and walking `n` predecessor steps lands
/// inside the cycle itself.
///
/// Only called when such a cycle exists (`lambda` is infeasible).
fn positive_cycle_nodes(n: usize, edges: &[DepEdge], lambda: u64) -> Vec<usize> {
    let ii = lambda as i64;
    let mut dist = vec![0i64; n];
    let mut pred = vec![usize::MAX; n];
    let mut frontier = usize::MAX;
    for _ in 0..=n {
        let mut changed = false;
        for e in edges {
            let w = i64::from(e.latency) - i64::from(e.distance) * ii;
            let (u, v) = (e.source as usize, e.target as usize);
            if dist[u] + w > dist[v] {
                dist[v] = dist[u] + w;
                pred[v] = u;
                frontier = v;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    debug_assert!(frontier != usize::MAX, "caller guarantees a positive cycle");
    // n predecessor steps from the relaxation frontier land on the cycle.
    let mut u = frontier;
    for _ in 0..n {
        u = pred[u];
    }
    let mut stamp = vec![false; n];
    let mut cycle = Vec::new();
    let mut v = u;
    while !stamp[v] {
        stamp[v] = true;
        cycle.push(v);
        v = pred[v];
    }
    // `u` may sit on a tail leading into the cycle; keep the cycle part.
    let start = cycle
        .iter()
        .position(|&x| x == v)
        .expect("the walk re-entered at v");
    cycle.split_off(start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::exact_rec_mii;
    use crate::circuits::RecurrenceInfo;
    use crate::recurrence::{cross_check, RecurrenceGroups};
    use crate::{DdgBuilder, DepKind, OpKind};

    /// The node-latency-metric exact RecMII of the whole graph, computed
    /// independently via the Bellman-Ford binary search.
    fn oracle_rec_mii(ddg: &Ddg) -> u64 {
        let edges: Vec<DepEdge> = ddg
            .edges()
            .map(|(_, e)| DepEdge {
                source: e.source().0,
                target: e.target().0,
                latency: ddg.node(e.source()).latency(),
                distance: e.distance(),
            })
            .collect();
        exact_rec_mii(ddg.num_nodes(), &edges).map_or(u64::MAX, u64::from)
    }

    #[test]
    fn acyclic_graph_has_all_zero_bounds() {
        let g = crate::graph::chain("c", 6, OpKind::FpAdd, 1);
        let r = CycleRatios::analyze(&g);
        assert!(r.per_node().iter().all(|&b| b == 0));
        assert_eq!(r.rec_mii_lower_bound(), 0);
        assert!(r.scc_groups().is_empty());
    }

    #[test]
    fn figure8b_per_node_bounds_are_per_circuit_exact() {
        // Paper Figure 8b: circuits {A,D,E} (RecMII 3) and {A,B,C,E}
        // (RecMII 4) share the backward edge E -> A. D lies only on the
        // shorter circuit, so its bound is 3 while A, B, C, E carry 4.
        let mut bld = DdgBuilder::new("fig8b");
        let a = bld.node("A", OpKind::FpAdd, 1);
        let b = bld.node("B", OpKind::FpAdd, 1);
        let c = bld.node("C", OpKind::FpAdd, 1);
        let d = bld.node("D", OpKind::FpAdd, 1);
        let e = bld.node("E", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, c, DepKind::RegFlow, 0).unwrap();
        bld.edge(c, e, DepKind::RegFlow, 0).unwrap();
        bld.edge(a, d, DepKind::RegFlow, 0).unwrap();
        bld.edge(d, e, DepKind::RegFlow, 0).unwrap();
        bld.edge(e, a, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let r = CycleRatios::analyze(&g);
        assert_eq!(r.bound(a), 4);
        assert_eq!(r.bound(b), 4);
        assert_eq!(r.bound(c), 4);
        assert_eq!(r.bound(d), 3, "D is only on the 3-cycle");
        assert_eq!(r.bound(e), 4);
        assert_eq!(r.rec_mii_lower_bound(), oracle_rec_mii(&g));
    }

    #[test]
    fn figure8c_distinct_recurrences_rank_their_own_nodes() {
        let mut bld = DdgBuilder::new("fig8c");
        let a = bld.node("A", OpKind::FpAdd, 2);
        let b = bld.node("B", OpKind::FpAdd, 1);
        let c = bld.node("C", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 1).unwrap();
        bld.edge(b, c, DepKind::RegFlow, 0).unwrap();
        bld.edge(c, b, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let r = CycleRatios::analyze(&g);
        assert_eq!(r.bound(a), 3);
        assert_eq!(r.bound(b), 3, "B is on both circuits; 3 binds");
        assert_eq!(r.bound(c), 2, "C is only on the B-C circuit");
        assert_eq!(r.rec_mii_lower_bound(), oracle_rec_mii(&g));
    }

    #[test]
    fn self_loop_bound_is_exact_and_local() {
        let mut bld = DdgBuilder::new("s");
        let a = bld.node("a", OpKind::FpAdd, 3);
        let b = bld.node("b", OpKind::FpAdd, 1);
        bld.edge(a, a, DepKind::RegFlow, 1).unwrap();
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        let g = bld.build().unwrap();
        let r = CycleRatios::analyze(&g);
        assert_eq!(r.bound(a), 3);
        assert_eq!(r.bound(b), 0, "b is on no circuit");
    }

    #[test]
    fn interleaved_pair_is_ranked_exactly() {
        // a → b ⇢ m → c → d ⇢ a: one circuit threading both backward
        // edges; every node carries its exact bound ceil(5/2) = 3 and the
        // pair group reproduces the enumeration's subgraph.
        let mut bld = DdgBuilder::new("bridge");
        let a = bld.node("a", OpKind::FpAdd, 1);
        let b = bld.node("b", OpKind::FpAdd, 1);
        let m = bld.node("m", OpKind::FpAdd, 1);
        let c = bld.node("c", OpKind::FpAdd, 1);
        let d = bld.node("d", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, m, DepKind::RegFlow, 1).unwrap();
        bld.edge(m, c, DepKind::RegFlow, 0).unwrap();
        bld.edge(c, d, DepKind::RegFlow, 0).unwrap();
        bld.edge(d, a, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let r = CycleRatios::analyze(&g);
        for node in [a, b, m, c, d] {
            assert_eq!(r.bound(node), 3);
        }
        let pairs: Vec<_> = r
            .scc_groups()
            .iter()
            .filter(|gr| gr.kind == RecurrenceGroupKind::Interleaved)
            .collect();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].nodes, vec![a, b, m, c, d]);
        assert_eq!(pairs[0].rec_mii, 3);
        assert_eq!(pairs[0].backward_edges.len(), 2);
        assert_eq!(r.rec_mii_lower_bound(), oracle_rec_mii(&g));
    }

    #[test]
    fn three_edge_critical_cycle_is_recovered_by_extraction() {
        // Three two-node recurrences chained into one big circuit that
        // threads all three backward edges and dominates every pair: the
        // per-node maximum must still equal the exact component RecMII.
        let mut bld = DdgBuilder::new("deep");
        let ids: Vec<NodeId> = (0..6)
            .map(|i| bld.node(format!("n{i}"), OpKind::FpAdd, 4))
            .collect();
        // DAG arcs: 0→1, 2→3, 4→5.
        bld.edge(ids[0], ids[1], DepKind::RegFlow, 0).unwrap();
        bld.edge(ids[2], ids[3], DepKind::RegFlow, 0).unwrap();
        bld.edge(ids[4], ids[5], DepKind::RegFlow, 0).unwrap();
        // Backward bridges 1⇢2, 3⇢4, 5⇢0 close only the 6-node circuit.
        bld.edge(ids[1], ids[2], DepKind::RegFlow, 1).unwrap();
        bld.edge(ids[3], ids[4], DepKind::RegFlow, 1).unwrap();
        bld.edge(ids[5], ids[0], DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let r = CycleRatios::analyze(&g);
        // The only circuit: 24 latency over distance 3 → RecMII 8.
        assert_eq!(oracle_rec_mii(&g), 8);
        assert_eq!(r.rec_mii_lower_bound(), 8);
        for &node in &ids {
            assert_eq!(r.bound(node), 8, "every node is on the circuit");
        }
    }

    #[test]
    fn covered_nodes_on_a_deep_critical_cycle_are_lifted_by_extraction() {
        // Same six-node three-backward-edge circuit, but every node is
        // also covered by a cheap single-edge circuit (distance 3, RecMII
        // 3). The critical circuit threads three backward edges — invisible
        // to the single- and pair-edge passes — so only the positive-cycle
        // extraction at λ = m − 1 can restore the component maximum of 8.
        let mut bld = DdgBuilder::new("deep_covered");
        let ids: Vec<NodeId> = (0..6)
            .map(|i| bld.node(format!("n{i}"), OpKind::FpAdd, 4))
            .collect();
        bld.edge(ids[0], ids[1], DepKind::RegFlow, 0).unwrap();
        bld.edge(ids[2], ids[3], DepKind::RegFlow, 0).unwrap();
        bld.edge(ids[4], ids[5], DepKind::RegFlow, 0).unwrap();
        bld.edge(ids[1], ids[2], DepKind::RegFlow, 1).unwrap();
        bld.edge(ids[3], ids[4], DepKind::RegFlow, 1).unwrap();
        bld.edge(ids[5], ids[0], DepKind::RegFlow, 1).unwrap();
        // Cheap covers: 1⇢0, 3⇢2, 5⇢4 at distance 3 (RecMII ceil(8/3) = 3).
        bld.edge(ids[1], ids[0], DepKind::RegFlow, 3).unwrap();
        bld.edge(ids[3], ids[2], DepKind::RegFlow, 3).unwrap();
        bld.edge(ids[5], ids[4], DepKind::RegFlow, 3).unwrap();
        let g = bld.build().unwrap();
        assert_eq!(oracle_rec_mii(&g), 8);
        let r = CycleRatios::analyze(&g);
        assert_eq!(r.rec_mii_lower_bound(), 8, "extraction restores the max");
        for &node in &ids {
            assert_eq!(r.bound(node), 8, "every node is on the 24/3 circuit");
        }
    }

    #[test]
    fn forced_shared_hub_pair_closes_nothing() {
        // Two single-edge recurrences whose return paths both run through
        // one hub (the shape spill reload chains produce around the loop
        // entry): every candidate pair circuit would visit the hub twice,
        // so the pair must be recognised as closing no elementary circuit
        // — the mutual-exclusion fixpoint makes one segment infeasible.
        let mut bld = DdgBuilder::new("hub");
        let h = bld.node("h", OpKind::FpAdd, 1);
        let a1 = bld.node("a1", OpKind::FpAdd, 1);
        let a2 = bld.node("a2", OpKind::FpAdd, 1);
        let a3 = bld.node("a3", OpKind::FpAdd, 1);
        let b1 = bld.node("b1", OpKind::FpAdd, 1);
        let b2 = bld.node("b2", OpKind::FpAdd, 1);
        let b3 = bld.node("b3", OpKind::FpAdd, 1);
        bld.edge(h, a1, DepKind::RegFlow, 0).unwrap();
        bld.edge(a1, a2, DepKind::RegFlow, 0).unwrap();
        bld.edge(a2, a3, DepKind::RegFlow, 1).unwrap(); // backward
        bld.edge(a3, h, DepKind::RegFlow, 0).unwrap();
        bld.edge(h, b1, DepKind::RegFlow, 0).unwrap();
        bld.edge(b1, b2, DepKind::RegFlow, 0).unwrap();
        bld.edge(b2, b3, DepKind::RegFlow, 2).unwrap(); // backward
        bld.edge(b3, h, DepKind::RegFlow, 0).unwrap();
        let g = bld.build().unwrap();
        let r = CycleRatios::analyze(&g);
        assert!(
            r.scc_groups()
                .iter()
                .all(|gr| gr.kind == RecurrenceGroupKind::SingleEdge),
            "no pair group may be fabricated: {:?}",
            r.scc_groups()
        );
        assert_eq!(r.scc_groups().len(), 2);
        // The hub carries the more restrictive of its two circuits.
        assert_eq!(r.bound(h), 4, "A-circuit: 4 latency over distance 1");
    }

    #[test]
    fn avoidable_overlap_pair_is_trimmed_to_the_elementary_span() {
        // Pair {6⇢0, 9⇢1} where the B segment (1 → 2 → 6) is forced
        // through node 2, so valid A segments must avoid 2: the node 4
        // (reachable only via 2) lies on unrestricted 0 ⇝ 9 paths but on
        // no elementary pair circuit, and the fixpoint must trim it out
        // of the span — matching the enumeration exactly.
        let mut bld = DdgBuilder::new("trim");
        let ids: Vec<NodeId> = (0..8)
            .map(|i| bld.node(format!("n{i}"), OpKind::FpAdd, 1))
            .collect();
        let e = |bld: &mut DdgBuilder, s: usize, t: usize, d: u32| {
            bld.edge(ids[s], ids[t], DepKind::RegFlow, d).unwrap();
        };
        // Indices: 0, 1, 2 (shared), 3 (=the trimmed node), 4..6 = bypass
        // chain, 7 = sink of both segments.
        e(&mut bld, 0, 2, 0); // 0 -> 2
        e(&mut bld, 1, 2, 0); // 1 -> 2
        e(&mut bld, 2, 3, 0); // 2 -> 3
        e(&mut bld, 3, 7, 0); // 3 -> 7
        e(&mut bld, 0, 4, 0); // bypass 0 -> 4 -> 5 -> 7
        e(&mut bld, 4, 5, 0);
        e(&mut bld, 5, 7, 0);
        e(&mut bld, 2, 6, 0); // 2 -> 6 closes the B side
        e(&mut bld, 6, 0, 1); // backward B: 6 ⇢ 0
        e(&mut bld, 7, 1, 1); // backward A: 7 ⇢ 1
        let g = bld.build().unwrap();
        let groups = RecurrenceGroups::analyze(&g);
        let oracle = RecurrenceInfo::analyze_with_budget(&g, usize::MAX);
        let report = cross_check(&groups, &oracle).unwrap();
        assert!(report.is_exact(), "{report:?}");
        let pair = groups
            .groups
            .iter()
            .find(|gr| gr.kind == RecurrenceGroupKind::Interleaved)
            .expect("the pair closes through the bypass chain");
        assert!(
            !pair.nodes.contains(&ids[3]),
            "node 3 is only on non-elementary pair walks: {:?}",
            pair.nodes
        );
    }

    #[test]
    fn zero_distance_cycle_bounds_are_infinite() {
        let mut bld = DdgBuilder::new("bad");
        let a = bld.node("a", OpKind::FpAdd, 1);
        let b = bld.node("b", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 0).unwrap();
        let g = bld.build().unwrap();
        let r = CycleRatios::analyze(&g);
        assert_eq!(r.bound(a), u64::MAX);
        assert_eq!(r.bound(b), u64::MAX);
        assert_eq!(r.rec_mii_lower_bound(), u64::MAX);
    }

    #[test]
    fn dense_scc_bounds_without_any_budget() {
        // Complete digraph on 10 nodes, every edge loop-carried: ~1.1M
        // elementary circuits, all of ratio 1.
        let mut bld = DdgBuilder::new("dense");
        let ids: Vec<NodeId> = (0..10)
            .map(|i| bld.node(format!("n{i}"), OpKind::FpAdd, 1))
            .collect();
        for &u in &ids {
            for &v in &ids {
                if u != v {
                    bld.edge(u, v, DepKind::RegFlow, 1).unwrap();
                }
            }
        }
        let g = bld.build().unwrap();
        let r = CycleRatios::analyze(&g);
        for &node in &ids {
            assert_eq!(r.bound(node), 1);
        }
        assert_eq!(r.rec_mii_lower_bound(), oracle_rec_mii(&g));
    }

    #[test]
    fn analysis_is_deterministic() {
        let mut bld = DdgBuilder::new("det");
        let ids: Vec<NodeId> = (0..12)
            .map(|i| bld.node(format!("n{i}"), OpKind::FpAdd, 1 + (i % 3) as u32))
            .collect();
        for i in 0..11 {
            bld.edge(ids[i], ids[i + 1], DepKind::RegFlow, 0).unwrap();
        }
        for (s, t, d) in [(5, 1, 1), (8, 4, 2), (10, 0, 1), (7, 6, 1)] {
            bld.edge(ids[s], ids[t], DepKind::RegFlow, d).unwrap();
        }
        let g = bld.build().unwrap();
        assert_eq!(CycleRatios::analyze(&g), CycleRatios::analyze(&g));
    }

    #[test]
    fn span_comparison_matches_node_list_lexicographic_order() {
        let set = |bits: &[usize]| {
            let mut w = vec![0u64; 2];
            for &b in bits {
                w[b / 64] |= 1 << (b % 64);
            }
            w
        };
        let cases: [(&[usize], &[usize]); 5] = [
            (&[1, 5], &[1, 6]),
            (&[1, 5], &[1, 5, 9]),
            (&[2], &[1, 3]),
            (&[0, 70], &[0, 71]),
            (&[3, 4], &[3, 4]),
        ];
        for (a, b) in cases {
            let la: Vec<usize> = a.to_vec();
            let lb: Vec<usize> = b.to_vec();
            assert_eq!(cmp_spans(&set(a), &set(b)), la.cmp(&lb), "{la:?} vs {lb:?}");
        }
    }
}
