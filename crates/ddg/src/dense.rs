//! Dense, allocation-light graph representations: a u64-word bitset
//! ([`NodeSet`]), a compressed-sparse-row adjacency ([`Csr`]) and index-based
//! ports of the graph routines the pre-ordering phase leans on
//! ([`search_all_paths`], [`reachable`], [`sort_asap`], [`sort_pala`]).
//!
//! The generic routines in [`crate::paths`] and [`crate::topo`] work on any
//! [`crate::GraphView`] but pay for it with per-call `HashMap`/`HashSet`
//! allocations and `Vec<NodeId>` adjacency copies. The pre-ordering phase of
//! HRMS calls them once per hypernode-reduction step, so on large loop bodies
//! the hashing dominates the paper's claimed `O(|V| + |E|)` footprint
//! (footnote 2). This module provides the same semantics over dense node
//! indices:
//!
//! * [`NodeSet`] — a fixed-capacity bitset over node indices with
//!   deterministic ascending iteration (the dense analogue of the
//!   `BTreeSet<NodeId>` used by the legacy work graph);
//! * [`Csr`] — an immutable compressed-sparse-row view of a [`Ddg`] with
//!   deduplicated, sorted neighbour slices, optionally excluding a set of
//!   edges (the backward edges of recurrence circuits) — the representation
//!   dense subgraph-extraction schedulers use for repeated region queries;
//! * [`DenseAdjacency`] — the minimal adjacency interface shared by [`Csr`]
//!   and the dense work graph of `hrms-core`;
//! * [`search_all_paths`] / [`reachable`] — the paper's `Search_All_Paths`
//!   on bitsets (two BFS sweeps, no hashing);
//! * [`sort_asap`] / [`sort_pala`] — Kahn's algorithm on index arrays with a
//!   binary min-heap ready list, producing exactly the same deterministic
//!   order (sources first / sinks first, ties by node id) as the generic
//!   sorts.
//!
//! Every routine here is checked against its generic counterpart by the
//! equivalence tests at the bottom of this file and by the differential
//! pre-ordering suite in the workspace-level tests.

use std::collections::HashSet;

use crate::edge::EdgeId;
use crate::graph::Ddg;
use crate::node::NodeId;
use crate::topo::CycleError;

/// A fixed-capacity set of node indices backed by u64 words.
///
/// Iteration order is ascending by index, matching the deterministic
/// traversal order of the `BTreeSet<NodeId>`-based structures it replaces.
/// Membership tests, insertion and removal are `O(1)` word operations;
/// whole-set operations (union, intersection, difference, length, clear)
/// are `O(bound / 64)` word sweeps.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeSet {
    words: Vec<u64>,
    bound: usize,
}

impl NodeSet {
    /// An empty set able to hold indices `0..bound`.
    pub fn new(bound: usize) -> Self {
        NodeSet {
            words: vec![0; bound.div_ceil(64)],
            bound,
        }
    }

    /// Builds a set from an iterator of indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(bound: usize, indices: I) -> Self {
        let mut s = NodeSet::new(bound);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// The capacity bound this set was created with.
    #[inline]
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Whether `i` is in the set. Out-of-bound indices are never members.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.bound && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Inserts `i`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bound`.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.bound, "index {i} out of bound {}", self.bound);
        let (w, m) = (i / 64, 1u64 << (i % 64));
        let fresh = self.words[w] & m == 0;
        self.words[w] |= m;
        fresh
    }

    /// Removes `i`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.bound {
            return false;
        }
        let (w, m) = (i / 64, 1u64 << (i % 64));
        let present = self.words[w] & m != 0;
        self.words[w] &= !m;
        present
    }

    /// Number of members (one popcount per word, `O(bound / 64)`).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every member.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// The smallest member, if any.
    pub fn min(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// In-place union with `other` (same bound required).
    pub fn union_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.bound, other.bound);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other` (same bound required).
    pub fn intersect_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.bound, other.bound);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: removes every member of `other`.
    pub fn difference_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.bound, other.bound);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Whether the two sets share any member.
    pub fn intersects(&self, other: &NodeSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterates over the members in ascending index order.
    pub fn iter(&self) -> NodeSetIter<'_> {
        NodeSetIter {
            words: &self.words,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The members as [`NodeId`]s in ascending order.
    pub fn to_node_ids(&self) -> Vec<NodeId> {
        self.iter().map(NodeId::from_index).collect()
    }
}

/// Ascending iterator over the members of a [`NodeSet`].
#[derive(Debug, Clone)]
pub struct NodeSetIter<'a> {
    words: &'a [u64],
    word_index: usize,
    current: u64,
}

impl Iterator for NodeSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_index * 64 + bit);
            }
            self.word_index += 1;
            if self.word_index >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_index];
        }
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = usize;
    type IntoIter = NodeSetIter<'a>;

    fn into_iter(self) -> NodeSetIter<'a> {
        self.iter()
    }
}

/// Minimal adjacency interface shared by [`Csr`] and the dense work graph of
/// `hrms-core`; the dense graph routines below are generic over it.
///
/// Implementations must report each distinct live neighbour exactly once, in
/// ascending index order, and must never report dead (removed) nodes.
pub trait DenseAdjacency {
    /// Upper bound on node indices.
    fn node_bound(&self) -> usize;
    /// Whether node `i` currently exists.
    fn is_live(&self, i: usize) -> bool;
    /// Calls `f` for every distinct successor of `i`, ascending.
    fn for_each_succ(&self, i: usize, f: &mut dyn FnMut(usize));
    /// Calls `f` for every distinct predecessor of `i`, ascending.
    fn for_each_pred(&self, i: usize, f: &mut dyn FnMut(usize));
}

/// An immutable compressed-sparse-row adjacency of a [`Ddg`].
///
/// Parallel edges are collapsed and self-loops skipped (the pre-ordering
/// only needs adjacency, not multiplicity, and self-loops never constrain
/// it); neighbour slices are sorted ascending. Optionally a set of edges —
/// the backward edges of recurrence circuits — is excluded, which makes the
/// represented graph acyclic for well-formed loop bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    bound: usize,
    succ_offsets: Vec<u32>,
    succ_targets: Vec<u32>,
    pred_offsets: Vec<u32>,
    pred_sources: Vec<u32>,
}

impl Csr {
    /// Builds the full (deduplicated, self-loop-free) adjacency of `ddg` in
    /// `O(|V| + |E| log d)` (the log factor from sorting each neighbour
    /// row of degree `d`).
    pub fn from_graph(ddg: &Ddg) -> Self {
        Self::filtered(ddg, &HashSet::new())
    }

    /// Builds the adjacency of `ddg` excluding `dropped` edges (and
    /// self-loops); same cost as [`Csr::from_graph`] plus one hash probe
    /// per edge.
    pub fn filtered(ddg: &Ddg, dropped: &HashSet<EdgeId>) -> Self {
        let n = ddg.num_nodes();
        let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut pred: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (eid, e) in ddg.edges() {
            if e.is_self_loop() || dropped.contains(&eid) {
                continue;
            }
            succ[e.source().index()].push(e.target().0);
            pred[e.target().index()].push(e.source().0);
        }
        let flatten = |rows: &mut Vec<Vec<u32>>| {
            let mut offsets = Vec::with_capacity(n + 1);
            let mut flat = Vec::new();
            offsets.push(0u32);
            for row in rows.iter_mut() {
                row.sort_unstable();
                row.dedup();
                flat.extend_from_slice(row);
                offsets.push(flat.len() as u32);
            }
            (offsets, flat)
        };
        let (succ_offsets, succ_targets) = flatten(&mut succ);
        let (pred_offsets, pred_sources) = flatten(&mut pred);
        Csr {
            bound: n,
            succ_offsets,
            succ_targets,
            pred_offsets,
            pred_sources,
        }
    }

    /// Distinct successors of `i`, ascending.
    #[inline]
    pub fn succs(&self, i: usize) -> &[u32] {
        &self.succ_targets[self.succ_offsets[i] as usize..self.succ_offsets[i + 1] as usize]
    }

    /// Distinct predecessors of `i`, ascending.
    #[inline]
    pub fn preds(&self, i: usize) -> &[u32] {
        &self.pred_sources[self.pred_offsets[i] as usize..self.pred_offsets[i + 1] as usize]
    }

    /// Whether node `i` has any (undirected) neighbour in `set` — used by
    /// the pre-ordering fallback to find a remaining node that has a
    /// reference operation among the already-ordered ones. `O(degree(i))`.
    pub fn has_neighbour_in(&self, i: usize, set: &NodeSet) -> bool {
        self.succs(i).iter().any(|&t| set.contains(t as usize))
            || self.preds(i).iter().any(|&s| set.contains(s as usize))
    }
}

impl DenseAdjacency for Csr {
    fn node_bound(&self) -> usize {
        self.bound
    }

    fn is_live(&self, i: usize) -> bool {
        i < self.bound
    }

    fn for_each_succ(&self, i: usize, f: &mut dyn FnMut(usize)) {
        for &t in self.succs(i) {
            f(t as usize);
        }
    }

    fn for_each_pred(&self, i: usize, f: &mut dyn FnMut(usize)) {
        for &s in self.preds(i) {
            f(s as usize);
        }
    }
}

/// Traversal direction for [`reachable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Follow successor edges.
    Forward,
    /// Follow predecessor edges.
    Backward,
}

/// The set of nodes reachable from `seeds` in direction `dir`, **excluding**
/// the seeds themselves unless they are re-reached (through a cycle or from
/// another seed) — the dense port of the BFS in [`crate::paths`]. Duplicate
/// and dead seeds are ignored. `O(|V| + |E|)` with two bitset insertions
/// per visited node and no hashing.
pub fn reachable<G: DenseAdjacency + ?Sized>(graph: &G, seeds: &[usize], dir: Dir) -> NodeSet {
    let bound = graph.node_bound();
    let mut visited = NodeSet::new(bound);
    let mut queued = NodeSet::new(bound);
    let mut stack: Vec<usize> = Vec::with_capacity(seeds.len());
    for &s in seeds {
        // Deduplicate the seed frontier: a seed passed twice must not be
        // traversed twice (and, transitively, must not re-enqueue its whole
        // reachable set).
        if graph.is_live(s) && queued.insert(s) {
            stack.push(s);
        }
    }
    while let Some(v) = stack.pop() {
        let mut visit = |w: usize| {
            if visited.insert(w) {
                stack.push(w);
            }
        };
        match dir {
            Dir::Forward => graph.for_each_succ(v, &mut visit),
            Dir::Backward => graph.for_each_pred(v, &mut visit),
        }
    }
    visited
}

/// Every node lying on some directed path between two (not necessarily
/// distinct) seeds, including the seeds themselves — the dense port of
/// [`crate::paths::search_all_paths`], computed as
/// `reachable(seeds, forward) ∩ reachable(seeds, backward) ∪ seeds` with two
/// bitset BFS sweeps in `O(|V| + |E|)`.
pub fn search_all_paths<G: DenseAdjacency + ?Sized>(graph: &G, seeds: &[usize]) -> NodeSet {
    let mut result = reachable(graph, seeds, Dir::Forward);
    result.intersect_with(&reachable(graph, seeds, Dir::Backward));
    for &s in seeds {
        if graph.is_live(s) {
            result.insert(s);
        }
    }
    result
}

/// Reusable buffers for the dense Kahn sorts.
///
/// The pre-ordering phase runs one topological sort per hypernode-reduction
/// step — up to `O(|V|)` of them per loop — so zeroing a bound-sized degree
/// array for every call would itself be quadratic. The scratch keeps the
/// array across calls and invalidates stale entries with an epoch stamp
/// instead of re-zeroing.
#[derive(Debug, Clone, Default)]
pub struct KahnScratch {
    degree: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl KahnScratch {
    /// A fresh scratch; it grows lazily to the bound of the graphs it is
    /// used with.
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, bound: usize) {
        if self.degree.len() < bound {
            self.degree.resize(bound, 0);
            self.stamp.resize(bound, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap-around: reset the stamps so no stale entry
            // can alias the new epoch.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    #[inline]
    fn get(&self, v: usize) -> u32 {
        if self.stamp[v] == self.epoch {
            self.degree[v]
        } else {
            0
        }
    }

    #[inline]
    fn set(&mut self, v: usize, d: u32) {
        self.degree[v] = d;
        self.stamp[v] = self.epoch;
    }
}

/// Kahn's topological sort of `subset` **sources first**, ties broken by
/// node index — the dense port of [`crate::topo::sort_asap`]. Only edges
/// with both endpoints in `subset` count. `O((V' + E') log V')` over the
/// subset's `V'` nodes and `E'` induced edges (the log from the min-heap
/// ready list); allocates a fresh [`KahnScratch`], so hot paths should use
/// [`sort_asap_scratch`].
///
/// # Errors
///
/// Returns [`CycleError`] if the induced subgraph is cyclic.
pub fn sort_asap<G: DenseAdjacency + ?Sized>(
    graph: &G,
    subset: &NodeSet,
) -> Result<Vec<usize>, CycleError> {
    kahn(graph, subset, Dir::Forward, &mut KahnScratch::new())
}

/// Kahn's topological sort of `subset` **sinks first** (the paper's
/// `Sort_PALA`), ties broken by node index — the dense port of
/// [`crate::topo::sort_pala`]. Same `O((V' + E') log V')` cost and scratch
/// caveat as [`sort_asap`].
///
/// # Errors
///
/// Returns [`CycleError`] if the induced subgraph is cyclic.
pub fn sort_pala<G: DenseAdjacency + ?Sized>(
    graph: &G,
    subset: &NodeSet,
) -> Result<Vec<usize>, CycleError> {
    kahn(graph, subset, Dir::Backward, &mut KahnScratch::new())
}

/// [`sort_asap`] with a caller-provided [`KahnScratch`] (hot-path variant).
///
/// # Errors
///
/// Returns [`CycleError`] if the induced subgraph is cyclic.
pub fn sort_asap_scratch<G: DenseAdjacency + ?Sized>(
    graph: &G,
    subset: &NodeSet,
    scratch: &mut KahnScratch,
) -> Result<Vec<usize>, CycleError> {
    kahn(graph, subset, Dir::Forward, scratch)
}

/// [`sort_pala`] with a caller-provided [`KahnScratch`] (hot-path variant).
///
/// # Errors
///
/// Returns [`CycleError`] if the induced subgraph is cyclic.
pub fn sort_pala_scratch<G: DenseAdjacency + ?Sized>(
    graph: &G,
    subset: &NodeSet,
    scratch: &mut KahnScratch,
) -> Result<Vec<usize>, CycleError> {
    kahn(graph, subset, Dir::Backward, scratch)
}

fn kahn<G: DenseAdjacency + ?Sized>(
    graph: &G,
    subset: &NodeSet,
    dir: Dir,
    scratch: &mut KahnScratch,
) -> Result<Vec<usize>, CycleError> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    scratch.begin(graph.node_bound());
    let mut members = 0usize;
    // The ready heap always pops the smallest remaining index, which matches
    // the sorted ready list of the generic Kahn implementation exactly.
    let mut ready: BinaryHeap<Reverse<usize>> = BinaryHeap::new();
    for v in subset.iter() {
        members += 1;
        let mut d = 0u32;
        let mut count = |w: usize| {
            if w != v && subset.contains(w) {
                d += 1;
            }
        };
        match dir {
            Dir::Forward => graph.for_each_pred(v, &mut count),
            Dir::Backward => graph.for_each_succ(v, &mut count),
        }
        scratch.set(v, d);
        if d == 0 {
            ready.push(Reverse(v));
        }
    }

    let mut order = Vec::with_capacity(members);
    let mut nbuf: Vec<usize> = Vec::new();
    while let Some(Reverse(v)) = ready.pop() {
        order.push(v);
        nbuf.clear();
        {
            let mut collect = |w: usize| {
                if w != v && subset.contains(w) {
                    nbuf.push(w);
                }
            };
            match dir {
                Dir::Forward => graph.for_each_succ(v, &mut collect),
                Dir::Backward => graph.for_each_pred(v, &mut collect),
            }
        }
        for &w in &nbuf {
            let d = scratch.get(w) - 1;
            scratch.set(w, d);
            if d == 0 {
                ready.push(Reverse(w));
            }
        }
    }

    if order.len() != members {
        let placed = NodeSet::from_indices(graph.node_bound(), order.iter().copied());
        let stuck: Vec<NodeId> = subset
            .iter()
            .filter(|&v| !placed.contains(v))
            .map(NodeId::from_index)
            .collect();
        return Err(CycleError { stuck });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paths, topo, DdgBuilder, DepKind, GraphView, OpKind};

    #[test]
    fn nodeset_insert_remove_contains() {
        let mut s = NodeSet::new(200);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(199));
        assert!(!s.insert(64), "second insert reports already-present");
        assert_eq!(s.len(), 4);
        assert!(s.contains(63));
        assert!(!s.contains(62));
        assert!(!s.contains(1000), "out of bound is never a member");
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.len(), 3);
        assert_eq!(s.min(), Some(0));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
    }

    #[test]
    fn nodeset_iterates_ascending() {
        let s = NodeSet::from_indices(300, [257, 0, 64, 65, 3, 128]);
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 3, 64, 65, 128, 257]);
        assert_eq!(
            s.to_node_ids(),
            got.iter()
                .map(|&i| NodeId::from_index(i))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn nodeset_set_operations() {
        let a = NodeSet::from_indices(128, [1, 2, 70]);
        let b = NodeSet::from_indices(128, [2, 70, 99]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 70, 99]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 70]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);
        assert!(a.intersects(&b));
        assert!(!d.intersects(&b));
    }

    /// A small irregular DAG plus one cycle, used by the equivalence tests.
    fn sample() -> Ddg {
        let mut b = DdgBuilder::new("dense_sample");
        let ids: Vec<NodeId> = (0..10)
            .map(|i| b.node(format!("n{i}"), OpKind::FpAdd, 1))
            .collect();
        let edges = [
            (0, 2),
            (0, 3),
            (1, 3),
            (2, 4),
            (3, 4),
            (3, 5),
            (4, 6),
            (5, 6),
            (7, 8),
            (2, 4), // parallel edge, must collapse
        ];
        for (s, t) in edges {
            b.edge(ids[s], ids[t], DepKind::RegFlow, 0).unwrap();
        }
        b.edge(ids[6], ids[0], DepKind::RegFlow, 1).unwrap(); // cycle
        b.edge(ids[9], ids[9], DepKind::RegFlow, 1).unwrap(); // self loop
        b.build().unwrap()
    }

    #[test]
    fn csr_matches_graph_adjacency() {
        let g = sample();
        let csr = Csr::from_graph(&g);
        for (id, _) in g.nodes() {
            let succs: Vec<u32> = {
                let mut v: Vec<u32> = g
                    .successors(id)
                    .into_iter()
                    .filter(|&t| t != id)
                    .map(|t| t.0)
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(csr.succs(id.index()), succs.as_slice(), "succs of {id}");
            let preds: Vec<u32> = {
                let mut v: Vec<u32> = g
                    .predecessors(id)
                    .into_iter()
                    .filter(|&s| s != id)
                    .map(|s| s.0)
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(csr.preds(id.index()), preds.as_slice(), "preds of {id}");
        }
    }

    #[test]
    fn csr_filtered_drops_the_requested_edges() {
        let g = sample();
        let dropped: HashSet<EdgeId> = g
            .edges()
            .filter(|(_, e)| e.distance() > 0)
            .map(|(eid, _)| eid)
            .collect();
        let csr = Csr::filtered(&g, &dropped);
        assert!(csr.succs(6).iter().all(|&t| t != 0), "6 -> 0 was dropped");
        assert!(csr.succs(9).is_empty(), "self loop always skipped");
    }

    #[test]
    fn csr_neighbour_lookup() {
        let g = sample();
        let csr = Csr::from_graph(&g);
        let ordered = NodeSet::from_indices(g.num_nodes(), [4]);
        assert!(csr.has_neighbour_in(2, &ordered), "2 -> 4");
        assert!(csr.has_neighbour_in(6, &ordered), "4 -> 6");
        assert!(!csr.has_neighbour_in(7, &ordered));
    }

    #[test]
    fn dense_search_all_paths_matches_generic() {
        let g = sample();
        let csr = Csr::from_graph(&g);
        let seed_sets: Vec<Vec<usize>> = vec![
            vec![0, 6],
            vec![1, 4],
            vec![0, 0, 6], // duplicate seeds
            vec![7],
            vec![2, 5, 8],
            vec![],
        ];
        for seeds in seed_sets {
            let ids: Vec<NodeId> = seeds.iter().map(|&i| NodeId::from_index(i)).collect();
            let generic = paths::search_all_paths(&g, &ids);
            let dense = search_all_paths(&csr, &seeds);
            let mut generic: Vec<usize> = generic.into_iter().map(|n| n.index()).collect();
            generic.sort_unstable();
            assert_eq!(dense.iter().collect::<Vec<_>>(), generic, "seeds {seeds:?}");
        }
    }

    #[test]
    fn dense_reachable_excludes_unreached_seeds() {
        let g = sample();
        let csr = Csr::from_graph(&g);
        // 7 -> 8: from seed 7 only 8 is reachable; 7 itself is not.
        let r = reachable(&csr, &[7], Dir::Forward);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![8]);
        // 0 lies on the 0 -> .. -> 6 -> 0 cycle, so it re-reaches itself.
        let r = reachable(&csr, &[0], Dir::Forward);
        assert!(r.contains(0));
    }

    #[test]
    fn dense_sorts_match_generic() {
        let g = sample();
        // Restrict to the acyclic part (drop the loop-carried edge).
        let dropped: HashSet<EdgeId> = g
            .edges()
            .filter(|(_, e)| e.distance() > 0)
            .map(|(eid, _)| eid)
            .collect();
        let csr = Csr::filtered(&g, &dropped);
        let subsets: Vec<Vec<usize>> = vec![
            vec![0, 2, 3, 4, 5, 6],
            vec![1, 3, 5],
            vec![7, 8],
            (0..10).collect(),
        ];
        for subset in subsets {
            let ids: Vec<NodeId> = subset.iter().map(|&i| NodeId::from_index(i)).collect();
            let set = NodeSet::from_indices(g.num_nodes(), subset.iter().copied());
            // The generic sorts see the full graph; give them a view with the
            // same dropped edges by sorting over the filtered CSR semantics:
            // both only count edges inside the subset, and the subsets above
            // avoid the loop-carried edge's endpoints being co-members in a
            // cycle, except the full set which is acyclic after filtering.
            let view = FilteredView {
                ddg: &g,
                dropped: &dropped,
            };
            let asap_generic = topo::sort_asap(&view, &ids).unwrap();
            let asap_dense = sort_asap(&csr, &set).unwrap();
            assert_eq!(
                asap_dense
                    .iter()
                    .map(|&i| NodeId::from_index(i))
                    .collect::<Vec<_>>(),
                asap_generic,
                "asap over {subset:?}"
            );
            let pala_generic = topo::sort_pala(&view, &ids).unwrap();
            let pala_dense = sort_pala(&csr, &set).unwrap();
            assert_eq!(
                pala_dense
                    .iter()
                    .map(|&i| NodeId::from_index(i))
                    .collect::<Vec<_>>(),
                pala_generic,
                "pala over {subset:?}"
            );
        }
    }

    #[test]
    fn dense_sort_detects_cycles() {
        let g = sample();
        let csr = Csr::from_graph(&g); // keeps the 6 -> 0 back edge
        let cycle_subset = NodeSet::from_indices(g.num_nodes(), [0, 2, 4, 6]);
        let err = sort_asap(&csr, &cycle_subset).unwrap_err();
        assert_eq!(err.stuck.len(), 4);
    }

    /// A [`GraphView`] over a [`Ddg`] with some edges hidden, mirroring the
    /// filtering the CSR applies, so the generic sorts see the same graph.
    struct FilteredView<'a> {
        ddg: &'a Ddg,
        dropped: &'a HashSet<EdgeId>,
    }

    impl GraphView for FilteredView<'_> {
        fn node_bound(&self) -> usize {
            self.ddg.num_nodes()
        }

        fn contains(&self, n: NodeId) -> bool {
            n.index() < self.ddg.num_nodes()
        }

        fn successors_of(&self, n: NodeId) -> Vec<NodeId> {
            let mut out: Vec<NodeId> = self
                .ddg
                .out_edges(n)
                .filter(|(eid, e)| !self.dropped.contains(eid) && !e.is_self_loop())
                .map(|(_, e)| e.target())
                .collect();
            out.sort();
            out.dedup();
            out
        }

        fn predecessors_of(&self, n: NodeId) -> Vec<NodeId> {
            let mut out: Vec<NodeId> = self
                .ddg
                .in_edges(n)
                .filter(|(eid, e)| !self.dropped.contains(eid) && !e.is_self_loop())
                .map(|(_, e)| e.source())
                .collect();
            out.sort();
            out.dedup();
            out
        }
    }
}
