//! Enumeration of recurrence circuits and their grouping into recurrence
//! subgraphs.
//!
//! The pre-ordering phase of HRMS (Section 3.2 of the paper) needs, for each
//! loop:
//!
//! 1. every *elementary recurrence circuit* (a simple cycle in the dependence
//!    graph),
//! 2. those circuits grouped into *recurrence subgraphs*: circuits that share
//!    the same set of backward (loop-carried) edges belong to the same
//!    subgraph, circuits with different backward-edge sets are distinct
//!    subgraphs even when they share nodes (paper Figure 8),
//! 3. the `RecMII` of each circuit/subgraph so that subgraphs can be ordered
//!    by decreasing criticality, and
//! 4. a *simplified* list where each node appears in exactly one subgraph
//!    (it stays in the most restrictive one).
//!
//! Circuits are enumerated with Johnson's algorithm restricted to each
//! strongly connected component; an enumeration budget protects against
//! pathological graphs (the information is then marked as truncated and
//! callers fall back to SCC-based handling).

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::edge::EdgeId;
use crate::graph::Ddg;
use crate::node::NodeId;
use crate::scc;

/// One elementary recurrence circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    /// The nodes of the circuit in traversal order (the first node is the
    /// smallest id of the circuit).
    pub nodes: Vec<NodeId>,
    /// The loop-carried ("backward") edges of the circuit.
    pub backward_edges: BTreeSet<EdgeId>,
    /// Sum of node latencies around the circuit.
    pub total_latency: u64,
    /// Sum of dependence distances around the circuit (`Ω` in the paper's
    /// notation); always ≥ 1 for a well-formed loop body.
    pub total_distance: u64,
}

impl Circuit {
    /// The lower bound this circuit imposes on the initiation interval:
    /// `ceil(total_latency / total_distance)`.
    ///
    /// Returns `u64::MAX` for a malformed circuit of distance 0 (such a loop
    /// body is rejected by the MII computation with a proper error).
    pub fn rec_mii(&self) -> u64 {
        if self.total_distance == 0 {
            u64::MAX
        } else {
            self.total_latency.div_ceil(self.total_distance)
        }
    }

    /// Whether this is a trivial circuit (a dependence from an operation to
    /// itself). Trivial circuits constrain the II but not the pre-ordering.
    pub fn is_trivial(&self) -> bool {
        self.nodes.len() == 1
    }
}

/// A set of recurrence circuits sharing the same backward edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecurrenceSubgraph {
    /// Union of the nodes of the member circuits, sorted.
    pub nodes: Vec<NodeId>,
    /// The shared backward-edge set.
    pub backward_edges: BTreeSet<EdgeId>,
    /// Indices into [`RecurrenceInfo::circuits`] of the member circuits.
    pub circuit_indices: Vec<usize>,
    /// Most restrictive `RecMII` among the member circuits.
    pub rec_mii: u64,
}

impl RecurrenceSubgraph {
    /// Whether the subgraph consists solely of trivial (self-loop) circuits.
    pub fn is_trivial(&self) -> bool {
        self.nodes.len() == 1 && !self.backward_edges.is_empty()
    }
}

/// The complete recurrence analysis of a dependence graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecurrenceInfo {
    /// Every elementary circuit found (possibly truncated, see
    /// [`RecurrenceInfo::truncated`]).
    pub circuits: Vec<Circuit>,
    /// Recurrence subgraphs sorted by decreasing `RecMII` (most restrictive
    /// first), ties broken by smallest member node id.
    pub subgraphs: Vec<RecurrenceSubgraph>,
    /// Whether the enumeration budget was exhausted; if so `circuits` is a
    /// subset and the derived `RecMII` is only a lower bound.
    pub truncated: bool,
}

impl RecurrenceInfo {
    /// Analyses `ddg` with the default enumeration budget.
    pub fn analyze(ddg: &Ddg) -> Self {
        Self::analyze_with_budget(ddg, DEFAULT_CIRCUIT_BUDGET)
    }

    /// Analyses `ddg`, enumerating at most `budget` circuits.
    pub fn analyze_with_budget(ddg: &Ddg, budget: usize) -> Self {
        Self::analyze_with_sccs(ddg, &scc::strongly_connected_components(ddg), budget)
    }

    /// Analyses `ddg` reusing precomputed strongly connected components, so
    /// a caller holding a shared per-loop analysis (see
    /// [`crate::analysis::LoopAnalysis`]) does not re-run Tarjan.
    pub fn analyze_with_sccs(ddg: &Ddg, sccs: &[Vec<NodeId>], budget: usize) -> Self {
        let (circuits, truncated) = enumerate_circuits_with_sccs(ddg, sccs, budget);
        let subgraphs = group_into_subgraphs(&circuits);
        RecurrenceInfo {
            circuits,
            subgraphs,
            truncated,
        }
    }

    /// Lower bound on the initiation interval imposed by the enumerated
    /// circuits (the paper's `RecMII`); 0 when the graph has no recurrence.
    pub fn rec_mii_lower_bound(&self) -> u64 {
        self.circuits
            .iter()
            .map(Circuit::rec_mii)
            .max()
            .unwrap_or(0)
    }

    /// Whether the graph has any recurrence circuit at all.
    pub fn has_recurrence(&self) -> bool {
        !self.circuits.is_empty()
    }

    /// The simplified per-subgraph node lists used by the ordering phase:
    /// subgraphs in decreasing `RecMII` order, each node appearing only in
    /// the first (most restrictive) subgraph that contains it, and subgraphs
    /// reduced to trivial self-loops dropped entirely (they impose no
    /// ordering constraint).
    pub fn simplified_node_lists(&self) -> Vec<Vec<NodeId>> {
        let mut claimed: HashSet<NodeId> = HashSet::new();
        let mut lists = Vec::new();
        for sg in &self.subgraphs {
            if sg.nodes.len() == 1 {
                // Trivial recurrence circuits do not affect the pre-ordering
                // (paper, Section 3.2).
                continue;
            }
            let fresh: Vec<NodeId> = sg
                .nodes
                .iter()
                .copied()
                .filter(|n| !claimed.contains(n))
                .collect();
            if fresh.is_empty() {
                continue;
            }
            for &n in &fresh {
                claimed.insert(n);
            }
            lists.push(fresh);
        }
        lists
    }
}

/// Default number of circuits enumerated before giving up.
pub const DEFAULT_CIRCUIT_BUDGET: usize = 50_000;

/// Enumerates the elementary circuits of `ddg` (self-loops included),
/// stopping after `budget` circuits.
///
/// Returns the circuits and whether the budget was hit.
pub fn enumerate_circuits(ddg: &Ddg, budget: usize) -> (Vec<Circuit>, bool) {
    enumerate_circuits_with_sccs(ddg, &scc::strongly_connected_components(ddg), budget)
}

/// [`enumerate_circuits`] over precomputed strongly connected components
/// (the caller's single Tarjan run is reused instead of repeated here).
pub fn enumerate_circuits_with_sccs(
    ddg: &Ddg,
    sccs: &[Vec<NodeId>],
    budget: usize,
) -> (Vec<Circuit>, bool) {
    let mut circuits = Vec::new();
    let mut truncated = false;

    // Self-loops are trivial circuits; enumerate them directly.
    for (eid, e) in ddg.edges() {
        if e.is_self_loop() {
            let mut backward = BTreeSet::new();
            if e.distance() > 0 {
                backward.insert(eid);
            }
            circuits.push(Circuit {
                nodes: vec![e.source()],
                backward_edges: backward,
                total_latency: u64::from(ddg.node(e.source()).latency()),
                total_distance: u64::from(e.distance()),
            });
        }
    }

    // Johnson's algorithm restricted to each non-trivial SCC.
    for component in sccs {
        if component.len() < 2 {
            continue;
        }
        if !johnson_on_component(ddg, component, budget, &mut circuits) {
            truncated = true;
        }
        if circuits.len() >= budget {
            truncated = true;
            break;
        }
    }

    (circuits, truncated)
}

/// Johnson's elementary-circuit search inside one SCC. Returns `false` if the
/// budget was exhausted.
fn johnson_on_component(
    ddg: &Ddg,
    component: &[NodeId],
    budget: usize,
    circuits: &mut Vec<Circuit>,
) -> bool {
    let members: HashSet<NodeId> = component.iter().copied().collect();
    // Adjacency restricted to the component, skipping self loops (already
    // handled); parallel edges are collapsed keeping the minimum distance
    // (the binding choice for RecMII, since node latencies are fixed).
    let mut adj: HashMap<NodeId, Vec<(NodeId, EdgeId, u32)>> = HashMap::new();
    for &v in component {
        let mut best: HashMap<NodeId, (EdgeId, u32)> = HashMap::new();
        for (eid, e) in ddg.out_edges(v) {
            let t = e.target();
            if t == v || !members.contains(&t) {
                continue;
            }
            match best.get(&t) {
                Some(&(_, d)) if d <= e.distance() => {}
                _ => {
                    best.insert(t, (eid, e.distance()));
                }
            }
        }
        let mut list: Vec<(NodeId, EdgeId, u32)> =
            best.into_iter().map(|(t, (eid, d))| (t, eid, d)).collect();
        list.sort();
        adj.insert(v, list);
    }

    let mut sorted = component.to_vec();
    sorted.sort();

    for (k, &start) in sorted.iter().enumerate() {
        if circuits.len() >= budget {
            return false;
        }
        let allowed: HashSet<NodeId> = sorted[k..].iter().copied().collect();
        let mut blocked: HashSet<NodeId> = HashSet::new();
        let mut block_map: HashMap<NodeId, HashSet<NodeId>> = HashMap::new();
        let mut path: Vec<(NodeId, Option<(EdgeId, u32)>)> = Vec::new();
        circuit_dfs(
            ddg,
            &adj,
            start,
            start,
            None,
            &allowed,
            &mut blocked,
            &mut block_map,
            &mut path,
            circuits,
            budget,
        );
    }
    circuits.len() < budget
}

/// One invocation of Johnson's `CIRCUIT(v)` procedure. `via` is the edge used
/// to reach `v` from its predecessor on the current path (`None` for the
/// start node). Returns whether any elementary circuit was closed in the
/// subtree rooted at `v` (used for the unblocking rule).
#[allow(clippy::too_many_arguments)]
fn circuit_dfs(
    ddg: &Ddg,
    adj: &HashMap<NodeId, Vec<(NodeId, EdgeId, u32)>>,
    start: NodeId,
    v: NodeId,
    via: Option<(EdgeId, u32)>,
    allowed: &HashSet<NodeId>,
    blocked: &mut HashSet<NodeId>,
    block_map: &mut HashMap<NodeId, HashSet<NodeId>>,
    path: &mut Vec<(NodeId, Option<(EdgeId, u32)>)>,
    circuits: &mut Vec<Circuit>,
    budget: usize,
) -> bool {
    let mut found = false;
    path.push((v, via));
    blocked.insert(v);

    let neighbours = adj.get(&v).cloned().unwrap_or_default();
    for (w, eid, dist) in neighbours {
        if !allowed.contains(&w) || circuits.len() >= budget {
            continue;
        }
        if w == start {
            // Found an elementary circuit: the nodes on `path`, closed by
            // the edge (v -> start).
            let mut nodes = Vec::with_capacity(path.len());
            let mut backward = BTreeSet::new();
            let mut total_latency = 0u64;
            let mut total_distance = u64::from(dist);
            if dist > 0 {
                backward.insert(eid);
            }
            for (node, step) in path.iter() {
                nodes.push(*node);
                total_latency += u64::from(ddg.node(*node).latency());
                if let Some((step_eid, step_dist)) = step {
                    total_distance += u64::from(*step_dist);
                    if *step_dist > 0 {
                        backward.insert(*step_eid);
                    }
                }
            }
            circuits.push(Circuit {
                nodes,
                backward_edges: backward,
                total_latency,
                total_distance,
            });
            found = true;
        } else if !blocked.contains(&w) {
            let sub_found = circuit_dfs(
                ddg,
                adj,
                start,
                w,
                Some((eid, dist)),
                allowed,
                blocked,
                block_map,
                path,
                circuits,
                budget,
            );
            found = found || sub_found;
        }
    }

    if found {
        unblock(v, blocked, block_map);
    } else {
        for (next, _, _) in adj.get(&v).cloned().unwrap_or_default() {
            if allowed.contains(&next) {
                block_map.entry(next).or_default().insert(v);
            }
        }
    }
    path.pop();
    found
}

fn unblock(
    v: NodeId,
    blocked: &mut HashSet<NodeId>,
    block_map: &mut HashMap<NodeId, HashSet<NodeId>>,
) {
    blocked.remove(&v);
    if let Some(dependents) = block_map.remove(&v) {
        for w in dependents {
            if blocked.contains(&w) {
                unblock(w, blocked, block_map);
            }
        }
    }
}

/// Groups circuits by backward-edge set and sorts the groups by decreasing
/// `RecMII`.
fn group_into_subgraphs(circuits: &[Circuit]) -> Vec<RecurrenceSubgraph> {
    let mut groups: HashMap<BTreeSet<EdgeId>, Vec<usize>> = HashMap::new();
    for (i, c) in circuits.iter().enumerate() {
        groups.entry(c.backward_edges.clone()).or_default().push(i);
    }
    let mut subgraphs: Vec<RecurrenceSubgraph> = groups
        .into_iter()
        .map(|(backward_edges, circuit_indices)| {
            let mut nodes: BTreeSet<NodeId> = BTreeSet::new();
            let mut rec_mii = 0u64;
            for &i in &circuit_indices {
                nodes.extend(circuits[i].nodes.iter().copied());
                rec_mii = rec_mii.max(circuits[i].rec_mii());
            }
            RecurrenceSubgraph {
                nodes: nodes.into_iter().collect(),
                backward_edges,
                circuit_indices,
                rec_mii,
            }
        })
        .collect();
    // The sort key must be total: subgraphs can tie on both RecMII and first
    // node (e.g. a short circuit and a longer one through the same head),
    // and the groups come out of a randomly-seeded HashMap, so any tie left
    // to the incoming order would make the analysis non-deterministic across
    // runs. The backward-edge set is the grouping key and therefore unique.
    subgraphs.sort_by(|a, b| {
        b.rec_mii
            .cmp(&a.rec_mii)
            .then_with(|| a.nodes.cmp(&b.nodes))
            .then_with(|| a.backward_edges.cmp(&b.backward_edges))
    });
    subgraphs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DdgBuilder, DepKind, OpKind};

    fn build_fig8b() -> (Ddg, Vec<NodeId>) {
        // Figure 8b of the paper: two circuits {A,D,E} and {A,B,C,E} sharing
        // the single backward edge E -> A.
        let mut bld = DdgBuilder::new("fig8b");
        let a = bld.node("A", OpKind::FpAdd, 1);
        let b = bld.node("B", OpKind::FpAdd, 1);
        let c = bld.node("C", OpKind::FpAdd, 1);
        let d = bld.node("D", OpKind::FpAdd, 1);
        let e = bld.node("E", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, c, DepKind::RegFlow, 0).unwrap();
        bld.edge(c, e, DepKind::RegFlow, 0).unwrap();
        bld.edge(a, d, DepKind::RegFlow, 0).unwrap();
        bld.edge(d, e, DepKind::RegFlow, 0).unwrap();
        bld.edge(e, a, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        (g, vec![a, b, c, d, e])
    }

    fn build_fig8c() -> (Ddg, Vec<NodeId>) {
        // Figure 8c: two circuits sharing node(s) but with *different*
        // backward edges: A -> B -> A (backward B->A) and B -> C -> B
        // (backward C->B); they are distinct recurrence subgraphs.
        let mut bld = DdgBuilder::new("fig8c");
        let a = bld.node("A", OpKind::FpAdd, 2);
        let b = bld.node("B", OpKind::FpAdd, 1);
        let c = bld.node("C", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 1).unwrap();
        bld.edge(b, c, DepKind::RegFlow, 0).unwrap();
        bld.edge(c, b, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        (g, vec![a, b, c])
    }

    #[test]
    fn acyclic_graph_has_no_circuits() {
        let g = crate::graph::chain("c", 6, OpKind::FpAdd, 1);
        let info = RecurrenceInfo::analyze(&g);
        assert!(!info.has_recurrence());
        assert_eq!(info.rec_mii_lower_bound(), 0);
        assert!(info.simplified_node_lists().is_empty());
        assert!(!info.truncated);
    }

    #[test]
    fn self_loop_is_a_trivial_circuit() {
        let mut bld = DdgBuilder::new("s");
        let a = bld.node("a", OpKind::FpAdd, 3);
        bld.edge(a, a, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let info = RecurrenceInfo::analyze(&g);
        assert_eq!(info.circuits.len(), 1);
        assert!(info.circuits[0].is_trivial());
        assert_eq!(info.circuits[0].rec_mii(), 3);
        assert_eq!(info.rec_mii_lower_bound(), 3);
        // trivial circuits are excluded from the ordering lists
        assert!(info.simplified_node_lists().is_empty());
    }

    #[test]
    fn shared_backward_edge_merges_into_one_subgraph() {
        let (g, ids) = build_fig8b();
        let info = RecurrenceInfo::analyze(&g);
        assert_eq!(info.circuits.len(), 2, "two elementary circuits");
        assert_eq!(info.subgraphs.len(), 1, "same backward edge: one subgraph");
        assert_eq!(info.subgraphs[0].nodes, ids, "subgraph is {{A,B,C,D,E}}");
        // RecMII: longest circuit has 4 unit-latency nodes over distance 1.
        assert_eq!(info.rec_mii_lower_bound(), 4);
    }

    #[test]
    fn distinct_backward_edges_stay_separate_subgraphs() {
        let (g, ids) = build_fig8c();
        let info = RecurrenceInfo::analyze(&g);
        assert_eq!(info.circuits.len(), 2);
        assert_eq!(info.subgraphs.len(), 2);
        // The A-B circuit has latency 3 (A:2 + B:1), the B-C circuit 2;
        // subgraphs are sorted by decreasing RecMII.
        assert_eq!(info.subgraphs[0].rec_mii, 3);
        assert_eq!(info.subgraphs[1].rec_mii, 2);
        assert_eq!(info.subgraphs[0].nodes, vec![ids[0], ids[1]]);
        assert_eq!(info.subgraphs[1].nodes, vec![ids[1], ids[2]]);
    }

    #[test]
    fn simplified_lists_remove_shared_nodes() {
        let (g, ids) = build_fig8c();
        let info = RecurrenceInfo::analyze(&g);
        let lists = info.simplified_node_lists();
        assert_eq!(lists.len(), 2);
        assert_eq!(lists[0], vec![ids[0], ids[1]], "first keeps A and B");
        assert_eq!(lists[1], vec![ids[2]], "B removed from the second list");
    }

    #[test]
    fn rec_mii_accounts_for_distance_greater_than_one() {
        let mut bld = DdgBuilder::new("dist2");
        let a = bld.node("a", OpKind::FpDiv, 17);
        let b = bld.node("b", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 2).unwrap();
        let g = bld.build().unwrap();
        let info = RecurrenceInfo::analyze(&g);
        // latency 18 over distance 2 -> ceil = 9
        assert_eq!(info.rec_mii_lower_bound(), 9);
    }

    #[test]
    fn zero_distance_cycle_reports_infinite_rec_mii() {
        let mut bld = DdgBuilder::new("bad");
        let a = bld.node("a", OpKind::FpAdd, 1);
        let b = bld.node("b", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 0).unwrap();
        let g = bld.build().unwrap();
        let info = RecurrenceInfo::analyze(&g);
        assert_eq!(info.rec_mii_lower_bound(), u64::MAX);
    }

    #[test]
    fn budget_truncates_enumeration() {
        // Complete-ish digraph on 7 nodes has many circuits.
        let mut bld = DdgBuilder::new("dense");
        let ids: Vec<NodeId> = (0..7)
            .map(|i| bld.node(format!("n{i}"), OpKind::FpAdd, 1))
            .collect();
        for &u in &ids {
            for &v in &ids {
                if u != v {
                    bld.edge(u, v, DepKind::RegFlow, 1).unwrap();
                }
            }
        }
        let g = bld.build().unwrap();
        let info = RecurrenceInfo::analyze_with_budget(&g, 10);
        assert!(info.truncated);
        assert!(info.circuits.len() <= 10);
        let full = RecurrenceInfo::analyze_with_budget(&g, 1_000_000);
        assert!(!full.truncated);
        assert!(full.circuits.len() > 100);
    }

    #[test]
    fn two_disjoint_recurrences_give_two_subgraphs() {
        let mut bld = DdgBuilder::new("two");
        let a = bld.node("a", OpKind::FpAdd, 4);
        let b = bld.node("b", OpKind::FpAdd, 1);
        let c = bld.node("c", OpKind::FpMul, 2);
        let d = bld.node("d", OpKind::FpMul, 2);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 1).unwrap();
        bld.edge(c, d, DepKind::RegFlow, 0).unwrap();
        bld.edge(d, c, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let info = RecurrenceInfo::analyze(&g);
        assert_eq!(info.subgraphs.len(), 2);
        assert_eq!(info.subgraphs[0].rec_mii, 5);
        assert_eq!(info.subgraphs[1].rec_mii, 4);
        let lists = info.simplified_node_lists();
        assert_eq!(lists.len(), 2);
        assert_eq!(lists[0], vec![a, b]);
        assert_eq!(lists[1], vec![c, d]);
    }

    #[test]
    fn circuit_nodes_start_at_smallest_id() {
        let (g, ids) = build_fig8b();
        let info = RecurrenceInfo::analyze(&g);
        for c in &info.circuits {
            assert_eq!(*c.nodes.iter().min().unwrap(), c.nodes[0]);
            assert!(c.nodes.contains(&ids[0]), "all circuits pass through A");
        }
    }
}
