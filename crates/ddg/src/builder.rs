//! Incremental construction of dependence graphs.

use std::collections::HashSet;

use crate::edge::{DepKind, Edge};
use crate::error::DdgError;
use crate::graph::Ddg;
use crate::node::{Node, NodeId, OpKind};

/// Builder for [`Ddg`] values.
///
/// Nodes are added in program order; the id returned by [`DdgBuilder::node`]
/// is stable and can immediately be used to add edges. Validation (unique
/// names, positive latencies, edge endpoints in range, flow edges leaving
/// value-defining operations) happens partly eagerly and partly in
/// [`DdgBuilder::build`].
///
/// # Example
///
/// ```
/// use hrms_ddg::{DdgBuilder, OpKind, DepKind};
///
/// # fn main() -> Result<(), hrms_ddg::DdgError> {
/// let mut b = DdgBuilder::new("saxpy");
/// let lx = b.node("load_x", OpKind::Load, 2);
/// let ly = b.node("load_y", OpKind::Load, 2);
/// let mul = b.node("a_times_x", OpKind::FpMul, 2);
/// let add = b.node("plus_y", OpKind::FpAdd, 1);
/// let st = b.node("store", OpKind::Store, 1);
/// b.edge(lx, mul, DepKind::RegFlow, 0)?;
/// b.edge(ly, add, DepKind::RegFlow, 0)?;
/// b.edge(mul, add, DepKind::RegFlow, 0)?;
/// b.edge(add, st, DepKind::RegFlow, 0)?;
/// let ddg = b.invariants(1).iteration_count(1000).build()?;
/// assert_eq!(ddg.num_nodes(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DdgBuilder {
    name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    invariants: Option<u32>,
    iteration_count: u64,
}

impl DdgBuilder {
    /// Starts a new builder for a loop with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        DdgBuilder {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
            invariants: None,
            iteration_count: 1,
        }
    }

    /// Adds an operation and returns its id. Ids are assigned in program
    /// order starting from 0.
    pub fn node(&mut self, name: impl Into<String>, kind: OpKind, latency: u32) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node::new(name.into(), kind, latency));
        id
    }

    /// Adds an operation that does **not** define a loop-variant value even
    /// though its [`OpKind`] normally would (e.g. a compare feeding a
    /// branch).
    pub fn node_no_result(
        &mut self,
        name: impl Into<String>,
        kind: OpKind,
        latency: u32,
    ) -> NodeId {
        let id = self.node(name, kind, latency);
        self.nodes[id.index()].set_defines_value(false);
        id
    }

    /// Declares that the operation `id` reads `uses` loop-invariant values.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this builder.
    pub fn node_invariant_uses(&mut self, id: NodeId, uses: u32) -> &mut Self {
        self.nodes[id.index()].set_invariant_uses(uses);
        self
    }

    /// Overrides the latency of an already-added node (used by
    /// machine-description helpers that re-latency a graph for a different
    /// machine configuration).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this builder.
    pub fn set_latency(&mut self, id: NodeId, latency: u32) -> &mut Self {
        self.nodes[id.index()].set_latency(latency);
        self
    }

    /// Adds a dependence edge from `source` to `target` with the given kind
    /// and distance.
    ///
    /// # Errors
    ///
    /// Returns [`DdgError::UnknownNode`] if either endpoint has not been
    /// added yet, and [`DdgError::FlowFromValueless`] if a register flow
    /// edge leaves an operation that defines no value.
    pub fn edge(
        &mut self,
        source: NodeId,
        target: NodeId,
        kind: DepKind,
        distance: u32,
    ) -> Result<&mut Self, DdgError> {
        if source.index() >= self.nodes.len() {
            return Err(DdgError::UnknownNode { id: source });
        }
        if target.index() >= self.nodes.len() {
            return Err(DdgError::UnknownNode { id: target });
        }
        if kind.carries_value() && !self.nodes[source.index()].defines_value() {
            return Err(DdgError::FlowFromValueless { from: source });
        }
        self.edges.push(Edge::new(source, target, kind, distance));
        Ok(self)
    }

    /// Convenience wrapper for the most common case: an intra-iteration
    /// register flow dependence.
    ///
    /// # Errors
    ///
    /// Same as [`DdgBuilder::edge`].
    pub fn flow(&mut self, source: NodeId, target: NodeId) -> Result<&mut Self, DdgError> {
        self.edge(source, target, DepKind::RegFlow, 0)
    }

    /// Convenience wrapper for a loop-carried register flow dependence of
    /// the given distance.
    ///
    /// # Errors
    ///
    /// Same as [`DdgBuilder::edge`].
    pub fn carried_flow(
        &mut self,
        source: NodeId,
        target: NodeId,
        distance: u32,
    ) -> Result<&mut Self, DdgError> {
        self.edge(source, target, DepKind::RegFlow, distance)
    }

    /// Sets the number of loop-invariant values used by the loop. When not
    /// set explicitly, the total is the sum of per-node invariant uses.
    pub fn invariants(&mut self, count: u32) -> &mut Self {
        self.invariants = Some(count);
        self
    }

    /// Sets the profiled iteration count used for dynamic weighting
    /// (defaults to 1).
    pub fn iteration_count(&mut self, count: u64) -> &mut Self {
        self.iteration_count = count;
        self
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Validates the accumulated loop body and produces the immutable
    /// [`Ddg`].
    ///
    /// # Errors
    ///
    /// * [`DdgError::EmptyGraph`] if no node was added.
    /// * [`DdgError::ZeroLatency`] if any node has latency 0.
    /// * [`DdgError::DuplicateName`] if two nodes share a name.
    pub fn build(&self) -> Result<Ddg, DdgError> {
        if self.nodes.is_empty() {
            return Err(DdgError::EmptyGraph);
        }
        let mut names = HashSet::new();
        for n in &self.nodes {
            if n.latency() == 0 {
                return Err(DdgError::ZeroLatency {
                    name: n.name().to_string(),
                });
            }
            if !names.insert(n.name().to_string()) {
                return Err(DdgError::DuplicateName {
                    name: n.name().to_string(),
                });
            }
        }
        let invariants = self
            .invariants
            .unwrap_or_else(|| self.nodes.iter().map(|n| n.invariant_uses()).sum());
        Ok(Ddg::from_parts(
            self.name.clone(),
            self.nodes.clone(),
            self.edges.clone(),
            invariants,
            self.iteration_count,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_graph() {
        let mut b = DdgBuilder::new("g");
        let a = b.node("a", OpKind::Load, 2);
        let c = b.node("c", OpKind::FpAdd, 1);
        b.flow(a, c).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.name(), "g");
    }

    #[test]
    fn rejects_empty_graph() {
        let b = DdgBuilder::new("empty");
        assert!(matches!(b.build(), Err(DdgError::EmptyGraph)));
    }

    #[test]
    fn rejects_zero_latency() {
        let mut b = DdgBuilder::new("z");
        b.node("a", OpKind::FpAdd, 0);
        assert!(matches!(b.build(), Err(DdgError::ZeroLatency { .. })));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut b = DdgBuilder::new("dup");
        b.node("a", OpKind::FpAdd, 1);
        b.node("a", OpKind::FpMul, 2);
        assert!(matches!(b.build(), Err(DdgError::DuplicateName { .. })));
    }

    #[test]
    fn rejects_dangling_edges() {
        let mut b = DdgBuilder::new("dangling");
        let a = b.node("a", OpKind::FpAdd, 1);
        let err = b.edge(a, NodeId(7), DepKind::RegFlow, 0).unwrap_err();
        assert!(matches!(err, DdgError::UnknownNode { id: NodeId(7) }));
        let err = b.edge(NodeId(9), a, DepKind::RegFlow, 0).unwrap_err();
        assert!(matches!(err, DdgError::UnknownNode { id: NodeId(9) }));
    }

    #[test]
    fn rejects_flow_from_store() {
        let mut b = DdgBuilder::new("store_flow");
        let s = b.node("s", OpKind::Store, 1);
        let a = b.node("a", OpKind::FpAdd, 1);
        let err = b.flow(s, a).unwrap_err();
        assert!(matches!(err, DdgError::FlowFromValueless { .. }));
        // but a memory edge from a store is fine
        b.edge(s, a, DepKind::Memory, 1).unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn node_no_result_is_not_a_value_producer() {
        let mut b = DdgBuilder::new("branchy");
        let cmp = b.node_no_result("cmp", OpKind::IntAlu, 1);
        let add = b.node("add", OpKind::FpAdd, 1);
        assert!(b.flow(cmp, add).is_err());
        b.edge(cmp, add, DepKind::Control, 0).unwrap();
        let g = b.build().unwrap();
        assert!(!g.node(cmp).defines_value());
    }

    #[test]
    fn invariants_default_to_sum_of_node_uses() {
        let mut b = DdgBuilder::new("inv");
        let a = b.node("a", OpKind::FpMul, 2);
        let c = b.node("c", OpKind::FpAdd, 1);
        b.node_invariant_uses(a, 2);
        b.node_invariant_uses(c, 1);
        let g = b.build().unwrap();
        assert_eq!(g.num_invariants(), 3);
    }

    #[test]
    fn explicit_invariants_override_sum() {
        let mut b = DdgBuilder::new("inv2");
        let a = b.node("a", OpKind::FpMul, 2);
        b.node_invariant_uses(a, 2);
        b.invariants(5);
        let g = b.build().unwrap();
        assert_eq!(g.num_invariants(), 5);
    }

    #[test]
    fn iteration_count_is_recorded() {
        let mut b = DdgBuilder::new("it");
        b.node("a", OpKind::FpAdd, 1);
        b.iteration_count(12345);
        assert_eq!(b.build().unwrap().iteration_count(), 12345);
    }

    #[test]
    fn carried_flow_sets_distance() {
        let mut b = DdgBuilder::new("cf");
        let a = b.node("a", OpKind::FpAdd, 1);
        b.carried_flow(a, a, 2).unwrap();
        let g = b.build().unwrap();
        let (_, e) = g.edges().next().unwrap();
        assert_eq!(e.distance(), 2);
        assert!(e.is_self_loop());
    }

    #[test]
    fn set_latency_overrides() {
        let mut b = DdgBuilder::new("lat");
        let a = b.node("a", OpKind::FpAdd, 1);
        b.set_latency(a, 4);
        let g = b.build().unwrap();
        assert_eq!(g.node(a).latency(), 4);
    }

    #[test]
    fn builder_is_reusable_after_build() {
        let mut b = DdgBuilder::new("reuse");
        b.node("a", OpKind::FpAdd, 1);
        let g1 = b.build().unwrap();
        b.node("b", OpKind::FpMul, 2);
        let g2 = b.build().unwrap();
        assert_eq!(g1.num_nodes(), 1);
        assert_eq!(g2.num_nodes(), 2);
    }
}
