//! Structural fingerprints of dependence graphs.
//!
//! A fingerprint is a 64-bit hash over everything that defines a [`Ddg`]
//! structurally: the loop name, every node (name, kind, latency,
//! value-definition flag, invariant uses), every edge (endpoints, kind,
//! distance), the invariant count and the profiled iteration count. Two
//! graphs have equal fingerprints exactly when an export → import round trip
//! through one of the on-disk formats (`docs/FORMATS.md`) is lossless, and
//! the schedulers — which read nothing else — treat them identically.
//!
//! Fingerprints are the cache keys of the scheduling-as-a-service direction:
//! a result for `(loop, machine, scheduler)` is addressed by
//! [`cache_key`], so duplicate hot loops in a traffic mix pay for each
//! distinct loop once. The hash is FNV-1a — not cryptographic, but stable
//! across platforms and releases of this workspace (the constants below are
//! part of the on-disk format contract and must not change).

use crate::graph::Ddg;

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
///
/// Unlike [`std::hash::Hasher`] implementations from the standard library,
/// the output is specified: identical byte sequences hash identically on
/// every platform and in every build, so the digests can live in files and
/// act as content-addressed cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a string as its UTF-8 bytes followed by a length tag, so
    /// `("ab", "c")` and `("a", "bc")` hash differently.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write(s.as_bytes());
        self.write_u64(s.len() as u64)
    }

    /// Absorbs a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, v: u32) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Absorbs a boolean as one byte.
    pub fn write_bool(&mut self, v: bool) -> &mut Self {
        self.write(&[u8::from(v)])
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// The structural fingerprint of a dependence graph.
///
/// Covers the name, nodes, edges, invariants and iteration count — exactly
/// the information the on-disk loop formats serialise. Node and edge order
/// matter (node ids are program order, edge ids are insertion order; both
/// are part of the structure the schedulers see).
pub fn ddg_fingerprint(ddg: &Ddg) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(ddg.name());
    h.write_u64(ddg.num_nodes() as u64);
    for (_, n) in ddg.nodes() {
        h.write_str(n.name());
        h.write_str(n.kind().mnemonic());
        h.write_u32(n.latency());
        h.write_bool(n.defines_value());
        h.write_u32(n.invariant_uses());
    }
    h.write_u64(ddg.num_edges() as u64);
    for (_, e) in ddg.edges() {
        h.write_u32(e.source().0);
        h.write_u32(e.target().0);
        h.write_str(e.kind().label());
        h.write_u32(e.distance());
    }
    h.write_u32(ddg.num_invariants());
    h.write_u64(ddg.iteration_count());
    h.finish()
}

/// The content-addressed cache key of one scheduling request:
/// loop fingerprint × machine fingerprint × scheduler name.
///
/// The machine fingerprint is computed by `hrms_machine::machine_fingerprint`
/// (that crate depends on this one, so the combination lives here as a plain
/// function over the two digests).
pub fn cache_key(ddg_digest: u64, machine_digest: u64, scheduler: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(ddg_digest);
    h.write_u64(machine_digest);
    h.write_str(scheduler);
    h.finish()
}

/// Formats a digest the way the JSON-lines schedule reports and the CLI
/// print it: 16 lowercase hex digits.
pub fn format_digest(digest: u64) -> String {
    format!("{digest:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DdgBuilder, DepKind, OpKind};

    fn sample() -> Ddg {
        let mut b = DdgBuilder::new("fp");
        let a = b.node("a", OpKind::Load, 2);
        let c = b.node("c", OpKind::FpAdd, 1);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, c, DepKind::RegFlow, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn fnv_vector_is_stable() {
        // Classic FNV-1a test vector: the empty input hashes to the offset
        // basis, and "a" to a known constant.
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv64::new().write(b"a").finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn equal_graphs_have_equal_fingerprints() {
        assert_eq!(ddg_fingerprint(&sample()), ddg_fingerprint(&sample()));
    }

    #[test]
    fn every_field_changes_the_fingerprint() {
        let base = ddg_fingerprint(&sample());

        // Different name.
        let mut b = DdgBuilder::new("other");
        let a = b.node("a", OpKind::Load, 2);
        let c = b.node("c", OpKind::FpAdd, 1);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, c, DepKind::RegFlow, 1).unwrap();
        assert_ne!(ddg_fingerprint(&b.build().unwrap()), base);

        // Different latency.
        let mut b = DdgBuilder::new("fp");
        let a = b.node("a", OpKind::Load, 3);
        let c = b.node("c", OpKind::FpAdd, 1);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, c, DepKind::RegFlow, 1).unwrap();
        assert_ne!(ddg_fingerprint(&b.build().unwrap()), base);

        // Different distance.
        let mut b = DdgBuilder::new("fp");
        let a = b.node("a", OpKind::Load, 2);
        let c = b.node("c", OpKind::FpAdd, 1);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, c, DepKind::RegFlow, 2).unwrap();
        assert_ne!(ddg_fingerprint(&b.build().unwrap()), base);

        // Different edge kind.
        let mut b = DdgBuilder::new("fp");
        let a = b.node("a", OpKind::Load, 2);
        let c = b.node("c", OpKind::FpAdd, 1);
        b.edge(a, c, DepKind::Memory, 0).unwrap();
        b.edge(c, c, DepKind::RegFlow, 1).unwrap();
        assert_ne!(ddg_fingerprint(&b.build().unwrap()), base);

        // Different iteration count.
        let mut b = DdgBuilder::new("fp");
        let a = b.node("a", OpKind::Load, 2);
        let c = b.node("c", OpKind::FpAdd, 1);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, c, DepKind::RegFlow, 1).unwrap();
        b.iteration_count(7);
        assert_ne!(ddg_fingerprint(&b.build().unwrap()), base);
    }

    #[test]
    fn defines_value_and_invariants_are_covered() {
        let mut b = DdgBuilder::new("nv");
        b.node("x", OpKind::IntAlu, 1);
        let plain = ddg_fingerprint(&b.build().unwrap());

        let mut b = DdgBuilder::new("nv");
        b.node_no_result("x", OpKind::IntAlu, 1);
        assert_ne!(ddg_fingerprint(&b.build().unwrap()), plain);

        let mut b = DdgBuilder::new("nv");
        let x = b.node("x", OpKind::IntAlu, 1);
        b.node_invariant_uses(x, 2);
        assert_ne!(ddg_fingerprint(&b.build().unwrap()), plain);
    }

    #[test]
    fn cache_key_separates_all_three_inputs() {
        let k = cache_key(1, 2, "HRMS");
        assert_ne!(cache_key(3, 2, "HRMS"), k);
        assert_ne!(cache_key(1, 4, "HRMS"), k);
        assert_ne!(cache_key(1, 2, "Slack"), k);
        assert_eq!(cache_key(1, 2, "HRMS"), k);
    }

    #[test]
    fn digest_formatting_is_fixed_width_hex() {
        assert_eq!(format_digest(0xabc), "0000000000000abc");
        assert_eq!(format_digest(u64::MAX), "ffffffffffffffff");
    }
}
