//! Topological orders (ASAP / PALA) and latency-weighted levels.

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

use crate::graph::{Ddg, GraphView};
use crate::node::NodeId;

/// Direction of a traversal or sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// From sources (no predecessors) towards sinks.
    Forward,
    /// From sinks (no successors) towards sources.
    Backward,
}

/// Error returned when a routine that requires an acyclic (sub)graph finds a
/// cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// Nodes that could not be ordered because they sit on a cycle.
    pub stuck: Vec<NodeId>,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "subgraph contains a cycle through {} node(s)",
            self.stuck.len()
        )
    }
}

impl Error for CycleError {}

/// Topologically sorts the nodes of `subset` (only edges with both endpoints
/// in `subset` are considered) **sources first**, breaking ties by node id
/// (program order). This is the paper's `Sort_ASAP`.
///
/// # Errors
///
/// Returns [`CycleError`] if the induced subgraph is cyclic.
pub fn sort_asap<G: GraphView>(graph: &G, subset: &[NodeId]) -> Result<Vec<NodeId>, CycleError> {
    kahn(graph, subset, Direction::Forward)
}

/// The paper's `Sort_PALA`: "like an ALAP algorithm, but the list of ordered
/// nodes is inverted". Concretely this produces a **sinks-first** order of
/// the induced subgraph, breaking ties by node id.
///
/// Predecessor sets of the hypernode are ordered with this sort so that the
/// node closest to the hypernode is scheduled first (as late as possible) and
/// every following node already has a successor in the partial schedule.
///
/// # Errors
///
/// Returns [`CycleError`] if the induced subgraph is cyclic.
pub fn sort_pala<G: GraphView>(graph: &G, subset: &[NodeId]) -> Result<Vec<NodeId>, CycleError> {
    kahn(graph, subset, Direction::Backward)
}

fn kahn<G: GraphView>(
    graph: &G,
    subset: &[NodeId],
    dir: Direction,
) -> Result<Vec<NodeId>, CycleError> {
    let members: HashSet<NodeId> = subset.iter().copied().collect();
    // in-degree restricted to the subset, in the traversal direction.
    let mut degree: HashMap<NodeId, usize> = HashMap::new();
    for &v in &members {
        let incoming = match dir {
            Direction::Forward => graph.predecessors_of(v),
            Direction::Backward => graph.successors_of(v),
        };
        let d = incoming
            .into_iter()
            .filter(|p| members.contains(p) && *p != v)
            .count();
        degree.insert(v, d);
    }

    // Ready list kept sorted by node id for determinism; a BinaryHeap with
    // Reverse would also work but the subsets here are small.
    let mut ready: Vec<NodeId> = degree
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&v, _)| v)
        .collect();
    ready.sort();

    let mut order = Vec::with_capacity(members.len());
    while !ready.is_empty() {
        let v = ready.remove(0);
        order.push(v);
        let outgoing = match dir {
            Direction::Forward => graph.successors_of(v),
            Direction::Backward => graph.predecessors_of(v),
        };
        let mut newly_ready = Vec::new();
        let mut seen = HashSet::new();
        for w in outgoing {
            if w == v || !members.contains(&w) || !seen.insert(w) {
                continue;
            }
            let d = degree.get_mut(&w).expect("member has a degree entry");
            *d -= 1;
            if *d == 0 {
                newly_ready.push(w);
            }
        }
        newly_ready.sort();
        // merge keeping overall id order among currently-ready nodes
        ready.extend(newly_ready);
        ready.sort();
    }

    if order.len() != members.len() {
        let stuck: Vec<NodeId> = members
            .iter()
            .copied()
            .filter(|v| !order.contains(v))
            .collect();
        return Err(CycleError { stuck });
    }
    Ok(order)
}

/// Latency-weighted levels of an acyclic view of the graph.
///
/// `depth(v)` is the length (sum of latencies of *producers*) of the longest
/// path from any source to `v`, i.e. the earliest cycle at which `v` could
/// start on a machine with unlimited resources and no loop-carried
/// dependences. `height(v)` is the symmetric longest path from `v` to any
/// sink, *including* `v`'s own latency. Loop-carried edges (distance > 0) are
/// ignored, which makes the computation well-defined even for graphs with
/// recurrences (every recurrence circuit contains at least one loop-carried
/// edge).
///
/// These levels drive the priority functions of the Top-Down / Bottom-Up /
/// Slack baseline schedulers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoLevels {
    depth: Vec<u64>,
    height: Vec<u64>,
}

impl TopoLevels {
    /// Computes depth and height for every node of `ddg`.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the graph restricted to intra-iteration
    /// (distance 0) edges contains a cycle — such a loop body is not a valid
    /// single-iteration program.
    pub fn compute(ddg: &Ddg) -> Result<Self, CycleError> {
        let n = ddg.num_nodes();
        // Order nodes topologically over distance-0 edges.
        let order = zero_distance_topo(ddg)?;
        let mut depth = vec![0u64; n];
        let mut height = vec![0u64; n];
        for &v in &order {
            for (_, e) in ddg.in_edges(v) {
                if e.distance() == 0 {
                    let u = e.source();
                    let cand = depth[u.index()] + u64::from(ddg.node(u).latency());
                    depth[v.index()] = depth[v.index()].max(cand);
                }
            }
        }
        for &v in order.iter().rev() {
            height[v.index()] = u64::from(ddg.node(v).latency());
            for (_, e) in ddg.out_edges(v) {
                if e.distance() == 0 {
                    let w = e.target();
                    let cand = height[w.index()] + u64::from(ddg.node(v).latency());
                    height[v.index()] = height[v.index()].max(cand);
                }
            }
        }
        Ok(TopoLevels { depth, height })
    }

    /// Earliest possible start cycle of `v` ignoring resources and
    /// loop-carried dependences.
    #[inline]
    pub fn depth(&self, v: NodeId) -> u64 {
        self.depth[v.index()]
    }

    /// Longest latency-weighted path from `v` (inclusive) to any sink.
    #[inline]
    pub fn height(&self, v: NodeId) -> u64 {
        self.height[v.index()]
    }

    /// Length of the critical path of one iteration (max over nodes of
    /// `depth + height`).
    pub fn critical_path(&self) -> u64 {
        self.depth
            .iter()
            .zip(&self.height)
            .map(|(d, h)| d + h)
            .max()
            .unwrap_or(0)
    }
}

/// Topological order over distance-0 edges only.
fn zero_distance_topo(ddg: &Ddg) -> Result<Vec<NodeId>, CycleError> {
    let n = ddg.num_nodes();
    let mut indeg = vec![0usize; n];
    for (_, e) in ddg.edges() {
        if e.distance() == 0 && !e.is_self_loop() {
            indeg[e.target().index()] += 1;
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    ready.sort();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = ready.first().copied() {
        ready.remove(0);
        order.push(NodeId::from_index(v));
        let mut newly = Vec::new();
        for (_, e) in ddg.out_edges(NodeId::from_index(v)) {
            if e.distance() == 0 && !e.is_self_loop() {
                let t = e.target().index();
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    newly.push(t);
                }
            }
        }
        ready.extend(newly);
        ready.sort();
    }
    if order.len() != n {
        let stuck = (0..n)
            .map(NodeId::from_index)
            .filter(|v| !order.contains(v))
            .collect();
        return Err(CycleError { stuck });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DdgBuilder, DepKind, OpKind};

    fn path_graph() -> (Ddg, Vec<NodeId>) {
        // B -> E -> I, plus isolated X
        let mut bld = DdgBuilder::new("t");
        let b = bld.node("B", OpKind::FpAdd, 1);
        let e = bld.node("E", OpKind::FpAdd, 2);
        let i = bld.node("I", OpKind::FpAdd, 3);
        let x = bld.node("X", OpKind::FpAdd, 1);
        bld.edge(b, e, DepKind::RegFlow, 0).unwrap();
        bld.edge(e, i, DepKind::RegFlow, 0).unwrap();
        let g = bld.build().unwrap();
        (g, vec![b, e, i, x])
    }

    #[test]
    fn asap_orders_sources_first() {
        let (g, ids) = path_graph();
        let order = sort_asap(&g, &[ids[0], ids[1], ids[2]]).unwrap();
        assert_eq!(order, vec![ids[0], ids[1], ids[2]]);
    }

    #[test]
    fn pala_orders_sinks_first() {
        let (g, ids) = path_graph();
        // This reproduces step 6 of the paper's Figure 7 walk-through: the
        // predecessors {B, I} plus the connecting node E are ordered
        // {I, E, B}.
        let order = sort_pala(&g, &[ids[0], ids[1], ids[2]]).unwrap();
        assert_eq!(order, vec![ids[2], ids[1], ids[0]]);
    }

    #[test]
    fn ties_break_by_node_id() {
        let (g, ids) = path_graph();
        // B and X are both sources with no relation: program order decides.
        let order = sort_asap(&g, &[ids[3], ids[0]]).unwrap();
        assert_eq!(order, vec![ids[0], ids[3]]);
    }

    #[test]
    fn sort_detects_cycles() {
        let mut bld = DdgBuilder::new("cyc");
        let a = bld.node("a", OpKind::FpAdd, 1);
        let b = bld.node("b", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 0).unwrap();
        let g = bld.build().unwrap();
        let err = sort_asap(&g, &[a, b]).unwrap_err();
        assert_eq!(err.stuck.len(), 2);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn edges_leaving_the_subset_are_ignored() {
        let (g, ids) = path_graph();
        // Only E and I: B -> E leaves the subset and must not matter.
        let order = sort_asap(&g, &[ids[1], ids[2]]).unwrap();
        assert_eq!(order, vec![ids[1], ids[2]]);
    }

    #[test]
    fn self_loops_do_not_block_sorting() {
        let mut bld = DdgBuilder::new("self");
        let a = bld.node("a", OpKind::FpAdd, 1);
        let b = bld.node("b", OpKind::FpAdd, 1);
        bld.edge(a, a, DepKind::RegFlow, 1).unwrap();
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        let g = bld.build().unwrap();
        let order = sort_asap(&g, &[a, b]).unwrap();
        assert_eq!(order, vec![a, b]);
    }

    #[test]
    fn levels_follow_latencies() {
        let (g, ids) = path_graph();
        let levels = TopoLevels::compute(&g).unwrap();
        assert_eq!(levels.depth(ids[0]), 0);
        assert_eq!(levels.depth(ids[1]), 1);
        assert_eq!(levels.depth(ids[2]), 3);
        assert_eq!(levels.height(ids[2]), 3);
        assert_eq!(levels.height(ids[1]), 5);
        assert_eq!(levels.height(ids[0]), 6);
        assert_eq!(levels.critical_path(), 6);
    }

    #[test]
    fn levels_ignore_loop_carried_edges() {
        let mut bld = DdgBuilder::new("rec");
        let a = bld.node("a", OpKind::FpAdd, 1);
        let b = bld.node("b", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 1).unwrap(); // recurrence, ignored
        let g = bld.build().unwrap();
        let levels = TopoLevels::compute(&g).unwrap();
        assert_eq!(levels.depth(a), 0);
        assert_eq!(levels.depth(b), 1);
    }

    #[test]
    fn levels_reject_zero_distance_cycles() {
        let mut bld = DdgBuilder::new("bad");
        let a = bld.node("a", OpKind::FpAdd, 1);
        let b = bld.node("b", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 0).unwrap();
        let g = bld.build().unwrap();
        assert!(TopoLevels::compute(&g).is_err());
    }

    #[test]
    fn diamond_critical_path_takes_longest_branch() {
        let mut bld = DdgBuilder::new("diamond");
        let a = bld.node("a", OpKind::Load, 2);
        let b = bld.node("b", OpKind::FpDiv, 17);
        let c = bld.node("c", OpKind::FpAdd, 1);
        let d = bld.node("d", OpKind::Store, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(a, c, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, d, DepKind::RegFlow, 0).unwrap();
        bld.edge(c, d, DepKind::RegFlow, 0).unwrap();
        let g = bld.build().unwrap();
        let levels = TopoLevels::compute(&g).unwrap();
        assert_eq!(levels.critical_path(), 2 + 17 + 1);
        assert_eq!(levels.depth(d), 19);
    }
}
