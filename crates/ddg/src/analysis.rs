//! Shared per-loop graph analyses: compute once, reuse in every phase.
//!
//! Before this module existed, each scheduling phase re-derived the same
//! structural facts about a loop body: the pre-ordering ran Tarjan once in
//! [`crate::circuits`] (to restrict Johnson's circuit search to each SCC)
//! and once more to find the backward edges, the MII computation repeated
//! the recurrence analysis as a Bellman-Ford binary search, and every
//! `Early_Start`/`Late_Start` evaluation re-resolved dependence latencies
//! edge by edge. [`LoopAnalysis`] computes each of these **at most once**
//! per [`Ddg`] — lazily, on first access, so every consumer pays only for
//! the facts it actually touches — and hands cached references to all
//! phases:
//!
//! * Tarjan SCCs ([`LoopAnalysis::sccs`]) — one run, shared with the circuit
//!   enumeration and the backward-edge computation (`O(|V| + |E|)`);
//! * the backward edges of recurrence circuits
//!   ([`LoopAnalysis::backward_edges`]) — `O(|E|)` given the SCCs;
//! * the flat dependence-constraint edge list ([`LoopAnalysis::dep_edges`])
//!   used by every Bellman-Ford pass — `O(|E|)`, built once instead of once
//!   per `earliest_starts`/`latest_starts` call;
//! * the placement CSR ([`LoopAnalysis::placement`]) — per-node predecessor
//!   and successor arc slices with **precomputed** [`dependence_latency`]
//!   values, the dense representation `PartialSchedule` iterates on the
//!   scheduling hot path (`O(|V| + |E|)`);
//! * the full and backward-edge-filtered CSR adjacencies
//!   ([`LoopAnalysis::csr_full`], [`LoopAnalysis::csr_work`]), the
//!   recurrence-circuit analysis ([`LoopAnalysis::recurrences`], which
//!   reuses the cached SCCs instead of re-running Tarjan) and the exact
//!   recurrence-constrained MII ([`LoopAnalysis::rec_mii`]).
//!
//! The `tarjan_runs_exactly_once` test at the bottom of this file pins the
//! "Tarjan at most once, however many phases ask" property with an
//! instrumented counter ([`crate::instrument`]).
//!
//! # The core/overlay split
//!
//! [`LoopAnalysis`] is a thin composition of two layers:
//!
//! * [`LoopCore`] — the machine-independent facts (everything above: SCCs,
//!   backward edges, CSRs, recurrence groups, cycle ratios, dependence
//!   edges resolved from the graph's authoritative node latencies, the
//!   structural fingerprint). Lifetime-free and `Sync`, so one
//!   `Arc<LoopCore>` per loop can be shared by every per-machine
//!   scheduling cell of a multi-backend batch — Tarjan and the
//!   cycle-ratio λ-search then run exactly once per loop however many
//!   machines are targeted.
//! * [`MachineView`] — the cheap per-machine overlay. The default view
//!   delegates every latency-resolved fact to the core (the `.loop`
//!   corpus convention: node latencies are already the target's); an
//!   explicit view rebuilds only the `O(|E|)` latency-dependent facts
//!   ([`DepEdge`] list, [`PlacementCsr`], RecMII) against a per-node
//!   latency table.

use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

use crate::circuits::{RecurrenceInfo, DEFAULT_CIRCUIT_BUDGET};
use crate::cycle_ratio::CycleRatios;
use crate::dense::Csr;
use crate::edge::{DepKind, Edge, EdgeId};
use crate::graph::Ddg;
use crate::node::NodeId;
use crate::recurrence::RecurrenceGroups;
use crate::scc;

/// The latency enforced along a dependence edge: the number of cycles that
/// must elapse between the issue of the source and the issue of the target
/// (before accounting for the `δ·II` slack of loop-carried dependences).
///
/// Register flow, memory and control dependences wait for the producer to
/// complete (`λ(u)` cycles). Anti and output register dependences only
/// require issue order (1 cycle): the consumer of an anti-dependence reads
/// the old value at issue time, so the new definition merely has to be
/// issued later.
pub fn dependence_latency(ddg: &Ddg, edge: &Edge) -> u32 {
    match edge.kind() {
        DepKind::RegAnti | DepKind::RegOutput => 1,
        // RegFlow, Memory, Control and any future dependence kind wait for
        // the producer to complete.
        _ => ddg.node(edge.source()).latency(),
    }
}

/// One dependence-constraint edge with its latency already resolved:
/// `t(target) ≥ t(source) + latency − distance·II`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Source node index.
    pub source: u32,
    /// Target node index.
    pub target: u32,
    /// Resolved [`dependence_latency`] of the edge.
    pub latency: u32,
    /// Dependence distance in iterations (`δ`).
    pub distance: u32,
}

impl DepEdge {
    /// The edge's weight in the constraint graph at initiation interval
    /// `ii`: `latency − distance·II`.
    #[inline]
    pub fn weight(&self, ii: i64) -> i64 {
        i64::from(self.latency) - i64::from(self.distance) * ii
    }
}

/// Flattens every dependence edge of `ddg` (self-loops included — they
/// constrain the II even though they never constrain placement) with its
/// latency resolved, in edge-id order. `O(|E|)`.
pub fn collect_dep_edges(ddg: &Ddg) -> Vec<DepEdge> {
    ddg.edges()
        .map(|(_, e)| DepEdge {
            source: e.source().0,
            target: e.target().0,
            latency: dependence_latency(ddg, e),
            distance: e.distance(),
        })
        .collect()
}

/// One placement arc: a dependence seen from one of its endpoints, with the
/// latency already resolved. Stored in the per-node slices of
/// [`PlacementCsr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepArc {
    /// The other endpoint (the source for in-arcs, the target for out-arcs).
    pub other: u32,
    /// Resolved [`dependence_latency`] of the edge.
    pub latency: u32,
    /// Dependence distance in iterations (`δ`).
    pub distance: u32,
}

/// Compressed-sparse-row dependence arcs for the placement hot path.
///
/// For each node the structure stores the incoming and outgoing dependence
/// arcs (self-loops excluded — they only bound the II, never a placement
/// window) with their latencies precomputed, so `Early_Start`/`Late_Start`
/// become two flat slice scans with no per-edge latency dispatch and no
/// hashing. Parallel edges are **kept** (unlike [`Csr`]): two dependences
/// between the same nodes can carry different distances and both bound the
/// placement.
///
/// Construction is `O(|V| + |E|)`; arc queries are `O(1)` slice borrows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementCsr {
    bound: usize,
    in_offsets: Vec<u32>,
    in_arcs: Vec<DepArc>,
    out_offsets: Vec<u32>,
    out_arcs: Vec<DepArc>,
}

impl PlacementCsr {
    /// Builds the placement arcs of `ddg` in `O(|V| + |E|)`, resolving
    /// latencies from the graph's node latencies ([`dependence_latency`]).
    pub fn from_graph(ddg: &Ddg) -> Self {
        Self::from_graph_with(ddg, |e| dependence_latency(ddg, e))
    }

    /// Builds the placement arcs of `ddg` with an explicit per-edge latency
    /// resolver — the [`MachineView`] overlay hook. `O(|V| + |E|)`.
    pub fn from_graph_with(ddg: &Ddg, resolve: impl Fn(&Edge) -> u32) -> Self {
        let n = ddg.num_nodes();
        let mut ins: Vec<Vec<DepArc>> = vec![Vec::new(); n];
        let mut outs: Vec<Vec<DepArc>> = vec![Vec::new(); n];
        for (_, e) in ddg.edges() {
            if e.is_self_loop() {
                continue; // self-dependences only bound II, not placement
            }
            let latency = resolve(e);
            ins[e.target().index()].push(DepArc {
                other: e.source().0,
                latency,
                distance: e.distance(),
            });
            outs[e.source().index()].push(DepArc {
                other: e.target().0,
                latency,
                distance: e.distance(),
            });
        }
        let flatten = |rows: Vec<Vec<DepArc>>| {
            let mut offsets = Vec::with_capacity(n + 1);
            let mut flat = Vec::new();
            offsets.push(0u32);
            for row in rows {
                flat.extend_from_slice(&row);
                offsets.push(flat.len() as u32);
            }
            (offsets, flat)
        };
        let (in_offsets, in_arcs) = flatten(ins);
        let (out_offsets, out_arcs) = flatten(outs);
        PlacementCsr {
            bound: n,
            in_offsets,
            in_arcs,
            out_offsets,
            out_arcs,
        }
    }

    /// Upper bound on node indices.
    #[inline]
    pub fn node_bound(&self) -> usize {
        self.bound
    }

    /// The incoming dependence arcs of node `i` (self-loops excluded).
    #[inline]
    pub fn in_arcs(&self, i: usize) -> &[DepArc] {
        &self.in_arcs[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }

    /// The outgoing dependence arcs of node `i` (self-loops excluded).
    #[inline]
    pub fn out_arcs(&self, i: usize) -> &[DepArc] {
        &self.out_arcs[self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize]
    }
}

/// The backward edges of every recurrence circuit, given the strongly
/// connected components of the graph: loop-carried edges whose endpoints
/// belong to the same SCC. Removing them makes the work graph acyclic (any
/// remaining cycle would have distance 0, which the MII computation
/// rejects). `O(|V| + |E|)` given the SCCs.
pub fn backward_edges_of(ddg: &Ddg, sccs: &[Vec<NodeId>]) -> HashSet<EdgeId> {
    let mut scc_of = vec![usize::MAX; ddg.num_nodes()];
    for (i, comp) in sccs.iter().enumerate() {
        for &n in comp {
            scc_of[n.index()] = i;
        }
    }
    ddg.edges()
        .filter(|(_, e)| {
            e.distance() > 0 && scc_of[e.source().index()] == scc_of[e.target().index()]
        })
        .map(|(eid, _)| eid)
        .collect()
}

/// Longest-path solution of the dependence constraints at a given II — the
/// shared Bellman-Ford core behind `earliest_starts` and the RecMII search.
/// Returns `None` when the constraints are infeasible at this II.
/// `O(|V|·|E|)` worst case, one early-exit pass per settled round.
pub fn longest_paths(n: usize, edges: &[DepEdge], ii: u32) -> Option<Vec<i64>> {
    let ii = i64::from(ii);
    let mut dist = vec![0i64; n];
    for round in 0..=n {
        let mut changed = false;
        for e in edges {
            let w = e.weight(ii);
            let (u, v) = (e.source as usize, e.target as usize);
            if dist[u] + w > dist[v] {
                dist[v] = dist[u] + w;
                changed = true;
            }
        }
        if !changed {
            return Some(dist);
        }
        if round == n {
            return None;
        }
    }
    Some(dist)
}

/// Latest start times relative to `horizon` at a given II — the backward
/// counterpart of [`longest_paths`]. Returns `None` when infeasible.
/// `O(|V|·|E|)` worst case.
pub fn latest_starts_from(n: usize, edges: &[DepEdge], ii: u32, horizon: i64) -> Option<Vec<i64>> {
    let ii = i64::from(ii);
    let mut dist = vec![horizon; n];
    for round in 0..=n {
        let mut changed = false;
        for e in edges {
            let w = e.weight(ii);
            let (u, v) = (e.source as usize, e.target as usize);
            if dist[v] - w < dist[u] {
                dist[u] = dist[v] - w;
                changed = true;
            }
        }
        if !changed {
            return Some(dist);
        }
        if round == n {
            return None;
        }
    }
    Some(dist)
}

/// Whether the constraint graph with edge weights `latency − δ·II` contains
/// a positive-weight cycle (which makes the given II infeasible).
/// `O(|V|·|E|)` worst case with early exit.
fn has_positive_cycle(n: usize, edges: &[DepEdge], ii: i64) -> bool {
    if n == 0 {
        return false;
    }
    // Longest-path Bellman-Ford from a virtual source connected to every
    // node with weight 0. dist[] can only increase; if it still increases
    // after n iterations there is a positive cycle.
    let mut dist = vec![0i64; n];
    for round in 0..n {
        let mut changed = false;
        for e in edges {
            let w = e.weight(ii);
            let (u, v) = (e.source as usize, e.target as usize);
            if dist[u] + w > dist[v] {
                dist[v] = dist[u] + w;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
        if round == n - 1 && changed {
            return true;
        }
    }
    false
}

/// The exact recurrence-constrained minimum initiation interval: the
/// smallest II for which the dependence constraints admit a solution, found
/// by binary search on II with a Bellman-Ford positive-cycle check — exact
/// without enumerating elementary circuits. `O(|V|·|E|·log Λ)` where `Λ` is
/// the total latency.
///
/// Returns `Some(0)` for acyclic graphs and `None` when a zero-distance
/// cycle exists (infeasible at every II).
pub fn exact_rec_mii(n: usize, edges: &[DepEdge]) -> Option<u32> {
    // Upper bound: the sum of all dependence latencies is always feasible
    // (every circuit has distance >= 1 once zero-distance cycles are ruled
    // out, and its latency sum is <= this bound).
    let upper: u64 = edges
        .iter()
        .map(|e| u64::from(e.latency))
        .sum::<u64>()
        .max(1);

    if has_positive_cycle(n, edges, upper as i64) {
        // Weight stays positive for arbitrarily large II only when the cycle
        // distance is 0.
        return None;
    }
    let mut lo = 0u64; // known-infeasible (or "no constraint" level)
    let mut hi = upper; // known-feasible
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if has_positive_cycle(n, edges, mid as i64) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // hi is the smallest feasible II; if even II = 0 is feasible no cycle
    // imposes anything: the graph is acyclic and there is no recurrence
    // constraint.
    if hi == 1 && !has_positive_cycle(n, edges, 0) {
        return Some(0);
    }
    Some(hi as u32)
}

/// Resource-free earliest/latest start times that update **incrementally**
/// from one initiation interval to the next.
///
/// Every II-escalation step used to rerun both Bellman-Ford passes from
/// scratch, although only the loop-carried edge weights change — by exactly
/// `distance` per unit of II. This structure keeps, next to each start
/// time, the distance sum of a path *witnessing* it. Advancing from II to
/// II + d then warm-starts the relaxation from the witness values shifted
/// by `d · distance` (clamped into the solution lattice), which is a valid
/// lower (resp. upper) bound on the new fixpoint: the relaxation converges
/// in one or two passes over the edge list instead of `O(|V|)` of them on
/// typical escalation steps, while provably reaching the **same** fixpoint
/// as a from-scratch [`longest_paths`] / [`latest_starts_from`] run (the
/// workspace test suite pins the equality at every escalation step).
///
/// Latest starts are kept relative to horizon 0 (all values ≤ 0); the
/// constraint system is shift-invariant, so [`IncrementalStarts::latest`]
/// adds the caller's horizon back on.
#[derive(Debug, Clone)]
pub struct IncrementalStarts {
    ii: u32,
    /// Whether the stored vectors are the fixpoints at `ii` (a failed —
    /// infeasible — solve leaves mid-relaxation values that are still
    /// valid path witnesses, but not solutions).
    solved: bool,
    est: Vec<i64>,
    est_dist: Vec<u64>,
    lst: Vec<i64>,
    lst_dist: Vec<u64>,
}

impl IncrementalStarts {
    /// Computes both start-time solutions at `ii` from scratch. Returns
    /// `None` when the constraints are infeasible (`ii` below the RecMII).
    pub fn new(n: usize, edges: &[DepEdge], ii: u32) -> Option<Self> {
        let mut s = IncrementalStarts {
            ii,
            solved: false,
            est: vec![0; n],
            est_dist: vec![0; n],
            lst: vec![0; n],
            lst_dist: vec![0; n],
        };
        s.solved = s.solve(edges);
        s.solved.then_some(s)
    }

    /// The II the current solutions are valid for.
    #[inline]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Advances the solutions to `ii`, warm-starting from the current
    /// witnesses when `ii` is larger (the escalation direction) and
    /// recomputing from scratch otherwise. Returns `false` when the
    /// constraints are infeasible at `ii`; the stored values then still
    /// witness real dependence paths, so a later advance to a feasible II
    /// remains correct.
    pub fn advance(&mut self, edges: &[DepEdge], ii: u32) -> bool {
        if ii == self.ii && self.solved {
            return true;
        }
        // Re-probing the II of a previously *failed* advance falls through
        // and relaxes again from the stored witnesses (correctly failing
        // again if still infeasible) instead of reporting stale values.
        if ii < self.ii {
            self.est.fill(0);
            self.est_dist.fill(0);
            self.lst.fill(0);
            self.lst_dist.fill(0);
        } else {
            let d = i64::from(ii - self.ii);
            for v in 0..self.est.len() {
                let shifted = self.est[v] - d * self.est_dist[v] as i64;
                if shifted <= 0 {
                    self.est[v] = 0;
                    self.est_dist[v] = 0;
                } else {
                    self.est[v] = shifted;
                }
                let shifted = self.lst[v] + d * self.lst_dist[v] as i64;
                if shifted >= 0 {
                    self.lst[v] = 0;
                    self.lst_dist[v] = 0;
                } else {
                    self.lst[v] = shifted;
                }
            }
        }
        self.ii = ii;
        self.solved = self.solve(edges);
        self.solved
    }

    /// The earliest start times at the current II.
    #[inline]
    pub fn earliest(&self) -> &[i64] {
        &self.est
    }

    /// The latest start times relative to horizon 0 (all ≤ 0).
    #[inline]
    pub fn latest_relative(&self) -> &[i64] {
        &self.lst
    }

    /// The latest start times relative to `horizon`.
    pub fn latest(&self, horizon: i64) -> Vec<i64> {
        self.lst.iter().map(|&v| v + horizon).collect()
    }

    /// Runs both relaxations to their fixpoints from the current values.
    /// The round bound is the same as the from-scratch passes': a solution
    /// still changing after `n` sweeps implies a positive cycle.
    fn solve(&mut self, edges: &[DepEdge]) -> bool {
        let (n, ii) = (self.est.len(), i64::from(self.ii));
        for round in 0..=n {
            let mut changed = false;
            for e in edges {
                let w = e.weight(ii);
                let (u, v) = (e.source as usize, e.target as usize);
                let cand = self.est[u] + w;
                if cand > self.est[v] {
                    self.est[v] = cand;
                    self.est_dist[v] = self.est_dist[u] + u64::from(e.distance);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            if round == n {
                return false;
            }
        }
        for round in 0..=n {
            let mut changed = false;
            for e in edges {
                let w = e.weight(ii);
                let (u, v) = (e.source as usize, e.target as usize);
                let cand = self.lst[v] - w;
                if cand < self.lst[u] {
                    self.lst[u] = cand;
                    self.lst_dist[u] = self.lst_dist[v] + u64::from(e.distance);
                    changed = true;
                }
            }
            if !changed {
                return true;
            }
            if round == n {
                return false;
            }
        }
        true
    }
}

/// Lazily constructed [`IncrementalStarts`] for an II-escalation loop: the
/// first II pays the two from-scratch passes, every later II a warm-started
/// update. Handed by the baselines' escalation driver to each per-II
/// attempt.
#[derive(Debug, Default)]
pub struct PerIiStarts {
    inner: Option<IncrementalStarts>,
}

impl PerIiStarts {
    /// An empty cache; nothing is computed until the first [`Self::at`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The start-time solutions at `ii` over `analysis`'s cached edge list,
    /// computed incrementally from the previous call's II when possible.
    /// Returns `None` when `ii` is infeasible.
    pub fn at(&mut self, analysis: &LoopAnalysis<'_>, ii: u32) -> Option<&IncrementalStarts> {
        let edges = analysis.dep_edges();
        match &mut self.inner {
            Some(s) => {
                if !s.advance(edges, ii) {
                    return None;
                }
            }
            None => {
                self.inner = Some(IncrementalStarts::new(
                    analysis.ddg().num_nodes(),
                    edges,
                    ii,
                )?);
            }
        }
        self.inner.as_ref()
    }
}

/// The machine-independent analyses of one loop body, computed at most
/// once and shareable across machines and threads.
///
/// Everything in here is a pure function of the [`Ddg`] — Tarjan SCCs,
/// backward edges, adjacency CSRs, recurrence groups, cycle ratios, the
/// flattened dependence edges (latencies resolved from the graph's node
/// latencies, which are authoritative; see [`dependence_latency`]), the
/// structural fingerprint. None of it depends on the target machine, which
/// contributes only *resources* (ResMII, MRT occupancy) to scheduling. The
/// struct is lifetime-free and every getter takes the graph it caches for,
/// so an `Arc<LoopCore>` can be built once per loop and handed to N
/// per-machine scheduling cells: each fact is computed by whichever cell
/// asks first ([`OnceLock`] guarantees exactly-once under concurrency) and
/// reused by all others. The `tarjan_runs_exactly_once` test and the
/// workspace `core_overlay` suite pin the once-per-loop property.
///
/// Callers must pass the **same** graph to every getter; constructing the
/// core through [`LoopAnalysis::analyze`] or
/// [`LoopAnalysis::with_core`] enforces that by construction.
#[derive(Debug, Default)]
pub struct LoopCore {
    sccs: OnceLock<Vec<Vec<NodeId>>>,
    backward: OnceLock<HashSet<EdgeId>>,
    dep_edges: OnceLock<Vec<DepEdge>>,
    placement: OnceLock<Arc<PlacementCsr>>,
    csr_full: OnceLock<Csr>,
    csr_work: OnceLock<Csr>,
    rec_info: OnceLock<RecurrenceInfo>,
    ratios: OnceLock<CycleRatios>,
    rec_groups: OnceLock<RecurrenceGroups>,
    rec_mii: OnceLock<Option<u32>>,
    fingerprint: OnceLock<u64>,
}

impl LoopCore {
    /// An empty core cache. `O(1)`; every analysis is computed on first
    /// use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The strongly connected components — the core's single Tarjan run,
    /// `O(|V| + |E|)` on first access.
    pub fn sccs(&self, ddg: &Ddg) -> &[Vec<NodeId>] {
        self.sccs
            .get_or_init(|| scc::strongly_connected_components(ddg))
    }

    /// The backward edges of every recurrence circuit (loop-carried edges
    /// internal to an SCC); `O(|E|)` from the cached SCCs on first access.
    pub fn backward_edges(&self, ddg: &Ddg) -> &HashSet<EdgeId> {
        self.backward
            .get_or_init(|| backward_edges_of(ddg, self.sccs(ddg)))
    }

    /// The flat dependence-constraint edges with resolved latencies, in
    /// edge-id order (self-loops included); `O(|E|)` on first access.
    pub fn dep_edges(&self, ddg: &Ddg) -> &[DepEdge] {
        self.dep_edges.get_or_init(|| collect_dep_edges(ddg))
    }

    /// The placement CSR (per-node arcs with precomputed latencies), shared
    /// via `Arc` so partial schedules can hold it without re-borrowing the
    /// core. `O(|V| + |E|)` on first access.
    pub fn placement(&self, ddg: &Ddg) -> &Arc<PlacementCsr> {
        self.placement
            .get_or_init(|| Arc::new(PlacementCsr::from_graph(ddg)))
    }

    /// The full (deduplicated, self-loop-free) adjacency CSR;
    /// `O(|V| + |E|)` on first access.
    pub fn csr_full(&self, ddg: &Ddg) -> &Csr {
        self.csr_full.get_or_init(|| Csr::from_graph(ddg))
    }

    /// The adjacency CSR with backward edges removed — the acyclic work
    /// graph of the pre-ordering phase. `O(|V| + |E|)` on first access.
    pub fn csr_work(&self, ddg: &Ddg) -> &Csr {
        self.csr_work
            .get_or_init(|| Csr::filtered(ddg, self.backward_edges(ddg)))
    }

    /// The recurrence-circuit analysis (Johnson's enumeration grouped into
    /// recurrence subgraphs), reusing the cached SCCs so Tarjan is **not**
    /// re-run. Exponential in the worst case, bounded by the default
    /// circuit budget (the result is then marked truncated).
    ///
    /// Kept as the differential oracle and legacy fallback; the scheduling
    /// phases read the enumeration-free [`LoopCore::recurrence_groups`]
    /// instead.
    pub fn recurrences(&self, ddg: &Ddg) -> &RecurrenceInfo {
        self.rec_info.get_or_init(|| {
            RecurrenceInfo::analyze_with_sccs(ddg, self.sccs(ddg), DEFAULT_CIRCUIT_BUDGET)
        })
    }

    /// The per-node maximum cycle-ratio analysis
    /// ([`crate::cycle_ratio::CycleRatios`]): for every node, the exact
    /// `RecMII` of the most critical recurrence circuit through it,
    /// derived from the cached SCCs in polynomial time. Feeds
    /// [`LoopCore::recurrence_groups`] and the pre-ordering's per-node
    /// criticality.
    pub fn cycle_ratios(&self, ddg: &Ddg) -> &CycleRatios {
        self.ratios
            .get_or_init(|| CycleRatios::analyze_with_sccs(ddg, self.sccs(ddg)))
    }

    /// The enumeration-free recurrence analysis
    /// ([`crate::recurrence::RecurrenceGroups`]), assembled from the
    /// cached cycle-ratio analysis — never truncated, whatever the density
    /// of the components. This is the default recurrence path of the
    /// pre-ordering phase.
    ///
    /// With the `verify-recurrence` feature enabled, every analysed loop is
    /// cross-checked against a (budgeted) circuit enumeration whenever that
    /// enumeration completes; a hard divergence panics and any multi-edge
    /// coarsening is counted and logged
    /// ([`crate::recurrence::coarsening`]).
    pub fn recurrence_groups(&self, ddg: &Ddg) -> &RecurrenceGroups {
        self.rec_groups.get_or_init(|| {
            let groups = RecurrenceGroups::from_cycle_ratios(ddg, self.cycle_ratios(ddg));
            #[cfg(feature = "verify-recurrence")]
            {
                let oracle = self.recurrences(ddg);
                if !oracle.truncated {
                    match crate::recurrence::cross_check(&groups, oracle) {
                        Err(e) => panic!(
                            "SCC-derived recurrence groups diverged from the \
                             circuit enumeration on `{}`: {e}",
                            ddg.name()
                        ),
                        Ok(report) => {
                            crate::recurrence::coarsening::record(report.is_exact());
                            if !report.is_exact() {
                                // The ≥3-backward-edge fallback is the only
                                // documented source of inexactness; anything
                                // else diverging is a bug, not coarsening.
                                assert!(
                                    report.deep_subgraphs > 0,
                                    "SCC-derived recurrence groups diverged from the \
                                     circuit enumeration on `{}` without any \
                                     deep (≥3-edge) subgraph to excuse it: {report:?}",
                                    ddg.name()
                                );
                                eprintln!(
                                    "verify-recurrence: `{}` coarsened: {report:?}",
                                    ddg.name()
                                );
                            }
                        }
                    }
                }
            }
            groups
        })
    }

    /// The exact recurrence-constrained MII ([`exact_rec_mii`]); `None`
    /// means the loop has a zero-distance dependence cycle and no II is
    /// feasible. Cached after the first binary search.
    pub fn rec_mii(&self, ddg: &Ddg) -> Option<u32> {
        *self
            .rec_mii
            .get_or_init(|| exact_rec_mii(ddg.num_nodes(), self.dep_edges(ddg)))
    }

    /// The structural fingerprint of the loop
    /// ([`crate::fingerprint::ddg_fingerprint`]), computed once per core
    /// however many machine keys it is combined with
    /// ([`crate::fingerprint::cache_key`] varies only the machine digest
    /// across the cells of a multi-machine batch).
    pub fn fingerprint(&self, ddg: &Ddg) -> u64 {
        *self
            .fingerprint
            .get_or_init(|| crate::fingerprint::ddg_fingerprint(ddg))
    }
}

/// The per-machine overlay of a loop analysis: the latency-resolved facts
/// ([`DepEdge`] list, [`PlacementCsr`], RecMII) a target machine could
/// specialise, layered over a shared [`LoopCore`].
///
/// In the default mode ([`MachineView::graph_latencies`]) the graph's node
/// latencies are authoritative — the convention of every `.loop` corpus,
/// where the importer has already baked the target latencies into the
/// nodes — and the view delegates every fact to the shared core, so it is
/// a zero-cost handle and N machine views of one loop share one set of
/// latency-resolved caches byte-for-byte.
///
/// [`MachineView::with_node_latencies`] instead re-resolves the
/// dependence latencies against an explicit per-node latency table (e.g.
/// `hrms_machine::apply_latencies`' table for a target machine) without
/// touching the graph: only the `O(|E|)` latency-dependent facts are
/// rebuilt, while every structural fact (SCCs, recurrence groups, cycle
/// ratios, fingerprint) still comes from the shared core.
#[derive(Debug, Default)]
pub struct MachineView {
    overlay: Option<LatencyOverlay>,
}

/// The rebuilt latency-resolved facts of a non-default [`MachineView`].
#[derive(Debug)]
struct LatencyOverlay {
    dep_edges: Vec<DepEdge>,
    placement: Arc<PlacementCsr>,
    rec_mii: OnceLock<Option<u32>>,
}

impl MachineView {
    /// The default view: the graph's node latencies are authoritative and
    /// every fact delegates to the shared [`LoopCore`]. `O(1)`.
    pub fn graph_latencies() -> Self {
        Self::default()
    }

    /// A view resolving dependence latencies against `latencies[node]`
    /// instead of the graph's node latencies (anti and output dependences
    /// keep their issue-order latency of 1, as in [`dependence_latency`]).
    /// `O(|V| + |E|)` — the per-machine cost the core/overlay split bounds
    /// the re-analysis to.
    ///
    /// # Panics
    ///
    /// Panics if `latencies.len() != ddg.num_nodes()`.
    pub fn with_node_latencies(ddg: &Ddg, latencies: &[u32]) -> Self {
        assert_eq!(
            latencies.len(),
            ddg.num_nodes(),
            "one latency per node required"
        );
        let resolve = |e: &Edge| match e.kind() {
            DepKind::RegAnti | DepKind::RegOutput => 1,
            _ => latencies[e.source().index()],
        };
        let dep_edges = ddg
            .edges()
            .map(|(_, e)| DepEdge {
                source: e.source().0,
                target: e.target().0,
                latency: resolve(e),
                distance: e.distance(),
            })
            .collect();
        MachineView {
            overlay: Some(LatencyOverlay {
                dep_edges,
                placement: Arc::new(PlacementCsr::from_graph_with(ddg, resolve)),
                rec_mii: OnceLock::new(),
            }),
        }
    }

    /// Whether this is the default delegating view (no rebuilt overlay).
    pub fn is_graph_latencies(&self) -> bool {
        self.overlay.is_none()
    }
}

/// Every graph analysis of one loop body, computed at most once: a thin
/// composition of a shareable machine-independent [`LoopCore`] and a
/// per-machine [`MachineView`] overlay.
///
/// Construction ([`LoopAnalysis::analyze`]) is free: every fact is
/// materialised lazily on first access and cached, so each consumer pays
/// only for what it touches — a pre-ordering-only caller never builds the
/// placement CSR, a baseline scheduler never runs Tarjan. What is shared is
/// the *cache*: however many phases (or, through a shared `Arc<LoopCore>`,
/// however many machines) ask, Tarjan runs at most once per loop (the
/// `tarjan_runs_exactly_once` test pins this), the dependence edges are
/// flattened once, and so on.
///
/// The struct borrows the [`Ddg`] it analyses, so a scheduler typically
/// creates one per loop on the stack — [`LoopAnalysis::with_core`] when a
/// batch driver hands it a shared core, [`LoopAnalysis::analyze`] for a
/// private one — and threads `&LoopAnalysis` through its phases.
#[derive(Debug)]
pub struct LoopAnalysis<'a> {
    ddg: &'a Ddg,
    core: Arc<LoopCore>,
    view: MachineView,
}

impl<'a> LoopAnalysis<'a> {
    /// Wraps `ddg` in an (initially empty) private analysis cache. `O(1)`;
    /// every analysis is computed on first use.
    pub fn analyze(ddg: &'a Ddg) -> Self {
        Self::with_core(ddg, Arc::new(LoopCore::new()))
    }

    /// Composes `ddg` with a shared machine-independent core and the
    /// default (graph-latency) machine view. `O(1)`. The core must have
    /// been created for this same graph (or be empty).
    pub fn with_core(ddg: &'a Ddg, core: Arc<LoopCore>) -> Self {
        Self::with_view(ddg, core, MachineView::graph_latencies())
    }

    /// Composes `ddg`, a shared core and an explicit machine view. `O(1)`.
    pub fn with_view(ddg: &'a Ddg, core: Arc<LoopCore>, view: MachineView) -> Self {
        LoopAnalysis { ddg, core, view }
    }

    /// The analysed graph.
    #[inline]
    pub fn ddg(&self) -> &'a Ddg {
        self.ddg
    }

    /// The shared machine-independent core (clone the `Arc` to hand the
    /// same core to another per-machine analysis of this loop).
    #[inline]
    pub fn core(&self) -> &Arc<LoopCore> {
        &self.core
    }

    /// The per-machine overlay this analysis resolves latencies through.
    #[inline]
    pub fn view(&self) -> &MachineView {
        &self.view
    }

    /// The loop's structural fingerprint, cached in the shared core (see
    /// [`LoopCore::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.core.fingerprint(self.ddg)
    }

    /// The strongly connected components — the analysis's single Tarjan
    /// run, `O(|V| + |E|)` on first access.
    pub fn sccs(&self) -> &[Vec<NodeId>] {
        self.core.sccs(self.ddg)
    }

    /// The backward edges of every recurrence circuit (loop-carried edges
    /// internal to an SCC); `O(|E|)` from the cached SCCs on first access.
    pub fn backward_edges(&self) -> &HashSet<EdgeId> {
        self.core.backward_edges(self.ddg)
    }

    /// The flat dependence-constraint edges with resolved latencies, in
    /// edge-id order (self-loops included); `O(|E|)` on first access.
    /// Resolved through the machine view's overlay when one is present.
    pub fn dep_edges(&self) -> &[DepEdge] {
        match &self.view.overlay {
            Some(o) => &o.dep_edges,
            None => self.core.dep_edges(self.ddg),
        }
    }

    /// The placement CSR (per-node arcs with precomputed latencies), shared
    /// via `Arc` so partial schedules can hold it without re-borrowing the
    /// analysis. `O(|V| + |E|)` on first access. Resolved through the
    /// machine view's overlay when one is present.
    pub fn placement(&self) -> &Arc<PlacementCsr> {
        match &self.view.overlay {
            Some(o) => &o.placement,
            None => self.core.placement(self.ddg),
        }
    }

    /// The full (deduplicated, self-loop-free) adjacency CSR;
    /// `O(|V| + |E|)` on first access.
    pub fn csr_full(&self) -> &Csr {
        self.core.csr_full(self.ddg)
    }

    /// The adjacency CSR with backward edges removed — the acyclic work
    /// graph of the pre-ordering phase. `O(|V| + |E|)` on first access.
    pub fn csr_work(&self) -> &Csr {
        self.core.csr_work(self.ddg)
    }

    /// The recurrence-circuit analysis oracle (see
    /// [`LoopCore::recurrences`]).
    pub fn recurrences(&self) -> &RecurrenceInfo {
        self.core.recurrences(self.ddg)
    }

    /// The per-node maximum cycle-ratio analysis (see
    /// [`LoopCore::cycle_ratios`]).
    pub fn cycle_ratios(&self) -> &CycleRatios {
        self.core.cycle_ratios(self.ddg)
    }

    /// The enumeration-free recurrence analysis (see
    /// [`LoopCore::recurrence_groups`]).
    pub fn recurrence_groups(&self) -> &RecurrenceGroups {
        self.core.recurrence_groups(self.ddg)
    }

    /// The exact recurrence-constrained MII ([`exact_rec_mii`]); `None`
    /// means the loop has a zero-distance dependence cycle and no II is
    /// feasible. Cached after the first binary search; resolved over the
    /// machine view's edge list when an overlay is present.
    pub fn rec_mii(&self) -> Option<u32> {
        match &self.view.overlay {
            Some(o) => *o
                .rec_mii
                .get_or_init(|| exact_rec_mii(self.ddg.num_nodes(), &o.dep_edges)),
            None => self.core.rec_mii(self.ddg),
        }
    }

    /// Resource-free earliest start times at `ii` over the cached edge list
    /// (see [`longest_paths`]). Not cached per-II: callers evaluate a given
    /// II at most once.
    pub fn earliest_starts(&self, ii: u32) -> Option<Vec<i64>> {
        longest_paths(self.ddg.num_nodes(), self.dep_edges(), ii)
    }

    /// Latest start times relative to `horizon` at `ii` over the cached edge
    /// list (see [`latest_starts_from`]).
    pub fn latest_starts(&self, ii: u32, horizon: i64) -> Option<Vec<i64>> {
        latest_starts_from(self.ddg.num_nodes(), self.dep_edges(), ii, horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DdgBuilder, DepKind, OpKind};

    /// load -> mul -> acc(+) with an accumulator self-dependence, plus an
    /// anti edge; exercises latencies, self-loops and a recurrence.
    fn accumulator_loop() -> Ddg {
        let mut b = DdgBuilder::new("acc");
        let ld = b.node("ld", OpKind::Load, 2);
        let mul = b.node("mul", OpKind::FpMul, 2);
        let acc = b.node("acc", OpKind::FpAdd, 1);
        b.edge(ld, mul, DepKind::RegFlow, 0).unwrap();
        b.edge(mul, acc, DepKind::RegFlow, 0).unwrap();
        b.edge(acc, acc, DepKind::RegFlow, 1).unwrap();
        b.edge(acc, ld, DepKind::RegAnti, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dep_edges_resolve_latencies() {
        let g = accumulator_loop();
        let edges = collect_dep_edges(&g);
        assert_eq!(edges.len(), g.num_edges());
        // ld -> mul waits for the load (2); acc -> ld is anti (1).
        assert_eq!(edges[0].latency, 2);
        assert_eq!(edges[3].latency, 1);
        assert_eq!(edges[2].distance, 1, "self-loop kept in the flat list");
    }

    #[test]
    fn placement_csr_skips_self_loops_and_keeps_parallel_edges() {
        let mut b = DdgBuilder::new("par");
        let a = b.node("a", OpKind::Load, 2);
        let c = b.node("c", OpKind::FpAdd, 1);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(a, c, DepKind::Memory, 2).unwrap();
        b.edge(c, c, DepKind::RegFlow, 1).unwrap();
        let g = b.build().unwrap();
        let p = PlacementCsr::from_graph(&g);
        assert_eq!(p.node_bound(), 2);
        assert_eq!(p.out_arcs(0).len(), 2, "parallel edges both kept");
        assert_eq!(p.in_arcs(1).len(), 2, "self-loop excluded");
        assert!(p.out_arcs(1).is_empty());
        assert_eq!(p.in_arcs(1)[1].distance, 2);
    }

    #[test]
    fn backward_edges_match_the_preordering_definition() {
        let mut b = DdgBuilder::new("be");
        let a = b.node("a", OpKind::FpAdd, 1);
        let c = b.node("c", OpKind::FpAdd, 1);
        let d = b.node("d", OpKind::FpAdd, 1);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, a, DepKind::RegFlow, 1).unwrap(); // backward
        b.edge(c, d, DepKind::RegFlow, 2).unwrap(); // loop-carried, no cycle
        let g = b.build().unwrap();
        let la = LoopAnalysis::analyze(&g);
        assert_eq!(la.backward_edges().len(), 1);
        let (eid, _) = g
            .edges()
            .find(|(_, e)| e.source() == c && e.target() == a)
            .unwrap();
        assert!(la.backward_edges().contains(&eid));
    }

    #[test]
    fn rec_mii_matches_known_values() {
        let g = accumulator_loop();
        let la = LoopAnalysis::analyze(&g);
        // Binding circuit: acc->ld (anti, 1) + ld->mul (2) + mul->acc (2)
        // over distance 1 -> RecMII 5 (worse than the self-loop's 1).
        assert_eq!(la.rec_mii(), Some(5));

        let acyclic = crate::graph::chain("c", 5, OpKind::FpAdd, 1);
        assert_eq!(LoopAnalysis::analyze(&acyclic).rec_mii(), Some(0));

        let mut b = DdgBuilder::new("bad");
        let a = b.node("a", OpKind::FpAdd, 1);
        let c = b.node("c", OpKind::FpAdd, 1);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, a, DepKind::RegFlow, 0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(LoopAnalysis::analyze(&g).rec_mii(), None);
    }

    #[test]
    fn lazy_csrs_match_direct_construction() {
        let g = accumulator_loop();
        let la = LoopAnalysis::analyze(&g);
        assert_eq!(la.csr_full(), &Csr::from_graph(&g));
        assert_eq!(la.csr_work(), &Csr::filtered(&g, la.backward_edges()));
    }

    #[test]
    fn earliest_and_latest_starts_are_consistent() {
        let g = accumulator_loop();
        let la = LoopAnalysis::analyze(&g);
        let ii = la.rec_mii().unwrap();
        let est = la.earliest_starts(ii).unwrap();
        let horizon = est.iter().copied().max().unwrap() + 4;
        let lst = la.latest_starts(ii, horizon).unwrap();
        for i in 0..g.num_nodes() {
            assert!(lst[i] >= est[i], "slack must be non-negative at RecMII");
        }
        assert!(la.earliest_starts(ii.saturating_sub(1)).is_none());
    }

    #[test]
    fn incremental_starts_match_from_scratch_passes() {
        let g = accumulator_loop();
        let la = LoopAnalysis::analyze(&g);
        let n = g.num_nodes();
        let edges = la.dep_edges();
        let rec_mii = la.rec_mii().unwrap();

        // Below the RecMII both constructions agree on infeasibility.
        assert!(longest_paths(n, edges, rec_mii - 1).is_none());
        assert!(IncrementalStarts::new(n, edges, rec_mii - 1).is_none());

        let mut inc = IncrementalStarts::new(n, edges, rec_mii).unwrap();
        for ii in rec_mii..rec_mii + 6 {
            assert!(inc.advance(edges, ii), "feasible above RecMII");
            assert_eq!(inc.ii(), ii);
            assert_eq!(inc.earliest(), longest_paths(n, edges, ii).unwrap());
            let horizon = inc.earliest().iter().copied().max().unwrap() + 7;
            assert_eq!(
                inc.latest(horizon),
                latest_starts_from(n, edges, ii, horizon).unwrap()
            );
        }
        // Retreating below the current II recomputes from scratch.
        assert!(inc.advance(edges, rec_mii));
        assert_eq!(inc.earliest(), longest_paths(n, edges, rec_mii).unwrap());

        // A failed advance must not poison later probes: re-asking the
        // same infeasible II keeps reporting infeasible (not stale
        // "solved" values), and recovering to a feasible II still lands
        // on the exact fixpoint.
        assert!(!inc.advance(edges, rec_mii - 1));
        assert!(
            !inc.advance(edges, rec_mii - 1),
            "repeat probe must fail too"
        );
        assert!(inc.advance(edges, rec_mii + 2));
        assert_eq!(
            inc.earliest(),
            longest_paths(n, edges, rec_mii + 2).unwrap()
        );
    }

    #[test]
    fn per_ii_starts_cache_is_lazy_and_consistent() {
        let g = accumulator_loop();
        let la = LoopAnalysis::analyze(&g);
        let mut starts = PerIiStarts::new();
        let rec_mii = la.rec_mii().unwrap();
        assert!(starts.at(&la, rec_mii - 1).is_none());
        for ii in rec_mii..rec_mii + 3 {
            let s = starts.at(&la, ii).expect("feasible");
            assert_eq!(s.earliest(), la.earliest_starts(ii).unwrap());
        }
    }

    #[test]
    fn tarjan_runs_exactly_once() {
        let g = accumulator_loop();
        crate::instrument::reset();
        let la = LoopAnalysis::analyze(&g);
        assert_eq!(
            crate::instrument::tarjan_runs(),
            0,
            "construction alone must not run Tarjan (everything is lazy)"
        );
        // Exercise every phase that historically re-ran Tarjan: the
        // recurrence-circuit analysis (both the enumeration-free default
        // and the Johnson oracle), the backward edges, the work CSR and
        // the MII computation.
        let _ = la.recurrence_groups();
        let _ = la.recurrences();
        let _ = la.backward_edges();
        let _ = la.csr_work();
        let _ = la.rec_mii();
        let _ = la.recurrence_groups(); // second access hits the cache
        assert_eq!(
            crate::instrument::tarjan_runs(),
            1,
            "LoopAnalysis must run Tarjan exactly once per loop"
        );
        assert_eq!(
            crate::instrument::cycle_ratio_runs(),
            1,
            "the λ-search pass must run exactly once per loop"
        );
        // Consumers that don't need Tarjan never trigger it...
        let other = LoopAnalysis::analyze(&g);
        let _ = other.placement();
        let _ = other.dep_edges();
        let _ = other.rec_mii();
        assert_eq!(crate::instrument::tarjan_runs(), 1);
        // ...and a fresh analysis that does re-runs it exactly once.
        let _ = other.sccs();
        assert_eq!(crate::instrument::tarjan_runs(), 2);
    }

    #[test]
    fn shared_core_runs_tarjan_once_across_analyses() {
        let g = accumulator_loop();
        crate::instrument::reset();
        let core = Arc::new(LoopCore::new());
        // Four per-machine analyses over one shared core — the
        // multi-backend batch shape.
        for _ in 0..4 {
            let la = LoopAnalysis::with_core(&g, Arc::clone(&core));
            let _ = la.recurrence_groups();
            let _ = la.csr_work();
            let _ = la.rec_mii();
            let _ = la.placement();
            let _ = la.fingerprint();
        }
        assert_eq!(crate::instrument::tarjan_runs(), 1);
        assert_eq!(crate::instrument::cycle_ratio_runs(), 1);
    }

    #[test]
    fn core_fingerprint_matches_free_function() {
        let g = accumulator_loop();
        let la = LoopAnalysis::analyze(&g);
        assert_eq!(la.fingerprint(), crate::fingerprint::ddg_fingerprint(&g));
        assert_eq!(la.core().fingerprint(&g), la.fingerprint());
    }

    #[test]
    fn default_view_shares_the_core_caches() {
        let g = accumulator_loop();
        let core = Arc::new(LoopCore::new());
        let a = LoopAnalysis::with_core(&g, Arc::clone(&core));
        let b = LoopAnalysis::with_core(&g, Arc::clone(&core));
        assert!(a.view().is_graph_latencies());
        // The placement Arc is literally the same allocation.
        assert!(Arc::ptr_eq(a.placement(), b.placement()));
        assert_eq!(a.dep_edges(), b.dep_edges());
        assert_eq!(a.rec_mii(), b.rec_mii());
    }

    #[test]
    fn overlay_view_with_graph_latencies_is_byte_identical() {
        let g = accumulator_loop();
        let core = Arc::new(LoopCore::new());
        let latencies: Vec<u32> = g.nodes().map(|(_, n)| n.latency()).collect();
        let view = MachineView::with_node_latencies(&g, &latencies);
        assert!(!view.is_graph_latencies());
        let overlaid = LoopAnalysis::with_view(&g, Arc::clone(&core), view);
        let plain = LoopAnalysis::with_core(&g, core);
        assert_eq!(overlaid.dep_edges(), plain.dep_edges());
        assert_eq!(**overlaid.placement(), **plain.placement());
        assert_eq!(overlaid.rec_mii(), plain.rec_mii());
    }

    #[test]
    fn overlay_view_resolves_explicit_latencies() {
        let g = accumulator_loop();
        // Double every latency: flow edges double, the anti edge keeps its
        // issue-order latency of 1.
        let latencies: Vec<u32> = g.nodes().map(|(_, n)| n.latency() * 2).collect();
        let view = MachineView::with_node_latencies(&g, &latencies);
        let core = Arc::new(LoopCore::new());
        let la = LoopAnalysis::with_view(&g, core, view);
        // ld -> mul waits for the doubled load (4); acc -> ld stays anti (1).
        assert_eq!(la.dep_edges()[0].latency, 4);
        assert_eq!(la.dep_edges()[3].latency, 1);
        // Binding circuit: acc->ld (1) + ld->mul (4) + mul->acc (4) over
        // distance 1 -> RecMII 9 under the doubled latencies.
        assert_eq!(la.rec_mii(), Some(9));
        // Structural facts still come from the shared core.
        assert_eq!(la.backward_edges().len(), 2);
    }
}
