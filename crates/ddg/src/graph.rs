//! The dependence graph itself.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use crate::edge::{DepKind, Edge, EdgeId};
use crate::error::DdgError;
use crate::node::{Node, NodeId, OpKind};

/// A loop-body data-dependence graph `G = (V, E, δ, λ)`.
///
/// Graphs are immutable once built (see [`crate::DdgBuilder`]); all scheduling
/// phases treat them as read-only inputs and keep their own mutable working
/// state (partial schedules, reduced graphs, ...).
///
/// Node ids are dense (`0..num_nodes()`) and follow program order; edge ids
/// are dense and follow insertion order.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ddg {
    name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
    /// Number of loop-invariant values read by the loop body (each occupies
    /// one register for the whole loop execution).
    invariants: u32,
    /// Estimated/profiled number of iterations executed by this loop, used
    /// to weight loops in the "dynamic" figures of the evaluation.
    iteration_count: u64,
}

impl Ddg {
    pub(crate) fn from_parts(
        name: String,
        nodes: Vec<Node>,
        edges: Vec<Edge>,
        invariants: u32,
        iteration_count: u64,
    ) -> Self {
        let mut out_edges = vec![Vec::new(); nodes.len()];
        let mut in_edges = vec![Vec::new(); nodes.len()];
        for (i, e) in edges.iter().enumerate() {
            out_edges[e.source().index()].push(EdgeId::from_index(i));
            in_edges[e.target().index()].push(EdgeId::from_index(i));
        }
        Ddg {
            name,
            nodes,
            edges,
            out_edges,
            in_edges,
            invariants,
            iteration_count,
        }
    }

    /// The loop's name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operations in the loop body.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of dependence edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of loop-invariant values used by the loop.
    #[inline]
    pub fn num_invariants(&self) -> u32 {
        self.invariants
    }

    /// Profiled/estimated iteration count of the loop (defaults to 1).
    #[inline]
    pub fn iteration_count(&self) -> u64 {
        self.iteration_count
    }

    /// Returns the node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; ids obtained from this graph are
    /// always valid.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Returns the node with the given id, or `None` if out of range.
    #[inline]
    pub fn get_node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// Returns the edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Iterates over all node ids in program order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterates over all nodes in program order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// Iterates over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId::from_index)
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::from_index(i), e))
    }

    /// Looks a node up by its unique name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name() == name)
            .map(NodeId::from_index)
    }

    /// Outgoing edges of `id`.
    #[inline]
    pub fn out_edges(&self, id: NodeId) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.out_edges[id.index()]
            .iter()
            .map(move |&eid| (eid, &self.edges[eid.index()]))
    }

    /// Incoming edges of `id`.
    #[inline]
    pub fn in_edges(&self, id: NodeId) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.in_edges[id.index()]
            .iter()
            .map(move |&eid| (eid, &self.edges[eid.index()]))
    }

    /// Distinct successors of `id` (targets of its outgoing edges),
    /// excluding `id` itself when it only appears through self-loops.
    pub fn successors(&self, id: NodeId) -> Vec<NodeId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for (_, e) in self.out_edges(id) {
            if seen.insert(e.target()) {
                out.push(e.target());
            }
        }
        out
    }

    /// Distinct predecessors of `id` (sources of its incoming edges).
    pub fn predecessors(&self, id: NodeId) -> Vec<NodeId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for (_, e) in self.in_edges(id) {
            if seen.insert(e.source()) {
                out.push(e.source());
            }
        }
        out
    }

    /// The consumers of the value defined by `id`: targets of register flow
    /// edges leaving `id`. Returns an empty vector for value-less nodes.
    pub fn consumers(&self, id: NodeId) -> Vec<(NodeId, u32)> {
        self.out_edges(id)
            .filter(|(_, e)| e.kind().carries_value())
            .map(|(_, e)| (e.target(), e.distance()))
            .collect()
    }

    /// Whether the graph contains at least one recurrence circuit (a cycle,
    /// including self-loops).
    pub fn has_recurrence(&self) -> bool {
        // Self loops are circuits.
        if self.edges.iter().any(|e| e.is_self_loop()) {
            return true;
        }
        // Any SCC with more than one node is a circuit.
        crate::scc::strongly_connected_components(self)
            .iter()
            .any(|c| c.len() > 1)
    }

    /// Whether the graph, *ignoring self-loops*, contains a recurrence
    /// circuit spanning two or more nodes. Trivial (self-loop) recurrences do
    /// not constrain the pre-ordering phase.
    pub fn has_nontrivial_recurrence(&self) -> bool {
        crate::scc::strongly_connected_components(self)
            .iter()
            .any(|c| c.len() > 1)
    }

    /// Sum of latencies of all operations (an upper bound on the schedule
    /// length of one iteration at infinite resources is `critical path`, and
    /// this sum bounds any schedule produced by a work-conserving scheduler).
    pub fn total_latency(&self) -> u64 {
        self.nodes.iter().map(|n| u64::from(n.latency())).sum()
    }

    /// Number of operations of each kind, indexed by [`OpKind::ALL`] order.
    pub fn op_histogram(&self) -> HashMap<OpKind, usize> {
        let mut h = HashMap::new();
        for n in &self.nodes {
            *h.entry(n.kind()).or_insert(0) += 1;
        }
        h
    }

    /// Partitions the nodes into weakly connected components (treating every
    /// edge as undirected). Components are returned in order of their
    /// smallest node id; nodes inside a component are sorted.
    pub fn connected_components(&self) -> Vec<Vec<NodeId>> {
        let n = self.num_nodes();
        let mut comp = vec![usize::MAX; n];
        let mut components: Vec<Vec<NodeId>> = Vec::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let cid = components.len();
            let mut members = Vec::new();
            let mut queue = VecDeque::new();
            queue.push_back(start);
            comp[start] = cid;
            while let Some(v) = queue.pop_front() {
                members.push(NodeId::from_index(v));
                let vid = NodeId::from_index(v);
                for (_, e) in self.out_edges(vid) {
                    let t = e.target().index();
                    if comp[t] == usize::MAX {
                        comp[t] = cid;
                        queue.push_back(t);
                    }
                }
                for (_, e) in self.in_edges(vid) {
                    let s = e.source().index();
                    if comp[s] == usize::MAX {
                        comp[s] = cid;
                        queue.push_back(s);
                    }
                }
            }
            members.sort();
            components.push(members);
        }
        components
    }

    /// Builds the subgraph induced by `keep` (all edges whose endpoints are
    /// both in `keep`), together with the mapping *new node id → old node
    /// id*.
    ///
    /// # Errors
    ///
    /// Returns [`DdgError::InvalidNodeId`] if `keep` references a node
    /// outside this graph, and [`DdgError::EmptyGraph`] if `keep` is empty.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> Result<(Ddg, Vec<NodeId>), DdgError> {
        if keep.is_empty() {
            return Err(DdgError::EmptyGraph);
        }
        let mut sorted: Vec<NodeId> = keep.to_vec();
        sorted.sort();
        sorted.dedup();
        for &id in &sorted {
            if id.index() >= self.num_nodes() {
                return Err(DdgError::InvalidNodeId {
                    id,
                    len: self.num_nodes(),
                });
            }
        }
        let old_to_new: HashMap<NodeId, NodeId> = sorted
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, NodeId::from_index(new)))
            .collect();
        let nodes: Vec<Node> = sorted.iter().map(|&id| self.node(id).clone()).collect();
        let mut edges = Vec::new();
        for (_, e) in self.edges() {
            if let (Some(&s), Some(&t)) = (old_to_new.get(&e.source()), old_to_new.get(&e.target()))
            {
                edges.push(Edge::new(s, t, e.kind(), e.distance()));
            }
        }
        let sub = Ddg::from_parts(
            format!("{}::sub", self.name),
            nodes,
            edges,
            0,
            self.iteration_count,
        );
        Ok((sub, sorted))
    }

    /// Returns all edges between `u` and `v` in either direction.
    pub fn edges_between(&self, u: NodeId, v: NodeId) -> Vec<EdgeId> {
        let mut out = Vec::new();
        for (eid, e) in self.out_edges(u) {
            if e.target() == v {
                out.push(eid);
            }
        }
        for (eid, e) in self.out_edges(v) {
            if e.target() == u {
                out.push(eid);
            }
        }
        out
    }

    /// A rough structural summary used by reports and `Debug`-level logging.
    pub fn summary(&self) -> DdgSummary {
        let loop_carried = self.edges.iter().filter(|e| e.is_loop_carried()).count();
        DdgSummary {
            name: self.name.clone(),
            nodes: self.num_nodes(),
            edges: self.num_edges(),
            loop_carried_edges: loop_carried,
            has_recurrence: self.has_recurrence(),
            invariants: self.invariants,
            iteration_count: self.iteration_count,
        }
    }
}

impl fmt::Display for Ddg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ddg `{}`: {} nodes, {} edges",
            self.name,
            self.num_nodes(),
            self.num_edges()
        )?;
        for (id, n) in self.nodes() {
            writeln!(f, "  {id}: {n}")?;
        }
        for (_, e) in self.edges() {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

/// Structural summary of a [`Ddg`] (see [`Ddg::summary`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DdgSummary {
    /// Loop name.
    pub name: String,
    /// Number of operations.
    pub nodes: usize,
    /// Number of dependence edges.
    pub edges: usize,
    /// Number of loop-carried (distance > 0) edges.
    pub loop_carried_edges: usize,
    /// Whether any recurrence circuit exists.
    pub has_recurrence: bool,
    /// Number of loop-invariant values.
    pub invariants: u32,
    /// Profiled iteration count.
    pub iteration_count: u64,
}

/// A read-only adjacency view of a graph-like structure.
///
/// Both the immutable [`Ddg`] and the mutable working graphs used by the
/// pre-ordering phase of HRMS implement this trait, so the path-search and
/// topological-sort helpers in this crate can be reused on either.
pub trait GraphView {
    /// An upper bound on node ids (used to size visited-bitsets).
    fn node_bound(&self) -> usize;
    /// Whether the node currently exists in the view.
    fn contains(&self, n: NodeId) -> bool;
    /// Distinct successors of `n` in the view.
    fn successors_of(&self, n: NodeId) -> Vec<NodeId>;
    /// Distinct predecessors of `n` in the view.
    fn predecessors_of(&self, n: NodeId) -> Vec<NodeId>;
}

impl GraphView for Ddg {
    fn node_bound(&self) -> usize {
        self.num_nodes()
    }

    fn contains(&self, n: NodeId) -> bool {
        n.index() < self.num_nodes()
    }

    fn successors_of(&self, n: NodeId) -> Vec<NodeId> {
        self.successors(n)
    }

    fn predecessors_of(&self, n: NodeId) -> Vec<NodeId> {
        self.predecessors(n)
    }
}

/// Convenience constructor used by tests across the workspace: builds a chain
/// `a -> b -> c -> ...` of `n` operations of the given kind and latency.
pub fn chain(name: &str, n: usize, kind: OpKind, latency: u32) -> Ddg {
    let mut b = crate::DdgBuilder::new(name);
    let mut prev = None;
    for i in 0..n {
        let id = b.node(format!("{}{}", kind.mnemonic(), i), kind, latency);
        if let Some(p) = prev {
            b.edge(p, id, DepKind::RegFlow, 0)
                .expect("chain edges are always valid");
        }
        prev = Some(id);
    }
    b.build().expect("chain graphs are always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DdgBuilder;

    fn diamond() -> Ddg {
        // a -> b, a -> c, b -> d, c -> d
        let mut b = DdgBuilder::new("diamond");
        let a = b.node("a", OpKind::Load, 2);
        let x = b.node("b", OpKind::FpAdd, 1);
        let y = b.node("c", OpKind::FpMul, 2);
        let d = b.node("d", OpKind::Store, 1);
        b.edge(a, x, DepKind::RegFlow, 0).unwrap();
        b.edge(a, y, DepKind::RegFlow, 0).unwrap();
        b.edge(x, d, DepKind::RegFlow, 0).unwrap();
        b.edge(y, d, DepKind::RegFlow, 0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts_and_lookup() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.node_by_name("c"), Some(NodeId(2)));
        assert_eq!(g.node_by_name("zzz"), None);
        assert_eq!(g.node(NodeId(0)).name(), "a");
        assert!(g.get_node(NodeId(17)).is_none());
    }

    #[test]
    fn successors_and_predecessors_are_deduplicated() {
        let mut b = DdgBuilder::new("multi");
        let a = b.node("a", OpKind::Load, 2);
        let c = b.node("c", OpKind::FpAdd, 1);
        // two parallel edges a -> c
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(a, c, DepKind::Memory, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.successors(a), vec![c]);
        assert_eq!(g.predecessors(c), vec![a]);
        assert_eq!(g.out_edges(a).count(), 2);
    }

    #[test]
    fn consumers_only_follow_flow_edges() {
        let mut b = DdgBuilder::new("flow");
        let a = b.node("a", OpKind::Load, 2);
        let s = b.node("s", OpKind::Store, 1);
        let c = b.node("c", OpKind::FpAdd, 1);
        b.edge(a, s, DepKind::RegFlow, 0).unwrap();
        b.edge(a, c, DepKind::Memory, 0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.consumers(a), vec![(s, 0)]);
        assert!(g.consumers(s).is_empty());
    }

    #[test]
    fn recurrence_detection() {
        let g = diamond();
        assert!(!g.has_recurrence());
        assert!(!g.has_nontrivial_recurrence());

        let mut b = DdgBuilder::new("self_loop");
        let a = b.node("a", OpKind::FpAdd, 1);
        b.edge(a, a, DepKind::RegFlow, 1).unwrap();
        let g = b.build().unwrap();
        assert!(g.has_recurrence());
        assert!(!g.has_nontrivial_recurrence());

        let mut b = DdgBuilder::new("cycle2");
        let a = b.node("a", OpKind::FpAdd, 1);
        let c = b.node("c", OpKind::FpMul, 2);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, a, DepKind::RegFlow, 1).unwrap();
        let g = b.build().unwrap();
        assert!(g.has_recurrence());
        assert!(g.has_nontrivial_recurrence());
    }

    #[test]
    fn connected_components_split() {
        let mut b = DdgBuilder::new("two_comps");
        let a = b.node("a", OpKind::FpAdd, 1);
        let c = b.node("c", OpKind::FpMul, 2);
        let d = b.node("d", OpKind::Load, 2);
        let e = b.node("e", OpKind::Store, 1);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(d, e, DepKind::RegFlow, 0).unwrap();
        let g = b.build().unwrap();
        let comps = g.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![a, c]);
        assert_eq!(comps[1], vec![d, e]);
    }

    #[test]
    fn connected_components_single() {
        let g = diamond();
        assert_eq!(g.connected_components().len(), 1);
    }

    #[test]
    fn induced_subgraph_maps_edges() {
        let g = diamond();
        let b_id = g.node_by_name("b").unwrap();
        let a_id = g.node_by_name("a").unwrap();
        let d_id = g.node_by_name("d").unwrap();
        let (sub, mapping) = g.induced_subgraph(&[a_id, b_id, d_id]).unwrap();
        assert_eq!(sub.num_nodes(), 3);
        // edges a->b and b->d survive; a->c and c->d do not.
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(mapping, vec![a_id, b_id, d_id]);
    }

    #[test]
    fn induced_subgraph_rejects_bad_input() {
        let g = diamond();
        assert!(matches!(g.induced_subgraph(&[]), Err(DdgError::EmptyGraph)));
        assert!(matches!(
            g.induced_subgraph(&[NodeId(99)]),
            Err(DdgError::InvalidNodeId { .. })
        ));
    }

    #[test]
    fn summary_reports_structure() {
        let g = diamond();
        let s = g.summary();
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.loop_carried_edges, 0);
        assert!(!s.has_recurrence);
    }

    #[test]
    fn chain_helper_builds_linear_graph() {
        let g = chain("c", 5, OpKind::FpAdd, 1);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert!(!g.has_recurrence());
        assert_eq!(g.total_latency(), 5);
    }

    #[test]
    fn op_histogram_counts_kinds() {
        let g = diamond();
        let h = g.op_histogram();
        assert_eq!(h[&OpKind::Load], 1);
        assert_eq!(h[&OpKind::Store], 1);
        assert_eq!(h[&OpKind::FpAdd], 1);
        assert_eq!(h[&OpKind::FpMul], 1);
    }

    #[test]
    fn display_lists_nodes_and_edges() {
        let g = diamond();
        let text = g.to_string();
        assert!(text.contains("diamond"));
        assert!(text.contains("n0"));
        assert!(text.contains("δ=0"));
    }

    #[test]
    fn edges_between_finds_both_directions() {
        let mut b = DdgBuilder::new("between");
        let a = b.node("a", OpKind::FpAdd, 1);
        let c = b.node("c", OpKind::FpMul, 2);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, a, DepKind::RegAnti, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.edges_between(a, c).len(), 2);
    }

    #[test]
    fn graph_view_impl_matches_direct_queries() {
        let g = diamond();
        let a = g.node_by_name("a").unwrap();
        assert_eq!(GraphView::successors_of(&g, a), g.successors(a));
        assert_eq!(GraphView::predecessors_of(&g, a), g.predecessors(a));
        assert!(GraphView::contains(&g, a));
        assert_eq!(GraphView::node_bound(&g), 4);
    }
}
