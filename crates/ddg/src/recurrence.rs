//! Enumeration-free recurrence analysis: recurrence subgraphs derived
//! directly from the strongly connected components and their backward-edge
//! sets, in polynomial time.
//!
//! The pre-ordering phase of HRMS (Section 3.2 of the paper) needs the
//! loop's recurrence circuits *grouped by their backward-edge sets* and
//! ordered by criticality. The original reproduction obtained that grouping
//! from Johnson's elementary-circuit enumeration ([`crate::circuits`]),
//! which is exponential on dense SCCs — a single well-connected component
//! with a few dozen loop-carried edges spans millions of elementary
//! circuits, and the enumeration budget truncates the analysis exactly on
//! the loops where modulo scheduling is hardest.
//!
//! This module computes the same grouping without enumerating a single
//! circuit. The key observation: inside one SCC, every dependence edge with
//! distance `δ > 0` is a *backward edge* (dropping them makes the component
//! acyclic — any remaining cycle would have distance 0 and is rejected by
//! the MII computation), so an elementary circuit that uses **exactly one**
//! backward edge `b = (s → t)` is precisely a simple path `t ⇝ s` in the
//! acyclic remainder plus `b` itself. In a DAG, a node `v` lies on a simple
//! `t ⇝ s` path if and only if `t ⇝ v` and `v ⇝ s` (the two sub-paths can
//! only meet at `v`, or the DAG would have a cycle). Therefore:
//!
//! * the *nodes* of the recurrence subgraph keyed by `{b}` are
//!   `{v : t ⇝ v ⇝ s}` — one bitset intersection per node after two
//!   linear reachability sweeps that propagate, for every node, the set of
//!   backward edges reachable through it;
//! * the subgraph's *RecMII* is `ceil(L / δ(b))` where `L` is the
//!   latency-weighted longest `t ⇝ s` path — one topological DP per
//!   backward edge, no ratio per circuit.
//!
//! Nodes that lie **only** on circuits threading two or more backward edges
//! (interleaved recurrences) are not captured by any single-edge subgraph;
//! enumerating those multi-edge groupings is where the exponential blow-up
//! lives, so instead each SCC collects such nodes into one *residual*
//! group whose RecMII comes from the exact Bellman-Ford bound
//! ([`crate::analysis::exact_rec_mii`]) on the component — a sound,
//! polynomial coarsening that keeps every recurrence node prioritised. On
//! loop bodies whose circuits all use a single backward edge (the
//! overwhelmingly common case — all 24 reference loops and the entire
//! generated corpus), the grouping, per-group RecMII and simplified node
//! lists are **identical** to the enumeration's; [`cross_check`] verifies
//! that against a non-truncated [`RecurrenceInfo`] and backs the
//! `verify-recurrence` CI job.
//!
//! Total cost for a loop with `V` nodes, `E` edges and `B` backward edges:
//! `O(V + E)` for the collapse and the two reachability sweeps (each
//! propagating `B`-bit sets, i.e. `O((V + E) · B / 64)` word operations)
//! plus `O(B · (V + E))` for the per-edge longest-path DPs — polynomial by
//! construction, with **no enumeration budget and no truncation**.

use std::collections::{BTreeMap, BTreeSet};

use crate::analysis::{exact_rec_mii, DepEdge};
use crate::circuits::RecurrenceInfo;
use crate::edge::EdgeId;
use crate::graph::Ddg;
use crate::node::NodeId;
use crate::scc;

/// One recurrence subgraph: the nodes whose circuits share a backward-edge
/// set, with the most restrictive initiation-interval bound among them.
///
/// The enumeration-free analogue of [`crate::RecurrenceSubgraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecurrenceGroup {
    /// The member nodes, sorted by id.
    pub nodes: Vec<NodeId>,
    /// The backward-edge set keying this group. A singleton for subgraphs
    /// derived from one backward edge; the unrealised backward edges of the
    /// SCC for a residual group; empty for a zero-distance self-loop.
    pub backward_edges: BTreeSet<EdgeId>,
    /// The most restrictive `RecMII` among the group's circuits
    /// (`u64::MAX` for zero-distance cycles, which no II satisfies).
    pub rec_mii: u64,
}

impl RecurrenceGroup {
    /// Whether this is a trivial group (a single self-dependent operation).
    /// Trivial groups constrain the II but not the pre-ordering.
    pub fn is_trivial(&self) -> bool {
        self.nodes.len() == 1
    }
}

/// The complete enumeration-free recurrence analysis of a dependence graph.
///
/// Unlike [`RecurrenceInfo`] there is **no** `truncated` flag: construction
/// is polynomial and always complete, whatever the density of the SCCs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecurrenceGroups {
    /// Recurrence groups sorted by decreasing `RecMII` (most restrictive
    /// first), ties broken by smallest member nodes then backward-edge set —
    /// the same total order [`crate::circuits`] uses for its subgraphs.
    pub groups: Vec<RecurrenceGroup>,
}

impl RecurrenceGroups {
    /// Analyses `ddg`, running its own Tarjan pass. Callers holding a
    /// [`crate::LoopAnalysis`] use its cached accessor instead so the single
    /// per-loop Tarjan run is shared.
    pub fn analyze(ddg: &Ddg) -> Self {
        Self::analyze_with_sccs(ddg, &scc::strongly_connected_components(ddg))
    }

    /// Analyses `ddg` over precomputed strongly connected components.
    pub fn analyze_with_sccs(ddg: &Ddg, sccs: &[Vec<NodeId>]) -> Self {
        let mut groups: Vec<RecurrenceGroup> = Vec::new();

        // Self-dependences are trivial single-node groups, exactly as the
        // enumeration treats them (a zero-distance self-loop keys the empty
        // set and admits no II).
        for (eid, e) in ddg.edges() {
            if e.is_self_loop() {
                let mut backward = BTreeSet::new();
                if e.distance() > 0 {
                    backward.insert(eid);
                }
                let lat = u64::from(ddg.node(e.source()).latency());
                groups.push(RecurrenceGroup {
                    nodes: vec![e.source()],
                    backward_edges: backward,
                    rec_mii: if e.distance() > 0 {
                        lat.div_ceil(u64::from(e.distance()))
                    } else {
                        u64::MAX
                    },
                });
            }
        }

        let mut local_of = vec![usize::MAX; ddg.num_nodes()];
        for component in sccs {
            if component.len() < 2 {
                continue;
            }
            analyze_component(ddg, component, &mut local_of, &mut groups);
            for &n in component {
                local_of[n.index()] = usize::MAX;
            }
        }

        // Same total order as the enumerated subgraphs: most restrictive
        // first, deterministic tie-break.
        groups.sort_by(|a, b| {
            b.rec_mii
                .cmp(&a.rec_mii)
                .then_with(|| a.nodes.cmp(&b.nodes))
                .then_with(|| a.backward_edges.cmp(&b.backward_edges))
        });
        RecurrenceGroups { groups }
    }

    /// Lower bound on the initiation interval imposed by the recurrence
    /// groups; 0 when the graph has no recurrence. Equals the enumeration's
    /// [`RecurrenceInfo::rec_mii_lower_bound`] on single-backward-edge
    /// loops; the exact bound for scheduling always comes from
    /// [`crate::analysis::exact_rec_mii`].
    pub fn rec_mii_lower_bound(&self) -> u64 {
        self.groups.iter().map(|g| g.rec_mii).max().unwrap_or(0)
    }

    /// Whether the graph has any recurrence circuit at all.
    pub fn has_recurrence(&self) -> bool {
        !self.groups.is_empty()
    }

    /// The simplified per-group node lists used by the ordering phase:
    /// groups in decreasing `RecMII` order, each node appearing only in the
    /// first (most restrictive) group that contains it, trivial single-node
    /// groups dropped (paper, Section 3.2). Identical semantics to
    /// [`RecurrenceInfo::simplified_node_lists`].
    pub fn simplified_node_lists(&self) -> Vec<Vec<NodeId>> {
        let mut claimed = vec![false; self.node_bound()];
        let mut lists = Vec::new();
        for g in &self.groups {
            if g.nodes.len() == 1 {
                continue;
            }
            let fresh: Vec<NodeId> = g
                .nodes
                .iter()
                .copied()
                .filter(|n| !claimed[n.index()])
                .collect();
            if fresh.is_empty() {
                continue;
            }
            for &n in &fresh {
                claimed[n.index()] = true;
            }
            lists.push(fresh);
        }
        lists
    }

    fn node_bound(&self) -> usize {
        self.groups
            .iter()
            .flat_map(|g| g.nodes.iter())
            .map(|n| n.index() + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Derives the recurrence groups of one non-trivial SCC. `local_of` is a
/// caller-provided scratch (global node id → local index), reset by the
/// caller after use.
fn analyze_component(
    ddg: &Ddg,
    component: &[NodeId],
    local_of: &mut [usize],
    groups: &mut Vec<RecurrenceGroup>,
) {
    let n = component.len();
    for (i, &node) in component.iter().enumerate() {
        local_of[node.index()] = i;
    }

    // Collapse parallel edges per (source, target) pair keeping the
    // smallest distance (ties keep the first edge id) — the binding choice
    // for RecMII, and exactly what the circuit enumeration does. The
    // representative decides the pair's role: distance 0 → an arc of the
    // acyclic remainder, distance > 0 → a backward edge.
    let mut reps: BTreeMap<(usize, usize), (EdgeId, u32)> = BTreeMap::new();
    for (eid, e) in ddg.edges() {
        if e.is_self_loop() {
            continue;
        }
        let (su, tu) = (local_of[e.source().index()], local_of[e.target().index()]);
        if su == usize::MAX || tu == usize::MAX {
            continue;
        }
        match reps.get(&(su, tu)) {
            Some(&(_, d)) if d <= e.distance() => {}
            _ => {
                reps.insert((su, tu), (eid, e.distance()));
            }
        }
    }

    // Backward edges (local src, local dst, EdgeId, distance), in edge-id
    // order so bit assignment and output are deterministic.
    let mut backward: Vec<(usize, usize, EdgeId, u32)> = Vec::new();
    let mut dag_succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut dag_preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (&(su, tu), &(eid, dist)) in &reps {
        if dist > 0 {
            backward.push((su, tu, eid, dist));
        } else {
            dag_succs[su].push(tu);
            dag_preds[tu].push(su);
        }
    }
    backward.sort_by_key(|&(_, _, eid, _)| eid);

    // Topological order of the acyclic remainder. A failure means the
    // component has a zero-distance cycle: no II is feasible, and the MII
    // computation will reject the loop — emit one catch-all group so the
    // pre-ordering still prioritises the component, and move on.
    let Some(topo) = topo_order(&dag_succs, &dag_preds) else {
        groups.push(RecurrenceGroup {
            nodes: component.to_vec(),
            backward_edges: backward.iter().map(|&(_, _, eid, _)| eid).collect(),
            rec_mii: u64::MAX,
        });
        return;
    };

    // Two linear sweeps propagate, per node, the set of backward edges
    // reachable through it: `fwd[v]` holds b iff dst(b) ⇝ v, `bwd[v]` holds
    // b iff v ⇝ src(b), both over the acyclic remainder. Their
    // intersection is exactly "v lies on a single-b circuit".
    let words = backward.len().div_ceil(64).max(1);
    let mut fwd = vec![0u64; n * words];
    let mut bwd = vec![0u64; n * words];
    for (k, &(src, dst, _, _)) in backward.iter().enumerate() {
        fwd[dst * words + k / 64] |= 1u64 << (k % 64);
        bwd[src * words + k / 64] |= 1u64 << (k % 64);
    }
    for &v in &topo {
        for &s in &dag_succs[v] {
            for w in 0..words {
                let bits = fwd[v * words + w];
                fwd[s * words + w] |= bits;
            }
        }
    }
    for &v in topo.iter().rev() {
        for &p in &dag_preds[v] {
            for w in 0..words {
                let bits = bwd[v * words + w];
                bwd[p * words + w] |= bits;
            }
        }
    }

    let through =
        |v: usize, k: usize| fwd[v * words + k / 64] & bwd[v * words + k / 64] & (1u64 << (k % 64));

    // One group per backward edge whose head reaches its tail in the
    // acyclic remainder (i.e. at least one single-b circuit exists).
    let mut covered = vec![false; n];
    let mut lp = vec![i64::MIN; n];
    for (k, &(src, dst, eid, dist)) in backward.iter().enumerate() {
        if through(src, k) == 0 {
            continue; // only closes circuits together with other backward edges
        }
        let mut nodes = Vec::new();
        for (v, &node) in component.iter().enumerate() {
            if through(v, k) != 0 {
                covered[v] = true;
                nodes.push(node);
            }
        }
        // Latency-weighted longest dst ⇝ src path: the most restrictive
        // circuit of this group, without a per-circuit ratio in sight.
        lp[dst] = i64::from(ddg.node(component[dst]).latency());
        for &v in &topo {
            if lp[v] == i64::MIN {
                continue;
            }
            for &s in &dag_succs[v] {
                let cand = lp[v] + i64::from(ddg.node(component[s]).latency());
                if cand > lp[s] {
                    lp[s] = cand;
                }
            }
        }
        let longest = lp[src] as u64;
        lp.fill(i64::MIN);
        groups.push(RecurrenceGroup {
            nodes,
            backward_edges: BTreeSet::from([eid]),
            rec_mii: longest.div_ceil(u64::from(dist)),
        });
    }

    // Residual group: nodes that lie only on circuits threading several
    // backward edges. Bounding those interleaved circuits exactly is where
    // the enumeration blew up; the exact Bellman-Ford RecMII of the whole
    // component is the sound polynomial stand-in for their priority.
    //
    // The group is closed under acyclic paths between its members (two
    // boolean sweeps): every recurrence group must be *convex* in the
    // acyclic remainder — like the single-edge groups are by construction
    // — because the ordering phase absorbs the most restrictive group as a
    // bare region, and a node sitting on a path between two
    // already-ordered group members would otherwise end up squeezed
    // between placed predecessors and successors, breaking the
    // pre-ordering's defining invariant.
    if covered.iter().any(|&c| !c) {
        let mut from_left = vec![false; n];
        let mut to_left = vec![false; n];
        for v in 0..n {
            if !covered[v] {
                from_left[v] = true;
                to_left[v] = true;
            }
        }
        for &v in &topo {
            if from_left[v] {
                for &s in &dag_succs[v] {
                    from_left[s] = true;
                }
            }
        }
        for &v in topo.iter().rev() {
            if to_left[v] {
                for &p in &dag_preds[v] {
                    to_left[p] = true;
                }
            }
        }
        let leftover: Vec<NodeId> = component
            .iter()
            .enumerate()
            .filter(|&(v, _)| from_left[v] && to_left[v])
            .map(|(_, &node)| node)
            .collect();
        let realized: BTreeSet<EdgeId> = groups
            .iter()
            .flat_map(|g| g.backward_edges.iter().copied())
            .collect();
        let edges: Vec<DepEdge> = ddg
            .edges()
            .filter(|(_, e)| {
                !e.is_self_loop()
                    && local_of[e.source().index()] != usize::MAX
                    && local_of[e.target().index()] != usize::MAX
            })
            .map(|(_, e)| DepEdge {
                source: local_of[e.source().index()] as u32,
                target: local_of[e.target().index()] as u32,
                latency: crate::analysis::dependence_latency(ddg, e),
                distance: e.distance(),
            })
            .collect();
        let rec_mii = exact_rec_mii(n, &edges).map_or(u64::MAX, u64::from);
        groups.push(RecurrenceGroup {
            nodes: leftover,
            backward_edges: backward
                .iter()
                .map(|&(_, _, eid, _)| eid)
                .filter(|eid| !realized.contains(eid))
                .collect(),
            rec_mii,
        });
    }
}

/// Kahn's algorithm over local adjacency; `None` when the graph is cyclic.
fn topo_order(succs: &[Vec<usize>], preds: &[Vec<usize>]) -> Option<Vec<usize>> {
    let n = succs.len();
    let mut indegree: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = ready.pop() {
        order.push(v);
        for &s in &succs[v] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                ready.push(s);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Cross-checks the enumeration-free groups against a **non-truncated**
/// circuit enumeration of the same graph, returning a description of the
/// first divergence.
///
/// The guarantee being verified: every enumerated subgraph keyed by a
/// single backward edge has an identical group (same nodes, same key, same
/// `RecMII`) and vice versa, and every node of a multi-backward-edge
/// subgraph is still covered by some group of the new analysis. When the
/// enumeration found only single-edge subgraphs — every reference and
/// generated loop in the repository's suites — this makes the two analyses
/// (and their simplified node lists) fully interchangeable.
///
/// Used by the differential test suite and, under the `verify-recurrence`
/// feature, by [`crate::LoopAnalysis`] on every analysed loop.
///
/// # Errors
///
/// Returns a human-readable description of the first divergence found.
pub fn cross_check(groups: &RecurrenceGroups, oracle: &RecurrenceInfo) -> Result<(), String> {
    assert!(
        !oracle.truncated,
        "cross_check needs a complete enumeration"
    );
    let by_key: BTreeMap<&BTreeSet<EdgeId>, &RecurrenceGroup> = groups
        .groups
        .iter()
        .map(|g| (&g.backward_edges, g))
        .collect();

    let mut singleton_keys: BTreeSet<&BTreeSet<EdgeId>> = BTreeSet::new();
    for sg in &oracle.subgraphs {
        if sg.rec_mii == u64::MAX {
            // Zero-distance cycles: the loop is invalid and both analyses
            // only promise to keep its nodes prioritised.
            continue;
        }
        if sg.backward_edges.len() == 1 {
            singleton_keys.insert(&sg.backward_edges);
            let Some(g) = by_key.get(&sg.backward_edges) else {
                return Err(format!(
                    "enumerated subgraph {:?} has no SCC-derived group",
                    sg.backward_edges
                ));
            };
            if g.nodes != sg.nodes {
                return Err(format!(
                    "subgraph {:?}: nodes diverge ({:?} vs {:?})",
                    sg.backward_edges, g.nodes, sg.nodes
                ));
            }
            if g.rec_mii != sg.rec_mii {
                return Err(format!(
                    "subgraph {:?}: RecMII diverges ({} vs {})",
                    sg.backward_edges, g.rec_mii, sg.rec_mii
                ));
            }
        } else {
            // Multi-edge subgraph: every node must still be covered.
            for &node in &sg.nodes {
                if !groups.groups.iter().any(|g| g.nodes.contains(&node)) {
                    return Err(format!(
                        "node {node} of multi-edge subgraph {:?} is uncovered",
                        sg.backward_edges
                    ));
                }
            }
        }
    }

    // No spurious single-edge groups either: each must exist in the oracle.
    for g in &groups.groups {
        if g.backward_edges.len() == 1
            && g.rec_mii != u64::MAX
            && !singleton_keys.contains(&g.backward_edges)
        {
            return Err(format!(
                "SCC-derived group {:?} has no enumerated counterpart",
                g.backward_edges
            ));
        }
    }

    // When the enumeration itself only found single-edge subgraphs, the two
    // analyses must agree completely — including the ordering phase's view.
    let all_singletons = oracle
        .subgraphs
        .iter()
        .all(|sg| sg.backward_edges.len() == 1 && sg.rec_mii != u64::MAX);
    if all_singletons {
        if groups.groups.len() != oracle.subgraphs.len() {
            return Err(format!(
                "group count diverges ({} vs {} subgraphs)",
                groups.groups.len(),
                oracle.subgraphs.len()
            ));
        }
        if groups.simplified_node_lists() != oracle.simplified_node_lists() {
            return Err("simplified node lists diverge".to_string());
        }
        if groups.rec_mii_lower_bound() != oracle.rec_mii_lower_bound() {
            return Err(format!(
                "RecMII lower bound diverges ({} vs {})",
                groups.rec_mii_lower_bound(),
                oracle.rec_mii_lower_bound()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DdgBuilder, DepKind, OpKind};

    fn check_against_enumeration(ddg: &Ddg) -> RecurrenceGroups {
        let groups = RecurrenceGroups::analyze(ddg);
        let oracle = RecurrenceInfo::analyze_with_budget(ddg, usize::MAX);
        cross_check(&groups, &oracle).unwrap_or_else(|e| panic!("`{}`: {e}", ddg.name()));
        groups
    }

    #[test]
    fn acyclic_graph_has_no_groups() {
        let g = crate::graph::chain("c", 6, OpKind::FpAdd, 1);
        let groups = check_against_enumeration(&g);
        assert!(!groups.has_recurrence());
        assert_eq!(groups.rec_mii_lower_bound(), 0);
        assert!(groups.simplified_node_lists().is_empty());
    }

    #[test]
    fn figure8b_single_backward_edge_is_one_group() {
        // Paper Figure 8b: two circuits {A,D,E} and {A,B,C,E} sharing the
        // single backward edge E -> A form one subgraph {A,B,C,D,E}.
        let mut bld = DdgBuilder::new("fig8b");
        let a = bld.node("A", OpKind::FpAdd, 1);
        let b = bld.node("B", OpKind::FpAdd, 1);
        let c = bld.node("C", OpKind::FpAdd, 1);
        let d = bld.node("D", OpKind::FpAdd, 1);
        let e = bld.node("E", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, c, DepKind::RegFlow, 0).unwrap();
        bld.edge(c, e, DepKind::RegFlow, 0).unwrap();
        bld.edge(a, d, DepKind::RegFlow, 0).unwrap();
        bld.edge(d, e, DepKind::RegFlow, 0).unwrap();
        bld.edge(e, a, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let groups = check_against_enumeration(&g);
        assert_eq!(groups.groups.len(), 1);
        assert_eq!(groups.groups[0].nodes, vec![a, b, c, d, e]);
        assert_eq!(groups.groups[0].rec_mii, 4, "longest circuit A,B,C,E");
    }

    #[test]
    fn figure8c_distinct_backward_edges_stay_separate() {
        let mut bld = DdgBuilder::new("fig8c");
        let a = bld.node("A", OpKind::FpAdd, 2);
        let b = bld.node("B", OpKind::FpAdd, 1);
        let c = bld.node("C", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 1).unwrap();
        bld.edge(b, c, DepKind::RegFlow, 0).unwrap();
        bld.edge(c, b, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let groups = check_against_enumeration(&g);
        assert_eq!(groups.groups.len(), 2);
        assert_eq!(groups.groups[0].rec_mii, 3);
        assert_eq!(groups.groups[0].nodes, vec![a, b]);
        assert_eq!(groups.groups[1].rec_mii, 2);
        assert_eq!(groups.groups[1].nodes, vec![b, c]);
        let lists = groups.simplified_node_lists();
        assert_eq!(lists, vec![vec![a, b], vec![c]]);
    }

    #[test]
    fn self_loops_are_trivial_groups() {
        let mut bld = DdgBuilder::new("s");
        let a = bld.node("a", OpKind::FpAdd, 3);
        bld.edge(a, a, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let groups = check_against_enumeration(&g);
        assert_eq!(groups.groups.len(), 1);
        assert!(groups.groups[0].is_trivial());
        assert_eq!(groups.groups[0].rec_mii, 3);
        assert!(groups.simplified_node_lists().is_empty());
    }

    #[test]
    fn distance_greater_than_one_divides_the_bound() {
        let mut bld = DdgBuilder::new("dist2");
        let a = bld.node("a", OpKind::FpDiv, 17);
        let b = bld.node("b", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 2).unwrap();
        let g = bld.build().unwrap();
        let groups = check_against_enumeration(&g);
        assert_eq!(groups.rec_mii_lower_bound(), 9, "ceil(18 / 2)");
    }

    #[test]
    fn parallel_backward_edges_collapse_to_the_binding_distance() {
        let mut bld = DdgBuilder::new("par");
        let a = bld.node("a", OpKind::FpAdd, 2);
        let b = bld.node("b", OpKind::FpAdd, 2);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 3).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 1).unwrap(); // binding
        let g = bld.build().unwrap();
        let groups = check_against_enumeration(&g);
        assert_eq!(groups.groups.len(), 1, "parallel edges collapse");
        assert_eq!(groups.groups[0].rec_mii, 4);
    }

    #[test]
    fn interleaved_recurrences_keep_every_node_covered() {
        // Two two-node recurrences bridged only by loop-carried edges: the
        // bridging circuit threads two backward edges, which the
        // enumeration reports as a separate multi-edge subgraph. The
        // SCC-derived groups must still cover all four nodes.
        let mut bld = DdgBuilder::new("interleave");
        let r0 = bld.node("r0", OpKind::FpAdd, 1);
        let r1 = bld.node("r1", OpKind::FpAdd, 1);
        let s0 = bld.node("s0", OpKind::FpAdd, 1);
        let s1 = bld.node("s1", OpKind::FpAdd, 1);
        bld.edge(r0, r1, DepKind::RegFlow, 0).unwrap();
        bld.edge(r1, r0, DepKind::RegFlow, 1).unwrap();
        bld.edge(s0, s1, DepKind::RegFlow, 0).unwrap();
        bld.edge(s1, s0, DepKind::RegFlow, 1).unwrap();
        bld.edge(r1, s0, DepKind::RegFlow, 1).unwrap();
        bld.edge(s1, r0, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let groups = check_against_enumeration(&g);
        assert_eq!(groups.groups.len(), 2, "two single-edge groups");
        assert_eq!(
            groups.simplified_node_lists(),
            vec![vec![r0, r1], vec![s0, s1]]
        );
    }

    #[test]
    fn bridge_only_nodes_land_in_a_residual_group() {
        // a → b ⇢ m → c → d ⇢ a: the circuit threads both backward edges
        // (b → m and d → a) and `m` lies on no single-edge circuit.
        let mut bld = DdgBuilder::new("bridge");
        let a = bld.node("a", OpKind::FpAdd, 1);
        let b = bld.node("b", OpKind::FpAdd, 1);
        let m = bld.node("m", OpKind::FpAdd, 1);
        let c = bld.node("c", OpKind::FpAdd, 1);
        let d = bld.node("d", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, m, DepKind::RegFlow, 1).unwrap();
        bld.edge(m, c, DepKind::RegFlow, 0).unwrap();
        bld.edge(c, d, DepKind::RegFlow, 0).unwrap();
        bld.edge(d, a, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let groups = RecurrenceGroups::analyze(&g);
        assert_eq!(groups.groups.len(), 1, "one residual group");
        assert_eq!(groups.groups[0].nodes, vec![a, b, m, c, d]);
        assert_eq!(groups.groups[0].backward_edges.len(), 2);
        // Exact Bellman-Ford bound: 5 unit-latency ops over distance 2.
        assert_eq!(groups.groups[0].rec_mii, 3);
        let oracle = RecurrenceInfo::analyze_with_budget(&g, usize::MAX);
        cross_check(&groups, &oracle).unwrap();
    }

    #[test]
    fn zero_distance_cycle_yields_a_catch_all_group() {
        let mut bld = DdgBuilder::new("bad");
        let a = bld.node("a", OpKind::FpAdd, 1);
        let b = bld.node("b", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 0).unwrap();
        let g = bld.build().unwrap();
        let groups = RecurrenceGroups::analyze(&g);
        assert_eq!(groups.groups.len(), 1);
        assert_eq!(groups.rec_mii_lower_bound(), u64::MAX);
        assert_eq!(groups.groups[0].nodes, vec![a, b]);
    }

    #[test]
    fn dense_scc_is_analysed_without_any_budget() {
        // The shape that made Johnson's enumeration explode: a complete
        // digraph on 10 nodes has ~1.1M elementary circuits, yet the
        // SCC-derived analysis is linear in edges and fully covers it.
        let mut bld = DdgBuilder::new("dense");
        let ids: Vec<NodeId> = (0..10)
            .map(|i| bld.node(format!("n{i}"), OpKind::FpAdd, 1))
            .collect();
        for &u in &ids {
            for &v in &ids {
                if u != v {
                    bld.edge(u, v, DepKind::RegFlow, 1).unwrap();
                }
            }
        }
        let g = bld.build().unwrap();
        let groups = RecurrenceGroups::analyze(&g);
        assert!(groups.has_recurrence());
        // Every edge has distance > 0, so the acyclic remainder is empty
        // and no single-edge circuit exists: one residual group covers all.
        assert_eq!(groups.groups.len(), 1);
        assert_eq!(groups.groups[0].nodes.len(), 10);
        // Exact bound: every k-cycle carries latency k over distance k.
        assert_eq!(groups.groups[0].rec_mii, 1);
    }

    #[test]
    fn groups_are_deterministic() {
        let mut bld = DdgBuilder::new("det");
        let ids: Vec<NodeId> = (0..12)
            .map(|i| bld.node(format!("n{i}"), OpKind::FpAdd, 1 + (i % 3) as u32))
            .collect();
        for i in 0..11 {
            bld.edge(ids[i], ids[i + 1], DepKind::RegFlow, 0).unwrap();
        }
        for (s, t, d) in [(5, 1, 1), (8, 4, 2), (10, 0, 1), (7, 6, 1)] {
            bld.edge(ids[s], ids[t], DepKind::RegFlow, d).unwrap();
        }
        let g = bld.build().unwrap();
        let a = check_against_enumeration(&g);
        let b = RecurrenceGroups::analyze(&g);
        assert_eq!(a, b);
    }
}
