//! Enumeration-free recurrence analysis: recurrence subgraphs derived
//! directly from the strongly connected components, their backward-edge
//! sets and the per-node cycle-ratio analysis, in polynomial time.
//!
//! The pre-ordering phase of HRMS (Section 3.2 of the paper) needs the
//! loop's recurrence circuits *grouped by their backward-edge sets* and
//! ordered by criticality — decreasing `RecMII = ceil(Σλ / Ω)` (the
//! paper's Section 2.1 definition: circuit latency sum over circuit
//! distance sum). The original reproduction obtained that grouping from
//! Johnson's elementary-circuit enumeration ([`crate::circuits`]), which
//! is exponential on dense SCCs — a single well-connected component with
//! a few dozen loop-carried edges spans millions of elementary circuits,
//! and the enumeration budget truncates the analysis exactly on the loops
//! where modulo scheduling is hardest.
//!
//! This module computes the same grouping without enumerating a single
//! circuit, from the facts [`crate::cycle_ratio`] derives per strongly
//! connected component:
//!
//! * **Single-backward-edge subgraphs** — inside one SCC, every dependence
//!   edge with distance `δ > 0` is a backward edge (dropping them makes
//!   the component acyclic), so an elementary circuit using **exactly
//!   one** backward edge `b = (s → t)` is a simple `t ⇝ s` path in the
//!   acyclic remainder plus `b` itself. Node sets and per-subgraph
//!   `RecMII`s come from per-edge reachability sweeps and longest-path
//!   DPs — exact, subgraph for subgraph, against the enumeration.
//! * **Interleaved two-edge subgraphs** — circuits threading exactly two
//!   backward edges decompose into two remainder paths; the cycle-ratio
//!   analysis ranks them from the same DP tables (see
//!   [`crate::cycle_ratio`], step 2), which splits and orders the former
//!   per-SCC *residual* coarsening exactly where the enumeration would
//!   have. Pairs whose members are all claimed by more restrictive
//!   subgraphs are dropped; they cannot influence the ordering phase.
//! * **Deeper interleavings** — nodes lying only on circuits threading
//!   three or more backward edges are collected per SCC into one residual
//!   group ranked by the exact component `RecMII` (a sound, polynomial
//!   fallback that keeps every recurrence node prioritised). The
//!   differential suites *count* how often this fallback fires —
//!   [`cross_check`] reports it as a statistic instead of tolerating it
//!   silently — and the corpora pin the count at zero.
//!
//! On every loop where the (budgeted) enumeration completes, the
//! grouping, per-group `RecMII` and simplified node lists are cross-checked
//! by [`cross_check`], which backs the `verify-recurrence` CI job and the
//! `tests/recurrence_differential.rs` suite.
//!
//! Total cost for a loop with `V` nodes, `E` edges and `B` backward
//! edges: the cycle-ratio analysis' `O(B · (V + E) + (V + E) · B/64 +
//! B² · V/64)` (see [`crate::cycle_ratio`]) plus the final
//! `O(G log G)` sort over the `G` emitted groups — polynomial by
//! construction, with **no enumeration budget and no truncation**.

use std::collections::{BTreeMap, BTreeSet};

use crate::circuits::RecurrenceInfo;
use crate::cycle_ratio::CycleRatios;
use crate::edge::EdgeId;
use crate::graph::Ddg;
use crate::node::NodeId;
use crate::scc;

/// How a [`RecurrenceGroup`] was derived — which circuit shape it stands
/// for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecurrenceGroupKind {
    /// A self-dependent operation: a trivial circuit that bounds the II
    /// but never the pre-ordering.
    SelfLoop,
    /// All circuits through one backward edge — exact, the overwhelmingly
    /// common case.
    SingleEdge,
    /// The circuits threading one *pair* of backward edges (an
    /// interleaved recurrence), ranked by the cycle-ratio analysis.
    Interleaved,
    /// The per-SCC fallback for nodes lying only on circuits threading
    /// three or more backward edges, ranked by the exact component
    /// `RecMII`.
    Residual,
    /// A zero-distance dependence cycle: the loop body is invalid and no
    /// II satisfies it; the group only keeps the nodes prioritised.
    ZeroDistance,
}

/// One recurrence subgraph: the nodes whose circuits share a backward-edge
/// set, with the most restrictive initiation-interval bound among them.
///
/// The enumeration-free analogue of [`crate::RecurrenceSubgraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecurrenceGroup {
    /// How this group was derived.
    pub kind: RecurrenceGroupKind,
    /// The member nodes, sorted by id.
    pub nodes: Vec<NodeId>,
    /// The backward-edge set keying this group. A singleton for subgraphs
    /// derived from one backward edge, a pair for interleaved subgraphs,
    /// the unrealised backward edges of the SCC for a residual group and
    /// empty for a zero-distance self-loop.
    pub backward_edges: BTreeSet<EdgeId>,
    /// The most restrictive `RecMII` among the group's circuits
    /// (`u64::MAX` for zero-distance cycles, which no II satisfies).
    pub rec_mii: u64,
}

impl RecurrenceGroup {
    /// Whether this is a trivial group (a single self-dependent operation).
    /// Trivial groups constrain the II but not the pre-ordering.
    pub fn is_trivial(&self) -> bool {
        self.nodes.len() == 1
    }
}

/// The complete enumeration-free recurrence analysis of a dependence graph.
///
/// Unlike [`RecurrenceInfo`] there is **no** `truncated` flag: construction
/// is polynomial and always complete, whatever the density of the SCCs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecurrenceGroups {
    /// Recurrence groups sorted by decreasing `RecMII` (most restrictive
    /// first), ties broken by smallest member nodes then backward-edge set —
    /// the same total order [`crate::circuits`] uses for its subgraphs.
    pub groups: Vec<RecurrenceGroup>,
}

impl RecurrenceGroups {
    /// Analyses `ddg`, running its own Tarjan pass. Callers holding a
    /// [`crate::LoopAnalysis`] use its cached accessor instead so the single
    /// per-loop Tarjan run is shared.
    pub fn analyze(ddg: &Ddg) -> Self {
        Self::analyze_with_sccs(ddg, &scc::strongly_connected_components(ddg))
    }

    /// Analyses `ddg` over precomputed strongly connected components.
    pub fn analyze_with_sccs(ddg: &Ddg, sccs: &[Vec<NodeId>]) -> Self {
        Self::from_cycle_ratios(ddg, &CycleRatios::analyze_with_sccs(ddg, sccs))
    }

    /// Assembles the groups from a precomputed cycle-ratio analysis (the
    /// cached [`crate::LoopAnalysis::cycle_ratios`] in every scheduling
    /// path, so the per-SCC derivation runs once per loop).
    pub fn from_cycle_ratios(ddg: &Ddg, ratios: &CycleRatios) -> Self {
        let mut groups: Vec<RecurrenceGroup> = Vec::new();

        // Self-dependences are trivial single-node groups, exactly as the
        // enumeration treats them (a zero-distance self-loop keys the empty
        // set and admits no II).
        for (eid, e) in ddg.edges() {
            if e.is_self_loop() {
                let mut backward = BTreeSet::new();
                if e.distance() > 0 {
                    backward.insert(eid);
                }
                let lat = u64::from(ddg.node(e.source()).latency());
                groups.push(RecurrenceGroup {
                    kind: RecurrenceGroupKind::SelfLoop,
                    nodes: vec![e.source()],
                    backward_edges: backward,
                    rec_mii: if e.distance() > 0 {
                        lat.div_ceil(u64::from(e.distance()))
                    } else {
                        u64::MAX
                    },
                });
            }
        }

        groups.extend(ratios.scc_groups().iter().cloned());

        // Same total order as the enumerated subgraphs: most restrictive
        // first, deterministic tie-break.
        groups.sort_by(|a, b| {
            b.rec_mii
                .cmp(&a.rec_mii)
                .then_with(|| a.nodes.cmp(&b.nodes))
                .then_with(|| a.backward_edges.cmp(&b.backward_edges))
        });
        RecurrenceGroups { groups }
    }

    /// Lower bound on the initiation interval imposed by the recurrence
    /// groups; 0 when the graph has no recurrence. Equals the enumeration's
    /// [`RecurrenceInfo::rec_mii_lower_bound`] wherever the enumeration
    /// completes; the bound for scheduling always comes from
    /// [`crate::analysis::exact_rec_mii`], which resolves anti and output
    /// dependence latencies instead of summing operation latencies.
    pub fn rec_mii_lower_bound(&self) -> u64 {
        self.groups.iter().map(|g| g.rec_mii).max().unwrap_or(0)
    }

    /// Whether the graph has any recurrence circuit at all.
    pub fn has_recurrence(&self) -> bool {
        !self.groups.is_empty()
    }

    /// Whether any group fell back to the coarse per-SCC residual
    /// handling (circuits threading three or more backward edges). The
    /// differential suites pin this to `false` across the corpora.
    pub fn has_residual(&self) -> bool {
        self.groups
            .iter()
            .any(|g| g.kind == RecurrenceGroupKind::Residual)
    }

    /// The simplified per-group node lists used by the ordering phase:
    /// groups in decreasing `RecMII` order, each node appearing only in the
    /// first (most restrictive) group that contains it, trivial single-node
    /// groups dropped (paper, Section 3.2). Identical semantics to
    /// [`RecurrenceInfo::simplified_node_lists`].
    pub fn simplified_node_lists(&self) -> Vec<Vec<NodeId>> {
        let mut claimed = vec![false; self.node_bound()];
        let mut lists = Vec::new();
        for g in &self.groups {
            if g.nodes.len() == 1 {
                continue;
            }
            let fresh: Vec<NodeId> = g
                .nodes
                .iter()
                .copied()
                .filter(|n| !claimed[n.index()])
                .collect();
            if fresh.is_empty() {
                continue;
            }
            for &n in &fresh {
                claimed[n.index()] = true;
            }
            lists.push(fresh);
        }
        lists
    }

    fn node_bound(&self) -> usize {
        self.groups
            .iter()
            .flat_map(|g| g.nodes.iter())
            .map(|n| n.index() + 1)
            .max()
            .unwrap_or(0)
    }
}

/// The outcome of a [`cross_check`] run: how the enumeration-free groups
/// compared against the oracle, with the former "documented exception"
/// (interleaved multi-edge recurrences) quantified instead of silently
/// tolerated.
///
/// `Default` is an all-zero report (nothing checked, nothing diverged).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrossCheckReport {
    /// Enumerated subgraphs keyed by a single backward edge (these are
    /// matched one-to-one as a hard error, so they never diverge).
    pub single_edge_subgraphs: usize,
    /// Enumerated subgraphs keyed by two or more backward edges.
    pub interleaved_subgraphs: usize,
    /// The subset of [`CrossCheckReport::interleaved_subgraphs`] keyed by
    /// **three or more** backward edges — the only regime with a
    /// documented fallback. Divergence on a loop with none of these is a
    /// bug, and the `verify-recurrence` hook escalates it to a panic.
    pub deep_subgraphs: usize,
    /// Interleaved subgraphs with an exactly matching group (same key,
    /// same nodes, same `RecMII`).
    pub exact_interleaved_matches: usize,
    /// Interleaved subgraphs with no matching group that also could not
    /// have claimed a node in the oracle's own ordering — dropping them is
    /// provably invisible to the ordering phase.
    pub suppressed_interleaved: usize,
    /// Interleaved subgraphs the groups mis-rank: a key-matched group
    /// diverges in nodes or `RecMII`, or an ordering-relevant subgraph has
    /// no counterpart. **The coarsening statistic** — the suites assert it
    /// is zero on every corpus.
    pub coarsened_subgraphs: usize,
    /// Interleaved groups with no enumerated counterpart (a pair bound
    /// whose two maximizing segments intersect can manufacture one).
    /// Counted into the coarsening total.
    pub spurious_groups: usize,
    /// Residual fallback groups in the new analysis (circuits threading
    /// three or more backward edges).
    pub residual_groups: usize,
    /// Whether the ordering phase sees identical input from both analyses:
    /// equal simplified node lists, equal per-list claiming `RecMII`s and
    /// equal `RecMII` lower bounds.
    pub ordering_match: bool,
}

impl CrossCheckReport {
    /// Whether the two analyses are fully interchangeable on this loop:
    /// no coarsening, no spurious groups, and the ordering phase's entire
    /// view (lists, claiming ranks, bound) is identical.
    pub fn is_exact(&self) -> bool {
        self.coarsening() == 0 && self.ordering_match
    }

    /// Total divergences attributable to multi-edge coarsening.
    pub fn coarsening(&self) -> usize {
        self.coarsened_subgraphs + self.spurious_groups
    }

    /// Accumulates another report (for corpus-wide totals).
    pub fn absorb(&mut self, other: &CrossCheckReport) {
        self.single_edge_subgraphs += other.single_edge_subgraphs;
        self.interleaved_subgraphs += other.interleaved_subgraphs;
        self.deep_subgraphs += other.deep_subgraphs;
        self.exact_interleaved_matches += other.exact_interleaved_matches;
        self.suppressed_interleaved += other.suppressed_interleaved;
        self.coarsened_subgraphs += other.coarsened_subgraphs;
        self.spurious_groups += other.spurious_groups;
        self.residual_groups += other.residual_groups;
        self.ordering_match &= other.ordering_match;
    }
}

/// Process-wide counters behind the `verify-recurrence` feature: every
/// cross-checked loop is tallied, and every loop whose multi-edge handling
/// diverged from the oracle is counted — the statistic differential CI
/// runs use to quantify (and prove zero) coarsening, instead of the old
/// silent documented-exception tolerance.
pub mod coarsening {
    use std::sync::atomic::{AtomicUsize, Ordering};

    static CHECKED: AtomicUsize = AtomicUsize::new(0);
    static INEXACT: AtomicUsize = AtomicUsize::new(0);

    /// Tallies one cross-checked loop.
    pub fn record(exact: bool) {
        CHECKED.fetch_add(1, Ordering::Relaxed);
        if !exact {
            INEXACT.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Loops cross-checked so far in this process.
    pub fn checked() -> usize {
        CHECKED.load(Ordering::Relaxed)
    }

    /// Loops whose multi-edge handling diverged from the oracle.
    pub fn inexact() -> usize {
        INEXACT.load(Ordering::Relaxed)
    }
}

/// The ordering phase's view of a ranked subgraph sequence: the claimed
/// (fresh) node list of every claiming non-trivial subgraph, with its
/// `RecMII`.
fn claim_view<'a, I>(ranked: I) -> Vec<(Vec<NodeId>, u64)>
where
    I: Iterator<Item = (&'a Vec<NodeId>, u64)>,
{
    let mut claimed: BTreeSet<NodeId> = BTreeSet::new();
    let mut view = Vec::new();
    for (nodes, rec_mii) in ranked {
        if nodes.len() == 1 {
            continue;
        }
        let fresh: Vec<NodeId> = nodes
            .iter()
            .copied()
            .filter(|n| !claimed.contains(n))
            .collect();
        if fresh.is_empty() {
            continue;
        }
        claimed.extend(fresh.iter().copied());
        view.push((fresh, rec_mii));
    }
    view
}

/// Cross-checks the enumeration-free groups against a **non-truncated**
/// circuit enumeration of the same graph.
///
/// Hard guarantees (a violation is an `Err`): every enumerated subgraph
/// keyed by a single backward edge has an identical group (same nodes,
/// same key, same `RecMII`) and vice versa, and every node of a
/// multi-edge subgraph is covered by some group. Interleaved (multi-edge)
/// subgraphs are additionally matched exactly where possible, and every
/// divergence is **counted** in the returned [`CrossCheckReport`] — the
/// differential suites assert the count is zero across the reference,
/// generated and interleaved corpora, turning the former documented
/// exception into a proven-empty set.
///
/// Used by the differential test suite and, under the `verify-recurrence`
/// feature, by [`crate::LoopAnalysis`] on every analysed loop.
///
/// # Errors
///
/// Returns a human-readable description of the first hard-invariant
/// violation found.
pub fn cross_check(
    groups: &RecurrenceGroups,
    oracle: &RecurrenceInfo,
) -> Result<CrossCheckReport, String> {
    assert!(
        !oracle.truncated,
        "cross_check needs a complete enumeration"
    );
    let by_key: BTreeMap<&BTreeSet<EdgeId>, &RecurrenceGroup> = groups
        .groups
        .iter()
        .map(|g| (&g.backward_edges, g))
        .collect();

    let mut report = CrossCheckReport::default();
    let mut oracle_keys: BTreeSet<&BTreeSet<EdgeId>> = BTreeSet::new();
    let mut claimed: BTreeSet<NodeId> = BTreeSet::new();
    for sg in &oracle.subgraphs {
        if sg.rec_mii == u64::MAX {
            // Zero-distance cycles: the loop is invalid and both analyses
            // only promise to keep its nodes prioritised.
            continue;
        }
        oracle_keys.insert(&sg.backward_edges);
        if sg.backward_edges.len() == 1 {
            report.single_edge_subgraphs += 1;
            let Some(g) = by_key.get(&sg.backward_edges) else {
                return Err(format!(
                    "enumerated subgraph {:?} has no SCC-derived group",
                    sg.backward_edges
                ));
            };
            if g.nodes != sg.nodes {
                return Err(format!(
                    "subgraph {:?}: nodes diverge ({:?} vs {:?})",
                    sg.backward_edges, g.nodes, sg.nodes
                ));
            }
            if g.rec_mii != sg.rec_mii {
                return Err(format!(
                    "subgraph {:?}: RecMII diverges ({} vs {})",
                    sg.backward_edges, g.rec_mii, sg.rec_mii
                ));
            }
        } else {
            report.interleaved_subgraphs += 1;
            if sg.backward_edges.len() > 2 {
                report.deep_subgraphs += 1;
            }
            // Every node must still be covered (hard invariant).
            for &node in &sg.nodes {
                if !groups.groups.iter().any(|g| g.nodes.contains(&node)) {
                    return Err(format!(
                        "node {node} of multi-edge subgraph {:?} is uncovered",
                        sg.backward_edges
                    ));
                }
            }
            match by_key.get(&sg.backward_edges) {
                Some(g) if g.nodes == sg.nodes && g.rec_mii == sg.rec_mii => {
                    report.exact_interleaved_matches += 1;
                }
                Some(_) => report.coarsened_subgraphs += 1,
                None => {
                    // Would this subgraph have claimed a node in the
                    // oracle's own ordering? If not, dropping it cannot be
                    // observed by the ordering phase.
                    let fresh = sg.nodes.len() > 1 && sg.nodes.iter().any(|n| !claimed.contains(n));
                    if fresh {
                        report.coarsened_subgraphs += 1;
                    } else {
                        report.suppressed_interleaved += 1;
                    }
                }
            }
        }
        if sg.nodes.len() > 1 {
            claimed.extend(sg.nodes.iter().copied());
        }
    }

    for g in &groups.groups {
        match g.kind {
            RecurrenceGroupKind::SingleEdge => {
                // No spurious single-edge groups: each must exist in the
                // oracle (hard invariant).
                if g.rec_mii != u64::MAX && !oracle_keys.contains(&g.backward_edges) {
                    return Err(format!(
                        "SCC-derived group {:?} has no enumerated counterpart",
                        g.backward_edges
                    ));
                }
            }
            RecurrenceGroupKind::Interleaved => {
                if !oracle_keys.contains(&g.backward_edges) {
                    report.spurious_groups += 1;
                }
            }
            RecurrenceGroupKind::Residual => report.residual_groups += 1,
            RecurrenceGroupKind::SelfLoop | RecurrenceGroupKind::ZeroDistance => {}
        }
    }

    // The ordering phase's complete view: claimed lists with their ranks,
    // plus the RecMII lower bound.
    let group_view = claim_view(
        groups
            .groups
            .iter()
            .filter(|g| g.rec_mii != u64::MAX)
            .map(|g| (&g.nodes, g.rec_mii)),
    );
    let oracle_view = claim_view(
        oracle
            .subgraphs
            .iter()
            .filter(|sg| sg.rec_mii != u64::MAX)
            .map(|sg| (&sg.nodes, sg.rec_mii)),
    );
    report.ordering_match =
        group_view == oracle_view && groups.rec_mii_lower_bound() == oracle.rec_mii_lower_bound();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DdgBuilder, DepKind, OpKind};

    fn check_against_enumeration(ddg: &Ddg) -> RecurrenceGroups {
        let groups = RecurrenceGroups::analyze(ddg);
        let oracle = RecurrenceInfo::analyze_with_budget(ddg, usize::MAX);
        let report =
            cross_check(&groups, &oracle).unwrap_or_else(|e| panic!("`{}`: {e}", ddg.name()));
        assert!(
            report.is_exact(),
            "`{}`: {report:?} is not exact",
            ddg.name()
        );
        groups
    }

    #[test]
    fn acyclic_graph_has_no_groups() {
        let g = crate::graph::chain("c", 6, OpKind::FpAdd, 1);
        let groups = check_against_enumeration(&g);
        assert!(!groups.has_recurrence());
        assert_eq!(groups.rec_mii_lower_bound(), 0);
        assert!(groups.simplified_node_lists().is_empty());
    }

    #[test]
    fn figure8b_single_backward_edge_is_one_group() {
        // Paper Figure 8b: two circuits {A,D,E} and {A,B,C,E} sharing the
        // single backward edge E -> A form one subgraph {A,B,C,D,E}.
        let mut bld = DdgBuilder::new("fig8b");
        let a = bld.node("A", OpKind::FpAdd, 1);
        let b = bld.node("B", OpKind::FpAdd, 1);
        let c = bld.node("C", OpKind::FpAdd, 1);
        let d = bld.node("D", OpKind::FpAdd, 1);
        let e = bld.node("E", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, c, DepKind::RegFlow, 0).unwrap();
        bld.edge(c, e, DepKind::RegFlow, 0).unwrap();
        bld.edge(a, d, DepKind::RegFlow, 0).unwrap();
        bld.edge(d, e, DepKind::RegFlow, 0).unwrap();
        bld.edge(e, a, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let groups = check_against_enumeration(&g);
        assert_eq!(groups.groups.len(), 1);
        assert_eq!(groups.groups[0].kind, RecurrenceGroupKind::SingleEdge);
        assert_eq!(groups.groups[0].nodes, vec![a, b, c, d, e]);
        assert_eq!(groups.groups[0].rec_mii, 4, "longest circuit A,B,C,E");
    }

    #[test]
    fn figure8c_distinct_backward_edges_stay_separate() {
        let mut bld = DdgBuilder::new("fig8c");
        let a = bld.node("A", OpKind::FpAdd, 2);
        let b = bld.node("B", OpKind::FpAdd, 1);
        let c = bld.node("C", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 1).unwrap();
        bld.edge(b, c, DepKind::RegFlow, 0).unwrap();
        bld.edge(c, b, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let groups = check_against_enumeration(&g);
        assert_eq!(groups.groups.len(), 2);
        assert_eq!(groups.groups[0].rec_mii, 3);
        assert_eq!(groups.groups[0].nodes, vec![a, b]);
        assert_eq!(groups.groups[1].rec_mii, 2);
        assert_eq!(groups.groups[1].nodes, vec![b, c]);
        let lists = groups.simplified_node_lists();
        assert_eq!(lists, vec![vec![a, b], vec![c]]);
    }

    #[test]
    fn self_loops_are_trivial_groups() {
        let mut bld = DdgBuilder::new("s");
        let a = bld.node("a", OpKind::FpAdd, 3);
        bld.edge(a, a, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let groups = check_against_enumeration(&g);
        assert_eq!(groups.groups.len(), 1);
        assert!(groups.groups[0].is_trivial());
        assert_eq!(groups.groups[0].kind, RecurrenceGroupKind::SelfLoop);
        assert_eq!(groups.groups[0].rec_mii, 3);
        assert!(groups.simplified_node_lists().is_empty());
    }

    #[test]
    fn distance_greater_than_one_divides_the_bound() {
        let mut bld = DdgBuilder::new("dist2");
        let a = bld.node("a", OpKind::FpDiv, 17);
        let b = bld.node("b", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 2).unwrap();
        let g = bld.build().unwrap();
        let groups = check_against_enumeration(&g);
        assert_eq!(groups.rec_mii_lower_bound(), 9, "ceil(18 / 2)");
    }

    #[test]
    fn parallel_backward_edges_collapse_to_the_binding_distance() {
        let mut bld = DdgBuilder::new("par");
        let a = bld.node("a", OpKind::FpAdd, 2);
        let b = bld.node("b", OpKind::FpAdd, 2);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 3).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 1).unwrap(); // binding
        let g = bld.build().unwrap();
        let groups = check_against_enumeration(&g);
        assert_eq!(groups.groups.len(), 1, "parallel edges collapse");
        assert_eq!(groups.groups[0].rec_mii, 4);
    }

    #[test]
    fn interleaved_recurrences_rank_the_bridging_pair() {
        // Two two-node recurrences bridged by loop-carried edges: the
        // bridging circuit threads two backward edges; the enumeration
        // reports it as a separate multi-edge subgraph and the SCC-derived
        // analysis mirrors it as an Interleaved group.
        let mut bld = DdgBuilder::new("interleave");
        let r0 = bld.node("r0", OpKind::FpAdd, 1);
        let r1 = bld.node("r1", OpKind::FpAdd, 1);
        let s0 = bld.node("s0", OpKind::FpAdd, 1);
        let s1 = bld.node("s1", OpKind::FpAdd, 1);
        bld.edge(r0, r1, DepKind::RegFlow, 0).unwrap();
        bld.edge(r1, r0, DepKind::RegFlow, 1).unwrap();
        bld.edge(s0, s1, DepKind::RegFlow, 0).unwrap();
        bld.edge(s1, s0, DepKind::RegFlow, 1).unwrap();
        bld.edge(r1, s0, DepKind::RegFlow, 1).unwrap();
        bld.edge(s1, r0, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let groups = check_against_enumeration(&g);
        assert_eq!(groups.groups.len(), 3, "two singles + the bridging pair");
        assert_eq!(
            groups
                .groups
                .iter()
                .filter(|gr| gr.kind == RecurrenceGroupKind::Interleaved)
                .count(),
            1
        );
        assert_eq!(
            groups.simplified_node_lists(),
            vec![vec![r0, r1], vec![s0, s1]]
        );
    }

    #[test]
    fn bridge_only_nodes_land_in_an_interleaved_group() {
        // a → b ⇢ m → c → d ⇢ a: the circuit threads both backward edges
        // (b → m and d → a) and `m` lies on no single-edge circuit. The
        // pair is ranked exactly (ceil(5/2) = 3), where the pre-cycle-ratio
        // analysis could only offer the whole-SCC residual bound.
        let mut bld = DdgBuilder::new("bridge");
        let a = bld.node("a", OpKind::FpAdd, 1);
        let b = bld.node("b", OpKind::FpAdd, 1);
        let m = bld.node("m", OpKind::FpAdd, 1);
        let c = bld.node("c", OpKind::FpAdd, 1);
        let d = bld.node("d", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, m, DepKind::RegFlow, 1).unwrap();
        bld.edge(m, c, DepKind::RegFlow, 0).unwrap();
        bld.edge(c, d, DepKind::RegFlow, 0).unwrap();
        bld.edge(d, a, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let groups = check_against_enumeration(&g);
        assert_eq!(groups.groups.len(), 1, "one interleaved group");
        assert_eq!(groups.groups[0].kind, RecurrenceGroupKind::Interleaved);
        assert_eq!(groups.groups[0].nodes, vec![a, b, m, c, d]);
        assert_eq!(groups.groups[0].backward_edges.len(), 2);
        assert_eq!(groups.groups[0].rec_mii, 3);
        assert!(!groups.has_residual());
    }

    #[test]
    fn deep_interleaving_falls_back_to_a_counted_residual() {
        // Three backward bridges closing only one six-node circuit: no
        // single- or two-edge subgraph exists, so the residual fallback
        // carries every node at the exact component RecMII — and the
        // cross-check counts the fallback instead of hiding it. (Here the
        // fallback happens to be exact: the one three-edge subgraph spans
        // the whole SCC, whose RecMII the residual rank is.)
        let mut bld = DdgBuilder::new("deep");
        let ids: Vec<NodeId> = (0..6)
            .map(|i| bld.node(format!("n{i}"), OpKind::FpAdd, 4))
            .collect();
        bld.edge(ids[0], ids[1], DepKind::RegFlow, 0).unwrap();
        bld.edge(ids[2], ids[3], DepKind::RegFlow, 0).unwrap();
        bld.edge(ids[4], ids[5], DepKind::RegFlow, 0).unwrap();
        bld.edge(ids[1], ids[2], DepKind::RegFlow, 1).unwrap();
        bld.edge(ids[3], ids[4], DepKind::RegFlow, 1).unwrap();
        bld.edge(ids[5], ids[0], DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        let groups = RecurrenceGroups::analyze(&g);
        assert_eq!(groups.groups.len(), 1);
        assert_eq!(groups.groups[0].kind, RecurrenceGroupKind::Residual);
        assert_eq!(groups.groups[0].nodes, ids);
        assert_eq!(groups.groups[0].rec_mii, 8, "ceil(24 / 3) exactly");
        assert!(groups.has_residual());
        let oracle = RecurrenceInfo::analyze_with_budget(&g, usize::MAX);
        let report = cross_check(&groups, &oracle).unwrap();
        assert_eq!(report.interleaved_subgraphs, 1);
        assert_eq!(report.residual_groups, 1, "the fallback is counted");
        assert_eq!(report.exact_interleaved_matches, 1);
        assert!(report.is_exact(), "and here it happens to be exact");
    }

    #[test]
    fn zero_distance_cycle_yields_a_catch_all_group() {
        let mut bld = DdgBuilder::new("bad");
        let a = bld.node("a", OpKind::FpAdd, 1);
        let b = bld.node("b", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 0).unwrap();
        let g = bld.build().unwrap();
        let groups = RecurrenceGroups::analyze(&g);
        assert_eq!(groups.groups.len(), 1);
        assert_eq!(groups.groups[0].kind, RecurrenceGroupKind::ZeroDistance);
        assert_eq!(groups.rec_mii_lower_bound(), u64::MAX);
        assert_eq!(groups.groups[0].nodes, vec![a, b]);
    }

    #[test]
    fn dense_scc_is_analysed_without_any_budget() {
        // The shape that made Johnson's enumeration explode: a complete
        // digraph on 10 nodes has ~1.1M elementary circuits, yet the
        // SCC-derived analysis is linear in edges and fully covers it.
        let mut bld = DdgBuilder::new("dense");
        let ids: Vec<NodeId> = (0..10)
            .map(|i| bld.node(format!("n{i}"), OpKind::FpAdd, 1))
            .collect();
        for &u in &ids {
            for &v in &ids {
                if u != v {
                    bld.edge(u, v, DepKind::RegFlow, 1).unwrap();
                }
            }
        }
        let g = bld.build().unwrap();
        let groups = RecurrenceGroups::analyze(&g);
        assert!(groups.has_recurrence());
        // Every edge has distance > 0, so the acyclic remainder is empty
        // and the circuits are the two-node interleavings; the claim sweep
        // keeps exactly the ones the ordering phase can observe.
        assert!(groups
            .groups
            .iter()
            .all(|gr| gr.kind == RecurrenceGroupKind::Interleaved));
        assert_eq!(groups.groups.len(), 9);
        // Exact bound: every k-cycle carries latency k over distance k.
        assert_eq!(groups.rec_mii_lower_bound(), 1);
        let covered: BTreeSet<NodeId> = groups
            .groups
            .iter()
            .flat_map(|gr| gr.nodes.iter().copied())
            .collect();
        assert_eq!(covered.len(), 10, "every node stays covered");
        assert!(!groups.has_residual());
    }

    #[test]
    fn groups_are_deterministic() {
        let mut bld = DdgBuilder::new("det");
        let ids: Vec<NodeId> = (0..12)
            .map(|i| bld.node(format!("n{i}"), OpKind::FpAdd, 1 + (i % 3) as u32))
            .collect();
        for i in 0..11 {
            bld.edge(ids[i], ids[i + 1], DepKind::RegFlow, 0).unwrap();
        }
        for (s, t, d) in [(5, 1, 1), (8, 4, 2), (10, 0, 1), (7, 6, 1)] {
            bld.edge(ids[s], ids[t], DepKind::RegFlow, d).unwrap();
        }
        let g = bld.build().unwrap();
        let a = check_against_enumeration(&g);
        let b = RecurrenceGroups::analyze(&g);
        assert_eq!(a, b);
    }
}
