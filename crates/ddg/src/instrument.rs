//! Thread-local instrumentation counters for the expensive one-per-loop
//! analyses.
//!
//! The core/overlay analysis split promises that however many machines a
//! loop is scheduled against, the machine-independent passes run **once**:
//! one Tarjan SCC run and one cycle-ratio λ-search pass per loop body.
//! These counters make that promise testable from outside the crate — the
//! workspace property suite resets them, schedules a loop against every
//! preset through a shared [`crate::LoopCore`], and asserts both counts
//! are exactly 1.
//!
//! The counters are per-thread (a plain [`Cell`] bump, negligible next to
//! the passes they count, which is why they are compiled unconditionally).
//! Tests that pin counts must therefore keep the work on the calling
//! thread — e.g. run the batch engine with a single worker, which executes
//! inline.

use std::cell::Cell;

thread_local! {
    static TARJAN_RUNS: Cell<usize> = const { Cell::new(0) };
    static CYCLE_RATIO_RUNS: Cell<usize> = const { Cell::new(0) };
}

/// Records one run of [`crate::scc::strongly_connected_components`].
pub(crate) fn record_tarjan_run() {
    TARJAN_RUNS.with(|c| c.set(c.get() + 1));
}

/// Records one cycle-ratio analysis pass (the λ-search of
/// [`crate::cycle_ratio::CycleRatios`], over all SCCs of one graph).
pub(crate) fn record_cycle_ratio_run() {
    CYCLE_RATIO_RUNS.with(|c| c.set(c.get() + 1));
}

/// Number of Tarjan SCC runs on this thread since the last [`reset`].
pub fn tarjan_runs() -> usize {
    TARJAN_RUNS.with(|c| c.get())
}

/// Number of cycle-ratio analysis passes on this thread since the last
/// [`reset`].
pub fn cycle_ratio_runs() -> usize {
    CYCLE_RATIO_RUNS.with(|c| c.get())
}

/// Resets both per-thread counters to zero.
pub fn reset() {
    TARJAN_RUNS.with(|c| c.set(0));
    CYCLE_RATIO_RUNS.with(|c| c.set(0));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_independent_and_resettable() {
        reset();
        assert_eq!(tarjan_runs(), 0);
        assert_eq!(cycle_ratio_runs(), 0);
        record_tarjan_run();
        record_tarjan_run();
        record_cycle_ratio_run();
        assert_eq!(tarjan_runs(), 2);
        assert_eq!(cycle_ratio_runs(), 1);
        reset();
        assert_eq!(tarjan_runs(), 0);
        assert_eq!(cycle_ratio_runs(), 0);
    }
}
