//! Error type for dependence-graph construction and queries.

use std::error::Error;
use std::fmt;

use crate::node::NodeId;

/// Errors produced while building or querying a dependence graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DdgError {
    /// An operation was given a latency of zero; the paper requires
    /// `λ(u)` to be a non-zero positive integer.
    ZeroLatency {
        /// Name of the offending operation.
        name: String,
    },
    /// An edge referenced a node that does not exist in the graph being
    /// built.
    UnknownNode {
        /// The dangling node id.
        id: NodeId,
    },
    /// Two nodes were given the same name. Names must be unique so that the
    /// worked examples of the paper can be addressed by name in tests.
    DuplicateName {
        /// The repeated name.
        name: String,
    },
    /// The graph has no nodes at all; an empty loop body cannot be
    /// scheduled.
    EmptyGraph,
    /// A register flow dependence left a node that does not define a value
    /// (for example a store).
    FlowFromValueless {
        /// The producer node.
        from: NodeId,
    },
    /// A node id was out of range for this graph.
    InvalidNodeId {
        /// The out-of-range id.
        id: NodeId,
        /// Number of nodes in the graph.
        len: usize,
    },
}

impl fmt::Display for DdgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdgError::ZeroLatency { name } => {
                write!(f, "operation `{name}` has zero latency")
            }
            DdgError::UnknownNode { id } => {
                write!(f, "edge references unknown node {id:?}")
            }
            DdgError::DuplicateName { name } => {
                write!(f, "duplicate operation name `{name}`")
            }
            DdgError::EmptyGraph => write!(f, "dependence graph has no operations"),
            DdgError::FlowFromValueless { from } => {
                write!(
                    f,
                    "register flow dependence leaves node {from:?} which produces no value"
                )
            }
            DdgError::InvalidNodeId { id, len } => {
                write!(f, "node id {id:?} out of range for graph with {len} nodes")
            }
        }
    }
}

impl Error for DdgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = DdgError::ZeroLatency {
            name: "mul".to_string(),
        };
        let msg = e.to_string();
        assert!(msg.contains("mul"));
        assert!(msg.chars().next().unwrap().is_lowercase());
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<DdgError>();
    }

    #[test]
    fn debug_is_nonempty() {
        let e = DdgError::EmptyGraph;
        assert!(!format!("{e:?}").is_empty());
    }
}
