//! Path search: the paper's `Search_All_Paths` routine.

use std::collections::{HashSet, VecDeque};

use crate::graph::GraphView;
use crate::node::NodeId;

/// Returns every node that lies on some directed path between two (not
/// necessarily distinct) nodes of `seeds`, including the seeds themselves.
///
/// This is the `Search_All_Paths(V', G)` routine of the paper (Section 3.1):
/// when the hypernode has several predecessors (successors), the nodes on the
/// paths connecting them must be ordered together so that the topological
/// sort sees the complete sub-structure. A node `w` is on a path from `a` to
/// `b` (`a, b ∈ V'`) exactly when `w` is reachable from `a` **and** `b` is
/// reachable from `w`; therefore the answer is
/// `reachable_from(seeds) ∩ reaches(seeds) ∪ seeds`,
/// which is computable with two breadth-first traversals in `O(|V| + |E|)`
/// time — matching the complexity stated in the paper's footnote 2.
///
/// The routine works on any [`GraphView`]; the HRMS pre-ordering phase calls
/// it on its *reduced* working graph (with backward edges of already-handled
/// recurrences removed), never on the original graph directly.
pub fn search_all_paths<G: GraphView>(graph: &G, seeds: &[NodeId]) -> HashSet<NodeId> {
    let seeds: Vec<NodeId> = seeds
        .iter()
        .copied()
        .filter(|&s| graph.contains(s))
        .collect();
    if seeds.is_empty() {
        return HashSet::new();
    }

    let forward = reachable(graph, &seeds, Dir::Forward);
    let backward = reachable(graph, &seeds, Dir::Backward);

    let mut result: HashSet<NodeId> = forward.intersection(&backward).copied().collect();
    for s in seeds {
        result.insert(s);
    }
    result
}

/// Returns the set of nodes reachable from `from` by following edges
/// forwards (successors), **excluding** nodes only reachable through paths
/// that leave the view. `from` nodes themselves are included only if they are
/// reachable from another seed (or themselves through a cycle).
fn reachable<G: GraphView>(graph: &G, from: &[NodeId], dir: Dir) -> HashSet<NodeId> {
    let mut visited: HashSet<NodeId> = HashSet::new();
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    // Deduplicate the seed frontier: a seed passed twice (e.g. the hypernode
    // arriving both explicitly and via `seeds.extend`) must be traversed
    // once, not once per occurrence — without this, duplicate seeds re-walk
    // their whole reachable set.
    let mut seeded: HashSet<NodeId> = HashSet::new();
    for &s in from {
        if seeded.insert(s) {
            queue.push_back(s);
        }
    }
    // Note: seeds are enqueued but only *neighbours* get marked, so a seed is
    // in the result set only if some other seed (or itself via a cycle)
    // reaches it. This matches the "strictly between" semantics; seeds are
    // re-added by the caller anyway.
    while let Some(v) = queue.pop_front() {
        let next = match dir {
            Dir::Forward => graph.successors_of(v),
            Dir::Backward => graph.predecessors_of(v),
        };
        for w in next {
            if graph.contains(w) && visited.insert(w) {
                queue.push_back(w);
            }
        }
    }
    visited
}

#[derive(Clone, Copy)]
enum Dir {
    Forward,
    Backward,
}

/// Returns the set of nodes reachable from `start` (not including `start`
/// unless it lies on a cycle) following successor edges.
pub fn reachable_from<G: GraphView>(graph: &G, start: NodeId) -> HashSet<NodeId> {
    reachable(graph, &[start], Dir::Forward)
}

/// Returns the set of nodes that can reach `target` (not including `target`
/// unless it lies on a cycle) following predecessor edges.
pub fn reaches<G: GraphView>(graph: &G, target: NodeId) -> HashSet<NodeId> {
    reachable(graph, &[target], Dir::Backward)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DdgBuilder, DepKind, OpKind};

    /// Figure 7a of the paper (without the hypernode): used here only for
    /// path search, the full ordering test lives in the `hrms` crate.
    fn sample_graph() -> (crate::Ddg, Vec<NodeId>) {
        // A graph where B and I are both predecessors of a common consumer
        // and a path B -> E -> I exists.
        let mut bld = DdgBuilder::new("paths");
        let b = bld.node("B", OpKind::FpAdd, 1);
        let e = bld.node("E", OpKind::FpAdd, 1);
        let i = bld.node("I", OpKind::FpAdd, 1);
        let x = bld.node("X", OpKind::FpAdd, 1); // unrelated branch
        bld.edge(b, e, DepKind::RegFlow, 0).unwrap();
        bld.edge(e, i, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, x, DepKind::RegFlow, 0).unwrap();
        let g = bld.build().unwrap();
        (g, vec![b, e, i, x])
    }

    #[test]
    fn nodes_on_paths_between_seeds_are_found() {
        let (g, ids) = sample_graph();
        let (b, e, i, x) = (ids[0], ids[1], ids[2], ids[3]);
        let result = search_all_paths(&g, &[b, i]);
        assert!(result.contains(&b));
        assert!(result.contains(&e), "E lies on the path B -> E -> I");
        assert!(result.contains(&i));
        assert!(!result.contains(&x), "X is not on any path between B and I");
    }

    #[test]
    fn seeds_with_no_connecting_path_return_only_seeds() {
        let (g, ids) = sample_graph();
        let (e, x) = (ids[1], ids[3]);
        let result = search_all_paths(&g, &[e, x]);
        assert_eq!(result.len(), 2);
        assert!(result.contains(&e));
        assert!(result.contains(&x));
    }

    #[test]
    fn single_seed_returns_itself() {
        let (g, ids) = sample_graph();
        let result = search_all_paths(&g, &[ids[0]]);
        assert_eq!(result.len(), 1);
    }

    #[test]
    fn empty_seed_set_is_empty() {
        let (g, _) = sample_graph();
        assert!(search_all_paths(&g, &[]).is_empty());
    }

    #[test]
    fn long_path_through_many_intermediates() {
        let g = crate::graph::chain("chain", 10, OpKind::FpAdd, 1);
        let first = NodeId(0);
        let last = NodeId(9);
        let result = search_all_paths(&g, &[first, last]);
        assert_eq!(result.len(), 10, "every chain node is on the path");
    }

    #[test]
    fn paths_respect_direction() {
        // a -> b, c -> b : there is no path between a and c.
        let mut bld = DdgBuilder::new("vee");
        let a = bld.node("a", OpKind::FpAdd, 1);
        let b = bld.node("b", OpKind::FpAdd, 1);
        let c = bld.node("c", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(c, b, DepKind::RegFlow, 0).unwrap();
        let g = bld.build().unwrap();
        let result = search_all_paths(&g, &[a, c]);
        assert_eq!(result.len(), 2);
        assert!(!result.contains(&b));
    }

    #[test]
    fn reachability_helpers() {
        let g = crate::graph::chain("chain", 4, OpKind::FpAdd, 1);
        let r = reachable_from(&g, NodeId(1));
        assert_eq!(r, [NodeId(2), NodeId(3)].into_iter().collect());
        let r = reaches(&g, NodeId(2));
        assert_eq!(r, [NodeId(0), NodeId(1)].into_iter().collect());
    }

    #[test]
    fn cycle_members_reach_themselves() {
        let mut bld = DdgBuilder::new("cyc");
        let a = bld.node("a", OpKind::FpAdd, 1);
        let b = bld.node("b", OpKind::FpAdd, 1);
        bld.edge(a, b, DepKind::RegFlow, 0).unwrap();
        bld.edge(b, a, DepKind::RegFlow, 1).unwrap();
        let g = bld.build().unwrap();
        assert!(reachable_from(&g, a).contains(&a));
        let result = search_all_paths(&g, &[a]);
        // a -> b -> a is a path from a to a, so b is "between" seeds.
        assert!(result.contains(&b));
    }

    /// Counts adjacency queries so the tests can observe how much work a
    /// traversal did.
    struct CountingView<'a> {
        inner: &'a crate::Ddg,
        queries: std::cell::Cell<usize>,
    }

    impl GraphView for CountingView<'_> {
        fn node_bound(&self) -> usize {
            self.inner.node_bound()
        }

        fn contains(&self, n: NodeId) -> bool {
            GraphView::contains(self.inner, n)
        }

        fn successors_of(&self, n: NodeId) -> Vec<NodeId> {
            self.queries.set(self.queries.get() + 1);
            self.inner.successors_of(n)
        }

        fn predecessors_of(&self, n: NodeId) -> Vec<NodeId> {
            self.queries.set(self.queries.get() + 1);
            self.inner.predecessors_of(n)
        }
    }

    #[test]
    fn duplicate_seeds_are_traversed_once() {
        let g = crate::graph::chain("chain", 12, OpKind::FpAdd, 1);
        let first = NodeId(0);
        let last = NodeId(11);
        let deduped = search_all_paths(&g, &[first, last]);
        let duplicated = search_all_paths(&g, &[first, first, last, last, first]);
        assert_eq!(deduped, duplicated, "duplicates must not change the result");

        // With the seed frontier deduplicated, each direction queries the
        // adjacency of each seed exactly once (plus once per reached node).
        let view = CountingView {
            inner: &g,
            queries: std::cell::Cell::new(0),
        };
        search_all_paths(&view, &[first, first, first, last]);
        // Forward sweep: 13 pops (2 distinct seeds + the 11 nodes the BFS
        // discovers), backward symmetric; without dedup the extra copies of
        // `first` would each be popped and queried again.
        assert_eq!(view.queries.get(), 26);
    }

    #[test]
    fn seeds_not_in_view_are_ignored() {
        let (g, ids) = sample_graph();
        let ghost = NodeId(99);
        let result = search_all_paths(&g, &[ids[0], ghost]);
        assert!(result.contains(&ids[0]));
        assert!(!result.contains(&ghost));
    }
}
