//! The `.loop` text format: a hand-written, dependency-free codec for
//! dependence graphs.
//!
//! This is the primary on-disk loop format of the `hrms` CLI (the DOT
//! importer in [`crate::dot`] is the secondary one). It is line-oriented and
//! diff-friendly; the full specification with a worked example lives in
//! `docs/FORMATS.md`. In short:
//!
//! ```text
//! # comments run to end of line
//! loop "dot product"
//!   iterations 1000
//!   invariants 0
//!   node load_a load latency=2
//!   node load_b load latency=2
//!   node mul fmul latency=2
//!   node acc fadd latency=1
//!   edge load_a -> mul flow
//!   edge load_b -> mul flow
//!   edge mul -> acc flow
//!   edge acc -> acc flow dist=1
//! end
//! ```
//!
//! One file holds any number of `loop ... end` blocks. The round trip
//! `parse_loops(&write_loops(&graphs))` is lossless: every re-imported graph
//! is [`crate::fingerprint::ddg_fingerprint`]-identical to its source
//! (pinned by `tests/format_roundtrip.rs` over every corpus in the
//! workspace).

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::builder::DdgBuilder;
use crate::edge::DepKind;
use crate::graph::Ddg;
use crate::node::{NodeId, OpKind};

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input (0 when the error is not tied to a
    /// specific line, e.g. an unterminated block at end of input).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error pinned to a 1-based line (0 = whole input).
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseError {}

/// Whether a name can be written without quotes: ASCII alphanumerics plus
/// `_`, `.`, `-` and `$`, not starting with a digit or `-`, and not a
/// keyword of the format.
fn is_bare(name: &str) -> bool {
    let mut chars = name.chars();
    let first_ok = matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_');
    first_ok
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-' | '$'))
        && !matches!(
            name,
            "loop" | "end" | "node" | "edge" | "iterations" | "invariants"
        )
}

/// Appends `name` in quotes with the format's escapes.
fn write_quoted(out: &mut String, name: &str) {
    out.push('"');
    for c in name.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `name`, bare when safe, quoted otherwise.
fn write_name(out: &mut String, name: &str) {
    if is_bare(name) {
        out.push_str(name);
    } else {
        write_quoted(out, name);
    }
}

/// Serialises one graph as a `loop ... end` block.
pub fn write_loop(ddg: &Ddg) -> String {
    let mut out = String::new();
    out.push_str("loop ");
    // Loop names are always quoted: they routinely contain spaces and
    // suite-prefix punctuation, and a fixed shape is easier to grep.
    write_quoted(&mut out, ddg.name());
    out.push('\n');
    let _ = writeln!(out, "  iterations {}", ddg.iteration_count());
    let _ = writeln!(out, "  invariants {}", ddg.num_invariants());
    for (_, n) in ddg.nodes() {
        out.push_str("  node ");
        write_name(&mut out, n.name());
        let _ = write!(out, " {} latency={}", n.kind().mnemonic(), n.latency());
        if n.invariant_uses() > 0 {
            let _ = write!(out, " invariant_uses={}", n.invariant_uses());
        }
        if !n.defines_value() && n.kind().defines_value() {
            out.push_str(" no_result");
        }
        out.push('\n');
    }
    for (_, e) in ddg.edges() {
        out.push_str("  edge ");
        write_name(&mut out, ddg.node(e.source()).name());
        out.push_str(" -> ");
        write_name(&mut out, ddg.node(e.target()).name());
        let _ = write!(out, " {}", e.kind().label());
        if e.distance() > 0 {
            let _ = write!(out, " dist={}", e.distance());
        }
        out.push('\n');
    }
    out.push_str("end\n");
    out
}

/// Serialises a whole suite, one block per graph, blocks separated by a
/// blank line.
pub fn write_loops(ddgs: &[Ddg]) -> String {
    let mut out = String::new();
    for (i, g) in ddgs.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&write_loop(g));
    }
    out
}

/// One token of a line: a (possibly quoted) word or the `->` arrow.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    /// A bare or quoted word. The flag records whether it was quoted
    /// (quoted words are never keywords).
    Word(String, bool),
    /// The `->` edge arrow.
    Arrow,
}

impl Token {
    fn describe(&self) -> String {
        match self {
            Token::Word(w, _) => format!("`{w}`"),
            Token::Arrow => "`->`".to_string(),
        }
    }
}

/// Splits one line into tokens, honouring quotes and `#` comments.
fn tokenize(line: &str, lineno: usize) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '#' {
            break;
        } else if c == '"' {
            chars.next();
            let mut word = String::new();
            loop {
                match chars.next() {
                    None => return Err(ParseError::new(lineno, "unterminated string")),
                    Some('"') => break,
                    Some('\\') => match chars.next() {
                        Some('\\') => word.push('\\'),
                        Some('"') => word.push('"'),
                        Some('n') => word.push('\n'),
                        Some('t') => word.push('\t'),
                        Some(other) => {
                            return Err(ParseError::new(
                                lineno,
                                format!("unknown escape `\\{other}` in string"),
                            ))
                        }
                        None => return Err(ParseError::new(lineno, "unterminated string")),
                    },
                    Some(ch) => word.push(ch),
                }
            }
            tokens.push(Token::Word(word, true));
        } else {
            let mut word = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() || c == '#' || c == '"' {
                    break;
                }
                word.push(c);
                chars.next();
            }
            if word == "->" {
                tokens.push(Token::Arrow);
            } else {
                tokens.push(Token::Word(word, false));
            }
        }
    }
    Ok(tokens)
}

/// State of the `loop` block currently being parsed.
struct Block {
    builder: DdgBuilder,
    /// name → id, for edge endpoint resolution (duplicate names are
    /// rejected at `build` time; first wins for resolution here).
    names: Vec<(String, NodeId)>,
    start_line: usize,
}

impl Block {
    fn lookup(&self, name: &str) -> Option<NodeId> {
        self.names
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, id)| id)
    }
}

/// Parses `key=value` attributes and flags from the tail of a line.
fn parse_attrs(tokens: &[Token], lineno: usize) -> Result<Vec<(&str, Option<&str>)>, ParseError> {
    let mut attrs = Vec::new();
    for t in tokens {
        match t {
            Token::Word(w, false) => match w.split_once('=') {
                Some((k, v)) => attrs.push((k, Some(v))),
                None => attrs.push((w.as_str(), None)),
            },
            other => {
                return Err(ParseError::new(
                    lineno,
                    format!("unexpected token {}", other.describe()),
                ))
            }
        }
    }
    Ok(attrs)
}

fn parse_num<T: std::str::FromStr>(v: &str, what: &str, lineno: usize) -> Result<T, ParseError> {
    v.parse()
        .map_err(|_| ParseError::new(lineno, format!("invalid {what} `{v}`")))
}

fn word(t: Option<&Token>, what: &str, lineno: usize) -> Result<String, ParseError> {
    match t {
        Some(Token::Word(w, _)) => Ok(w.clone()),
        Some(other) => Err(ParseError::new(
            lineno,
            format!("expected {what}, found {}", other.describe()),
        )),
        None => Err(ParseError::new(lineno, format!("expected {what}"))),
    }
}

/// Parses a whole file: any number of `loop ... end` blocks.
///
/// # Errors
///
/// Returns a [`ParseError`] (with a 1-based line number) on malformed
/// syntax, unknown keywords/kinds, dangling edge endpoints, or when a block
/// fails [`DdgBuilder::build`] validation (duplicate names, zero latency,
/// empty body).
pub fn parse_loops(input: &str) -> Result<Vec<Ddg>, ParseError> {
    let mut loops = Vec::new();
    let mut block: Option<Block> = None;
    for (i, line) in input.lines().enumerate() {
        let lineno = i + 1;
        let tokens = tokenize(line, lineno)?;
        let Some(first) = tokens.first() else {
            continue;
        };
        let keyword = match first {
            Token::Word(w, false) => w.as_str(),
            other => {
                return Err(ParseError::new(
                    lineno,
                    format!("expected a keyword, found {}", other.describe()),
                ))
            }
        };
        match (keyword, &mut block) {
            ("loop", Some(_)) => {
                return Err(ParseError::new(
                    lineno,
                    "`loop` inside an unterminated block (missing `end`?)",
                ));
            }
            ("loop", slot @ None) => {
                let name = word(tokens.get(1), "a loop name", lineno)?;
                if tokens.len() > 2 {
                    return Err(ParseError::new(lineno, "trailing tokens after loop name"));
                }
                *slot = Some(Block {
                    builder: DdgBuilder::new(name),
                    names: Vec::new(),
                    start_line: lineno,
                });
            }
            ("end", Some(_)) => {
                let b = block.take().expect("matched Some");
                let ddg = b
                    .builder
                    .build()
                    .map_err(|e| ParseError::new(lineno, format!("invalid loop: {e}")))?;
                loops.push(ddg);
            }
            ("iterations", Some(b)) => {
                let v = word(tokens.get(1), "an iteration count", lineno)?;
                b.builder
                    .iteration_count(parse_num(&v, "iteration count", lineno)?);
            }
            ("invariants", Some(b)) => {
                let v = word(tokens.get(1), "an invariant count", lineno)?;
                b.builder
                    .invariants(parse_num(&v, "invariant count", lineno)?);
            }
            ("node", Some(b)) => {
                let name = word(tokens.get(1), "a node name", lineno)?;
                let kind_word = word(tokens.get(2), "an operation kind", lineno)?;
                let kind = OpKind::from_mnemonic(&kind_word).ok_or_else(|| {
                    ParseError::new(lineno, format!("unknown operation kind `{kind_word}`"))
                })?;
                let mut latency: Option<u32> = None;
                let mut invariant_uses: u32 = 0;
                let mut no_result = false;
                for (k, v) in parse_attrs(&tokens[3..], lineno)? {
                    match (k, v) {
                        ("latency", Some(v)) => latency = Some(parse_num(v, "latency", lineno)?),
                        ("invariant_uses", Some(v)) => {
                            invariant_uses = parse_num(v, "invariant_uses", lineno)?;
                        }
                        ("no_result", None) => no_result = true,
                        (k, _) => {
                            return Err(ParseError::new(
                                lineno,
                                format!("unknown node attribute `{k}`"),
                            ))
                        }
                    }
                }
                let latency = latency.ok_or_else(|| {
                    ParseError::new(lineno, format!("node `{name}` is missing latency=N"))
                })?;
                let id = if no_result {
                    b.builder.node_no_result(name.clone(), kind, latency)
                } else {
                    b.builder.node(name.clone(), kind, latency)
                };
                if invariant_uses > 0 {
                    b.builder.node_invariant_uses(id, invariant_uses);
                }
                b.names.push((name, id));
            }
            ("edge", Some(b)) => {
                let src_name = word(tokens.get(1), "a source node name", lineno)?;
                if tokens.get(2) != Some(&Token::Arrow) {
                    return Err(ParseError::new(lineno, "expected `->` after edge source"));
                }
                let dst_name = word(tokens.get(3), "a target node name", lineno)?;
                let kind_word = word(tokens.get(4), "a dependence kind", lineno)?;
                let kind = DepKind::from_label(&kind_word).ok_or_else(|| {
                    ParseError::new(lineno, format!("unknown dependence kind `{kind_word}`"))
                })?;
                let mut distance: u32 = 0;
                for (k, v) in parse_attrs(&tokens[5..], lineno)? {
                    match (k, v) {
                        ("dist", Some(v)) => distance = parse_num(v, "distance", lineno)?,
                        (k, _) => {
                            return Err(ParseError::new(
                                lineno,
                                format!("unknown edge attribute `{k}`"),
                            ))
                        }
                    }
                }
                let src = b.lookup(&src_name).ok_or_else(|| {
                    ParseError::new(lineno, format!("edge references unknown node `{src_name}`"))
                })?;
                let dst = b.lookup(&dst_name).ok_or_else(|| {
                    ParseError::new(lineno, format!("edge references unknown node `{dst_name}`"))
                })?;
                b.builder
                    .edge(src, dst, kind, distance)
                    .map_err(|e| ParseError::new(lineno, format!("invalid edge: {e}")))?;
            }
            (kw, Some(_)) => {
                return Err(ParseError::new(lineno, format!("unknown keyword `{kw}`")));
            }
            (kw, None) => {
                return Err(ParseError::new(
                    lineno,
                    format!("`{kw}` outside a `loop ... end` block"),
                ));
            }
        }
    }
    if let Some(b) = block {
        return Err(ParseError::new(
            0,
            format!(
                "loop block starting on line {} is never closed with `end`",
                b.start_line
            ),
        ));
    }
    Ok(loops)
}

/// Parses a file that must contain exactly one loop.
///
/// # Errors
///
/// Same as [`parse_loops`], plus an error when the input holds zero or more
/// than one block.
pub fn parse_loop(input: &str) -> Result<Ddg, ParseError> {
    let mut loops = parse_loops(input)?;
    match loops.len() {
        1 => Ok(loops.remove(0)),
        n => Err(ParseError::new(
            0,
            format!("expected exactly one loop, found {n}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::ddg_fingerprint;
    use crate::{DdgBuilder, DepKind, OpKind};

    fn tricky() -> Ddg {
        let mut b = DdgBuilder::new("tricky \"loop\" \\ name");
        let a = b.node("plain", OpKind::Load, 2);
        let c = b.node("needs quoting", OpKind::FpAdd, 1);
        let d = b.node_no_result("cmp", OpKind::IntAlu, 1);
        b.node_invariant_uses(a, 2);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, c, DepKind::RegFlow, 3).unwrap();
        b.edge(d, c, DepKind::Control, 1).unwrap();
        b.invariants(5).iteration_count(12345);
        b.build().unwrap()
    }

    #[test]
    fn round_trip_is_fingerprint_identical() {
        let g = tricky();
        let text = write_loop(&g);
        let back = parse_loop(&text).unwrap();
        assert_eq!(back, g);
        assert_eq!(ddg_fingerprint(&back), ddg_fingerprint(&g));
    }

    #[test]
    fn multi_loop_files_round_trip_in_order() {
        let a = crate::chain("first", 3, OpKind::FpAdd, 1);
        let b = tricky();
        let text = write_loops(&[a.clone(), b.clone()]);
        let back = parse_loops(&text).unwrap();
        assert_eq!(back, vec![a, b]);
    }

    #[test]
    fn comments_blank_lines_and_bare_names_are_accepted() {
        let text = "\n# a comment\nloop \"l\"\n  node a fadd latency=1 # trailing\n\n  node b fmul latency=2\n  edge a -> b flow\nend\n";
        let g = parse_loop(text).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
        assert!(g.node_by_name("a").is_some());
    }

    #[test]
    fn defaults_are_applied() {
        // dist defaults to 0; iterations/invariants default to builder
        // defaults (1 and sum-of-uses respectively).
        let text = "loop l\nnode a load latency=2 invariant_uses=1\nnode b store latency=1\nedge a -> b flow\nend\n";
        let g = parse_loop(text).unwrap();
        let (_, e) = g.edges().next().unwrap();
        assert_eq!(e.distance(), 0);
        assert_eq!(g.iteration_count(), 1);
        assert_eq!(g.num_invariants(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("loop l\nnode a zzz latency=1\nend\n", 2, "operation kind"),
            ("loop l\nnode a fadd\nend\n", 2, "latency"),
            (
                "loop l\nnode a fadd latency=1\nedge a -> b flow\nend\n",
                3,
                "unknown node",
            ),
            (
                "loop l\nnode a fadd latency=1\nedge a b flow\nend\n",
                3,
                "->",
            ),
            ("node a fadd latency=1\n", 1, "outside"),
            ("loop l\nloop m\n", 2, "unterminated"),
            ("loop l\nnode a fadd latency=1\n", 0, "never closed"),
            (
                "loop l\nnode \"a fadd latency=1\nend\n",
                2,
                "unterminated string",
            ),
            ("loop l\nnode a fadd latency=x\nend\n", 2, "invalid latency"),
            ("loop l\nfrobnicate\nend\n", 2, "unknown keyword"),
        ];
        for (text, line, needle) in cases {
            let err = parse_loops(text).unwrap_err();
            assert_eq!(err.line, *line, "case {text:?}: {err}");
            assert!(
                err.to_string().contains(needle),
                "case {text:?}: message {err} should mention {needle}"
            );
        }
    }

    #[test]
    fn builder_validation_errors_surface() {
        let text = "loop l\nnode a fadd latency=1\nnode a fmul latency=2\nend\n";
        let err = parse_loops(text).unwrap_err();
        assert!(err.to_string().contains("duplicate"));

        let text = "loop l\nnode s store latency=1\nnode a fadd latency=1\nedge s -> a flow\nend\n";
        let err = parse_loops(text).unwrap_err();
        assert!(err.to_string().contains("no value"));
    }

    #[test]
    fn escapes_round_trip_in_names() {
        let mut b = DdgBuilder::new("esc");
        b.node("a\"b\\c\nd\te", OpKind::FpAdd, 1);
        let g = b.build().unwrap();
        let back = parse_loop(&write_loop(&g)).unwrap();
        assert_eq!(back.node(NodeId(0)).name(), "a\"b\\c\nd\te");
    }

    #[test]
    fn keyword_like_names_are_quoted_and_survive() {
        let mut b = DdgBuilder::new("kw");
        b.node("end", OpKind::FpAdd, 1);
        b.node("loop", OpKind::FpMul, 2);
        let g = b.build().unwrap();
        let back = parse_loop(&write_loop(&g)).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn empty_input_parses_to_no_loops() {
        assert!(parse_loops("").unwrap().is_empty());
        assert!(parse_loops("# only comments\n\n").unwrap().is_empty());
    }
}
