//! The `.loop` text format: a hand-written, dependency-free codec for
//! dependence graphs.
//!
//! This is the primary on-disk loop format of the `hrms` CLI (the DOT
//! importer in [`crate::dot`] is the secondary one). It is line-oriented and
//! diff-friendly; the full specification with a worked example lives in
//! `docs/FORMATS.md`. In short:
//!
//! ```text
//! # comments run to end of line
//! loop "dot product"
//!   iterations 1000
//!   invariants 0
//!   node load_a load latency=2
//!   node load_b load latency=2
//!   node mul fmul latency=2
//!   node acc fadd latency=1
//!   edge load_a -> mul flow
//!   edge load_b -> mul flow
//!   edge mul -> acc flow
//!   edge acc -> acc flow dist=1
//! end
//! ```
//!
//! One file holds any number of `loop ... end` blocks. The round trip
//! `parse_loops(&write_loops(&graphs))` is lossless: every re-imported graph
//! is [`crate::fingerprint::ddg_fingerprint`]-identical to its source
//! (pinned by `tests/format_roundtrip.rs` over every corpus in the
//! workspace).
//!
//! Every parse failure carries a [`Span`] — the byte offset, line and
//! column of the offending token — and [`parse_loops_with_spans`]
//! additionally records the source span of every parsed node and edge, so
//! downstream tooling (the `hrms-verify` lint pass) can point semantic
//! diagnostics back at the input file.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::builder::DdgBuilder;
use crate::edge::DepKind;
use crate::graph::Ddg;
use crate::node::{NodeId, OpKind};

/// A contiguous region of an input file: where a token, line or construct
/// came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based character column of the span's first character.
    pub col: usize,
    /// Byte offset of the span's first character in the whole input.
    pub offset: usize,
    /// Length of the span in characters (for caret rendering; at least 1
    /// for non-empty spans).
    pub len: usize,
}

impl Span {
    /// A span covering `len` characters starting at `line`:`col` /
    /// byte `offset`.
    pub fn new(line: usize, col: usize, offset: usize, len: usize) -> Self {
        Span {
            line,
            col,
            offset,
            len,
        }
    }
}

/// A parse failure, with the 1-based line it occurred on and (when the
/// error is tied to a specific token or line) the [`Span`] and source
/// excerpt of the offending input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input (0 when the error is not tied to a
    /// specific line, e.g. an unterminated block at end of input).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// Precise location of the offending token, when known.
    pub span: Option<Span>,
    /// The full text of the offending line (without its trailing newline),
    /// rendered under the message with a caret marking the span.
    pub source_line: Option<String>,
}

impl ParseError {
    /// Creates a parse error pinned to a 1-based line (0 = whole input),
    /// with no span information.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
            span: None,
            source_line: None,
        }
    }

    /// Creates a parse error at `span`, carrying `source_line` (the text of
    /// the offending line) for the rendered excerpt.
    pub fn at(span: Span, source_line: &str, message: impl Into<String>) -> Self {
        ParseError {
            line: span.line,
            message: message.into(),
            span: Some(span),
            source_line: Some(source_line.trim_end().to_string()),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.span {
            None if self.line == 0 => write!(f, "{}", self.message)?,
            None => write!(f, "line {}: {}", self.line, self.message)?,
            Some(span) => write!(f, "line {}, col {}: {}", span.line, span.col, self.message)?,
        }
        if let (Some(span), Some(src)) = (&self.span, &self.source_line) {
            write!(f, "\n  |  {src}\n  |  ")?;
            for _ in 1..span.col {
                f.write_char(' ')?;
            }
            for _ in 0..span.len.max(1) {
                f.write_char('^')?;
            }
        }
        Ok(())
    }
}

impl Error for ParseError {}

/// Source spans of one parsed `loop ... end` block, indexed like the graph
/// itself: `nodes[i]` is the span of the line that declared node `i`,
/// `edges[i]` the span of the line that declared edge `i` (declaration
/// order equals [`NodeId`]/`EdgeId` order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopSpans {
    /// The `loop` header line.
    pub header: Span,
    /// One span per node, in [`NodeId`] order.
    pub nodes: Vec<Span>,
    /// One span per edge, in `EdgeId` order.
    pub edges: Vec<Span>,
}

/// Whether a name can be written without quotes: ASCII alphanumerics plus
/// `_`, `.`, `-` and `$`, not starting with a digit or `-`, and not a
/// keyword of the format.
fn is_bare(name: &str) -> bool {
    let mut chars = name.chars();
    let first_ok = matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_');
    first_ok
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-' | '$'))
        && !matches!(
            name,
            "loop" | "end" | "node" | "edge" | "iterations" | "invariants"
        )
}

/// Appends `name` in quotes with the format's escapes.
fn write_quoted(out: &mut String, name: &str) {
    out.push('"');
    for c in name.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `name`, bare when safe, quoted otherwise.
fn write_name(out: &mut String, name: &str) {
    if is_bare(name) {
        out.push_str(name);
    } else {
        write_quoted(out, name);
    }
}

/// Serialises one graph as a `loop ... end` block.
pub fn write_loop(ddg: &Ddg) -> String {
    let mut out = String::new();
    out.push_str("loop ");
    // Loop names are always quoted: they routinely contain spaces and
    // suite-prefix punctuation, and a fixed shape is easier to grep.
    write_quoted(&mut out, ddg.name());
    out.push('\n');
    let _ = writeln!(out, "  iterations {}", ddg.iteration_count());
    let _ = writeln!(out, "  invariants {}", ddg.num_invariants());
    for (_, n) in ddg.nodes() {
        out.push_str("  node ");
        write_name(&mut out, n.name());
        let _ = write!(out, " {} latency={}", n.kind().mnemonic(), n.latency());
        if n.invariant_uses() > 0 {
            let _ = write!(out, " invariant_uses={}", n.invariant_uses());
        }
        if !n.defines_value() && n.kind().defines_value() {
            out.push_str(" no_result");
        }
        out.push('\n');
    }
    for (_, e) in ddg.edges() {
        out.push_str("  edge ");
        write_name(&mut out, ddg.node(e.source()).name());
        out.push_str(" -> ");
        write_name(&mut out, ddg.node(e.target()).name());
        let _ = write!(out, " {}", e.kind().label());
        if e.distance() > 0 {
            let _ = write!(out, " dist={}", e.distance());
        }
        out.push('\n');
    }
    out.push_str("end\n");
    out
}

/// Serialises a whole suite, one block per graph, blocks separated by a
/// blank line.
pub fn write_loops(ddgs: &[Ddg]) -> String {
    let mut out = String::new();
    for (i, g) in ddgs.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&write_loop(g));
    }
    out
}

/// One token of a line: a (possibly quoted) word or the `->` arrow.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    /// A bare or quoted word. The flag records whether it was quoted
    /// (quoted words are never keywords).
    Word(String, bool),
    /// The `->` edge arrow.
    Arrow,
}

impl Token {
    fn describe(&self) -> String {
        match self {
            Token::Word(w, _) => format!("`{w}`"),
            Token::Arrow => "`->`".to_string(),
        }
    }
}

/// A token plus where it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SpTok {
    tok: Token,
    span: Span,
}

impl SpTok {
    /// The word's text. Only meaningful for [`Token::Word`] tokens; callers
    /// go through [`word`] first.
    fn text(&self) -> &str {
        match &self.tok {
            Token::Word(w, _) => w,
            Token::Arrow => "->",
        }
    }
}

/// The location context of the line being parsed: its text, 1-based number
/// and the byte offset of its first character in the whole input.
#[derive(Debug, Clone, Copy)]
struct LineCtx<'a> {
    line: &'a str,
    lineno: usize,
    base: usize,
}

impl LineCtx<'_> {
    /// A span covering the line's non-blank content.
    fn span_all(&self) -> Span {
        let lead_bytes = self.line.len() - self.line.trim_start().len();
        let lead_chars = self.line.chars().take_while(|c| c.is_whitespace()).count();
        let content = self.line.trim();
        Span {
            line: self.lineno,
            col: lead_chars + 1,
            offset: self.base + lead_bytes,
            len: content.chars().count().max(1),
        }
    }

    /// An error covering the whole line.
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::at(self.span_all(), self.line, message)
    }

    /// An error pinned to `span`.
    fn err_at(&self, span: Span, message: impl Into<String>) -> ParseError {
        ParseError::at(span, self.line, message)
    }
}

/// Splits one line into tokens, honouring quotes and `#` comments.
fn tokenize(ctx: &LineCtx<'_>) -> Result<Vec<SpTok>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = ctx.line.char_indices().peekable();
    let mut col = 1usize;
    while let Some(&(i, c)) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            col += 1;
        } else if c == '#' {
            break;
        } else if c == '"' {
            let (start, start_col) = (i, col);
            chars.next();
            col += 1;
            let mut word = String::new();
            loop {
                match chars.next() {
                    None => {
                        let span =
                            Span::new(ctx.lineno, start_col, ctx.base + start, col - start_col);
                        return Err(ctx.err_at(span, "unterminated string"));
                    }
                    Some((_, '"')) => {
                        col += 1;
                        break;
                    }
                    Some((_, '\\')) => {
                        col += 1;
                        match chars.next() {
                            Some((_, '\\')) => word.push('\\'),
                            Some((_, '"')) => word.push('"'),
                            Some((_, 'n')) => word.push('\n'),
                            Some((_, 't')) => word.push('\t'),
                            Some((j, other)) => {
                                let span = Span::new(ctx.lineno, col - 1, ctx.base + j - 1, 2);
                                return Err(ctx.err_at(
                                    span,
                                    format!("unknown escape `\\{other}` in string"),
                                ));
                            }
                            None => {
                                let span = Span::new(
                                    ctx.lineno,
                                    start_col,
                                    ctx.base + start,
                                    col - start_col,
                                );
                                return Err(ctx.err_at(span, "unterminated string"));
                            }
                        }
                        col += 1;
                    }
                    Some((_, ch)) => {
                        col += 1;
                        word.push(ch);
                    }
                }
            }
            tokens.push(SpTok {
                tok: Token::Word(word, true),
                span: Span::new(ctx.lineno, start_col, ctx.base + start, col - start_col),
            });
        } else {
            let (start, start_col) = (i, col);
            let mut word = String::new();
            while let Some(&(_, c)) = chars.peek() {
                if c.is_whitespace() || c == '#' || c == '"' {
                    break;
                }
                word.push(c);
                chars.next();
                col += 1;
            }
            let span = Span::new(ctx.lineno, start_col, ctx.base + start, col - start_col);
            let tok = if word == "->" {
                Token::Arrow
            } else {
                Token::Word(word, false)
            };
            tokens.push(SpTok { tok, span });
        }
    }
    Ok(tokens)
}

/// A tokenized word plus its source location: the shared lexical layer of
/// the `.loop` format, re-exported so the `.machine` codec in
/// `hrms-machine` lexes identically (same quoting, escapes and `#`
/// comments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawToken {
    /// The token text, with quotes stripped and escapes applied. The edge
    /// arrow appears verbatim as `->`.
    pub text: String,
    /// Whether the token was written in quotes (quoted words are never
    /// treated as keywords by the `.loop` parser).
    pub quoted: bool,
    /// Where the token (including any surrounding quotes) sits in the
    /// input.
    pub span: Span,
}

/// Tokenizes one line of a `.loop`/`.machine`-style file into spanned
/// words. `lineno` is 1-based; `line_offset` is the byte offset of the
/// line's first character in the whole input (so token spans index into
/// the full file).
///
/// # Errors
///
/// Returns a [`ParseError`] on unterminated strings or unknown escapes.
pub fn tokenize_line(
    line: &str,
    lineno: usize,
    line_offset: usize,
) -> Result<Vec<RawToken>, ParseError> {
    let ctx = LineCtx {
        line,
        lineno,
        base: line_offset,
    };
    Ok(tokenize(&ctx)?
        .into_iter()
        .map(|st| {
            let quoted = matches!(st.tok, Token::Word(_, true));
            RawToken {
                text: st.text().to_string(),
                quoted,
                span: st.span,
            }
        })
        .collect())
}

/// A span covering the non-blank content of one line. `lineno` is 1-based;
/// `line_offset` is the byte offset of the line's first character in the
/// whole input.
pub fn line_span(line: &str, lineno: usize, line_offset: usize) -> Span {
    LineCtx {
        line,
        lineno,
        base: line_offset,
    }
    .span_all()
}

/// State of the `loop` block currently being parsed.
struct Block {
    builder: DdgBuilder,
    /// name → id, for edge endpoint resolution (duplicate names are
    /// rejected at `build` time; first wins for resolution here).
    names: Vec<(String, NodeId)>,
    start_line: usize,
    spans: LoopSpans,
}

impl Block {
    fn lookup(&self, name: &str) -> Option<NodeId> {
        self.names
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, id)| id)
    }
}

/// One parsed attribute: key, optional value, and the token's span.
type Attr<'t> = (&'t str, Option<&'t str>, Span);

/// Parses `key=value` attributes and flags from the tail of a line.
fn parse_attrs<'t>(ctx: &LineCtx<'_>, tokens: &'t [SpTok]) -> Result<Vec<Attr<'t>>, ParseError> {
    let mut attrs = Vec::new();
    for t in tokens {
        match &t.tok {
            Token::Word(w, false) => match w.split_once('=') {
                Some((k, v)) => attrs.push((k, Some(v), t.span)),
                None => attrs.push((w.as_str(), None, t.span)),
            },
            other => {
                return Err(ctx.err_at(t.span, format!("unexpected token {}", other.describe())))
            }
        }
    }
    Ok(attrs)
}

fn parse_num<T: std::str::FromStr>(
    ctx: &LineCtx<'_>,
    v: &str,
    span: Span,
    what: &str,
) -> Result<T, ParseError> {
    v.parse()
        .map_err(|_| ctx.err_at(span, format!("invalid {what} `{v}`")))
}

fn word<'t>(ctx: &LineCtx<'_>, t: Option<&'t SpTok>, what: &str) -> Result<&'t SpTok, ParseError> {
    match t {
        Some(st) => match &st.tok {
            Token::Word(_, _) => Ok(st),
            other => Err(ctx.err_at(
                st.span,
                format!("expected {what}, found {}", other.describe()),
            )),
        },
        None => Err(ctx.err(format!("expected {what}"))),
    }
}

/// Parses a whole file: any number of `loop ... end` blocks, returning the
/// source spans of every block alongside its graph.
///
/// # Errors
///
/// Returns a [`ParseError`] (with a 1-based line number, column and source
/// excerpt) on malformed syntax, unknown keywords/kinds, dangling edge
/// endpoints, or when a block fails [`DdgBuilder::build`] validation
/// (duplicate names, zero latency, empty body).
pub fn parse_loops_with_spans(input: &str) -> Result<Vec<(Ddg, LoopSpans)>, ParseError> {
    let mut loops = Vec::new();
    let mut block: Option<Block> = None;
    let mut base = 0usize;
    for (i, raw) in input.split_inclusive('\n').enumerate() {
        let lineno = i + 1;
        let line = raw
            .strip_suffix('\n')
            .map(|l| l.strip_suffix('\r').unwrap_or(l))
            .unwrap_or(raw);
        let ctx = LineCtx { line, lineno, base };
        base += raw.len();
        let tokens = tokenize(&ctx)?;
        let Some(first) = tokens.first() else {
            continue;
        };
        let keyword = match &first.tok {
            Token::Word(w, false) => w.as_str(),
            other => {
                return Err(ctx.err_at(
                    first.span,
                    format!("expected a keyword, found {}", other.describe()),
                ))
            }
        };
        match (keyword, &mut block) {
            ("loop", Some(_)) => {
                return Err(ctx.err_at(
                    first.span,
                    "`loop` inside an unterminated block (missing `end`?)",
                ));
            }
            ("loop", slot @ None) => {
                let name = word(&ctx, tokens.get(1), "a loop name")?;
                if tokens.len() > 2 {
                    return Err(ctx.err_at(tokens[2].span, "trailing tokens after loop name"));
                }
                *slot = Some(Block {
                    builder: DdgBuilder::new(name.text()),
                    names: Vec::new(),
                    start_line: lineno,
                    spans: LoopSpans {
                        header: ctx.span_all(),
                        nodes: Vec::new(),
                        edges: Vec::new(),
                    },
                });
            }
            ("end", Some(_)) => {
                let b = block.take().expect("matched Some");
                let ddg = b
                    .builder
                    .build()
                    .map_err(|e| ctx.err(format!("invalid loop: {e}")))?;
                loops.push((ddg, b.spans));
            }
            ("iterations", Some(b)) => {
                let v = word(&ctx, tokens.get(1), "an iteration count")?;
                b.builder
                    .iteration_count(parse_num(&ctx, v.text(), v.span, "iteration count")?);
            }
            ("invariants", Some(b)) => {
                let v = word(&ctx, tokens.get(1), "an invariant count")?;
                b.builder
                    .invariants(parse_num(&ctx, v.text(), v.span, "invariant count")?);
            }
            ("node", Some(b)) => {
                let name = word(&ctx, tokens.get(1), "a node name")?.text().to_string();
                let kind_tok = word(&ctx, tokens.get(2), "an operation kind")?;
                let kind_word = kind_tok.text();
                let kind = OpKind::from_mnemonic(kind_word).ok_or_else(|| {
                    ctx.err_at(
                        kind_tok.span,
                        format!("unknown operation kind `{kind_word}`"),
                    )
                })?;
                let mut latency: Option<u32> = None;
                let mut invariant_uses: u32 = 0;
                let mut no_result = false;
                for (k, v, span) in parse_attrs(&ctx, &tokens[3..])? {
                    match (k, v) {
                        ("latency", Some(v)) => {
                            latency = Some(parse_num(&ctx, v, span, "latency")?)
                        }
                        ("invariant_uses", Some(v)) => {
                            invariant_uses = parse_num(&ctx, v, span, "invariant_uses")?;
                        }
                        ("no_result", None) => no_result = true,
                        (k, _) => {
                            return Err(ctx.err_at(span, format!("unknown node attribute `{k}`")))
                        }
                    }
                }
                let latency = latency
                    .ok_or_else(|| ctx.err(format!("node `{name}` is missing latency=N")))?;
                let id = if no_result {
                    b.builder.node_no_result(name.clone(), kind, latency)
                } else {
                    b.builder.node(name.clone(), kind, latency)
                };
                if invariant_uses > 0 {
                    b.builder.node_invariant_uses(id, invariant_uses);
                }
                b.names.push((name, id));
                b.spans.nodes.push(ctx.span_all());
            }
            ("edge", Some(b)) => {
                let src_tok = word(&ctx, tokens.get(1), "a source node name")?;
                match tokens.get(2) {
                    Some(t) if t.tok == Token::Arrow => {}
                    Some(t) => return Err(ctx.err_at(t.span, "expected `->` after edge source")),
                    None => return Err(ctx.err("expected `->` after edge source")),
                }
                let dst_tok = word(&ctx, tokens.get(3), "a target node name")?;
                let kind_tok = word(&ctx, tokens.get(4), "a dependence kind")?;
                let kind_word = kind_tok.text();
                let kind = DepKind::from_label(kind_word).ok_or_else(|| {
                    ctx.err_at(
                        kind_tok.span,
                        format!("unknown dependence kind `{kind_word}`"),
                    )
                })?;
                let mut distance: u32 = 0;
                for (k, v, span) in parse_attrs(&ctx, &tokens[5..])? {
                    match (k, v) {
                        ("dist", Some(v)) => distance = parse_num(&ctx, v, span, "distance")?,
                        (k, _) => {
                            return Err(ctx.err_at(span, format!("unknown edge attribute `{k}`")))
                        }
                    }
                }
                let src = b.lookup(src_tok.text()).ok_or_else(|| {
                    ctx.err_at(
                        src_tok.span,
                        format!("edge references unknown node `{}`", src_tok.text()),
                    )
                })?;
                let dst = b.lookup(dst_tok.text()).ok_or_else(|| {
                    ctx.err_at(
                        dst_tok.span,
                        format!("edge references unknown node `{}`", dst_tok.text()),
                    )
                })?;
                b.builder
                    .edge(src, dst, kind, distance)
                    .map_err(|e| ctx.err(format!("invalid edge: {e}")))?;
                b.spans.edges.push(ctx.span_all());
            }
            (kw, Some(_)) => {
                return Err(ctx.err_at(first.span, format!("unknown keyword `{kw}`")));
            }
            (kw, None) => {
                return Err(
                    ctx.err_at(first.span, format!("`{kw}` outside a `loop ... end` block"))
                );
            }
        }
    }
    if let Some(b) = block {
        return Err(ParseError::new(
            0,
            format!(
                "loop block starting on line {} is never closed with `end`",
                b.start_line
            ),
        ));
    }
    Ok(loops)
}

/// Parses a whole file: any number of `loop ... end` blocks.
///
/// # Errors
///
/// Same as [`parse_loops_with_spans`].
pub fn parse_loops(input: &str) -> Result<Vec<Ddg>, ParseError> {
    Ok(parse_loops_with_spans(input)?
        .into_iter()
        .map(|(ddg, _)| ddg)
        .collect())
}

/// Parses a file that must contain exactly one loop.
///
/// # Errors
///
/// Same as [`parse_loops`], plus an error when the input holds zero or more
/// than one block.
pub fn parse_loop(input: &str) -> Result<Ddg, ParseError> {
    let mut loops = parse_loops(input)?;
    match loops.len() {
        1 => Ok(loops.remove(0)),
        n => Err(ParseError::new(
            0,
            format!("expected exactly one loop, found {n}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::ddg_fingerprint;
    use crate::{DdgBuilder, DepKind, OpKind};

    fn tricky() -> Ddg {
        let mut b = DdgBuilder::new("tricky \"loop\" \\ name");
        let a = b.node("plain", OpKind::Load, 2);
        let c = b.node("needs quoting", OpKind::FpAdd, 1);
        let d = b.node_no_result("cmp", OpKind::IntAlu, 1);
        b.node_invariant_uses(a, 2);
        b.edge(a, c, DepKind::RegFlow, 0).unwrap();
        b.edge(c, c, DepKind::RegFlow, 3).unwrap();
        b.edge(d, c, DepKind::Control, 1).unwrap();
        b.invariants(5).iteration_count(12345);
        b.build().unwrap()
    }

    #[test]
    fn round_trip_is_fingerprint_identical() {
        let g = tricky();
        let text = write_loop(&g);
        let back = parse_loop(&text).unwrap();
        assert_eq!(back, g);
        assert_eq!(ddg_fingerprint(&back), ddg_fingerprint(&g));
    }

    #[test]
    fn multi_loop_files_round_trip_in_order() {
        let a = crate::chain("first", 3, OpKind::FpAdd, 1);
        let b = tricky();
        let text = write_loops(&[a.clone(), b.clone()]);
        let back = parse_loops(&text).unwrap();
        assert_eq!(back, vec![a, b]);
    }

    #[test]
    fn comments_blank_lines_and_bare_names_are_accepted() {
        let text = "\n# a comment\nloop \"l\"\n  node a fadd latency=1 # trailing\n\n  node b fmul latency=2\n  edge a -> b flow\nend\n";
        let g = parse_loop(text).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
        assert!(g.node_by_name("a").is_some());
    }

    #[test]
    fn defaults_are_applied() {
        // dist defaults to 0; iterations/invariants default to builder
        // defaults (1 and sum-of-uses respectively).
        let text = "loop l\nnode a load latency=2 invariant_uses=1\nnode b store latency=1\nedge a -> b flow\nend\n";
        let g = parse_loop(text).unwrap();
        let (_, e) = g.edges().next().unwrap();
        assert_eq!(e.distance(), 0);
        assert_eq!(g.iteration_count(), 1);
        assert_eq!(g.num_invariants(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("loop l\nnode a zzz latency=1\nend\n", 2, "operation kind"),
            ("loop l\nnode a fadd\nend\n", 2, "latency"),
            (
                "loop l\nnode a fadd latency=1\nedge a -> b flow\nend\n",
                3,
                "unknown node",
            ),
            (
                "loop l\nnode a fadd latency=1\nedge a b flow\nend\n",
                3,
                "->",
            ),
            ("node a fadd latency=1\n", 1, "outside"),
            ("loop l\nloop m\n", 2, "unterminated"),
            ("loop l\nnode a fadd latency=1\n", 0, "never closed"),
            (
                "loop l\nnode \"a fadd latency=1\nend\n",
                2,
                "unterminated string",
            ),
            ("loop l\nnode a fadd latency=x\nend\n", 2, "invalid latency"),
            ("loop l\nfrobnicate\nend\n", 2, "unknown keyword"),
        ];
        for (text, line, needle) in cases {
            let err = parse_loops(text).unwrap_err();
            assert_eq!(err.line, *line, "case {text:?}: {err}");
            assert!(
                err.to_string().contains(needle),
                "case {text:?}: message {err} should mention {needle}"
            );
        }
    }

    #[test]
    fn errors_carry_columns_offsets_and_excerpts() {
        // `zzz` starts at column 8 of line 2; the file is
        // "loop l\nnode a zzz latency=1\nend\n", so its byte offset is
        // 7 (line 1 + newline) + 7 = 14.
        let text = "loop l\nnode a zzz latency=1\nend\n";
        let err = parse_loops(text).unwrap_err();
        let span = err.span.expect("token errors carry spans");
        assert_eq!((span.line, span.col, span.offset, span.len), (2, 8, 14, 3));
        assert_eq!(&text[span.offset..span.offset + span.len], "zzz");
        assert_eq!(err.source_line.as_deref(), Some("node a zzz latency=1"));
        let rendered = err.to_string();
        assert!(
            rendered.starts_with("line 2, col 8: unknown operation kind `zzz`"),
            "got: {rendered}"
        );
        assert!(
            rendered.contains("|  node a zzz latency=1"),
            "excerpt rendered: {rendered}"
        );
        assert!(
            rendered.contains("|         ^^^"),
            "caret under the token: {rendered}"
        );
    }

    #[test]
    fn spans_point_at_the_offending_token_per_error_kind() {
        // (input, expected 1-based column of the span)
        let cases: &[(&str, usize)] = &[
            // unknown dependence kind `zz` on the edge line
            (
                "loop l\nnode a fadd latency=1\nedge a -> a zz dist=1\nend\n",
                13,
            ),
            // unknown node `b` as edge target
            ("loop l\nnode a fadd latency=1\nedge a -> b flow\nend\n", 11),
            // invalid latency value: span covers `latency=x`
            ("loop l\nnode a fadd latency=x\nend\n", 13),
            // unknown keyword at start of line
            ("loop l\n  frobnicate\nend\n", 3),
        ];
        for (text, col) in cases {
            let err = parse_loops(text).unwrap_err();
            let span = err.span.unwrap_or_else(|| panic!("no span: {err}"));
            assert_eq!(span.col, *col, "case {text:?}: {err}");
        }
    }

    #[test]
    fn with_spans_records_every_node_and_edge_line() {
        let text = "# header\nloop l\n  node a fadd latency=1\n  node b fmul latency=2\n  edge a -> b flow\nend\n";
        let parsed = parse_loops_with_spans(text).unwrap();
        assert_eq!(parsed.len(), 1);
        let (g, spans) = &parsed[0];
        assert_eq!(spans.header.line, 2);
        assert_eq!(spans.nodes.len(), g.num_nodes());
        assert_eq!(spans.edges.len(), g.num_edges());
        assert_eq!(spans.nodes[0].line, 3);
        assert_eq!(spans.nodes[1].line, 4);
        assert_eq!(spans.edges[0].line, 5);
        // Node spans cover the declaration text, byte-addressable.
        let s = spans.nodes[1];
        assert_eq!(&text[s.offset..s.offset + s.len], "node b fmul latency=2");
    }

    #[test]
    fn crlf_input_keeps_offsets_exact() {
        let text = "loop l\r\nnode a zzz latency=1\r\nend\r\n";
        let err = parse_loops(text).unwrap_err();
        let span = err.span.unwrap();
        assert_eq!(span.line, 2);
        assert_eq!(&text[span.offset..span.offset + span.len], "zzz");
    }

    #[test]
    fn builder_validation_errors_surface() {
        let text = "loop l\nnode a fadd latency=1\nnode a fmul latency=2\nend\n";
        let err = parse_loops(text).unwrap_err();
        assert!(err.to_string().contains("duplicate"));

        let text = "loop l\nnode s store latency=1\nnode a fadd latency=1\nedge s -> a flow\nend\n";
        let err = parse_loops(text).unwrap_err();
        assert!(err.to_string().contains("no value"));
    }

    #[test]
    fn escapes_round_trip_in_names() {
        let mut b = DdgBuilder::new("esc");
        b.node("a\"b\\c\nd\te", OpKind::FpAdd, 1);
        let g = b.build().unwrap();
        let back = parse_loop(&write_loop(&g)).unwrap();
        assert_eq!(back.node(NodeId(0)).name(), "a\"b\\c\nd\te");
    }

    #[test]
    fn keyword_like_names_are_quoted_and_survive() {
        let mut b = DdgBuilder::new("kw");
        b.node("end", OpKind::FpAdd, 1);
        b.node("loop", OpKind::FpMul, 2);
        let g = b.build().unwrap();
        let back = parse_loop(&write_loop(&g)).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn empty_input_parses_to_no_loops() {
        assert!(parse_loops("").unwrap().is_empty());
        assert!(parse_loops("# only comments\n\n").unwrap().is_empty());
    }
}
